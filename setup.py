"""Setuptools entry point for the Instant-NeRF NMP reproduction.

Installs the ``repro`` package from ``src/`` and registers the ``repro``
console script, which dispatches to the same CLI as ``python -m repro``
(``list`` / ``run`` / ``sweep`` / ``report``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-instant-nerf-nmp",
    version="0.2.0",
    description=(
        "Reproduction of the Instant-NeRF near-memory-processing training "
        "accelerator study (DAC'23), with a config-driven experiment pipeline"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # The CI toolchain, pinned so the lint/format/coverage gates are
        # reproducible locally: `pip install -e ".[dev]"`.
        "dev": [
            "pytest>=8",
            "pytest-benchmark>=4",
            "ruff==0.8.4",
            "pytest-cov==5.0.0",
            "hypothesis==6.155.2",
            "mypy==1.14.1",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.pipeline.cli:main",
        ],
    },
)
