"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 wheel-less editable support
(``pip install -e .`` falls back to the legacy ``setup.py develop`` path).
All metadata lives in ``pyproject.toml``; this file only forwards to it.
"""

from setuptools import setup

setup()
