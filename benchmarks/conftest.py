"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints the
reproduced rows/series, and asserts the expected *shape* (who wins, rough
factors) rather than absolute numbers.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult


def report(result: ExperimentResult) -> ExperimentResult:
    """Print an experiment result under the benchmark output and return it."""
    print()
    print(result.to_text())
    return result
