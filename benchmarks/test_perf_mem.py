"""Memory-hierarchy performance benchmarks: vectorized engines vs oracles.

Each test times one stage of the :mod:`repro.mem` subsystem (and the
composed :class:`~repro.mem.hierarchy.CacheHierarchy`) against the
per-access reference oracle it is equivalence-tested with, asserts a
conservative speedup floor, and records the measured numbers.  On module
teardown the measurements are appended to ``BENCH_mem.json`` at the
repository root so successive runs build a performance trajectory.

Scales follow the paper's training batch: 1024 rays x 64 samples = 64K
points, eight corner lookups each, at the finest hash-grid level.  Setting
``PERF_SMOKE=1`` shrinks the inputs and drops the speedup assertions
(equivalence is still checked) so CI smoke runs stay fast and insensitive
to machine load.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.experiments.runner import atomic_write_text
from repro.mem import (
    CacheConfig,
    CacheHierarchy,
    PrefetcherConfig,
    plan_prefetches,
    plan_prefetches_reference,
    scratchpad_filter,
    scratchpad_filter_reference,
    simulate_cache,
    simulate_cache_reference,
)
from repro.nerf.encoding import HashGridConfig
from repro.streams import RequestStream
from repro.workloads.traces import TraceConfig, generate_batch_points, level_lookup_indices

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
NUM_RAYS = 64 if SMOKE else 1024
POINTS_PER_RAY = 16 if SMOKE else 64
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_mem.json"

_RESULTS: dict[str, dict] = {}


def _time(fn, repeats=2):
    """Best-of-``repeats`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(name: str, reference_s: float, vectorized_s: float) -> float:
    speedup = reference_s / vectorized_s if vectorized_s > 0 else float("inf")
    _RESULTS[name] = {
        "reference_s": round(reference_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(speedup, 2),
    }
    print(
        f"\n{name}: reference {reference_s:.3f}s vectorized {vectorized_s:.3f}s "
        f"-> {speedup:.1f}x"
    )
    return speedup


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_mem.json trajectory."""
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "num_rays": NUM_RAYS,
        "points_per_ray": POINTS_PER_RAY,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


@pytest.fixture(scope="module")
def finest_level_indices():
    """Corner-lookup indices of the finest level of one training batch."""
    grid = HashGridConfig()  # L=16, T=2**19, paper defaults
    points = generate_batch_points(
        TraceConfig(num_rays=NUM_RAYS, points_per_ray=POINTS_PER_RAY, seed=0)
    ).reshape(-1, 3)
    return level_lookup_indices(points, grid.num_levels - 1, grid, MortonLocalityHash())


def test_cache_simulation_speedup(finest_level_indices):
    """Segmented-wave cache engine vs the per-access state machine."""
    config = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=4, mshr_latency=4)
    lines = (finest_level_indices.ravel().astype(np.int64) * 4) // config.line_bytes
    simulate_cache(lines, config)  # warm
    vec_s, (out_vec, stats_vec) = _time(lambda: simulate_cache(lines, config))
    ref_s, (out_ref, stats_ref) = _time(lambda: simulate_cache_reference(lines, config), repeats=1)
    np.testing.assert_array_equal(out_vec, out_ref)
    assert stats_vec == stats_ref
    speedup = _record("simulate_cache", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0


def test_scratchpad_filter_speedup(finest_level_indices):
    """Vectorized L0 reuse-window filter vs the per-point loop."""
    lines = (finest_level_indices.astype(np.int64) * 4) // 64
    scratchpad_filter(lines, 8)  # warm
    vec_s, vec = _time(lambda: scratchpad_filter(lines, 8))
    ref_s, ref = _time(lambda: scratchpad_filter_reference(lines, 8), repeats=1)
    np.testing.assert_array_equal(vec, ref)
    speedup = _record("scratchpad_filter", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0


def test_prefetch_plan_speedup(finest_level_indices):
    """Vectorized stride-prefetch planning vs the per-access state machine."""
    config = PrefetcherConfig(policy="stride", degree=2)
    lines = (finest_level_indices.ravel().astype(np.int64) * 4) // 64
    plan_prefetches(lines, config)  # warm
    vec_s, (merged_vec, flags_vec) = _time(lambda: plan_prefetches(lines, config))
    ref_s, (merged_ref, flags_ref) = _time(
        lambda: plan_prefetches_reference(lines, config), repeats=1
    )
    np.testing.assert_array_equal(merged_vec, merged_ref)
    np.testing.assert_array_equal(flags_vec, flags_ref)
    speedup = _record("plan_prefetches", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0


def test_hierarchy_filter_stream_speedup(finest_level_indices):
    """Composed L0 + prefetcher + L1 pipeline vs the oracle composition."""
    hierarchy = CacheHierarchy(
        CacheConfig(capacity_bytes=128 * 1024, line_bytes=64, ways=4, mshr_latency=4),
        PrefetcherConfig(policy="stride"),
    )
    stream = RequestStream(
        indices=finest_level_indices,
        entry_bytes=4,
        table_entries=int(finest_level_indices.max()) + 1,
        source="bench.mem",
    )
    hierarchy.filter_stream(stream)  # warm
    vec_s, fast = _time(lambda: hierarchy.filter_stream(stream))
    ref_s, oracle = _time(lambda: hierarchy.filter_stream_reference(stream), repeats=1)
    np.testing.assert_array_equal(fast.outcomes, oracle.outcomes)
    np.testing.assert_array_equal(fast.dram_lines, oracle.dram_lines)
    assert fast.stats == oracle.stats
    speedup = _record("hierarchy_filter_stream", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0
