"""Observability overhead benchmarks: the zero-overhead-when-disabled gate.

Measurements recorded into ``BENCH_obs.json`` (same trajectory format as the
other ``BENCH_*.json`` files):

* per-call cost of a span on the disabled (null-object) path, measured in a
  tight loop — this is the price every instrumented call site pays when
  tracing is off;
* disabled-instrumentation overhead of the two hot modeled kernels
  (``DRAMSystem.service_batch`` and ``CacheHierarchy.filter_stream``):
  spans-per-invocation (counted by enabling a recording tracer once) times
  the null-span cost, as a fraction of the kernel's wall time.  Gated at
  ``MAX_DISABLED_OVERHEAD`` (2%) in both smoke and full mode, and recorded
  as ``overhead_headroom_speedup`` (higher is better) so ``bench compare``
  flags a creeping disabled path before it ever reaches the gate.

``PERF_SMOKE=1`` shrinks the loop/batch sizes; the overhead gate itself is
a ratio of two wall-clock measurements on the same machine, so it stays on
in smoke mode.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.dram.system import DRAMSystem
from repro.experiments.runner import atomic_write_text
from repro.mem.hierarchy import CacheHierarchy
from repro.streams import RequestStream

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
NUM_ADDRESSES = 4_096 if SMOKE else 65_536
SPAN_LOOP = 20_000 if SMOKE else 200_000
#: Disabled instrumentation may cost at most this fraction of kernel time.
MAX_DISABLED_OVERHEAD = 0.02
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

_RESULTS: dict[str, dict] = {}


def _time(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_obs.json trajectory."""
    obs.disable()
    yield
    obs.disable()
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "num_addresses": NUM_ADDRESSES,
        "span_loop": SPAN_LOOP,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


def _per_span_seconds(enabled: bool) -> float:
    """Best-of per-call cost of opening+closing one span."""
    if enabled:
        tracer, _ = obs.enable(wall_clock=False)
    else:
        obs.disable()
        tracer = obs.get_tracer()

    def loop():
        for _ in range(SPAN_LOOP):
            with tracer.span("bench.noop", "pipeline"):
                pass
        if enabled:
            tracer.drain()  # keep the event list from growing across repeats

    best, _ = _time(loop)
    obs.disable()
    return best / SPAN_LOOP


def _spans_per_invocation(fn) -> int:
    """How many events one kernel invocation emits when tracing is on."""
    tracer, _ = obs.enable(wall_clock=False)
    fn()
    count = len(tracer.drain())
    obs.disable()
    return count


def _gate_kernel(name: str, fn) -> None:
    """Time ``fn`` with obs disabled and gate its disabled-path span cost."""
    obs.disable()
    kernel_s, _ = _time(fn)
    spans = _spans_per_invocation(fn)
    per_span_s = _per_span_seconds(enabled=False)
    overhead = (spans * per_span_s / kernel_s) if kernel_s > 0 else 0.0
    headroom = MAX_DISABLED_OVERHEAD / overhead if overhead > 0 else float("inf")
    _RESULTS[name] = {
        "kernel_s": round(kernel_s, 5),
        "spans_per_invocation": spans,
        "null_span_ns": round(per_span_s * 1e9, 1),
        "disabled_overhead": round(overhead, 8),
        "overhead_headroom_speedup": round(min(headroom, 1e6), 3),
    }
    print(
        f"\n{name}: kernel {kernel_s * 1e3:.2f}ms, {spans} span(s) x "
        f"{per_span_s * 1e9:.0f}ns null -> overhead {overhead * 100:.5f}% "
        f"(gate {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
    assert overhead <= MAX_DISABLED_OVERHEAD


def test_null_span_is_cheap():
    """The disabled span path is a shared null object: well under a microsecond."""
    disabled_s = _per_span_seconds(enabled=False)
    enabled_s = _per_span_seconds(enabled=True)
    _RESULTS["null_span"] = {
        "disabled_ns": round(disabled_s * 1e9, 1),
        "enabled_ns": round(enabled_s * 1e9, 1),
    }
    print(f"\nspan: disabled {disabled_s * 1e9:.0f}ns, recording {enabled_s * 1e9:.0f}ns")
    # Generous ceiling (slow shared CI machines), still far below any kernel.
    assert disabled_s < 5e-6


def test_dram_service_batch_disabled_overhead():
    rng = np.random.default_rng(0)
    addresses = rng.integers(0, 1 << 28, size=NUM_ADDRESSES, dtype=np.int64)
    dram = DRAMSystem()
    _gate_kernel("dram_service_batch", lambda: dram.service_batch(addresses))


def test_mem_filter_stream_disabled_overhead():
    rng = np.random.default_rng(1)
    indices = rng.integers(0, 1 << 20, size=NUM_ADDRESSES, dtype=np.int64).reshape(-1, 8)
    stream = RequestStream(
        indices=indices, entry_bytes=4, table_entries=1 << 20, source="bench.obs"
    )
    hierarchy = CacheHierarchy()
    _gate_kernel("mem_filter_stream", lambda: hierarchy.filter_stream(stream))
