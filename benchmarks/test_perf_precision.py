"""Mixed-precision benchmarks: fp32 kernel speedups and narrow-entry traffic.

Three measurements, recorded into ``BENCH_precision.json`` (same trajectory
format as the other ``BENCH_*.json`` files):

* hash-grid encoding forward+backward at fp32 vs the historical fp64
  path (wall-clock speedup; outputs asserted close);
* MLP forward+backward at fp32 vs fp64 (same shape of measurement);
* deterministic modeled traffic reductions of narrow table entries:
  finest-level DRAM row requests and cache-filtered DRAM cycles for
  fp32/fp16/int8 entries against fp64, asserted monotone.

``PERF_SMOKE=1`` shrinks the inputs and drops the wall-clock floors (the
deterministic traffic reductions stay gated) so CI smoke runs are fast and
insensitive to machine load.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.core.streaming import StreamingOrder
from repro.experiments.runner import atomic_write_text
from repro.mem.hierarchy import CacheHierarchy
from repro.nerf import HashGridConfig
from repro.nerf.mlp import MLP
from repro.pipeline import SimulationContext
from repro.workloads.traces import TraceConfig

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
NUM_POINTS = 4_096 if SMOKE else 65_536
MLP_BATCH = 4_096 if SMOKE else 65_536
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_precision.json"

_RESULTS: dict[str, dict] = {}


def _time(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_precision.json trajectory."""
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "num_points": NUM_POINTS,
        "mlp_batch": MLP_BATCH,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


def _grid(dtype: str) -> HashGridConfig:
    return HashGridConfig(
        num_levels=8 if SMOKE else 16,
        table_size=2**14 if SMOKE else 2**19,
        max_resolution=256 if SMOKE else 1024,
        dtype=dtype,
    )


def test_encoding_fp32_speedup():
    """fp32 hash-grid forward+backward beats the historical fp64 path."""
    from repro.nerf.encoding import HashGridEncoding

    rng = np.random.default_rng(0)
    points = rng.random((NUM_POINTS, 3))
    grad_rng = np.random.default_rng(1)

    def run(dtype: str):
        enc = HashGridEncoding(_grid(dtype), rng=np.random.default_rng(2))
        out = enc.forward(points)
        grad = grad_rng.standard_normal(out.shape)
        enc.backward(grad)
        return out

    fp64_s, fp64_out = _time(lambda: run("fp64"))
    fp32_s, fp32_out = _time(lambda: run("fp32"))
    np.testing.assert_allclose(fp32_out, fp64_out, atol=2e-5)
    speedup = fp64_s / fp32_s if fp32_s > 0 else float("inf")
    _RESULTS["encoding_fp32"] = {
        "fp64_s": round(fp64_s, 4),
        "fp32_s": round(fp32_s, 4),
        "speedup": round(speedup, 3),
    }
    print(f"\nencoding: fp64 {fp64_s:.3f}s fp32 {fp32_s:.3f}s -> {speedup:.2f}x")
    if not SMOKE:
        assert speedup >= 1.05


def test_mlp_fp32_speedup():
    """fp32 MLP forward+backward beats fp64 on the same geometry."""
    rng = np.random.default_rng(0)
    x = rng.random((MLP_BATCH, 32))
    grad = rng.standard_normal((MLP_BATCH, 16))

    def run(dtype: str):
        mlp = MLP([32, 64, 64, 16], rng=np.random.default_rng(3), dtype=dtype)
        out = mlp.forward(x)
        mlp.backward(grad)
        return out

    fp64_s, fp64_out = _time(lambda: run("fp64"))
    fp32_s, fp32_out = _time(lambda: run("fp32"))
    np.testing.assert_allclose(fp32_out, fp64_out, atol=1e-3)
    speedup = fp64_s / fp32_s if fp32_s > 0 else float("inf")
    _RESULTS["mlp_fp32"] = {
        "fp64_s": round(fp64_s, 4),
        "fp32_s": round(fp32_s, 4),
        "speedup": round(speedup, 3),
    }
    print(f"\nmlp: fp64 {fp64_s:.3f}s fp32 {fp32_s:.3f}s -> {speedup:.2f}x")
    if not SMOKE:
        assert speedup >= 1.2


def test_narrow_entry_traffic_reduction():
    """Narrower table entries shrink modeled DRAM traffic monotonically.

    Deterministic (pure memory-system model), so the floors are gated in
    smoke mode too.
    """
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=8 if SMOKE else 16)
    hash_fn = MortonLocalityHash()
    hierarchy = CacheHierarchy()
    order = StreamingOrder.RAY_FIRST
    level = grid.num_levels - 1

    rows: dict[str, int] = {}
    cycles: dict[str, float] = {}
    for dtype in ("fp64", "fp32", "fp16", "int8"):
        trace = TraceConfig(dtype=dtype)
        rows[dtype] = ctx.row_requests(grid, trace, hash_fn, order, level)
        batch = ctx.hierarchy_serviced_batch(
            "lpddr4-2400", hierarchy, grid, trace, hash_fn, order, level
        )
        cycles[dtype] = batch["total_cycles"]

    fp16_row_reduction = rows["fp64"] / rows["fp16"]
    int8_row_reduction = rows["fp64"] / rows["int8"]
    int8_cycle_reduction = cycles["fp64"] / cycles["int8"]
    _RESULTS["narrow_entry_traffic"] = {
        "row_requests": rows,
        "dram_cycles": cycles,
        "fp16_row_request_reduction": round(fp16_row_reduction, 3),
        "int8_row_request_reduction": round(int8_row_reduction, 3),
        "int8_dram_cycle_reduction": round(int8_cycle_reduction, 3),
    }
    print(
        f"\nrows {rows} -> fp16 {fp16_row_reduction:.2f}x int8 {int8_row_reduction:.2f}x, "
        f"int8 cycles {int8_cycle_reduction:.2f}x"
    )
    assert rows["fp64"] >= rows["fp32"] >= rows["fp16"] >= rows["int8"]
    assert cycles["fp64"] >= cycles["fp32"] >= cycles["fp16"] >= cycles["int8"]
    assert fp16_row_reduction >= 1.2
    assert int8_row_reduction >= 1.5
    assert int8_cycle_reduction >= 1.5
