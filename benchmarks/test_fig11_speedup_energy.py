"""Benchmark regenerating Fig. 11: accelerator speedup and energy efficiency."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig11
from repro.experiments.fig11_speedup_energy import PAPER_RANGES


def test_fig11_speedup_energy(benchmark):
    result = report(benchmark(run_fig11.__wrapped__))
    average = result.rows[-1]
    assert average["scene"] == "AVERAGE"
    # Shape: order-of-magnitude gains over both edge GPUs, with TX2 (the slower
    # baseline) showing the larger improvement, in the same regime as the paper
    # ranges (22.0x-49.3x over XNX, 109.5x-266.1x over TX2 for speedup).
    assert average["speedup_vs_XNX"] > 10.0
    assert average["speedup_vs_TX2"] > 60.0
    assert average["speedup_vs_TX2"] > average["speedup_vs_XNX"]
    assert average["energy_improvement_vs_XNX"] > 20.0
    assert average["energy_improvement_vs_TX2"] > 100.0
    # Stay within ~2x of the paper's reported ranges on both ends.
    xnx_low, xnx_high = PAPER_RANGES[("XNX", "speedup")]
    assert 0.5 * xnx_low < average["speedup_vs_XNX"] < 2.0 * xnx_high
    tx2_low, tx2_high = PAPER_RANGES[("TX2", "speedup")]
    assert 0.5 * tx2_low < average["speedup_vs_TX2"] < 2.0 * tx2_high


def test_fig11_ablation_algorithm_locality(benchmark):
    """Ablation: running the iNGP baseline algorithm on the same NMP hardware."""
    from repro.core.codesign import AlgorithmConfig, InstantNeRFSystem

    def run_ablation():
        ours = InstantNeRFSystem(AlgorithmConfig.instant_nerf())
        baseline = InstantNeRFSystem(AlgorithmConfig.ingp())
        return ours.scene_training_seconds("lego"), baseline.scene_training_seconds("lego")

    ours_seconds, baseline_seconds = benchmark(run_ablation)
    print(f"\nNMP + Instant-NeRF algorithm: {ours_seconds:.0f} s/scene")
    print(f"NMP + iNGP baseline algorithm: {baseline_seconds:.0f} s/scene")
    assert baseline_seconds > 1.5 * ours_seconds
