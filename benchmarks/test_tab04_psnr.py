"""Benchmark regenerating Table IV: rendering quality of the NeRF algorithms.

This is the only benchmark that performs real training, so the default run
uses a reduced configuration (one scene, small images, short schedules).  The
reproduced shape is (1) the hash-grid methods (iNGP / Instant-NeRF) beat the
non-grid baselines on equal budgets, and (2) replacing iNGP's hash with the
Morton locality hash costs almost no quality (paper: 0.23 dB on average).
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.experiments import QualityRunConfig, run_tab04

BENCH_CONFIG = QualityRunConfig(
    scenes=("lego",),
    image_size=32,
    num_train_views=6,
    num_test_views=1,
    iterations=80,
    rays_per_batch=128,
    samples_per_ray=32,
)


def test_tab04_psnr_hash_grid_methods(benchmark):
    """iNGP vs Instant-NeRF algorithm: the Morton hash must not cost quality."""
    result = report(
        benchmark.pedantic(
            run_tab04.__wrapped__,
            kwargs={"config": BENCH_CONFIG, "methods": ("ingp", "instant-nerf")},
            iterations=1,
            rounds=1,
        )
    )
    by_method = {row["method"]: row["avg_psnr"] for row in result.rows}
    assert np.isfinite(by_method["ingp"])
    assert by_method["ingp"] > 10.0
    assert by_method["instant-nerf"] > 10.0
    assert abs(by_method["ingp"] - by_method["instant-nerf"]) < 2.5


def test_tab04_psnr_baselines(benchmark):
    """Full method sweep on one scene at the reduced benchmark scale."""
    result = report(
        benchmark.pedantic(
            run_tab04.__wrapped__,
            kwargs={"config": BENCH_CONFIG, "methods": ("nerf", "fastnerf", "tensorf", "ingp")},
            iterations=1,
            rounds=1,
        )
    )
    by_method = {row["method"]: row["avg_psnr"] for row in result.rows}
    # All methods must learn something (well above a black/random image).
    assert all(score > 6.0 for score in by_method.values())
    # Shape: the hash-grid method leads the pack on an equal (short) budget.
    assert by_method["ingp"] >= max(by_method["nerf"], by_method["fastnerf"]) - 1.0
