"""Hot-path performance benchmarks: vectorized engines vs retained loop oracles.

Each test times a vectorized hot path against the loop implementation it
replaced (the loops are kept in the codebase as reference oracles), asserts
the results agree, asserts a conservative speedup floor, and records the
measured numbers.  On module teardown the measurements are appended to
``BENCH_hotpaths.json`` at the repository root so successive runs build a
performance trajectory.

Scales follow the paper: 4096 rays x 64 samples = 256K points per training
iteration over the 16-level / 2**19-entry hash table.  Setting
``PERF_SMOKE=1`` shrinks the inputs and drops the speedup assertions
(equivalence is still checked) so CI smoke runs stay fast and insensitive to
machine load.

A note on the encoding-backward floor: the historical 5-20x gap between
``np.add.at`` and a bincount segment sum narrowed considerably once numpy
(>= 1.23) gained an indexed-loop fast path for ``ufunc.at``; on numpy 2.x the
honest end-to-end gain is ~3-5x, so the assertion floor is set at 2.5x and
the actual measured ratio is tracked in the JSON trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.hashing import (
    MortonLocalityHash,
    average_row_requests_per_cube,
    average_row_requests_per_cube_reference,
)
from repro.core.mapping import HashTableMapper, HashTableMappingConfig
from repro.experiments.runner import atomic_write_text
from repro.core.streaming import (
    memory_requests_for_stream,
    memory_requests_for_stream_reference,
)
from repro.dram.system import DRAMSystem
from repro.dram.trace import MemoryRequest
from repro.nerf.encoding import HashGridConfig, HashGridEncoding
from repro.workloads.traces import HashTraceGenerator, TraceConfig, generate_batch_points

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
NUM_RAYS = 256 if SMOKE else 4096
POINTS_PER_RAY = 16 if SMOKE else 64  # 4096 x 64 = 256K points/iteration
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

_RESULTS: dict[str, dict] = {}


def _time(fn, repeats=2):
    """Best-of-``repeats`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(name: str, reference_s: float, vectorized_s: float) -> float:
    speedup = reference_s / vectorized_s if vectorized_s > 0 else float("inf")
    _RESULTS[name] = {
        "reference_s": round(reference_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(speedup, 2),
    }
    print(
        f"\n{name}: reference {reference_s:.3f}s vectorized {vectorized_s:.3f}s "
        f"-> {speedup:.1f}x"
    )
    return speedup


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_hotpaths.json trajectory."""
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "num_rays": NUM_RAYS,
        "points_per_ray": POINTS_PER_RAY,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


@pytest.fixture(scope="module")
def paper_grid():
    return HashGridConfig()  # L=16, T=2**19, paper defaults


@pytest.fixture(scope="module")
def paper_points():
    pts = generate_batch_points(
        TraceConfig(num_rays=NUM_RAYS, points_per_ray=POINTS_PER_RAY, seed=0)
    )
    return pts.reshape(-1, 3)


def test_memory_requests_for_stream_speedup(paper_grid, paper_points):
    """Vectorized run-length/row-set accounting vs the per-point loop, all levels."""
    hash_fn = MortonLocalityHash()
    levels = range(paper_grid.num_levels)
    memory_requests_for_stream(paper_points, 0, paper_grid, hash_fn)  # warm
    vec_s, vec = _time(
        lambda: [
            memory_requests_for_stream(paper_points, lvl, paper_grid, hash_fn)
            for lvl in levels
        ]
    )
    ref_s, ref = _time(
        lambda: [
            memory_requests_for_stream_reference(paper_points, lvl, paper_grid, hash_fn)
            for lvl in levels
        ],
        repeats=1,
    )
    assert vec == ref
    speedup = _record("memory_requests_for_stream", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0


def test_count_conflicts_speedup(paper_grid, paper_points):
    """Lexsort-segmented conflict counting vs the nested group/key loops."""
    generator = HashTraceGenerator(
        paper_grid,
        TraceConfig(num_rays=NUM_RAYS, points_per_ray=POINTS_PER_RAY, seed=0),
        hash_fn=MortonLocalityHash(),
    )
    indices = generator.indices_for_level(paper_grid.num_levels - 1).ravel()
    mapper = HashTableMapper(paper_grid, HashTableMappingConfig())
    level = paper_grid.num_levels - 1
    mapper.count_conflicts(level, indices, parallel_points=32)  # warm
    vec_s, vec = _time(lambda: mapper.count_conflicts(level, indices, parallel_points=32))
    ref_s, ref = _time(
        lambda: mapper.count_conflicts_reference(level, indices, parallel_points=32), repeats=1
    )
    assert vec == ref
    speedup = _record("count_conflicts", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 5.0


def test_encoding_backward_speedup(paper_grid, paper_points):
    """Bincount segment-sum gradient scatter vs the np.add.at scatter."""
    rng = np.random.default_rng(0)
    enc = HashGridEncoding(paper_grid, rng=rng)
    upstream = rng.normal(size=(paper_points.shape[0], paper_grid.output_dim)).astype(np.float32)
    enc.forward(paper_points)

    def run(backward):
        enc.zero_grad()
        backward(upstream)

    vec_s, _ = _time(lambda: run(enc.backward))
    enc.zero_grad()
    enc.backward(upstream)
    vec_grads = [g.copy() for g in enc.grads]
    ref_s, _ = _time(lambda: run(enc.backward_reference), repeats=1)
    enc.zero_grad()
    enc.backward_reference(upstream)
    for fast, ref in zip(vec_grads, enc.grads):
        np.testing.assert_allclose(fast, ref, atol=1e-4)
    speedup = _record("encoding_backward", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 2.5  # see module docstring on the numpy>=1.23 add.at fast path


def test_encoding_forward_fused_not_slower(paper_grid, paper_points):
    """Fused multi-level hashing must match the per-level loop and not regress.

    Compares the index/weight engines directly (the embedding gather is
    identical in both forward paths) on a slice of the batch: full-batch
    wall times here are dominated by allocator page-fault noise for the
    ~400 MB of per-call outputs, which would swamp the engine comparison.
    """
    rng = np.random.default_rng(1)
    enc = HashGridEncoding(paper_grid, rng=rng)
    pts = paper_points[: min(paper_points.shape[0], 65536)]

    def per_level():
        return [enc.vertex_indices(pts, level)[:2] for level in range(paper_grid.num_levels)]

    enc.multilevel_vertex_indices(pts)  # warm
    per_level()  # warm
    vec_s, (fused_idx, fused_w) = _time(lambda: enc.multilevel_vertex_indices(pts))
    ref_s, reference = _time(per_level)
    for level, (idx, w) in enumerate(reference):
        np.testing.assert_array_equal(fused_idx[level], idx)
        np.testing.assert_array_equal(fused_w[level], w)
    speedup = _record("encoding_forward_indices", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 0.9  # fused engine must not lose to the level loop


def test_average_row_requests_speedup(paper_grid, paper_points):
    """Per-axis sorted distinct-row counting vs the per-cube np.unique loop."""
    res = paper_grid.resolutions[paper_grid.num_levels - 1]
    base = np.clip((paper_points * res).astype(np.int64), 0, res - 1)
    hash_fn = MortonLocalityHash()
    average_row_requests_per_cube(hash_fn, base, paper_grid.table_size)  # warm
    vec_s, vec = _time(lambda: average_row_requests_per_cube(hash_fn, base, paper_grid.table_size))
    ref_s, ref = _time(
        lambda: average_row_requests_per_cube_reference(hash_fn, base, paper_grid.table_size),
        repeats=1,
    )
    assert vec == ref
    speedup = _record("average_row_requests_per_cube", ref_s, vec_s)
    if not SMOKE:
        assert speedup >= 3.0


def test_dram_service_batch_speedup():
    """Batched address decode vs one 6-array decode per request."""
    rng = np.random.default_rng(7)
    n = 2000 if SMOKE else 20000
    addresses = (rng.integers(0, 2**27, size=n) * 4).astype(np.int64)

    def via_objects():
        return DRAMSystem().service_requests([MemoryRequest(int(a)) for a in addresses])

    def via_batch():
        return DRAMSystem().service_batch(addresses)

    via_batch()  # warm
    vec_s, batch_result = _time(via_batch, repeats=1)
    ref_s, object_result = _time(via_objects, repeats=1)
    assert batch_result == object_result
    speedup = _record("dram_service_batch", ref_s, vec_s)
    if not SMOKE:
        # The sequential bank state machine dominates service time, so the
        # vectorized decode only has to not lose; the measured margin is
        # tracked in the JSON trajectory.
        assert speedup >= 0.95
