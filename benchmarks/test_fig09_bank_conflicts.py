"""Benchmark regenerating Fig. 9: bank conflicts vs subarray parallelism."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig09
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import TraceConfig


def test_fig09_bank_conflicts(benchmark):
    result = report(
        benchmark(
            run_fig09.__wrapped__,
            subarray_counts=(1, 2, 4, 8, 16, 32, 64),
            grid_config=HashGridConfig(num_levels=16),
            trace_config=TraceConfig(num_rays=48, points_per_ray=48, seed=1),
        )
    )
    # Shape: conflicts fall monotonically (on average) as subarrays increase,
    # per-level counts are unbalanced, and sequential addresses cause a
    # substantial share of the single-subarray conflicts.
    for row in result.rows:
        assert row["conflicts_1sa"] >= row["conflicts_16sa"] >= row["conflicts_64sa"]
        assert row["norm_1sa"] <= 1.0 + 1e-9
    single_subarray = [row["conflicts_1sa"] for row in result.rows]
    assert max(single_subarray) > 2 * (min(single_subarray) + 1)
    many_subarrays = sum(row["conflicts_64sa"] for row in result.rows)
    assert many_subarrays < 0.3 * sum(single_subarray)
    assert max(row["sequential_fraction"] for row in result.rows) > 0.2
