"""Benchmark regenerating Table I: GPU device specifications."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_tab01


def test_tab01_gpu_specs(benchmark):
    result = report(benchmark(run_tab01.__wrapped__))
    devices = {row["device"]: row for row in result.rows}
    assert set(devices) == {"XNX", "TX2", "2080Ti", "QuestPro"}
    assert devices["XNX"]["dram_bw_gbps"] == 59.7
    assert devices["2080Ti"]["dram_bw_gbps"] == 616.0
    assert devices["XNX"]["training_s_per_scene"] == 7088.0
    assert devices["2080Ti"]["training_s_per_scene"] == 306.0
