"""Ablation benchmarks beyond the paper's headline figures.

These sweeps exercise the design choices called out in DESIGN.md §5:
the number of NMP banks, the subarray-parallelism factor, and the two
algorithmic techniques in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.accel import AlgorithmLocality, NMPAccelerator, NMPConfig
from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash
from repro.core.streaming import StreamingOrder, memory_requests_for_stream, point_order
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import TraceConfig, generate_batch_points


def test_ablation_bank_count_sweep(benchmark):
    """Scene training time vs number of active NMP banks (parallel scaling)."""

    def sweep():
        return {
            banks: NMPAccelerator(NMPConfig(num_active_banks=banks)).scene_training_seconds()
            for banks in (4, 8, 16, 32, 64)
        }

    times = benchmark(sweep)
    print("\nbanks -> s/scene:", {k: round(v, 1) for k, v in times.items()})
    values = list(times.values())
    assert all(values[i] > values[i + 1] for i in range(len(values) - 1))
    # Diminishing returns: 16 -> 64 banks gains less than 4 -> 16 banks.
    assert times[4] / times[16] > times[16] / times[64]


def test_ablation_subarray_speedup_sweep(benchmark):
    """Scene training time vs the subarray-parallelism overlap factor."""

    def sweep():
        return {
            factor: NMPAccelerator(
                NMPConfig(subarray_parallel_speedup=factor)
            ).scene_training_seconds()
            for factor in (1.0, 1.5, 2.0, 3.0)
        }

    times = benchmark(sweep)
    print("\nsubarray speedup -> s/scene:", {k: round(v, 1) for k, v in times.items()})
    values = list(times.values())
    assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))


def test_ablation_hash_and_order_in_isolation(benchmark):
    """Decompose the Fig. 7(b) gain into hash-only and order-only parts."""
    grid = HashGridConfig(num_levels=8, table_size=2**14, max_resolution=1024)
    trace = TraceConfig(num_rays=48, points_per_ray=48, seed=0)
    points = generate_batch_points(trace).reshape(-1, 3)
    random_order = point_order(
        trace.num_rays, trace.points_per_ray, StreamingOrder.RANDOM, np.random.default_rng(0)
    )
    level = 5

    def measure():
        baseline = memory_requests_for_stream(
            points, level, grid, OriginalSpatialHash(), random_order
        )
        hash_only = memory_requests_for_stream(
            points, level, grid, MortonLocalityHash(), random_order
        )
        order_only = memory_requests_for_stream(points, level, grid, OriginalSpatialHash())
        combined = memory_requests_for_stream(points, level, grid, MortonLocalityHash())
        return baseline, hash_only, order_only, combined

    baseline, hash_only, order_only, combined = benchmark(measure)
    print(
        f"\nrow requests: baseline={baseline} hash-only={hash_only} "
        f"order-only={order_only} combined={combined}"
    )
    assert hash_only < baseline
    assert order_only < baseline
    assert combined <= min(hash_only, order_only)


def test_ablation_locality_parameters(benchmark):
    """Accelerator sensitivity to the algorithm's locality statistics."""

    def sweep():
        results = {}
        for requests_per_cube in (1.58, 2.5, 4.02):
            locality = AlgorithmLocality(
                row_requests_per_cube=requests_per_cube,
                cube_sharing_run_length=2.0,
                bank_conflict_stall_factor=1.2,
            )
            results[requests_per_cube] = NMPAccelerator(locality=locality).scene_training_seconds()
        return results

    times = benchmark(sweep)
    print("\nrequests/cube -> s/scene:", {k: round(v, 1) for k, v in times.items()})
    assert times[1.58] < times[2.5] < times[4.02]
