"""Benchmark regenerating Table II: per-step parameter/data sizes."""

from __future__ import annotations

import pytest
from conftest import report

from repro.experiments import run_tab02


def test_tab02_step_sizes(benchmark):
    result = report(benchmark(run_tab02.__wrapped__))
    by_step = {row["step"]: row for row in result.rows}
    # Derived sizes must track the paper's Table II (25 MB hash table, 16 MB
    # encodings, 32 MB MLP intermediates, ~14 KB MLP weights).
    assert by_step["HT"]["param_mb"] == pytest.approx(25.0, rel=0.15)
    assert by_step["HT"]["input_mb"] == pytest.approx(3.0, rel=0.05)
    assert by_step["HT"]["output_mb"] == pytest.approx(16.0, rel=0.05)
    assert by_step["MLP"]["intermediate_mb"] == pytest.approx(32.0, rel=0.1)
    assert by_step["MLP"]["param_mb"] < 0.05
    assert by_step["HT_b"]["input_mb"] == pytest.approx(16.0, rel=0.05)
