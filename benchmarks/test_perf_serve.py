"""Serving-simulator benchmarks: batching throughput + tail-latency shape.

Measurements recorded into ``BENCH_serve.json`` (same trajectory format as
the other ``BENCH_*.json`` files):

* ``batching_speedup`` — modeled makespan of the per-request G/G/1 reference
  oracle divided by the batching scheduler's makespan on the same hot
  arrival trace.  This is the serving win the coalescing scheduler exists
  for, and the metric ``bench compare`` gates.
* the p99 latency at every swept offered load, for both batching policies —
  asserted monotone non-decreasing in load.  Offered load is pure time
  compression of one seeded arrival sequence (see
  :mod:`repro.serve.workload`), so this hockey-stick shape is deterministic:
  a violation means the scheduler or cost model changed behaviour, not that
  the machine was noisy.

``PERF_SMOKE=1`` trims the load sweep; the workload itself stays at full
size so both modes exercise the same queueing regimes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import atomic_write_text
from repro.serve import (
    BatchPolicy,
    SchedulerConfig,
    ServeWorkloadConfig,
    ServiceCostConfig,
    ServiceCostModel,
    simulate_serving,
    simulate_serving_reference,
)

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
LOADS = (0.5, 1.0, 2.0) if SMOKE else (0.25, 0.5, 1.0, 2.0, 4.0)
#: The batching-vs-oracle comparison always runs saturated: below saturation
#: both makespans are arrival-bound and the ratio degenerates to 1.
HOT_LOAD = 4.0
#: The fig14 defaults: 4 tenants x 64 requests, 20 us mean gap at unit load.
WORKLOAD = ServeWorkloadConfig()
COST = ServiceCostConfig()
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def model():
    return ServiceCostModel(COST)


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_serve.json trajectory."""
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "loads": list(LOADS),
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


@pytest.mark.parametrize("policy", [BatchPolicy.FIFO, BatchPolicy.SJF])
def test_p99_latency_is_monotone_in_offered_load(policy, model):
    """Deterministic hockey stick: p99 never improves as load rises."""
    p99s = []
    for load in LOADS:
        summary = simulate_serving(
            WORKLOAD.at_load(load), SchedulerConfig(policy=policy), model=model
        ).summary()
        p99s.append(summary["p99_latency_us"])
    _RESULTS[f"p99_{policy.value}"] = {
        f"p99_us_at_load_{load}": round(p99, 3) for load, p99 in zip(LOADS, p99s)
    }
    print(f"\n{policy.value}: p99 across loads {LOADS} -> {[round(p, 2) for p in p99s]}us")
    for lighter, heavier in zip(p99s, p99s[1:]):
        assert heavier >= lighter - 1e-9
    # The sweep's tail visibly grows (smoke trims the range, hence the
    # softer floor there).
    assert p99s[-1] > (1.2 if SMOKE else 1.5) * p99s[0]


def test_batching_beats_per_request_oracle(model):
    """The gated serving win: coalescing vs one-dispatch-per-request."""
    hot = WORKLOAD.at_load(HOT_LOAD)
    wall0 = time.perf_counter()
    batched = simulate_serving(hot, SchedulerConfig(), model=model)
    sim_wall_s = time.perf_counter() - wall0
    oracle = simulate_serving_reference(hot, model=model)
    speedup = oracle.makespan_us / batched.makespan_us
    summary = batched.summary()
    _RESULTS["batching"] = {
        "batched_makespan_us": round(batched.makespan_us, 3),
        "reference_makespan_us": round(oracle.makespan_us, 3),
        "batching_speedup": round(speedup, 3),
        "mean_batch_requests": round(summary["mean_batch_requests"], 3),
        "simulate_wall_s": round(sim_wall_s, 5),
    }
    print(
        f"\nbatching: makespan {batched.makespan_us:.0f}us vs reference "
        f"{oracle.makespan_us:.0f}us -> {speedup:.2f}x "
        f"(mean batch {summary['mean_batch_requests']:.1f} requests)"
    )
    # Every request is served in both runs; the batcher only wins on time.
    assert summary["served"] == float(hot.num_requests)
    assert speedup > 1.05
