"""Benchmark regenerating Fig. 6 and the Sec. III-A requests/cube statistics."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig06


def test_fig06_index_distance(benchmark):
    result = report(benchmark(run_fig06.__wrapped__, num_cubes=8192))
    by_hash = {row["hash"]: row for row in result.rows}
    morton = by_hash["morton-locality"]
    original = by_hash["ingp-prime-xor"]
    # Shape: Morton concentrates neighbouring vertices into nearby entries
    # (paper: 82 % <= 16 and none > 5000 vs 55.4 % and 22.7 %).
    assert morton["frac_leq_16"] > original["frac_leq_16"] + 0.15
    assert morton["frac_gt_5000"] < 0.15
    assert original["frac_gt_5000"] > 0.4
    # Sec. III-A: ~1.58 vs ~4.02 row-granularity memory requests per cube.
    assert morton["requests_per_cube"] < 2.0
    assert original["requests_per_cube"] > 3.5
    assert original["requests_per_cube"] / morton["requests_per_cube"] > 2.0
