"""Benchmark regenerating Fig. 1: training time and breakdown on GPUs."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig01


def test_fig01_training_time(benchmark):
    result = report(benchmark(run_fig01.__wrapped__))
    devices = {row["device"]: row for row in result.rows}
    # Shape: the edge GPU is far slower than the cloud GPU (paper: 7088.8 s vs 305.8 s).
    assert devices["XNX"]["modelled_s_per_scene"] > 5 * devices["2080Ti"]["modelled_s_per_scene"]
    assert devices["XNX"]["modelled_s_per_scene"] > 3600.0
    assert devices["2080Ti"]["modelled_s_per_scene"] < 1200.0
    # Shape: hash-table steps dominate the breakdown and the bottleneck steps
    # cover most of the time.
    xnx = devices["XNX"]
    assert xnx["frac_HT"] + xnx["frac_HT_b"] > 0.5
    assert xnx["bottleneck_fraction"] > 0.6
