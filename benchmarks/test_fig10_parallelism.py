"""Benchmark regenerating Fig. 10: inter-bank data movement by parallelism plan."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig10


def test_fig10_parallelism(benchmark):
    result = report(benchmark(run_fig10.__wrapped__, num_banks=16))
    totals = {row["plan"]: row["total_mb"] for row in result.rows}
    rows = {row["plan"]: row for row in result.rows}
    # Shape: the heterogeneous plan moves the least data, and the all-data-parallel
    # ablation (which duplicates the 25 MB hash table per bank) is far worse.
    assert totals["heterogeneous"] < totals["all-data-parallel"]
    assert totals["heterogeneous"] < totals["all-parameter-parallel"]
    assert totals["all-data-parallel"] > 2 * totals["heterogeneous"]
    # Category 3 (intra-step transfers) is zero for every plan, as in Fig. 10.
    for row in rows.values():
        assert row["cat3_intra_step_mb"] == 0.0
    # Gradient partial sums under the heterogeneous plan involve only the tiny MLPs.
    assert rows["heterogeneous"]["cat4_grad_psum_mb"] < 5.0
