"""Benchmark regenerating Fig. 7: cube sharing and effective-bandwidth improvement."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig07


def test_fig07_locality(benchmark):
    result = report(benchmark(run_fig07.__wrapped__))
    improvements = result.column("effective_bw_improvement")
    sharing = result.column("points_sharing_cube")
    # Shape: every level improves, coarse levels improve the most, and the
    # range brackets a multi-x gain (paper: 3.27x-35.9x).
    assert all(imp > 1.5 for imp in improvements)
    assert max(improvements) > 10.0
    assert min(improvements) > 2.0
    assert sharing[0] > 5.0          # coarse level: many points share one cube
    assert sharing[-1] < 2.0         # finest level: almost no sharing
    assert improvements[0] > improvements[-1]
