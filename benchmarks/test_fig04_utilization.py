"""Benchmark regenerating Fig. 4: DRAM vs compute utilization of bottleneck kernels."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig04


def test_fig04_utilization(benchmark):
    result = report(benchmark(run_fig04.__wrapped__))
    by_kernel = {row["kernel"]: row for row in result.rows}
    # Shape: the memory-bound diagnosis — DRAM utilization dwarfs compute utilization
    # for the hash-table kernels (paper: 5.24x-21.44x across all bottleneck kernels).
    for kernel in ("HT", "HT_b"):
        assert by_kernel[kernel]["memory_bound"]
        assert by_kernel[kernel]["bw_to_compute_ratio"] > 5.0
    assert by_kernel["HT"]["dram_util"] > 0.5  # paper: 61.3 %
    assert all(row["dram_util"] > 0.1 for row in result.rows)
