"""Benchmark regenerating Table III and the Sec. V-C area/power numbers."""

from __future__ import annotations

import pytest
from conftest import report

from repro.experiments import run_tab03


def test_tab03_accel_config(benchmark):
    result = report(benchmark(run_tab03.__wrapped__))
    values = {row["parameter"]: row["value"] for row in result.rows}
    assert values["INT32 PEs per bank"] == 256
    assert values["FP32 PEs per bank"] == 256
    assert values["Scratchpad (KB)"] == 2.0
    assert values["Microarch frequency (MHz)"] == 200.0
    assert values["Subarrays per bank"] == 16
    # Sec. V-C anchors: 3.6 mm^2 (~1.5 % of a bank) and 596.3 mW.
    assert values["Area per bank (mm^2, modelled)"] == pytest.approx(3.6, rel=0.05)
    assert values["Power per bank (mW, modelled)"] == pytest.approx(596.3, rel=0.05)
    assert values["Area fraction of a DRAM bank"] == pytest.approx(0.015, rel=0.3)
