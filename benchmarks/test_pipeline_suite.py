"""Pipeline acceptance benchmarks: shared-context suite speedup and sweeps.

Three claims are checked:

1. Running the full registered suite against one shared
   :class:`SimulationContext` produces results identical to calling the
   legacy ``run_*`` functions back-to-back, while reusing artifacts (cache
   hits) and finishing faster.  The timed comparison covers the ten
   model-driven experiments; the trainer-based Table IV experiment performs
   byte-identical work on both paths (asserted via the result equality, which
   includes it) and is left out of the timing loop only because its
   allocation-heavy training adds timing noise, not signal.  CPU time is
   compared (both paths are single-threaded deterministic work), with the
   wall-style assertion relaxed under ``PERF_SMOKE=1`` for noisy CI runners,
   mirroring ``test_perf_hotpaths.py``.
2. A multi-worker sweep writes deterministic, seed-stable JSON artifacts:
   running the same grid twice — or with a different worker count — yields
   byte-identical files.
3. A (scene x method) PSNR sweep through the shared context is faster than
   the equivalent legacy per-cell ``run_tab04`` calls, because the rendered
   datasets are shared across the hash-function cells.

Timing summaries are recorded into ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.codesign import AlgorithmConfig, InstantNeRFSystem
from repro.experiments import (
    QualityRunConfig,
    run_fig01,
    run_fig04,
    run_fig06,
    run_fig07,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_tab01,
    run_tab02,
    run_tab03,
    run_tab04,
)
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import SimulationContext, run_suite, sweep
from repro.workloads.traces import TraceConfig

PERF_SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: Shared trace/grid configuration of the locality trio (Fig. 7/9/11): one
#: lego training batch at a meaningful scale, matched between both paths.
RAYS, POINTS_PER_RAY, PROBES = 384, 64, 96
SUBARRAYS = (1, 16)
GRID16 = HashGridConfig(num_levels=16)
TRACE = TraceConfig(
    num_rays=RAYS, points_per_ray=POINTS_PER_RAY, seed=0, scene="lego", probe_samples=PROBES
)
#: Smoke-scale Table IV configuration (identical work on both paths).
PSNR_KW = dict(
    image_size=12,
    num_train_views=2,
    num_test_views=1,
    iterations=8,
    rays_per_batch=48,
    samples_per_ray=12,
)
FAST_NAMES = [
    "fig01", "fig04", "fig06", "fig07", "fig09",
    "fig10", "fig11", "tab01", "tab02", "tab03",
]
CACHE_KB = (16, 64)
OVERRIDES = {
    "fig07": {"rays": RAYS, "probe_samples": PROBES},
    "fig09": {
        "rays": RAYS,
        "probe_samples": PROBES,
        "subarrays": ",".join(map(str, SUBARRAYS)),
    },
    "fig11": {"rays": RAYS, "probe_samples": PROBES},
    "fig12_cache_hit_rate": {
        "rays": RAYS,
        "probe_samples": PROBES,
        "cache_kb": ",".join(map(str, CACHE_KB)),
        "timing": "false",
    },
    "tab04": {
        "scenes": "lego",
        "methods": "ingp",
        "image_size": PSNR_KW["image_size"],
        "num_train_views": PSNR_KW["num_train_views"],
        "iterations": PSNR_KW["iterations"],
        "rays_per_batch": PSNR_KW["rays_per_batch"],
        "samples_per_ray": PSNR_KW["samples_per_ray"],
    },
}


def _legacy_fast() -> dict:
    """The ten model-driven experiments via the legacy entry points."""
    return {
        "fig01": run_fig01(),
        "fig04": run_fig04(),
        "fig06": run_fig06(),
        "fig07": run_fig07(GRID16, TRACE),
        "fig09": run_fig09(SUBARRAYS, GRID16, TRACE),
        "fig10": run_fig10(),
        "fig11": run_fig11(InstantNeRFSystem(AlgorithmConfig.instant_nerf(), GRID16, trace_config=TRACE)),
        "tab01": run_tab01(),
        "tab02": run_tab02(),
        "tab03": run_tab03(),
    }


def _legacy_full() -> dict:
    results = _legacy_fast()
    results["tab04"] = run_tab04(QualityRunConfig(scenes=("lego",), **PSNR_KW), ("ingp",))
    results["fig12_cache_hit_rate"] = run_fig12(GRID16, TRACE, CACHE_KB, timing=False)
    return results


def _canonical(results: dict) -> str:
    return json.dumps({name: res.to_dict() for name, res in results.items()}, sort_keys=True)


def _record_bench(key: str, payload: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_full_suite_shared_context_faster_than_legacy():
    # --- correctness: the registry path reproduces the legacy results exactly
    context = SimulationContext()
    suite = run_suite(context=context, overrides=OVERRIDES)
    legacy = _legacy_full()
    assert set(suite) == set(legacy)
    assert _canonical(suite) == _canonical(legacy)
    # Sharing must actually happen: the locality trio draws from one trace,
    # Fig. 7 reuses Fig. 9's corner-index streams, Fig. 4 reuses Fig. 1's
    # kernel profiles.
    assert context.stats.hits >= 100, f"expected heavy artifact reuse, got {context.stats}"
    reuse = context.stats.hits_by_kind()
    assert reuse.get("batch_points", 0) >= 2, reuse  # one trace feeds the trio
    assert reuse.get("level_indices", 0) >= 16, reuse  # fig07 derives from fig09's streams
    assert reuse.get("scene_profile", 0) >= 6, reuse  # fig04 reads fig01's kernel profiles

    # --- speed: shared context beats legacy back-to-back on the model-driven set
    def run_pipeline_fast():
        ctx = SimulationContext()
        run_suite(FAST_NAMES, context=ctx, overrides=OVERRIDES)

    reps = 2 if PERF_SMOKE else 5
    legacy_times, pipeline_times = [], []
    for _ in range(reps):
        start = time.process_time()
        _legacy_fast()
        legacy_times.append(time.process_time() - start)
        start = time.process_time()
        run_pipeline_fast()
        pipeline_times.append(time.process_time() - start)
    legacy_best, pipeline_best = min(legacy_times), min(pipeline_times)
    speedup = legacy_best / pipeline_best
    print(
        f"\nfull-suite (model-driven set): legacy {legacy_best:.3f}s, "
        f"shared-context {pipeline_best:.3f}s ({speedup:.3f}x, "
        f"{context.stats.hits} artifact reuses)"
    )
    _record_bench(
        "suite_shared_context",
        {
            "legacy_cpu_s": legacy_best,
            "pipeline_cpu_s": pipeline_best,
            "speedup": speedup,
            "cache_hits": context.stats.hits,
            "smoke": PERF_SMOKE,
        },
    )
    if not PERF_SMOKE:
        assert pipeline_best < legacy_best, (
            f"shared-context suite ({pipeline_best:.3f}s CPU) should beat legacy "
            f"back-to-back ({legacy_best:.3f}s CPU)"
        )


def test_multiworker_sweep_artifacts_deterministic(tmp_path):
    grid = {"scene": ["lego", "chair"], "hash": ["morton", "original"]}

    def run_once(directory: Path, workers: int) -> dict[str, str]:
        result = sweep("fig07", grid, workers=workers, base_seed=7)
        assert not result.failed
        result.write(directory)
        return {p.name: p.read_text() for p in sorted(directory.iterdir())}

    first = run_once(tmp_path / "a", workers=2)
    second = run_once(tmp_path / "b", workers=2)
    serial = run_once(tmp_path / "c", workers=1)
    assert first == second, "re-running the sweep must reproduce identical artifacts"
    # Worker count is recorded in the index but must not affect any cell.
    for name in first:
        if not name.startswith("sweep_"):
            assert first[name] == serial[name]
    # Seed stability: every cell runs on the sweep's base seed, so the
    # hash/scene axes are compared on identical sampled traces.
    index = json.loads(first["sweep_fig07.json"])
    seeds = [cell["seed"] for cell in index["cells"]]
    assert seeds == [7] * len(index["cells"])
    rerun = json.loads(second["sweep_fig07.json"])
    assert seeds == [cell["seed"] for cell in rerun["cells"]]


def test_psnr_sweep_shares_datasets_across_cells():
    """The (scene x hash-method) training matrix reuses rendered datasets."""
    cfg_kw = dict(
        image_size=16, num_train_views=3, num_test_views=1,
        iterations=12, rays_per_batch=64, samples_per_ray=16,
    )
    grid = {"scenes": ["lego", "chair"], "methods": ["ingp", "instant-nerf"]}
    extra = {
        "seed": "0",
        "image_size": "16",
        "num_train_views": "3",
        "iterations": "12",
        "rays_per_batch": "64",
        "samples_per_ray": "16",
    }

    def legacy_cells() -> dict:
        out = {}
        for scene in grid["scenes"]:
            for method in grid["methods"]:
                result = run_tab04(QualityRunConfig(scenes=(scene,), **cfg_kw), (method,))
                out[(scene, method)] = result.rows[0]["avg_psnr"]
        return out

    def swept_cells() -> tuple[dict, SimulationContext]:
        ctx = SimulationContext()
        result = sweep("tab04", grid, workers=2, extra_params=extra, context=ctx)
        assert not result.failed
        return (
            {(c.params["scenes"], c.params["methods"]): c.result.rows[0]["avg_psnr"] for c in result.cells},
            ctx,
        )

    legacy_values = legacy_cells()
    sweep_values, ctx = swept_cells()
    assert sweep_values == legacy_values
    # Each scene's dataset renders once, not once per method cell.
    dataset_misses = sum(
        1 for key in ctx._cache if isinstance(key, tuple) and key[0] == "dataset"
    )
    assert dataset_misses == len(grid["scenes"])

    reps = 1 if PERF_SMOKE else 3
    legacy_times, sweep_times = [], []
    for _ in range(reps):
        start = time.perf_counter()
        legacy_cells()
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        swept_cells()
        sweep_times.append(time.perf_counter() - start)
    legacy_best, sweep_best = min(legacy_times), min(sweep_times)
    print(
        f"\npsnr sweep: legacy per-cell {legacy_best:.3f}s, shared-context sweep "
        f"{sweep_best:.3f}s ({legacy_best / sweep_best:.2f}x)"
    )
    _record_bench(
        "psnr_sweep_shared_datasets",
        {
            "legacy_s": legacy_best,
            "sweep_s": sweep_best,
            "speedup": legacy_best / sweep_best,
            "smoke": PERF_SMOKE,
        },
    )
    if not PERF_SMOKE:
        assert sweep_best < legacy_best


@pytest.mark.parametrize("name", FAST_NAMES + ["tab04", "fig12_cache_hit_rate"])
def test_every_experiment_runs_through_the_registry(name):
    """`python -m repro run <spec>` works for each registered experiment."""
    from repro.pipeline.cli import main

    args = ["run", name, "--quiet"]
    for key, value in OVERRIDES.get(name, {}).items():
        args += ["--set", f"{key}={value}"]
    # Keep the registry path cheap for the heavy specs.
    if name in ("fig07", "fig09", "fig11", "fig12_cache_hit_rate"):
        args += ["--set", "rays=48", "--set", "probe_samples=12"]
    assert main(args) == 0
