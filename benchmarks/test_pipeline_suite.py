"""Pipeline acceptance benchmarks: shared-context suite speedup and sweeps.

Five claims are checked:

1. Running the full registered suite against one shared
   :class:`SimulationContext` produces results identical to calling the
   legacy ``run_*`` functions back-to-back, while reusing artifacts (cache
   hits) and finishing faster.  The timed comparison covers the ten
   model-driven experiments; the trainer-based Table IV experiment performs
   byte-identical work on both paths (asserted via the result equality, which
   includes it) and is left out of the timing loop only because its
   allocation-heavy training adds timing noise, not signal.  CPU time is
   compared (both paths are single-threaded deterministic work), with the
   wall-style assertion relaxed under ``PERF_SMOKE=1`` for noisy CI runners,
   mirroring ``test_perf_hotpaths.py``.
2. A multi-worker sweep writes deterministic, seed-stable JSON artifacts:
   running the same grid twice — with a different worker count, or serially
   — yields byte-identical files (runtime provenance is excluded from them).
3. A (scene x method) PSNR sweep through the shared context is faster than
   the equivalent legacy per-cell ``run_tab04`` calls, because the rendered
   datasets are shared across the hash-function cells.
4. A process-pool sweep of an 8-cell grid (shared-memory artifact export,
   GIL-free workers) is byte-identical to the serial run; at full scale on a
   multi-core machine it clears a >=2x wall-clock floor.  The floor needs
   real parallel hardware, so it is asserted only when ``os.cpu_count() >= 4``
   and not under ``PERF_SMOKE=1`` — the measured numbers (and the core count
   they were measured on) are recorded either way.
5. A second, warm-store run of the same grid resumes every cell from the
   on-disk artifact store — 100% store hit rate, zero simulation — and is
   at least 2x faster than the cold run even on one core.

Timing summaries are recorded into ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.codesign import AlgorithmConfig, InstantNeRFSystem
from repro.experiments import (
    PrecisionRunConfig,
    QualityRunConfig,
    run_fig01,
    run_fig04,
    run_fig06,
    run_fig07,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_tab01,
    run_tab02,
    run_tab03,
    run_tab04,
    run_tab05,
)
from repro.experiments.runner import atomic_write_text
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import ArtifactStore, SimulationContext, run_suite, sweep
from repro.pipeline.sweep import ProcessSweepExecutor
from repro.serve import BatchPolicy, ServeWorkloadConfig, ServiceCostConfig
from repro.workloads.embedding import EmbeddingTraceConfig
from repro.workloads.traces import TraceConfig

PERF_SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: Shared trace/grid configuration of the locality trio (Fig. 7/9/11): one
#: lego training batch at a meaningful scale, matched between both paths.
RAYS, POINTS_PER_RAY, PROBES = 384, 64, 96
SUBARRAYS = (1, 16)
GRID16 = HashGridConfig(num_levels=16)
TRACE = TraceConfig(
    num_rays=RAYS, points_per_ray=POINTS_PER_RAY, seed=0, scene="lego", probe_samples=PROBES
)
#: Smoke-scale Table IV configuration (identical work on both paths).
PSNR_KW = dict(
    image_size=12,
    num_train_views=2,
    num_test_views=1,
    iterations=8,
    rays_per_batch=48,
    samples_per_ray=12,
)
FAST_NAMES = [
    "fig01", "fig04", "fig06", "fig07", "fig09",
    "fig10", "fig11", "tab01", "tab02", "tab03",
]
CACHE_KB = (16, 64)
OCC_RESOLUTIONS = (16, 32)
#: Smoke-scale Table V precision pair (fp32 trained + int8 PTQ'd from it).
TAB05_DTYPES = ("fp32", "int8")
#: Smoke-scale embedding front-end (Fig. 15): two small Zipfian tables.
EMB_CONFIG = EmbeddingTraceConfig(num_tables=2, table_rows=2048, batch_size=64, pooling_factor=4)
EMB_SUBARRAYS = (1, 4)
#: Smoke-scale serving sweep (Fig. 14): light + saturated load, both policies.
SERVE_LOADS = (0.5, 4.0)
SERVE_POLICIES = (BatchPolicy.FIFO, BatchPolicy.SJF)
SERVE_ADMISSIONS = ("none", "depth")
SERVE_WORKLOAD = ServeWorkloadConfig(requests_per_tenant=24)
SERVE_COST = ServiceCostConfig(grid_levels=2)
OVERRIDES = {
    "fig07": {"rays": RAYS, "probe_samples": PROBES},
    "fig09": {
        "rays": RAYS,
        "probe_samples": PROBES,
        "subarrays": ",".join(map(str, SUBARRAYS)),
    },
    "fig11": {"rays": RAYS, "probe_samples": PROBES},
    "fig12_cache_hit_rate": {
        "rays": RAYS,
        "probe_samples": PROBES,
        "cache_kb": ",".join(map(str, CACHE_KB)),
        "timing": "false",
    },
    "fig13_occupancy_traffic": {
        "rays": RAYS,
        "probe_samples": PROBES,
        "resolutions": ",".join(map(str, OCC_RESOLUTIONS)),
        "timing": "false",
    },
    "fig14_serving_latency": {
        "loads": ",".join(map(str, SERVE_LOADS)),
        "policies": ",".join(p.value for p in SERVE_POLICIES),
        "admission": ",".join(SERVE_ADMISSIONS),
        "requests": SERVE_WORKLOAD.requests_per_tenant,
        "grid_levels": SERVE_COST.grid_levels,
    },
    "fig15_embedding_locality": {
        "tables": EMB_CONFIG.num_tables,
        "table_rows": EMB_CONFIG.table_rows,
        "batch": EMB_CONFIG.batch_size,
        "pooling": EMB_CONFIG.pooling_factor,
        "subarrays": ",".join(map(str, EMB_SUBARRAYS)),
        "timing": "false",
    },
    "tab04": {
        "scenes": "lego",
        "methods": "ingp",
        "image_size": PSNR_KW["image_size"],
        "num_train_views": PSNR_KW["num_train_views"],
        "iterations": PSNR_KW["iterations"],
        "rays_per_batch": PSNR_KW["rays_per_batch"],
        "samples_per_ray": PSNR_KW["samples_per_ray"],
    },
    "tab05_psnr_precision": {
        "scenes": "lego",
        "dtypes": ",".join(TAB05_DTYPES),
        "image_size": PSNR_KW["image_size"],
        "num_train_views": PSNR_KW["num_train_views"],
        "iterations": PSNR_KW["iterations"],
        "rays_per_batch": PSNR_KW["rays_per_batch"],
        "samples_per_ray": PSNR_KW["samples_per_ray"],
    },
}


def _tab05_config() -> PrecisionRunConfig:
    return PrecisionRunConfig(scenes=("lego",), dtypes=TAB05_DTYPES, **PSNR_KW)


def _legacy_fast() -> dict:
    """The ten model-driven experiments via the legacy entry points."""
    return {
        "fig01": run_fig01.__wrapped__(),
        "fig04": run_fig04.__wrapped__(),
        "fig06": run_fig06.__wrapped__(),
        "fig07": run_fig07.__wrapped__(GRID16, TRACE),
        "fig09": run_fig09.__wrapped__(SUBARRAYS, GRID16, TRACE),
        "fig10": run_fig10.__wrapped__(),
        "fig11": run_fig11.__wrapped__(
            InstantNeRFSystem(AlgorithmConfig.instant_nerf(), GRID16, trace_config=TRACE)
        ),
        "tab01": run_tab01.__wrapped__(),
        "tab02": run_tab02.__wrapped__(),
        "tab03": run_tab03.__wrapped__(),
    }


def _legacy_full() -> dict:
    results = _legacy_fast()
    results["tab04"] = run_tab04.__wrapped__(QualityRunConfig(scenes=("lego",), **PSNR_KW), ("ingp",))
    results["tab05_psnr_precision"] = run_tab05.__wrapped__(_tab05_config())
    results["fig12_cache_hit_rate"] = run_fig12.__wrapped__(GRID16, TRACE, CACHE_KB, timing=False)
    results["fig13_occupancy_traffic"] = run_fig13.__wrapped__(
        GRID16,
        TraceConfig(
            num_rays=RAYS, points_per_ray=POINTS_PER_RAY, seed=0, scene="mic", probe_samples=PROBES
        ),
        OCC_RESOLUTIONS,
        timing=False,
    )
    results["fig15_embedding_locality"] = run_fig15.__wrapped__(EMB_CONFIG, EMB_SUBARRAYS, timing=False)
    # Fig. 14 is registry-native (no deprecated entry point); the standalone
    # equivalent is the same run function against a private throwaway context.
    results["fig14_serving_latency"] = run_fig14(
        SERVE_WORKLOAD,
        SERVE_COST,
        SERVE_LOADS,
        SERVE_POLICIES,
        SERVE_ADMISSIONS,
        context=SimulationContext(),
    )
    return results


def _canonical(results: dict) -> str:
    return json.dumps({name: res.to_dict() for name, res in results.items()}, sort_keys=True)


_RESULTS: dict[str, dict] = {}


def _record_bench(key: str, payload: dict) -> None:
    payload = dict(payload)
    payload.pop("smoke", None)  # recorded once at the trajectory-entry level
    _RESULTS[key] = payload


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_pipeline.json trajectory.

    The same append-only format as the other suites: one entry per run with
    a top-level ``smoke`` flag, so full-scale and smoke baselines coexist
    and `python -m repro bench compare` can gate both flavors (a pre-PR-5
    single-snapshot file is discarded).
    """
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": PERF_SMOKE,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = []
        if isinstance(data, list):
            trajectory = data
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


def test_full_suite_shared_context_faster_than_legacy():
    # --- correctness: the registry path reproduces the legacy results exactly
    context = SimulationContext()
    suite = run_suite(context=context, overrides=OVERRIDES)
    legacy = _legacy_full()
    assert set(suite) == set(legacy)
    assert _canonical(suite) == _canonical(legacy)
    # Sharing must actually happen: the locality trio draws from one trace,
    # Fig. 7 reuses Fig. 9's corner-index streams, Fig. 4 reuses Fig. 1's
    # kernel profiles.
    assert context.stats.hits >= 100, f"expected heavy artifact reuse, got {context.stats}"
    reuse = context.stats.hits_by_kind()
    assert reuse.get("batch_points", 0) >= 2, reuse  # one trace feeds the trio
    assert reuse.get("level_indices", 0) >= 16, reuse  # fig07 derives from fig09's streams
    assert reuse.get("scene_profile", 0) >= 6, reuse  # fig04 reads fig01's kernel profiles

    # --- speed: shared context beats legacy back-to-back on the model-driven set
    def run_pipeline_fast():
        ctx = SimulationContext()
        run_suite(FAST_NAMES, context=ctx, overrides=OVERRIDES)

    reps = 2 if PERF_SMOKE else 5
    legacy_times, pipeline_times = [], []
    for _ in range(reps):
        start = time.process_time()
        _legacy_fast()
        legacy_times.append(time.process_time() - start)
        start = time.process_time()
        run_pipeline_fast()
        pipeline_times.append(time.process_time() - start)
    legacy_best, pipeline_best = min(legacy_times), min(pipeline_times)
    speedup = legacy_best / pipeline_best
    print(
        f"\nfull-suite (model-driven set): legacy {legacy_best:.3f}s, "
        f"shared-context {pipeline_best:.3f}s ({speedup:.3f}x, "
        f"{context.stats.hits} artifact reuses)"
    )
    _record_bench(
        "suite_shared_context",
        {
            "legacy_cpu_s": legacy_best,
            "pipeline_cpu_s": pipeline_best,
            "speedup": speedup,
            "cache_hits": context.stats.hits,
            "smoke": PERF_SMOKE,
        },
    )
    if not PERF_SMOKE:
        assert pipeline_best < legacy_best, (
            f"shared-context suite ({pipeline_best:.3f}s CPU) should beat legacy "
            f"back-to-back ({legacy_best:.3f}s CPU)"
        )


def test_multiworker_sweep_artifacts_deterministic(tmp_path):
    grid = {"scene": ["lego", "chair"], "hash": ["morton", "original"]}

    def run_once(directory: Path, workers: int) -> dict[str, str]:
        result = sweep("fig07", grid, workers=workers, base_seed=7)
        assert not result.failed
        result.write(directory)
        return {p.name: p.read_text() for p in sorted(directory.iterdir())}

    first = run_once(tmp_path / "a", workers=2)
    second = run_once(tmp_path / "b", workers=2)
    serial = run_once(tmp_path / "c", workers=1)
    assert first == second, "re-running the sweep must reproduce identical artifacts"
    # Runtime provenance (worker count, executor) is excluded from the
    # artifacts, so the serial run produces the very same bytes.
    assert first == serial
    # Seed stability: every cell runs on the sweep's base seed, so the
    # hash/scene axes are compared on identical sampled traces.
    index = json.loads(first["sweep_fig07.json"])
    seeds = [cell["seed"] for cell in index["cells"]]
    assert seeds == [7] * len(index["cells"])
    rerun = json.loads(second["sweep_fig07.json"])
    assert seeds == [cell["seed"] for cell in rerun["cells"]]


def test_psnr_sweep_shares_datasets_across_cells():
    """The (scene x hash-method) training matrix reuses rendered datasets."""
    cfg_kw = dict(
        image_size=16, num_train_views=3, num_test_views=1,
        iterations=12, rays_per_batch=64, samples_per_ray=16,
    )
    grid = {"scenes": ["lego", "chair"], "methods": ["ingp", "instant-nerf"]}
    extra = {
        "seed": "0",
        "image_size": "16",
        "num_train_views": "3",
        "iterations": "12",
        "rays_per_batch": "64",
        "samples_per_ray": "16",
    }

    def legacy_cells() -> dict:
        out = {}
        for scene in grid["scenes"]:
            for method in grid["methods"]:
                result = run_tab04.__wrapped__(QualityRunConfig(scenes=(scene,), **cfg_kw), (method,))
                out[(scene, method)] = result.rows[0]["avg_psnr"]
        return out

    def swept_cells() -> tuple[dict, SimulationContext]:
        ctx = SimulationContext()
        result = sweep("tab04", grid, workers=2, extra_params=extra, context=ctx)
        assert not result.failed
        return (
            {
                (c.params["scenes"], c.params["methods"]): c.result.rows[0]["avg_psnr"]
                for c in result.cells
            },
            ctx,
        )

    legacy_values = legacy_cells()
    sweep_values, ctx = swept_cells()
    assert sweep_values == legacy_values
    # Each scene's dataset renders once, not once per method cell.
    dataset_misses = sum(
        1 for key in ctx._cache if isinstance(key, tuple) and key[0] == "dataset"
    )
    assert dataset_misses == len(grid["scenes"])

    reps = 1 if PERF_SMOKE else 3
    legacy_times, sweep_times = [], []
    for _ in range(reps):
        start = time.perf_counter()
        legacy_cells()
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        swept_cells()
        sweep_times.append(time.perf_counter() - start)
    legacy_best, sweep_best = min(legacy_times), min(sweep_times)
    print(
        f"\npsnr sweep: legacy per-cell {legacy_best:.3f}s, shared-context sweep "
        f"{sweep_best:.3f}s ({legacy_best / sweep_best:.2f}x)"
    )
    _record_bench(
        "psnr_sweep_shared_datasets",
        {
            "legacy_s": legacy_best,
            "sweep_s": sweep_best,
            "speedup": legacy_best / sweep_best,
            "smoke": PERF_SMOKE,
        },
    )
    if not PERF_SMOKE:
        assert sweep_best < legacy_best


#: 8-cell grid for the process-pool and warm-store acceptance benchmarks,
#: swept over fig07's locality model.  Every cell has a unique
#: (scene, seed, samples-per-ray) trace, so the grid measures the executors
#: on independent cells — the regime process pools exist for.  (Grids with
#: heavy cross-cell sharing are the shared-context thread executor's home
#: turf and are covered by the suite/PSNR benchmarks above.)
PROC_GRID = {
    "scene": ["lego", "chair"],
    "seed": ["0", "1"],
    "points_per_ray": ["48", "64"],
}
PROC_EXTRA = (
    {"rays": "64", "probe_samples": "12"}
    if PERF_SMOKE
    else {"rays": "768", "probe_samples": "96"}
)
PROC_WORKERS = min(8, os.cpu_count() or 1)


def test_process_pool_sweep_byte_identical_and_scales():
    """Claim 4: process-pool sweeps match the serial bytes and use the cores."""
    start = time.perf_counter()
    serial = sweep("fig07", PROC_GRID, executor="serial", extra_params=PROC_EXTRA)
    serial_s = time.perf_counter() - start
    assert not serial.failed

    executor = ProcessSweepExecutor(PROC_WORKERS)
    start = time.perf_counter()
    procs = sweep("fig07", PROC_GRID, workers=PROC_WORKERS, executor=executor,
                  extra_params=PROC_EXTRA)
    process_s = time.perf_counter() - start
    assert not procs.failed
    assert procs.to_json() == serial.to_json(), (
        "process-pool sweep must be byte-identical to the serial run"
    )

    speedup = serial_s / process_s
    cpus = os.cpu_count() or 1
    print(
        f"\nprocess-pool sweep ({len(serial.cells)} cells, {PROC_WORKERS} workers, "
        f"{cpus} cpus): serial {serial_s:.2f}s, process {process_s:.2f}s ({speedup:.2f}x)"
    )
    _record_bench(
        "process_pool_sweep",
        {
            "cells": len(serial.cells),
            "workers": PROC_WORKERS,
            "cpus": cpus,
            "serial_s": serial_s,
            "process_s": process_s,
            "speedup": speedup,
            "smoke": PERF_SMOKE,
        },
    )
    # The >=2x floor measures parallel hardware, not the executor: it cannot
    # hold on a 1-2 core box where the pool time-slices one CPU.
    if not PERF_SMOKE and cpus >= 4:
        assert speedup >= 2.0, (
            f"process-pool sweep should be >=2x faster than serial on {cpus} cores, "
            f"got {speedup:.2f}x"
        )


def test_warm_store_rerun_skips_all_simulation(tmp_path):
    """Claim 5: a second run of the same grid is answered entirely by the store."""
    grid = PROC_GRID
    extra = {"rays": PROC_EXTRA["rays"] if PERF_SMOKE else str(RAYS), "probe_samples": "24"}

    cold_store = ArtifactStore(tmp_path / "cache")
    start = time.perf_counter()
    cold = sweep("fig07", grid, extra_params=extra, store=cold_store)
    cold_s = time.perf_counter() - start
    assert not cold.failed

    warm_store = ArtifactStore(tmp_path / "cache")
    warm_context = SimulationContext(store=warm_store)
    start = time.perf_counter()
    warm = sweep("fig07", grid, extra_params=extra, store=warm_store, resume=True,
                 context=warm_context)
    warm_s = time.perf_counter() - start

    assert warm.to_json() == cold.to_json(), "a resumed sweep must equal the fresh run"
    assert all(cell.resumed for cell in warm.cells), "every cell should come from the store"
    assert warm_store.stats.hit_rate == 1.0, warm_store.stats
    assert warm_context.stats.computes == 0, "store hits must never recompute"

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"\nwarm-store rerun ({len(cold.cells)} cells): cold {cold_s:.2f}s, "
        f"warm {warm_s:.3f}s ({speedup:.1f}x, hit rate "
        f"{warm_store.stats.hit_rate:.0%})"
    )
    _record_bench(
        "warm_store_rerun",
        {
            "cells": len(cold.cells),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "store_hit_rate": warm_store.stats.hit_rate,
            "smoke": PERF_SMOKE,
        },
    )
    if not PERF_SMOKE:
        assert warm_s * 2 < cold_s, (
            f"warm-store rerun ({warm_s:.3f}s) should be at least 2x faster than "
            f"the cold run ({cold_s:.3f}s)"
        )


@pytest.mark.parametrize(
    "name",
    FAST_NAMES
    + ["tab04", "fig12_cache_hit_rate", "fig13_occupancy_traffic", "fig15_embedding_locality"],
)
def test_every_experiment_runs_through_the_registry(name):
    """`python -m repro run <spec>` works for each registered experiment."""
    from repro.pipeline.cli import main

    args = ["run", name, "--quiet"]
    for key, value in OVERRIDES.get(name, {}).items():
        args += ["--set", f"{key}={value}"]
    # Keep the registry path cheap for the heavy specs.
    if name in ("fig07", "fig09", "fig11", "fig12_cache_hit_rate", "fig13_occupancy_traffic"):
        args += ["--set", "rays=48", "--set", "probe_samples=12"]
    assert main(args) == 0
