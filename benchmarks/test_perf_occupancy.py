"""Occupancy-grid adaptive-marching benchmarks: pruning wins vs dense.

Three measurements, recorded into ``BENCH_occupancy.json`` (same trajectory
format as ``BENCH_hotpaths.json``/``BENCH_mem.json``):

* vectorized adaptive-mask engine vs the per-sample reference oracle
  (exact equivalence asserted, speedup recorded);
* sample / DRAM row-request / timing-model reduction of the pruned lookup
  stream of a sparse scene (the headline >= 2x empty-space-skipping win);
* end-to-end trainer with a field-refreshed occupancy grid vs the dense
  trainer (field evaluations and wall-clock per iteration).

``PERF_SMOKE=1`` shrinks the inputs and relaxes the reduction/speedup
floors (equivalence is still asserted) so CI smoke runs stay fast and
insensitive to machine load.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.experiments.runner import atomic_write_text
from repro.core.streaming import StreamingOrder
from repro.nerf import (
    HashGridConfig,
    InstantNGPField,
    OccupancyGridConfig,
    Trainer,
    TrainerConfig,
    adaptive_sample_mask,
    adaptive_sample_mask_reference,
)
from repro.pipeline import SimulationContext
from repro.scenes import DatasetConfig
from repro.workloads.traces import TraceConfig, occupancy_grid_for_trace

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
#: The sparsest library scene (lowest occupied-voxel fraction) — the
#: headline empty-space-skipping numbers are measured on it.
SPARSE_SCENE = "mic"
NUM_RAYS = 64 if SMOKE else 256
POINTS_PER_RAY = 16 if SMOKE else 64
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_occupancy.json"

_RESULTS: dict[str, dict] = {}


def _time(fn, repeats=2):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's measurements to the BENCH_occupancy.json trajectory."""
    yield
    if not _RESULTS:
        return
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": SMOKE,
        "num_rays": NUM_RAYS,
        "points_per_ray": POINTS_PER_RAY,
        "scene": SPARSE_SCENE,
        "results": _RESULTS,
    }
    trajectory = []
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(entry)
    atomic_write_text(BENCH_PATH, json.dumps(trajectory, indent=2) + "\n", overwrite=True)


@pytest.fixture(scope="module")
def sparse_trace():
    return TraceConfig(
        num_rays=NUM_RAYS,
        points_per_ray=POINTS_PER_RAY,
        seed=0,
        scene=SPARSE_SCENE,
        occupancy=True,
        occupancy_resolution=32 if SMOKE else 64,
        occupancy_termination=1e-3,
    )


def test_adaptive_mask_oracle_speedup(sparse_trace):
    """Vectorized mask engine is exactly the oracle, and much faster."""
    grid = occupancy_grid_for_trace(sparse_trace)
    rng = np.random.default_rng(0)
    rays = 32 if SMOKE else 128
    samples = POINTS_PER_RAY
    points = rng.random((rays, samples, 3))
    t_values = np.sort(rng.random((rays, samples)) * 3.0, axis=1)
    densities = rng.random((rays, samples)) * 2.0

    def vectorized():
        return adaptive_sample_mask(grid, points, t_values, densities, 1e-3)

    def reference():
        return adaptive_sample_mask_reference(grid, points, t_values, densities, 1e-3)

    vec_s, vec = _time(vectorized)
    ref_s, ref = _time(reference, repeats=1)
    assert np.array_equal(vec, ref)
    speedup = ref_s / vec_s if vec_s > 0 else float("inf")
    _RESULTS["adaptive_mask"] = {
        "reference_s": round(ref_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": round(speedup, 2),
    }
    print(f"\nadaptive_mask: reference {ref_s:.3f}s vectorized {vec_s:.4f}s -> {speedup:.0f}x")
    if not SMOKE:
        assert speedup >= 10.0


def test_sparse_scene_traffic_reduction(sparse_trace):
    """>= 2x sample and DRAM-traffic reduction on the sparse scene."""
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=8 if SMOKE else 16)
    hash_fn = MortonLocalityHash()
    level = grid.num_levels - 1
    dense = sparse_trace.dense()
    dense_samples = sparse_trace.num_rays * sparse_trace.points_per_ray
    kept = int(ctx.occupancy_mask(sparse_trace).sum())
    sample_reduction = dense_samples / kept

    dense_rows = ctx.row_requests(grid, dense, hash_fn, StreamingOrder.RAY_FIRST, level)
    pruned_rows = ctx.row_requests(grid, sparse_trace, hash_fn, StreamingOrder.RAY_FIRST, level)
    row_reduction = dense_rows / pruned_rows

    dense_batch = ctx.serviced_batch("lpddr4-2400", grid, dense, hash_fn, level)
    pruned_batch = ctx.serviced_batch("lpddr4-2400", grid, sparse_trace, hash_fn, level)
    cycle_reduction = dense_batch["total_cycles"] / pruned_batch["total_cycles"]

    _RESULTS["sparse_scene_pruning"] = {
        "dense_samples": dense_samples,
        "pruned_samples": kept,
        "sample_reduction": round(sample_reduction, 3),
        "row_request_reduction": round(row_reduction, 3),
        "dram_cycle_reduction": round(cycle_reduction, 3),
    }
    print(
        f"\n{SPARSE_SCENE}: samples {dense_samples} -> {kept} ({sample_reduction:.2f}x), "
        f"rows {dense_rows} -> {pruned_rows} ({row_reduction:.2f}x), "
        f"cycles {cycle_reduction:.2f}x"
    )
    floor = 1.5 if SMOKE else 2.0
    assert sample_reduction >= floor
    assert row_reduction >= floor
    assert cycle_reduction >= floor


def test_trainer_occupancy_speedup():
    """Adaptive trainer evaluates far fewer samples than the dense loop."""
    iterations = 20 if SMOKE else 120
    ctx = SimulationContext()
    dataset = ctx.dataset(
        SPARSE_SCENE,
        DatasetConfig(image_size=24, num_train_views=4, num_test_views=1, gt_samples_per_ray=48),
    )
    grid = HashGridConfig(num_levels=6, table_size=2**12, max_resolution=128)

    def trainer(occupancy):
        field = InstantNGPField(grid, hidden_dim=16, geo_features=7, rng=np.random.default_rng(1))
        config = TrainerConfig(
            num_iterations=iterations,
            rays_per_batch=96,
            samples_per_ray=24,
            seed=3,
            occupancy=occupancy,
        )
        return Trainer(field, dataset, config)

    dense = trainer(None)
    dense_s, _ = _time(lambda: dense.train(), repeats=1)
    adaptive = trainer(
        OccupancyGridConfig(resolution=16, update_every=8, ema_decay=0.6, density_threshold=0.5)
    )
    adaptive_s, _ = _time(lambda: adaptive.train(), repeats=1)

    window = max(1, iterations // 4)
    dense_tail = sum(dense.history.samples_evaluated[-window:])
    adaptive_tail = sum(adaptive.history.samples_evaluated[-window:])
    tail_sample_reduction = dense_tail / adaptive_tail
    wall_speedup = dense_s / adaptive_s if adaptive_s > 0 else float("inf")
    # In smoke mode the runs are ~0.1 s, so the wall-clock ratio is pure
    # noise: record it under an ungated key and gate only the deterministic
    # sample reduction.
    wall_key = "wall_ratio" if SMOKE else "speedup"
    _RESULTS["trainer_adaptive"] = {
        "iterations": iterations,
        "dense_s": round(dense_s, 4),
        "adaptive_s": round(adaptive_s, 4),
        wall_key: round(wall_speedup, 3),
        "tail_sample_reduction": round(tail_sample_reduction, 3),
    }
    print(
        f"\ntrainer: dense {dense_s:.2f}s adaptive {adaptive_s:.2f}s ({wall_speedup:.2f}x), "
        f"late-iteration samples reduced {tail_sample_reduction:.2f}x"
    )
    assert np.isfinite(adaptive.history.final_loss)
    if not SMOKE:
        assert tail_sample_reduction >= 2.0
        assert wall_speedup >= 1.05
