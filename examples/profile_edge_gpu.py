"""Reproduce the paper's GPU profiling study (Sec. II-B, Fig. 1 and Fig. 4).

Runs the registered ``tab01``/``tab02``/``fig01``/``fig04`` experiments
through one shared :class:`SimulationContext` (Fig. 4 reuses the kernel
profiles Fig. 1 computes), then prints the diagnosis the paper draws from
them.  The same tables are available from the command line:

    python -m repro run fig01 --gpus 2080Ti,XNX,TX2
    python -m repro run fig04 --gpu XNX

Usage:
    python examples/profile_edge_gpu.py
"""

from __future__ import annotations

from repro.gpu import GPUProfiler, XNX
from repro.pipeline import SimulationContext, run_suite


def main() -> None:
    context = SimulationContext()
    results = run_suite(
        ["tab01", "tab02", "fig01", "fig04"],
        context=context,
        overrides={"fig01": {"gpus": "2080Ti,XNX,TX2"}},
    )
    for name in ("tab01", "tab02", "fig01", "fig04"):
        print(results[name].to_text())
        print()

    print("== Diagnosis ==")
    profiler = GPUProfiler.for_gpu(XNX)
    scene = profiler.profile_scene()
    bottleneck_steps = ", ".join(step.value for step in profiler.bottleneck_steps())
    print(f"Dominant steps on {scene.gpu_name}: {bottleneck_steps}")
    print(f"They cover {scene.bottleneck_fraction() * 100:.1f}% of training time "
          f"(paper: 76.4%), and every hash-table kernel is DRAM-bandwidth bound —")
    print("the motivation for the near-memory-processing accelerator of Sec. IV.")
    print(
        f"(shared context reused {context.stats.hits} of {context.stats.total} artifact requests)"
    )


if __name__ == "__main__":
    main()
