"""Reproduce the paper's GPU profiling study (Sec. II-B, Fig. 1 and Fig. 4).

Prints the modelled per-scene iNGP training time and per-step breakdown for
the edge GPUs (Jetson Xavier NX, Jetson TX2) and the cloud GPU (RTX 2080 Ti),
followed by the per-kernel DRAM/compute utilization that motivates moving the
hash-table and MLP steps into the memory.

Usage:
    python examples/profile_edge_gpu.py
"""

from __future__ import annotations

from repro.experiments import format_table, run_fig01, run_fig04, run_tab01, run_tab02
from repro.gpu import GPUProfiler, RTX_2080TI, TX2, XNX


def main() -> None:
    print("== Device specifications (Table I) ==")
    print(run_tab01().to_text())

    print("\n== iNGP per-step working-set sizes (Table II) ==")
    print(run_tab02().to_text())

    print("\n== Training time and breakdown (Fig. 1) ==")
    print(run_fig01(gpus=(RTX_2080TI, XNX, TX2)).to_text())

    print("\n== Bottleneck-kernel utilization on XNX (Fig. 4) ==")
    print(run_fig04(XNX).to_text())

    print("\n== Diagnosis ==")
    profiler = GPUProfiler.for_gpu(XNX)
    scene = profiler.profile_scene()
    bottleneck_steps = ", ".join(step.value for step in profiler.bottleneck_steps())
    print(f"Dominant steps on {scene.gpu_name}: {bottleneck_steps}")
    print(f"They cover {scene.bottleneck_fraction() * 100:.1f}% of training time "
          f"(paper: 76.4%), and every hash-table kernel is DRAM-bandwidth bound —")
    print("the motivation for the near-memory-processing accelerator of Sec. IV.")


if __name__ == "__main__":
    main()
