"""Analyse the Instant-NeRF algorithm's memory locality (Sec. III, Fig. 6/7/9).

Walks through the three locality mechanisms on a *real* training batch of the
"lego" scene (camera rays with density-guided sampling bounds):

1. the Morton locality-sensitive hash vs iNGP's prime-XOR hash (Fig. 6),
2. the ray-first point streaming order and the resulting effective memory
   bandwidth improvement (Fig. 7), and
3. the residual bank conflicts and how subarray parallelism plus the
   intra-/inter-level hash-table mapping absorb them (Fig. 9).

All three run through one shared :class:`SimulationContext`: the suite
scheduler runs the bank-conflict analysis first so Fig. 7 reuses its
corner-index streams.  The same experiments are available from the CLI, e.g.

    python -m repro run fig07 --scene lego --dram ddr4
    python -m repro sweep fig07 --grid scene=lego,chair --grid hash=morton,original --workers 4

Usage:
    python examples/hash_locality_analysis.py [scene]
"""

from __future__ import annotations

import sys

from repro.core.mapping import HashTableMapper, HashTableMappingConfig
from repro.experiments import format_series
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import SimulationContext, run_suite


def main(scene: str = "lego") -> None:
    context = SimulationContext()
    overrides = {
        "fig07": {"scene": scene},
        "fig09": {"scene": scene, "subarrays": "1,4,16,64"},
    }
    results = run_suite(["fig06", "fig07", "fig09"], context=context, overrides=overrides)

    print("== Hash-index locality (Fig. 6) ==")
    print(results["fig06"].to_text())

    print(f"\n== Cube sharing and effective bandwidth on '{scene}' (Fig. 7) ==")
    print(results["fig07"].to_text())
    print(
        format_series("per-level improvement", results["fig07"].column("effective_bw_improvement"))
    )

    print(f"\n== Bank conflicts vs subarray parallelism on '{scene}' (Fig. 9) ==")
    print(results["fig09"].to_text())

    print("\n== Inter-level grouping (Sec. IV-B) ==")
    grid = HashGridConfig(num_levels=16)
    mapper = HashTableMapper(grid, HashTableMappingConfig())
    for group_index, group in enumerate(mapper.level_groups()):
        bank = mapper.bank_of_level(group[0])
        print(f"  group {group_index}: levels {group} -> bank {bank}")
    print("Coarse, lightly-conflicted levels share banks; each fine level gets its own bank,")
    print("balancing per-bank processing time for the HT/HT_b steps.")
    print(
        f"(shared context reused {context.stats.hits} of {context.stats.total} artifact requests)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lego")
