"""Analyse the Instant-NeRF algorithm's memory locality (Sec. III, Fig. 6/7/9).

Walks through the three locality mechanisms:

1. the Morton locality-sensitive hash vs iNGP's prime-XOR hash (Fig. 6),
2. the ray-first point streaming order and the resulting effective memory
   bandwidth improvement (Fig. 7), and
3. the residual bank conflicts and how subarray parallelism plus the
   intra-/inter-level hash-table mapping absorb them (Fig. 9).

Usage:
    python examples/hash_locality_analysis.py
"""

from __future__ import annotations

from repro.core.mapping import HashTableMapper, HashTableMappingConfig
from repro.experiments import format_series, run_fig06, run_fig07, run_fig09
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import TraceConfig


def main() -> None:
    print("== Hash-index locality (Fig. 6) ==")
    fig6 = run_fig06()
    print(fig6.to_text())

    print("\n== Cube sharing and effective bandwidth (Fig. 7) ==")
    fig7 = run_fig07()
    print(fig7.to_text())
    print(format_series("per-level improvement", fig7.column("effective_bw_improvement")))

    print("\n== Bank conflicts vs subarray parallelism (Fig. 9) ==")
    grid = HashGridConfig(num_levels=16)
    fig9 = run_fig09(
        subarray_counts=(1, 4, 16, 64),
        grid_config=grid,
        trace_config=TraceConfig(num_rays=32, points_per_ray=48, seed=1),
    )
    print(fig9.to_text())

    print("\n== Inter-level grouping (Sec. IV-B) ==")
    mapper = HashTableMapper(grid, HashTableMappingConfig())
    for group_index, group in enumerate(mapper.level_groups()):
        bank = mapper.bank_of_level(group[0])
        print(f"  group {group_index}: levels {group} -> bank {bank}")
    print("Coarse, lightly-conflicted levels share banks; each fine level gets its own bank,")
    print("balancing per-bank processing time for the HT/HT_b steps.")


if __name__ == "__main__":
    main()
