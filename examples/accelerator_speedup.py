"""Reproduce the hardware evaluation (Sec. V-C, Fig. 11, Table III).

Builds the co-designed Instant-NeRF system — Morton locality hash + ray-first
streaming feeding the per-bank NMP accelerator with the heterogeneous
inter-bank parallelism plan — and compares its per-scene training time and
energy against the TX2 and XNX edge GPUs on all eight scenes.  Runs through
the shared :class:`SimulationContext`, so the locality statistics feeding the
accelerator come from the same cached traces the locality experiments use.
Also available from the CLI:

    python -m repro run tab03 --dram lpddr4-2400
    python -m repro run fig11 --scene all

Usage:
    python examples/accelerator_speedup.py
"""

from __future__ import annotations

from repro.accel import BankMicroarchitecture
from repro.core.codesign import AlgorithmConfig
from repro.gpu import TX2, XNX
from repro.pipeline import SimulationContext, run_suite


def main() -> None:
    context = SimulationContext()
    results = run_suite(["tab03", "fig11"], context=context)

    print("== Accelerator configuration, area and power (Table III / Sec. V-C) ==")
    print(results["tab03"].to_text())

    micro = BankMicroarchitecture()
    print(f"\nPer-bank microarchitecture: {micro.area_mm2():.2f} mm^2, {micro.power_mw():.0f} mW "
          f"(paper: {micro.PAPER_AREA_MM2} mm^2, {micro.PAPER_POWER_MW} mW)")

    print("\n== Measured algorithm locality feeding the accelerator ==")
    system = context.system(AlgorithmConfig.instant_nerf())
    baseline = context.system(AlgorithmConfig.ingp())
    print(f"Instant-NeRF: {system.locality.row_requests_per_cube:.2f} row requests/cube, "
          f"{system.locality.cube_sharing_run_length:.2f} points sharing a cube")
    print(f"iNGP baseline: {baseline.locality.row_requests_per_cube:.2f} row requests/cube, "
          f"{baseline.locality.cube_sharing_run_length:.2f} points sharing a cube")
    print(f"Algorithm-only boost on a 2080Ti-class GPU: "
          f"{system.algorithm_speedup_on_gpu(baseline):.2f}x (paper: 1.15x)")

    print("\n== Per-scene speedup and energy efficiency (Fig. 11) ==")
    print(results["fig11"].to_text())

    print("\n== Headline ==")
    lego_seconds = system.scene_training_seconds("lego")
    print(f"Per-scene training on the NMP accelerator: ~{lego_seconds / 60:.1f} minutes, vs "
          f"{XNX.measured_training_s / 3600:.1f} h on XNX "
          f"and {TX2.measured_training_s / 3600:.1f} h on TX2.")


if __name__ == "__main__":
    main()
