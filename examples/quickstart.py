"""Quickstart: train an Instant-NGP-style radiance field on a procedural scene.

Runs the full Fig. 2 training pipeline (pixel batches, ray sampling, hash-grid
radiance field, volume rendering, backprop, Adam) on the "lego" stand-in
scene with the Instant-NeRF Morton locality hash, then reports test PSNR.
The rendered dataset comes from a :class:`SimulationContext`, the same shared
store the experiment registry uses — re-running against the same context
(e.g. a PSNR sweep over hash functions) reuses it instead of re-rendering.

The full Table IV benchmark this builds toward is one CLI call:

    python -m repro run tab04 --scenes lego --methods ingp,instant-nerf
    python -m repro sweep tab04 \\
        --grid scenes=lego,chair --grid methods=ingp,instant-nerf --workers 2

Occupancy-grid adaptive marching (empty-space skipping) and its effect on
the hash-table traffic is the Fig. 13 extension, one CLI call away:

    python -m repro run fig13_occupancy_traffic --scene mic --resolutions 16,32,64

With ``--store .repro-cache`` artifacts persist across invocations; rerunning
the sweep with ``--store .repro-cache --resume`` loads every completed cell
from the warm store instead of retraining.

Usage:
    python examples/quickstart.py [scene] [iterations]
"""

from __future__ import annotations

import sys
import time

from repro.core.hashing import MortonLocalityHash
from repro.nerf import HashGridConfig, InstantNGPField, Trainer, TrainerConfig
from repro.pipeline import SimulationContext
from repro.scenes import DatasetConfig


def main(scene: str = "lego", iterations: int = 200) -> None:
    print(f"== Instant-NeRF quickstart: scene '{scene}', {iterations} iterations ==")

    print("Rendering ground-truth images from the procedural scene ...")
    context = SimulationContext()
    dataset = context.dataset(
        scene,
        DatasetConfig(image_size=48, num_train_views=10, num_test_views=2, gt_samples_per_ray=96),
    )
    print(f"  {dataset.num_train_views} train views, {dataset.num_test_views} test views, "
          f"{dataset.num_train_pixels} training pixels")

    grid = HashGridConfig(
        num_levels=8, table_size=2**14, max_resolution=256, hash_fn=MortonLocalityHash()
    )
    field = InstantNGPField(grid, hidden_dim=32, geo_features=7)
    print(f"  field parameters: {field.num_parameters():,} "
          f"({grid.num_levels} levels x {grid.table_size} entries hash table + 2 small MLPs)")

    trainer = Trainer(
        field,
        dataset,
        TrainerConfig(
            num_iterations=iterations, rays_per_batch=256, samples_per_ray=48, log_every=50
        ),
    )
    start = time.perf_counter()
    history = trainer.train()
    elapsed = time.perf_counter() - start
    print(f"Training finished in {elapsed:.1f} s "
          f"(final loss {history.final_loss:.5f}, train PSNR {history.final_psnr:.2f} dB)")

    test_psnr = trainer.evaluate()
    print(f"Held-out test PSNR: {test_psnr:.2f} dB")
    image = trainer.render_image(0)
    print(f"Rendered a {image.shape[0]}x{image.shape[1]} test view "
          f"(mean intensity {image.mean():.3f}); "
          f"paper-scale training would now continue for 35k iterations.")
    print("Next: `python -m repro list` shows every registered experiment.")


if __name__ == "__main__":
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "lego"
    num_iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    main(scene_name, num_iterations)
