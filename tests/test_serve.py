"""Tests for the multi-tenant serving simulator (:mod:`repro.serve`).

The load-bearing guarantees: seeded arrival generation is deterministic and
per-tenant decorrelated, offered load is pure time compression (same
requests, same merge order at any load), the scheduler's admission /
shedding / batch-forming decisions satisfy their invariants on arbitrary
request sequences (hypothesis), and with batching disabled the simulator
exactly reproduces the per-request G/G/1 reference oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.context import SimulationContext
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    BatchQueue,
    RenderRequest,
    SchedulerConfig,
    ServeWorkloadConfig,
    ServiceCostConfig,
    ServiceCostModel,
    TokenBucket,
    arrival_times,
    base_arrival_times,
    batch_request_stream,
    generate_requests,
    request_points,
    simulate_serving,
    simulate_serving_reference,
    tenant_seed,
)

# One small serving-scale cost model shared by every test that prices batches
# (accelerator constants are derived once; the model is stateless per batch).
SMALL_COST = ServiceCostConfig(
    cache_kb=16, grid_levels=2, table_size=2**10, base_resolution=8, max_resolution=32
)
SMALL_WORKLOAD = ServeWorkloadConfig(
    num_tenants=2, requests_per_tenant=12, mean_interarrival_us=20.0, rays_min=2, rays_max=6
)


@pytest.fixture(scope="module")
def cost_model():
    return ServiceCostModel(SMALL_COST)


# ------------------------------------------------------------------ workload
def test_workload_config_validation():
    with pytest.raises(ValueError):
        ServeWorkloadConfig(num_tenants=0)
    with pytest.raises(ValueError):
        ServeWorkloadConfig(mean_interarrival_us=0.0)
    with pytest.raises(ValueError):
        ServeWorkloadConfig(offered_load=-1.0)
    with pytest.raises(ValueError):
        ServeWorkloadConfig(process="bursty")
    with pytest.raises(ValueError):
        ServeWorkloadConfig(rays_min=8, rays_max=4)
    with pytest.raises(ValueError):
        ServeWorkloadConfig(diurnal_amplitude=1.0)


@pytest.mark.parametrize("process", ["poisson", "mmpp", "diurnal"])
def test_arrival_generation_is_deterministic(process):
    config = ServeWorkloadConfig(num_tenants=3, requests_per_tenant=32, process=process)
    for tenant in range(config.num_tenants):
        first = arrival_times(config, tenant)
        second = arrival_times(config, tenant)
        np.testing.assert_array_equal(first, second)
        assert np.all(np.diff(first) > 0) and first[0] > 0
    # Same seed, same requests — down to identity fields.
    assert generate_requests(config) == generate_requests(config)
    # A different seed is a different trace.
    reseeded = ServeWorkloadConfig(
        num_tenants=3, requests_per_tenant=32, process=process, seed=1
    )
    assert not np.array_equal(arrival_times(config, 0), arrival_times(reseeded, 0))


def test_tenants_are_decorrelated():
    config = ServeWorkloadConfig(num_tenants=4, requests_per_tenant=64)
    # SHA-256 hashing: neighbouring (seed, tenant) pairs give unrelated seeds.
    seeds = {tenant_seed(config.seed, t) for t in range(4)} | {tenant_seed(1, 0)}
    assert len(seeds) == 5
    t0, t1 = base_arrival_times(config, 0), base_arrival_times(config, 1)
    assert not np.array_equal(t0, t1)
    # Tenant 0's base trace is invariant under fleet size changes.
    grown = ServeWorkloadConfig(num_tenants=8, requests_per_tenant=64)
    np.testing.assert_array_equal(t0, base_arrival_times(grown, 0))


def test_offered_load_is_pure_time_compression():
    config = ServeWorkloadConfig(num_tenants=2, requests_per_tenant=16)
    compressed = config.at_load(4.0)
    np.testing.assert_allclose(
        arrival_times(compressed, 0), arrival_times(config, 0) / 4.0, rtol=1e-12
    )
    base, dense = generate_requests(config), generate_requests(compressed)
    # Same requests in the same order — only arrival timestamps rescale.
    for a, b in zip(base, dense):
        assert (a.request_id, a.tenant, a.rays, a.pose, a.seed) == (
            b.request_id, b.tenant, b.rays, b.pose, b.seed
        )
        assert b.arrival_us == pytest.approx(a.arrival_us / 4.0)


def test_request_identity_ranges():
    config = ServeWorkloadConfig(num_tenants=2, requests_per_tenant=32, rays_min=3, rays_max=9)
    requests = generate_requests(config)
    assert [r.request_id for r in requests] == list(range(len(requests)))
    assert all(3 <= r.rays <= 9 for r in requests)
    assert all(0.0 <= c < 1.0 for r in requests for c in r.pose)
    arrivals = [r.arrival_us for r in requests]
    assert arrivals == sorted(arrivals)


# ----------------------------------------------------------------- scheduler
def _request(request_id, tenant=0, arrival=0.0, rays=4, ppr=8):
    return RenderRequest(
        request_id=request_id,
        tenant=tenant,
        arrival_us=arrival,
        rays=rays,
        points_per_ray=ppr,
        pose=(0.5, 0.5, 0.5),
        seed=request_id,
    )


def test_token_bucket_refill_and_cap():
    bucket = TokenBucket(rate_per_us=0.5, capacity=2.0)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # empty
    assert bucket.try_take(2.0)  # 2 us x 0.5/us refills one token
    assert not bucket.try_take(2.0)
    bucket2 = TokenBucket(rate_per_us=0.5, capacity=2.0)
    assert bucket2.try_take(1e6)  # refill clamps at capacity
    assert 0.0 <= bucket2.tokens <= bucket2.capacity


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0), st.integers(1, 12), st.integers(0, 3)),
        min_size=1,
        max_size=40,
    ),
    st.integers(1, 6),
)
def test_depth_cap_is_never_exceeded(offers, cap):
    """Property: with a depth cap the queue never holds more than ``cap``."""
    queue = BatchQueue(SchedulerConfig(admission=AdmissionConfig(max_queue_depth=cap)))
    now = 0.0
    for i, (gap, rays, tenant) in enumerate(offers):
        now += gap
        queue.offer(_request(i, tenant=tenant, arrival=now, rays=rays), now)
        assert queue.depth <= cap
        if queue.depth == cap:  # the next offer at this instant must bounce
            assert not queue.offer(_request(1000 + i, arrival=now), now)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(1, 20), min_size=1, max_size=30),
    st.sampled_from([BatchPolicy.FIFO, BatchPolicy.SJF]),
    st.integers(16, 200),
)
def test_batches_respect_point_budget_and_drain_exactly_once(sizes, policy, budget):
    """Property: batches stay within ``max_batch_points`` (unless a single
    oversized request dispatches alone) and every admitted request is served
    in exactly one batch."""
    queue = BatchQueue(SchedulerConfig(policy=policy, max_batch_points=budget))
    for i, rays in enumerate(sizes):
        assert queue.offer(_request(i, arrival=float(i), rays=rays, ppr=8), float(i))
    seen = []
    while queue.depth:
        batch = queue.next_batch()
        points = sum(e.request.num_points for e in batch)
        assert points <= budget or len(batch) == 1
        if policy is BatchPolicy.FIFO:  # strict admission order within a batch
            seqs = [e.admit_seq for e in batch]
            assert seqs == sorted(seqs)
        seen.extend(e.request.request_id for e in batch)
    assert sorted(seen) == list(range(len(sizes)))


def test_sjf_orders_small_jobs_first():
    queue = BatchQueue(SchedulerConfig(policy=BatchPolicy.SJF, max_batch_points=32))
    for i, rays in enumerate([10, 1, 5]):
        queue.offer(_request(i, arrival=0.0, rays=rays, ppr=8), 0.0)
    batch = queue.next_batch()
    assert [e.request.request_id for e in batch] == [1]  # 8 points, then 5x8=40 > 32-8


def test_shed_expired_removes_only_timed_out_entries():
    queue = BatchQueue(SchedulerConfig(timeout_us=10.0))
    queue.offer(_request(0, arrival=0.0), 0.0)
    queue.offer(_request(1, arrival=8.0), 8.0)
    expired = queue.shed_expired(11.0)
    assert [e.request.request_id for e in expired] == [0]
    assert queue.depth == 1


# ----------------------------------------------------------------- streams
def test_request_points_are_deterministic_and_in_unit_cube():
    request = _request(0, rays=5, ppr=7)
    points = request_points(request)
    assert points.shape == (35, 3)
    assert np.all((points >= 0.0) & (points < 1.0))
    np.testing.assert_array_equal(points, request_points(request))


def test_batch_stream_group_ids_never_span_requests(cost_model):
    requests = generate_requests(SMALL_WORKLOAD)[:4]
    grid = cost_model.grid
    stream = batch_request_stream(requests, grid, grid.hash_fn, cost_model.level)
    assert stream.num_points == sum(r.num_points for r in requests)
    assert stream.source == "serve.batch"
    offsets = np.cumsum([0] + [r.num_points for r in requests])
    cubes = int(grid.resolutions[cost_model.level]) ** 3
    for request, lo, hi in zip(requests, offsets[:-1], offsets[1:]):
        owners = stream.group_ids[lo:hi] // cubes
        assert np.all(owners == request.request_id)
    with pytest.raises(ValueError):
        batch_request_stream([], grid, grid.hash_fn, cost_model.level)


def test_service_cost_is_deterministic_and_batching_wins(cost_model):
    requests = generate_requests(SMALL_WORKLOAD)[:6]
    together = cost_model.cost(requests)
    again = cost_model.cost(requests)
    assert together == again
    assert together.num_points == sum(r.num_points for r in requests)
    assert together.dram_us > 0 and together.compute_us > 0
    assert together.total_us == together.overhead_us + max(
        together.dram_us, together.compute_us
    )
    # Coalescing pays: one batch beats six per-request dispatches.
    alone = sum(cost_model.cost([r]).total_us for r in requests)
    assert together.total_us < alone


# ---------------------------------------------------------------- simulator
def test_simulator_matches_per_request_reference_oracle(cost_model):
    """With coalescing disabled, the event loop is exactly the G/G/1 oracle."""
    workload = ServeWorkloadConfig(
        num_tenants=2, requests_per_tenant=10, rays_min=4, rays_max=4, points_per_ray=8
    )
    scheduler = SchedulerConfig(max_batch_points=4 * 8)  # one request per batch
    batched = simulate_serving(workload, scheduler, model=cost_model)
    oracle = simulate_serving_reference(workload, model=cost_model)
    assert [(r.request_id, r.start_us, r.finish_us) for r in batched.records] == [
        (r.request_id, r.start_us, r.finish_us) for r in oracle.records
    ]


def test_simulation_is_replayable_and_work_conserving(cost_model):
    scheduler = SchedulerConfig(batch_window_us=5.0)
    first = simulate_serving(SMALL_WORKLOAD, scheduler, model=cost_model)
    second = simulate_serving(SMALL_WORKLOAD, scheduler, model=cost_model)
    assert first.records == second.records and first.batches == second.batches
    for batch in first.batches:
        assert batch.start_us == pytest.approx(
            max(batch.free_before_us, batch.earliest_admit_us + 5.0), abs=1e-9
        )


def test_statuses_partition_requests_and_summary_is_consistent(cost_model):
    scheduler = SchedulerConfig(
        timeout_us=15.0,
        admission=AdmissionConfig(max_queue_depth=3),
    )
    hot = SMALL_WORKLOAD.at_load(6.0)
    result = simulate_serving(hot, scheduler, model=cost_model)
    # Every generated request has exactly one terminal record.
    assert [r.request_id for r in result.records] == list(range(hot.num_requests))
    summary = result.summary()
    assert summary["served"] + summary["shed"] + summary["rejected"] == summary["num_requests"]
    assert 0.0 <= summary["shed_rate"] <= 1.0
    assert 0.0 <= summary["utilization"] <= 1.0
    assert summary["p50_latency_us"] <= summary["p95_latency_us"] <= summary["p99_latency_us"]
    served = [r for r in result.records if r.status == "served"]
    # A served request never waited past the shedding deadline.
    assert all(r.queue_us <= 15.0 + 1e-9 for r in served)
    # finish = start + service is rounded once more before subtracting the
    # arrival, so compare with a one-ulp-scale tolerance.
    assert all(r.latency_us >= r.service_us - 1e-9 * max(1.0, r.finish_us) for r in served)


def test_fifo_serves_in_admission_order(cost_model):
    result = simulate_serving(SMALL_WORKLOAD.at_load(4.0), SchedulerConfig(), model=cost_model)
    served = [r for r in result.records if r.status == "served"]
    batch_ids = [r.batch_id for r in sorted(served, key=lambda r: r.arrival_us)]
    assert batch_ids == sorted(batch_ids)


def test_context_memoizes_serving_summaries(cost_model):
    ctx = SimulationContext()
    scheduler = SchedulerConfig()
    first = ctx.serving_summary(SMALL_WORKLOAD, scheduler, SMALL_COST)
    hits = ctx.stats.hits
    second = ctx.serving_summary(SMALL_WORKLOAD, scheduler, SMALL_COST)
    assert second is first
    assert ctx.stats.hits == hits + 1
    direct = simulate_serving(SMALL_WORKLOAD, scheduler, model=cost_model).summary()
    assert first == direct
