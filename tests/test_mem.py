"""Tests for the on-chip memory-hierarchy simulator (:mod:`repro.mem`).

The load-bearing guarantees: the vectorized engines are *exactly* equivalent
to their per-access reference oracles (on random streams and on
scene-conditioned corner streams across hash functions), an LRU cache that
holds the working set reaches a 100% steady-state hit rate with zero extra
DRAM traffic, and the L0 scratchpad window reproduces the row-request
accounting of :mod:`repro.core.streaming` at matching granularity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import NMPAccelerator, Scratchpad
from repro.accel.cost_model import ComparisonModel
from repro.core.hashing import (
    DenseGridIndexer,
    HashFunction,
    MortonLocalityHash,
    get_hash_function,
)
from repro.core.streaming import StreamingOrder, cube_ids, row_requests_for_stream
from repro.gpu import XNX
from repro.mem import (
    COALESCED,
    HIT,
    MISS,
    PREFETCH_FILL,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    PrefetcherConfig,
    plan_prefetches,
    plan_prefetches_reference,
    scratchpad_filter,
    scratchpad_filter_reference,
    simulate_cache,
    simulate_cache_reference,
)
from repro.nerf.encoding import HashGridConfig
from repro.pipeline.context import SimulationContext
from repro.streams import RequestStream, StreamKind
from repro.workloads.traces import TraceConfig, generate_batch_points, level_lookup_indices


def _gather_stream(indices, kind=StreamKind.GATHER):
    """The (N, P) index array as a 4-byte-entry RequestStream (legacy layout)."""
    return RequestStream(
        indices=indices,
        entry_bytes=4,
        table_entries=int(np.max(indices)) + 1,
        kind=kind,
        source="tests.mem",
    )


# ----------------------------------------------------------- configuration
def test_cache_config_validation():
    CacheConfig()  # defaults are valid
    with pytest.raises(ValueError):
        CacheConfig(line_bytes=48)  # not a power of two
    with pytest.raises(ValueError):
        CacheConfig(ways=0)
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=1000, line_bytes=64, ways=4)  # not divisible
    with pytest.raises(ValueError):
        CacheConfig(mshr_latency=-1)
    with pytest.raises(ValueError):
        CacheConfig(access_energy_pj=-0.1)
    full = CacheConfig.fully_associative(4096, line_bytes=64)
    assert full.num_sets == 1 and full.ways == 64


def test_prefetcher_config_validation():
    with pytest.raises(ValueError):
        PrefetcherConfig(policy="belady")
    with pytest.raises(ValueError):
        PrefetcherConfig(degree=0)


def test_scratchpad_invalid_configs_fail_at_construction():
    with pytest.raises(ValueError):
        Scratchpad(capacity_bytes=0)
    with pytest.raises(ValueError):
        Scratchpad(bytes_per_cycle=-1)
    with pytest.raises(ValueError):
        Scratchpad(energy_pj_per_byte=-0.01)
    with pytest.raises(ValueError):
        Scratchpad(area_mm2=-1.0)


def test_scratchpad_filter_requires_positive_capacity():
    with pytest.raises(ValueError):
        scratchpad_filter(np.zeros((2, 8), dtype=np.int64), 0)


# ----------------------------------------------- equivalence: random streams
@pytest.mark.parametrize("mshr", [0, 3])
@pytest.mark.parametrize(
    "capacity,line,ways", [(2048, 64, 1), (4096, 64, 4), (8192, 32, 8), (1024, 64, 16)]
)
def test_cache_matches_reference_on_random_streams(capacity, line, ways, mshr, rng):
    config = CacheConfig(capacity_bytes=capacity, line_bytes=line, ways=ways, mshr_latency=mshr)
    for density in (40, 400, 4000):
        lines = rng.integers(0, density, 600)
        writes = rng.random(600) < 0.3
        prefetches = rng.random(600) < 0.2
        out_vec, stats_vec = simulate_cache(lines, config, writes, prefetches)
        out_ref, stats_ref = simulate_cache_reference(lines, config, writes, prefetches)
        np.testing.assert_array_equal(out_vec, out_ref)
        assert stats_vec == stats_ref


def test_cache_empty_stream_and_bad_inputs():
    config = CacheConfig()
    out, stats = simulate_cache(np.array([], dtype=np.int64), config)
    assert out.size == 0 and stats == CacheStats(line_bytes=config.line_bytes)
    with pytest.raises(ValueError):
        simulate_cache(np.array([-1]), config)
    with pytest.raises(ValueError):
        simulate_cache(np.array([1, 2]), config, is_write=np.array([True]))


def test_cache_outcome_semantics_are_exact():
    """Hand-checked micro-stream: misses, hits, LRU eviction, writeback."""
    config = CacheConfig(capacity_bytes=256, line_bytes=64, ways=2)  # 2 sets x 2 ways
    # Lines 0, 2, 4 all map to set 0 (line % 2 == 0): 2-way LRU within one set.
    lines = np.array([0, 2, 0, 4, 2, 0])
    writes = np.array([True, False, False, False, False, False])
    out, stats = simulate_cache(lines, config, is_write=writes)
    #                 0:miss 2:miss 0:hit 4:evicts-2 2:evicts-0(dirty) 0:miss
    np.testing.assert_array_equal(out, [MISS, MISS, HIT, MISS, MISS, MISS])
    assert stats.hits == 1 and stats.misses == 5
    assert stats.writebacks == 1  # line 0 was dirty when line 2 reclaimed its way
    assert stats.dram_line_fetches == 5


def test_mshr_coalescing_merges_duplicate_misses():
    config = CacheConfig(capacity_bytes=256, line_bytes=64, ways=2, mshr_latency=2)
    out, stats = simulate_cache(np.array([8, 8, 8, 8]), config)
    # The first access misses; the next two land inside the fill window and
    # coalesce into the outstanding MSHR; the fourth is a plain hit.
    np.testing.assert_array_equal(out, [MISS, COALESCED, COALESCED, HIT])
    assert stats.dram_line_fetches == 1
    assert stats.coalesced == 2


# ------------------------------------------------------ equivalence: scenes
SCENE_CASES = [
    (scene, hash_name)
    for scene in ("lego", "chair")
    for hash_name in ("morton", "original", "dense")
]


@pytest.mark.parametrize("scene,hash_name", SCENE_CASES)
def test_hierarchy_matches_reference_on_scene_streams(scene, hash_name):
    """Exact equivalence on scene-conditioned corner streams: three mapping
    functions (Morton, original iNGP, dense row-major) x two scenes, at a
    dense level, a hashed mid level and the finest level each."""
    grid = HashGridConfig(num_levels=16)
    trace = TraceConfig(num_rays=24, points_per_ray=24, seed=3, scene=scene, probe_samples=12)
    points = generate_batch_points(trace).reshape(-1, 3)
    hierarchy = CacheHierarchy(
        CacheConfig(capacity_bytes=8192, line_bytes=64, ways=4, mshr_latency=4),
        PrefetcherConfig("stride"),
    )
    for level in (0, 9, 15):  # dense level, hashed mid level, finest level
        if hash_name == "dense":
            hash_fn: HashFunction = DenseGridIndexer(int(grid.resolutions[level]))
        else:
            hash_fn = get_hash_function(hash_name)
        indices = level_lookup_indices(points, level, grid, hash_fn)
        stream = _gather_stream(indices)
        fast = hierarchy.filter_stream(stream)
        oracle = hierarchy.filter_stream_reference(stream)
        np.testing.assert_array_equal(fast.outcomes, oracle.outcomes)
        np.testing.assert_array_equal(fast.dram_lines, oracle.dram_lines)
        np.testing.assert_array_equal(fast.demand_lines, oracle.demand_lines)
        assert fast.stats == oracle.stats


def test_hierarchy_write_streams_match_reference(rng):
    hierarchy = CacheHierarchy(CacheConfig(capacity_bytes=2048, line_bytes=64, ways=2))
    indices = rng.integers(0, 64 * 400, 50 * 8).reshape(50, 8)
    stream = _gather_stream(indices, kind=StreamKind.WRITE)
    fast = hierarchy.filter_stream(stream)
    oracle = hierarchy.filter_stream_reference(stream)
    assert fast.stats == oracle.stats
    assert fast.stats.cache.writebacks + fast.stats.cache.dirty_lines_left > 0


# -------------------------------------------------------------- prefetcher
@pytest.mark.parametrize("policy", ["none", "next_line", "stride"])
@pytest.mark.parametrize("degree", [1, 3])
def test_prefetch_plan_matches_reference(policy, degree, rng):
    config = PrefetcherConfig(policy=policy, degree=degree)
    for _ in range(5):
        lines = np.abs(np.cumsum(rng.integers(-3, 4, 300)))
        merged_vec, flags_vec = plan_prefetches(lines, config)
        merged_ref, flags_ref = plan_prefetches_reference(lines, config)
        np.testing.assert_array_equal(merged_vec, merged_ref)
        np.testing.assert_array_equal(flags_vec, flags_ref)
        assert np.array_equal(merged_vec[~flags_vec], lines)  # demand preserved


def test_next_line_prefetcher_turns_sequential_misses_into_hits():
    lines = np.arange(512)
    config = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=4)
    _, cold = simulate_cache(lines, config)
    merged, flags = plan_prefetches(lines, PrefetcherConfig("next_line"))
    out, warm = simulate_cache(merged, config, is_prefetch=flags)
    assert cold.hits == 0  # every access is a compulsory miss without prefetch
    assert warm.hits > 0.9 * warm.demand_accesses
    assert warm.prefetch_accuracy > 0.9


def test_stride_prefetcher_detects_constant_stride():
    stride = 7
    lines = np.arange(0, 7 * 300, stride)
    merged, flags = plan_prefetches(lines, PrefetcherConfig("stride"))
    out, stats = simulate_cache(merged, CacheConfig(capacity_bytes=8192), is_prefetch=flags)
    assert stats.hits > 0.9 * stats.demand_accesses
    # A shuffled stream confirms no stride and issues (almost) nothing.
    shuffled = np.random.default_rng(0).permutation(lines)
    merged_s, flags_s = plan_prefetches(shuffled, PrefetcherConfig("stride"))
    assert flags_s.sum() < 0.2 * shuffled.size


# ------------------------------------------------------ L0 scratchpad window
def test_scratchpad_filter_matches_reference(rng):
    for _ in range(10):
        lines = rng.integers(0, 40, (60, 8))
        for capacity in (1, 2, 8, 64):
            np.testing.assert_array_equal(
                scratchpad_filter(lines, capacity),
                scratchpad_filter_reference(lines, capacity),
            )


def test_l0_window_reproduces_row_request_accounting():
    """With row-sized lines and an 8-line scratchpad, the L0-surviving line
    count equals the row-request count of :mod:`repro.core.streaming` — the
    hierarchy generalizes the locality statistic the paper reports."""
    grid = HashGridConfig(num_levels=16)
    points = generate_batch_points(TraceConfig(num_rays=48, points_per_ray=32, seed=0)).reshape(
        -1, 3
    )
    hierarchy = CacheHierarchy(
        CacheConfig(capacity_bytes=4096, line_bytes=1024, ways=4),
        scratchpad=Scratchpad(capacity_bytes=8 * 1024),
    )
    for level in (0, 8, 15):
        indices = level_lookup_indices(points, level, grid, MortonLocalityHash())
        filtered = hierarchy.filter_stream(_gather_stream(indices))
        stream = RequestStream(
            indices=indices,
            entry_bytes=4,
            table_entries=grid.level_table_entries(level),
            group_ids=cube_ids(points, int(grid.resolutions[level])),
            source="tests.mem",
        )
        expected = row_requests_for_stream(stream, row_bytes=1024)
        assert filtered.stats.demand_lines == expected


# -------------------------------------------------- LRU capacity properties
@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=120),
    st.sampled_from([32, 64]),
)
def test_full_working_set_cache_reaches_steady_state_hit_rate_one(line_list, line_bytes):
    """Property: a fully-associative LRU cache sized >= the working set has
    only compulsory misses — a second pass over the stream hits 100% and
    adds zero DRAM traffic."""
    lines = np.array(line_list, dtype=np.int64)
    distinct = np.unique(lines).size
    config = CacheConfig.fully_associative(
        max(1, distinct) * line_bytes * 2, line_bytes=line_bytes
    )
    assert config.ways >= distinct
    twice = np.concatenate([lines, lines])
    out, stats = simulate_cache(twice, config)
    assert stats.dram_line_fetches == distinct  # compulsory misses only
    assert stats.writebacks == 0
    steady = out[lines.size :]
    assert np.all(steady == HIT)  # 100% steady-state hit rate
    out_ref, stats_ref = simulate_cache_reference(twice, config)
    np.testing.assert_array_equal(out, out_ref)
    assert stats == stats_ref


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=400), min_size=8, max_size=160))
def test_larger_caches_never_fetch_more(line_list):
    """Property: growing an LRU cache (same geometry otherwise) never
    increases DRAM line fetches on the same stream (LRU inclusion)."""
    lines = np.array(line_list, dtype=np.int64)
    fetches = [
        simulate_cache(lines, CacheConfig.fully_associative(capacity, line_bytes=32))[
            1
        ].dram_line_fetches
        for capacity in (32 * 4, 32 * 16, 32 * 64, 32 * 512)
    ]
    assert fetches == sorted(fetches, reverse=True)


# ----------------------------------------------------- hierarchy end-to-end
def test_hierarchy_filters_traffic_and_reports_energy():
    grid = HashGridConfig(num_levels=8)
    points = generate_batch_points(TraceConfig(num_rays=64, points_per_ray=32, seed=1)).reshape(
        -1, 3
    )
    indices = level_lookup_indices(points, 7, grid, MortonLocalityHash())
    hierarchy = CacheHierarchy(CacheConfig(capacity_bytes=64 * 1024, ways=4, mshr_latency=4))
    filtered = hierarchy.filter_stream(_gather_stream(indices))
    stats = filtered.stats
    assert stats.l0_accesses == indices.size
    assert 0.0 < stats.l0_hit_rate < 1.0
    assert stats.dram_line_fetches <= stats.demand_lines
    assert stats.traffic_reduction >= 1.0
    assert stats.sram_energy_j > 0
    assert filtered.dram_addresses.size == stats.dram_line_fetches
    assert np.all(filtered.dram_addresses % hierarchy.cache.line_bytes == 0)
    # The DRAM stream is exactly the miss/prefetch-fill subset of the merged stream.
    mask = (filtered.outcomes == MISS) | (filtered.outcomes == PREFETCH_FILL)
    np.testing.assert_array_equal(filtered.merged_lines[mask], filtered.dram_lines)


def test_bad_stream_shapes_are_rejected():
    """The deprecated bare-ndarray shim still validates shapes (and warns)."""
    hierarchy = CacheHierarchy()
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        hierarchy.filter_stream(np.arange(10), accesses_per_point=8)
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        hierarchy.filter_stream(np.arange(16), accesses_per_point=0)
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        hierarchy.filter_stream(np.array([-4, 0, 0, 0, 0, 0, 0, 0]))


# -------------------------------------------------------- pipeline context
def test_context_memoizes_filtered_streams():
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=4)
    trace = TraceConfig(num_rays=16, points_per_ray=16, seed=0)
    hierarchy = CacheHierarchy(CacheConfig(capacity_bytes=16 * 1024))
    first = ctx.filtered_stream(
        hierarchy, grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 3
    )
    hits_before = ctx.stats.hits
    # An equal-but-distinct hierarchy object must hit the same cache entry.
    same = CacheHierarchy(CacheConfig(capacity_bytes=16 * 1024))
    second = ctx.filtered_stream(
        same, grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 3
    )
    assert second is first
    assert ctx.stats.hits == hits_before + 1
    # A different geometry computes a fresh stream.
    other = CacheHierarchy(CacheConfig(capacity_bytes=32 * 1024))
    third = ctx.filtered_stream(
        other, grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 3
    )
    assert third is not first


def test_context_hierarchy_serviced_batch_reduces_requests():
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=4)
    trace = TraceConfig(num_rays=32, points_per_ray=16, seed=0)
    hierarchy = CacheHierarchy(CacheConfig(capacity_bytes=256 * 1024, mshr_latency=4))
    args = (grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 3)
    cached = ctx.hierarchy_serviced_batch("lpddr4-2400", hierarchy, *args, stage="misses")
    baseline = ctx.hierarchy_serviced_batch("lpddr4-2400", hierarchy, *args, stage="demand")
    assert cached["total_requests"] <= baseline["total_requests"]
    assert cached["total_requests"] == ctx.filtered_stream(hierarchy, *args).stats.dram_line_fetches
    with pytest.raises(ValueError):
        ctx.hierarchy_serviced_batch("lpddr4-2400", hierarchy, *args, stage="everything")


# ------------------------------------------------------- accelerator model
def _measured_stats():
    grid = HashGridConfig(num_levels=8)
    points = generate_batch_points(TraceConfig(num_rays=32, points_per_ray=32, seed=0)).reshape(
        -1, 3
    )
    indices = level_lookup_indices(points, 7, grid, MortonLocalityHash())
    hierarchy = CacheHierarchy(CacheConfig(capacity_bytes=512 * 1024, ways=8, mshr_latency=4))
    return hierarchy.filter_stream(_gather_stream(indices)).stats


def test_nmp_accelerator_consumes_hierarchy_stats():
    stats = _measured_stats()
    assert stats.dram_traffic_fraction < 1.0
    base = NMPAccelerator()
    cached = NMPAccelerator(cache_stats=stats)
    # Fewer row accesses reach the banks, so HT steps get faster...
    assert cached.step_cost("HT").memory_seconds < base.step_cost("HT").memory_seconds
    assert cached.scene_training_seconds() < base.scene_training_seconds()
    # ...while the HT energy now includes the SRAM lookup energy.
    assert cached._hash_sram_energy_j() > 0


def test_comparison_model_memory_system_summary():
    base = ComparisonModel(NMPAccelerator(), XNX).memory_system_summary()
    assert base["cache_modelled"] is False and "l0_hit_rate" not in base
    stats = _measured_stats()
    summary = ComparisonModel(NMPAccelerator(cache_stats=stats), XNX).memory_system_summary()
    assert summary["cache_modelled"] is True
    assert 0.0 < summary["overall_hit_rate"] <= 1.0
    assert summary["dram_traffic_fraction"] == pytest.approx(stats.dram_traffic_fraction)
    assert summary["sram_energy_j_per_iteration"] > 0
    assert 0.0 < summary["sram_energy_fraction"] < 1.0


# ------------------------------------------------------------- experiment
def test_fig12_experiment_reports_traffic_reduction():
    from repro.experiments import run_fig12

    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=6)
    trace = TraceConfig(num_rays=32, points_per_ray=32, seed=0)
    result = run_fig12.__wrapped__(grid, trace, (16, 256), context=ctx, timing=True)
    assert [row["cache_kb"] for row in result.rows] == [16, 256]
    for row in result.rows:
        assert 0.0 <= row["cache_hit_rate"] <= 1.0
        assert row["dram_lines"] > 0 and row["uncached_dram_lines"] > 0
        assert row["traffic_reduction"] == pytest.approx(
            row["uncached_dram_lines"] / row["dram_lines"]
        )
        assert row["dram_cycles"] > 0 and row["uncached_dram_cycles"] > 0
    # Larger caches keep more lines on chip.
    assert result.rows[1]["dram_lines"] <= result.rows[0]["dram_lines"]
    # The baseline DRAM simulation is shared between the two cache sizes.
    demand_runs = sum(
        1
        for key in ctx._cache
        if isinstance(key, tuple) and key[0] == "hierarchy_serviced_batch" and key[2] == "demand"
    )
    assert demand_runs == 1
    with pytest.raises(ValueError):
        run_fig12.__wrapped__(grid, trace, (), context=ctx)
