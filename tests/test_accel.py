"""Tests for the NMP accelerator: PEs, scratchpad, ISA, microarchitecture, system."""

from __future__ import annotations

import pytest

from repro.accel import (
    FP32_PE_GROUP,
    INT32_PE_GROUP,
    AlgorithmLocality,
    BankMicroarchitecture,
    ComparisonModel,
    InstructionStream,
    NMPAccelerator,
    NMPConfig,
    Opcode,
    PEGroup,
    Scratchpad,
    build_step_program,
)
from repro.core.parallelism import all_data_parallel_plan
from repro.gpu import TX2, XNX


# ----------------------------------------------------------------------- PEs
def test_pe_group_throughput_and_energy():
    group = PEGroup(
        name="test",
        num_pes=128,
        frequency_mhz=100.0,
        ops_per_pe_per_cycle=1.0,
        energy_pj_per_op=2.0,
    )
    group.validate()
    assert group.peak_ops_per_second == pytest.approx(128 * 100e6)
    assert group.cycles_for(1280) == pytest.approx(10.0)
    assert group.seconds_for(1280) == pytest.approx(10.0 / 100e6)
    assert group.energy_for(1e6) == pytest.approx(2e-6)
    with pytest.raises(ValueError):
        group.cycles_for(-1)
    with pytest.raises(ValueError):
        group.cycles_for(10, efficiency=0.0)
    with pytest.raises(ValueError):
        PEGroup(name="bad", num_pes=0).validate()


def test_table3_pe_configuration():
    assert INT32_PE_GROUP.num_pes == 256
    assert FP32_PE_GROUP.num_pes == 256
    assert INT32_PE_GROUP.frequency_mhz == 200.0
    assert FP32_PE_GROUP.frequency_mhz == 200.0


def test_scratchpad_capacity_and_transfers():
    spm = Scratchpad()
    spm.validate()
    assert spm.capacity_bytes == 2048  # Table III: 2 KB
    assert spm.fits(1024) and not spm.fits(4096)
    assert spm.transfer_cycles(1280) == pytest.approx(10.0)
    assert spm.access_energy_j(1000) > 0
    with pytest.raises(ValueError):
        spm.transfer_cycles(-1)


# ----------------------------------------------------------------------- ISA
def test_instruction_stream_building_and_counting():
    stream = InstructionStream("demo")
    stream.append(Opcode.ROW_READ, 1024)
    stream.append(Opcode.HASH, 64)
    stream.append(Opcode.HASH, 32)
    assert len(stream) == 3
    assert stream.count(Opcode.HASH) == 2
    assert stream.total_operand(Opcode.HASH) == 96


@pytest.mark.parametrize("step", ["HT", "HT_b", "MLP", "MLP_b"])
def test_build_step_program_contains_expected_opcodes(step):
    program = build_step_program(
        step, num_points=1024, num_levels=4, mac_ops=10_000, rows_touched=8
    )
    assert len(program) > 0
    assert program.count(Opcode.SYNC) == 1
    if step == "HT":
        assert program.count(Opcode.HASH) == 1
        assert program.count(Opcode.ROW_READ) == 8
        assert program.count(Opcode.INTERP) == 1
    if step == "HT_b":
        assert program.count(Opcode.SCATTER_ADD) == 1
        assert program.count(Opcode.ROW_WRITE) == 8
    if step in ("MLP", "MLP_b"):
        assert program.count(Opcode.MAC) == 1


def test_build_step_program_validation():
    with pytest.raises(ValueError):
        build_step_program("conv", 10, 1)
    with pytest.raises(ValueError):
        build_step_program("HT", -1, 1)


# ------------------------------------------------------------- microarchitecture
def test_microarchitecture_area_and_power_match_paper():
    """Sec. V-C: 3.6 mm^2 and 596.3 mW per bank microarchitecture."""
    micro = BankMicroarchitecture()
    assert micro.area_mm2() == pytest.approx(3.6, rel=0.05)
    assert micro.power_mw() == pytest.approx(596.3, rel=0.05)
    assert micro.area_fraction_of_bank() == pytest.approx(0.015, rel=0.25)
    summary = micro.summary()
    assert summary["int32_pes"] == 256 and summary["fp32_pes"] == 256
    assert summary["scratchpad_kb"] == 2.0
    with pytest.raises(ValueError):
        micro.power_mw(int_activity=2.0)
    with pytest.raises(ValueError):
        micro.area_fraction_of_bank(0.0)


def test_microarchitecture_compute_time_overlaps_int_and_fp():
    micro = BankMicroarchitecture()
    fp_only = micro.compute_seconds(1e9, 0.0)
    int_only = micro.compute_seconds(0.0, 1e9)
    both = micro.compute_seconds(1e9, 1e9)
    assert both == pytest.approx(max(fp_only, int_only))
    assert micro.compute_energy_j(1e9, 1e9) > 0


# ------------------------------------------------------------------ NMP system
def test_algorithm_locality_validation():
    AlgorithmLocality.instant_nerf().validate()
    AlgorithmLocality.ingp_baseline().validate()
    with pytest.raises(ValueError):
        AlgorithmLocality(row_requests_per_cube=0.0).validate()
    with pytest.raises(ValueError):
        AlgorithmLocality(cube_sharing_run_length=0.5).validate()
    with pytest.raises(ValueError):
        AlgorithmLocality(bank_conflict_stall_factor=0.5).validate()


def test_nmp_config_validation():
    NMPConfig().validate()
    with pytest.raises(ValueError):
        NMPConfig(num_active_banks=0).validate()
    with pytest.raises(ValueError):
        NMPConfig(compute_efficiency=0.0).validate()
    with pytest.raises(ValueError):
        NMPConfig(subarray_parallel_speedup=0.5).validate()
    assert NMPConfig().effective_interbank_bandwidth_gbps > 10.0
    assert NMPConfig(interbank_bandwidth_gbps=5.0).effective_interbank_bandwidth_gbps == 5.0


def test_nmp_iteration_cost_structure():
    accelerator = NMPAccelerator()
    cost = accelerator.iteration_cost()
    assert set(cost.steps) == {"HT", "MLP", "MLP_b", "HT_b"}
    assert cost.seconds > 0
    assert cost.energy_j > 0
    assert sum(cost.breakdown().values()) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        accelerator.step_cost("conv")


def test_nmp_training_time_is_instant_compared_to_edge_gpus():
    """Headline claim: per-scene training drops from hours to minutes."""
    accelerator = NMPAccelerator()
    seconds = accelerator.scene_training_seconds()
    assert 30.0 < seconds < 1500.0  # minutes, not hours
    assert accelerator.scene_training_energy_j() > 0
    assert accelerator.average_power_w() < XNX.power_w  # NMP draws less than the edge GPU


def test_instant_nerf_locality_beats_ingp_baseline_on_nmp():
    """Algorithm/accelerator co-design: the Morton+ray-first locality matters."""
    ours = NMPAccelerator(locality=AlgorithmLocality.instant_nerf())
    baseline = NMPAccelerator(locality=AlgorithmLocality.ingp_baseline())
    assert baseline.scene_training_seconds() > 1.5 * ours.scene_training_seconds()


def test_more_banks_reduce_latency():
    small = NMPAccelerator(NMPConfig(num_active_banks=8))
    large = NMPAccelerator(NMPConfig(num_active_banks=32))
    assert large.scene_training_seconds() < small.scene_training_seconds()


def test_heterogeneous_plan_beats_all_data_parallel_on_nmp():
    hetero = NMPAccelerator()
    data_parallel = NMPAccelerator(NMPConfig(plan=all_data_parallel_plan()))
    assert hetero.iteration_cost().seconds < data_parallel.iteration_cost().seconds


def test_comparison_model_fig11_ranges():
    """Fig. 11 shape: order-of-magnitude speedup and energy gains over edge GPUs."""
    accelerator = NMPAccelerator()
    xnx = ComparisonModel(accelerator, XNX).compare_scene("lego")
    tx2 = ComparisonModel(accelerator, TX2).compare_scene("lego")
    assert xnx.speedup > 10.0
    assert tx2.speedup > 60.0
    assert tx2.speedup > xnx.speedup
    assert xnx.energy_efficiency_improvement > 20.0
    assert tx2.energy_efficiency_improvement > 100.0
    with pytest.raises(ValueError):
        ComparisonModel(accelerator, XNX).compare_scene("lego", scene_difficulty=0.0)


def test_comparison_model_modelled_gpu_time_fallback():
    accelerator = NMPAccelerator()
    modelled = ComparisonModel(accelerator, XNX, use_measured_gpu_time=False).compare_scene("lego")
    assert modelled.gpu_seconds != pytest.approx(XNX.measured_training_s)
    assert modelled.speedup > 5.0
