"""Tests for the multi-resolution hash encoding and frequency encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import MortonLocalityHash
from repro.nerf.encoding import (
    FrequencyEncoding,
    HashGridConfig,
    HashGridEncoding,
    level_resolutions,
)


def test_level_resolutions_geometric_progression():
    res = level_resolutions(16, 16, 2048)
    assert res[0] == 16
    assert res[-1] == 2048
    assert all(res[i] <= res[i + 1] for i in range(15))


def test_level_resolutions_validation():
    with pytest.raises(ValueError):
        level_resolutions(0, 16, 2048)
    with pytest.raises(ValueError):
        level_resolutions(4, 32, 16)
    assert level_resolutions(1, 16, 2048) == [16]


def test_hash_grid_config_table_sizes():
    config = HashGridConfig(num_levels=16, table_size=2**19, features_per_entry=2)
    # Coarse levels store the dense grid; fine levels are capped at T.
    assert config.level_table_entries(0) == (config.resolutions[0] + 1) ** 3
    assert config.level_table_entries(15) == 2**19
    assert not config.level_uses_hash(0)
    assert config.level_uses_hash(15)
    # Paper-scale table is ~25 MB at FP16.
    assert config.table_bytes(dtype_bytes=2) / 1024**2 == pytest.approx(25.0, rel=0.15)
    assert config.output_dim == 32


def test_encoding_forward_shape_and_cache(small_grid_config, rng):
    enc = HashGridEncoding(small_grid_config, rng=rng)
    pos = rng.uniform(0, 1, (10, 3))
    feats = enc.forward(pos)
    assert feats.shape == (10, small_grid_config.output_dim)
    assert feats.dtype == np.float32
    with pytest.raises(ValueError):
        enc.forward(rng.uniform(0, 1, (10, 2)))


def test_encoding_backward_requires_forward(small_grid_config):
    enc = HashGridEncoding(small_grid_config)
    with pytest.raises(RuntimeError):
        enc.backward(np.zeros((1, small_grid_config.output_dim)))


def test_encoding_is_continuous_in_position(small_grid_config, rng):
    """Trilinear interpolation => small position changes give small feature changes."""
    enc = HashGridEncoding(small_grid_config, rng=rng)
    for e in enc.embeddings:
        e[...] = rng.normal(0, 1, e.shape).astype(np.float32)
    pos = rng.uniform(0.1, 0.9, (20, 3))
    f0 = enc.forward(pos)
    f1 = enc.forward(pos + 1e-5)
    assert np.max(np.abs(f0 - f1)) < 1e-2


def test_encoding_gradients_match_finite_differences(small_grid_config, rng):
    enc = HashGridEncoding(small_grid_config, rng=rng)
    for e in enc.embeddings:
        e[...] = rng.normal(0, 0.5, e.shape).astype(np.float32)
    pos = rng.uniform(0.05, 0.95, (6, 3))
    upstream = rng.normal(size=(6, small_grid_config.output_dim)).astype(np.float32)

    enc.forward(pos)
    enc.zero_grad()
    enc.backward(upstream)

    eps = 1e-3
    for level in range(small_grid_config.num_levels):
        grad = enc.grads[level]
        if not np.any(np.abs(grad) > 1e-7):
            continue
        idx = np.unravel_index(np.argmax(np.abs(grad)), grad.shape)
        original = enc.embeddings[level][idx]
        enc.embeddings[level][idx] = original + eps
        plus = float((enc.forward(pos) * upstream).sum())
        enc.embeddings[level][idx] = original - eps
        minus = float((enc.forward(pos) * upstream).sum())
        enc.embeddings[level][idx] = original
        fd = (plus - minus) / (2 * eps)
        assert fd == pytest.approx(float(grad[idx]), rel=0.05, abs=1e-3)


def test_encoding_with_morton_hash_matches_interface(small_grid_config, rng):
    config = HashGridConfig(
        num_levels=small_grid_config.num_levels,
        table_size=small_grid_config.table_size,
        base_resolution=small_grid_config.base_resolution,
        max_resolution=small_grid_config.max_resolution,
        hash_fn=MortonLocalityHash(),
    )
    enc = HashGridEncoding(config, rng=rng)
    feats = enc.forward(rng.uniform(0, 1, (5, 3)))
    assert feats.shape == (5, config.output_dim)


def test_fused_forward_matches_per_level_reference(small_grid_config, rng):
    """The fused multi-level forward must be bit-identical to the level loop."""
    enc = HashGridEncoding(small_grid_config, rng=rng)
    for e in enc.embeddings:
        e[...] = rng.normal(0, 1, e.shape).astype(np.float32)
    pos = rng.uniform(-0.1, 1.1, (200, 3))  # includes out-of-range positions
    fused = enc.forward(pos)
    reference = enc.forward_reference(pos)
    np.testing.assert_array_equal(fused, reference)


def test_multilevel_vertex_indices_match_per_level(small_grid_config, rng):
    enc = HashGridEncoding(small_grid_config, rng=rng)
    pos = rng.uniform(0, 1, (64, 3))
    idx_all, w_all = enc.multilevel_vertex_indices(pos)
    assert idx_all.shape == (small_grid_config.num_levels, 64, 8)
    assert w_all.shape == (small_grid_config.num_levels, 64, 8)
    for level in range(small_grid_config.num_levels):
        idx, w, _ = enc.vertex_indices(pos, level)
        np.testing.assert_array_equal(idx_all[level], idx)
        np.testing.assert_array_equal(w_all[level], w)


def test_bincount_backward_matches_scatter_reference(small_grid_config, rng):
    """Segment-sum backward must match the np.add.at oracle within float tolerance."""
    enc = HashGridEncoding(small_grid_config, rng=rng)
    pos = rng.uniform(0, 1, (300, 3))
    upstream = rng.normal(size=(300, small_grid_config.output_dim)).astype(np.float32)
    enc.forward(pos)
    enc.zero_grad()
    enc.backward(upstream)
    fast = [g.copy() for g in enc.grads]
    enc.forward(pos)
    enc.zero_grad()
    enc.backward_reference(upstream)
    for fast_grad, ref_grad in zip(fast, enc.grads):
        np.testing.assert_allclose(fast_grad, ref_grad, atol=1e-5)


def test_backward_reference_requires_forward(small_grid_config):
    enc = HashGridEncoding(small_grid_config)
    with pytest.raises(RuntimeError):
        enc.backward_reference(np.zeros((1, small_grid_config.output_dim)))


def test_vertex_indices_weights_sum_to_one(small_grid_config, rng):
    enc = HashGridEncoding(small_grid_config, rng=rng)
    pos = rng.uniform(0, 1, (50, 3))
    for level in range(small_grid_config.num_levels):
        idx, weights, base = enc.vertex_indices(pos, level)
        assert idx.shape == (50, 8)
        assert weights.shape == (50, 8)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-5)
        assert np.all(idx >= 0)
        assert np.all(idx < small_grid_config.level_table_entries(level))


def test_frequency_encoding_shapes_and_range():
    enc = FrequencyEncoding(input_dim=3, num_frequencies=4, include_input=True)
    assert enc.output_dim == 3 + 3 * 4 * 2
    x = np.random.default_rng(0).uniform(-1, 1, (7, 3))
    out = enc.forward(x)
    assert out.shape == (7, enc.output_dim)
    # sin/cos components bounded by 1.
    assert np.all(np.abs(out[:, 3:]) <= 1.0 + 1e-6)
    with pytest.raises(ValueError):
        enc.forward(np.zeros((4, 2)))


@given(st.integers(2, 8), st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_frequency_encoding_output_dim_property(dim, freqs):
    enc = FrequencyEncoding(input_dim=dim, num_frequencies=freqs, include_input=False)
    assert enc.output_dim == dim * freqs * 2
    assert enc.forward(np.zeros((3, dim))).shape == (3, enc.output_dim)
