"""Tests for the on-disk artifact store, sweep executors and resumability.

Covers the PR-4 acceptance points at tier-1 scale:

* store roundtrip per payload type, atomic writes, schema invalidation;
* context read-through (a warm store means zero computations);
* cross-process determinism — serial, thread and process executors produce
  byte-identical ``SweepResult.to_json()``;
* a killed-then-resumed sweep equals a fresh full run;
* store hits never recompute (asserted via a compute-counter hook).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.core.streaming import LocalityReport, StreamingOrder
from repro.experiments.runner import (
    ExperimentResult,
    atomic_write_text,
    write_json_artifact,
)
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import (
    STORE_MISS,
    ArtifactStore,
    ExperimentSpec,
    ParamSpec,
    SimulationContext,
    key_digest,
    sweep,
)
from repro.pipeline.sweep import ProcessSweepExecutor, cell_store_key, resolve_executor
from repro.workloads.traces import TraceConfig

FIG06_EXTRA = {"resolution": "128", "table_size": "4096"}
FIG06_GRID = {"num_cubes": ["64", "128"]}


# ------------------------------------------------------------------- digests
def test_key_digest_stable_and_distinct():
    key = ("batch_points", ("TraceConfig", (("num_rays", 8),)))
    assert key_digest(key) == key_digest(("batch_points", ("TraceConfig", (("num_rays", 8),))))
    assert key_digest(key) != key_digest(("batch_points", ("TraceConfig", (("num_rays", 9),))))
    # tuples and lists address the same payload (canonical JSON form)
    assert key_digest((1, 2)) == key_digest([1, 2])
    # type distinctions that matter survive canonicalization
    assert key_digest(("a", 1)) != key_digest(("a", 1.0))
    assert key_digest(("a", "1")) != key_digest(("a", 1))


# ----------------------------------------------------------------- roundtrip
@pytest.mark.parametrize(
    "value",
    [
        42,
        3.25,
        "text",
        True,
        None,
        {"total_requests": 7, "row_hit_rate": 0.5, "nested": [1, 2.5, "x", None]},
        [1, 2, 3],
    ],
)
def test_store_roundtrips_json_values(tmp_path, value):
    store = ArtifactStore(tmp_path)
    assert store.put(("k", "json"), value)
    assert ArtifactStore(tmp_path).get(("k", "json")) == value


def test_store_roundtrips_ndarray(tmp_path):
    store = ArtifactStore(tmp_path)
    array = np.arange(24, dtype=np.int64).reshape(3, 8)
    assert store.put(("k", "arr"), array)
    loaded = ArtifactStore(tmp_path).get(("k", "arr"))
    assert loaded.dtype == array.dtype and np.array_equal(loaded, array)
    assert not loaded.flags.writeable  # shared artifacts are read-only


def test_store_roundtrips_experiment_result(tmp_path):
    store = ArtifactStore(tmp_path)
    result = ExperimentResult("Fig. X", "demo", rows=[{"a": 1, "b": 2.5}], notes="n")
    assert store.put(("k", "res"), result)
    loaded = ArtifactStore(tmp_path).get(("k", "res"))
    assert isinstance(loaded, ExperimentResult)
    assert loaded.to_json() == result.to_json()


def test_store_roundtrips_locality_reports(tmp_path):
    store = ArtifactStore(tmp_path)
    reports = [
        LocalityReport(
            level=i,
            baseline_requests=10 * i,
            optimized_requests=i,
            sharing_run_length=1.5,
            register_hit_rate=0.25,
        )
        for i in range(1, 4)
    ]
    assert store.put(("k", "loc"), reports)
    loaded = ArtifactStore(tmp_path).get(("k", "loc"))
    assert loaded == reports


def test_store_skips_unstorable_values(tmp_path):
    store = ArtifactStore(tmp_path)
    assert not store.put(("k", "obj"), object())
    assert not store.put(("k", "objarr"), np.array([object()], dtype=object))
    assert store.stats.skipped == 2
    assert store.get(("k", "obj")) is STORE_MISS
    assert len(store) == 0


def test_store_miss_and_corrupt_payloads_are_quarantined(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.get(("missing",)) is STORE_MISS
    assert store.stats.misses == 1
    store.put(("k",), 1)
    # corrupt the payload on disk: treated as a miss, counted as an error,
    # and deleted so the caller's recompute repairs the key
    payload = next(store.path.glob("*/*.json"))
    payload.write_text("{not json")
    fresh = ArtifactStore(tmp_path)
    assert fresh.get(("k",)) is STORE_MISS
    assert fresh.stats.errors == 1
    assert not payload.exists(), "corrupt payloads must be removed, not kept forever"
    assert fresh.put(("k",), 1)  # the rewrite is not blocked by target.exists()
    assert ArtifactStore(tmp_path).get(("k",)) == 1


def test_store_put_is_best_effort_on_io_errors(tmp_path):
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("")
    store = ArtifactStore(blocker / "store")  # every mkdir/write fails
    assert store.put(("k",), 1) is False
    assert store.stats.errors == 1
    assert store.get(("k",)) is STORE_MISS


def test_store_writes_are_atomic_and_idempotent(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put(("k",), {"v": 1})
    store.put(("k",), {"v": 1})  # second write is a no-op (content-addressed)
    assert len(store) == 1
    assert not list(store.path.glob("**/*.tmp"))  # no temp debris
    assert store.stats.writes == 1


def test_store_schema_version_invalidates(tmp_path):
    v1 = ArtifactStore(tmp_path, schema_version=1)
    v1.put(("k",), 123)
    v2 = ArtifactStore(tmp_path, schema_version=2)
    assert v2.get(("k",)) is STORE_MISS  # old payloads are not addressed
    v2.put(("k",), 456)
    assert ArtifactStore(tmp_path, schema_version=1).get(("k",)) == 123
    assert ArtifactStore(tmp_path, schema_version=2).get(("k",)) == 456


# ------------------------------------------------------------- read-through
def test_context_reads_through_store_without_recomputing(tmp_path):
    trace = TraceConfig(num_rays=8, points_per_ray=8, seed=3)
    grid = HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64)
    cold = SimulationContext(store=ArtifactStore(tmp_path))
    points = cold.batch_points(trace)
    requests = cold.row_requests(grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 0)
    assert cold.stats.computes > 0 and cold.stats.store_hits == 0

    warm = SimulationContext(store=ArtifactStore(tmp_path))
    assert np.array_equal(warm.batch_points(trace), points)
    assert (
        warm.row_requests(grid, trace, MortonLocalityHash(), StreamingOrder.RAY_FIRST, 0)
        == requests
    )
    assert warm.stats.computes == 0, "a warm store must answer every artifact request"
    assert warm.stats.store_hits == warm.stats.misses


# --------------------------------------------------- executors / determinism
def test_resolve_executor_names_and_errors():
    assert resolve_executor("auto", 1).name == "serial"
    assert resolve_executor("auto", 4).name == "thread"
    assert resolve_executor("process", 2).name == "process"
    custom = ProcessSweepExecutor(2)
    assert resolve_executor(custom, 8) is custom
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("gpu", 2)
    with pytest.raises(ValueError, match="positive"):
        ProcessSweepExecutor(0)


def test_serial_thread_process_executors_byte_identical():
    """Cross-process determinism: identical SweepResult.to_json() everywhere."""
    serial = sweep("fig06", FIG06_GRID, executor="serial", extra_params=FIG06_EXTRA)
    threaded = sweep("fig06", FIG06_GRID, workers=2, executor="thread", extra_params=FIG06_EXTRA)
    procs = sweep("fig06", FIG06_GRID, workers=2, executor="process", extra_params=FIG06_EXTRA)
    assert not serial.failed and not threaded.failed and not procs.failed
    assert serial.to_json() == threaded.to_json() == procs.to_json()
    assert (serial.executor, threaded.executor, procs.executor) == ("serial", "thread", "process")


def test_process_executor_spawn_matches_fork():
    """The portable spawn start method produces the same bytes as fork."""
    fork = sweep(
        "fig06", FIG06_GRID,
        executor=ProcessSweepExecutor(2, start_method="fork"),
        extra_params=FIG06_EXTRA,
    )
    spawn = sweep(
        "fig06", FIG06_GRID,
        executor=ProcessSweepExecutor(2, start_method="spawn"),
        extra_params=FIG06_EXTRA,
    )
    assert fork.to_json() == spawn.to_json()


def test_process_executor_shares_arrays_and_uses_store(tmp_path):
    """fig07 cells adopt the parent's shared-memory arrays and fill the store."""
    store = ArtifactStore(tmp_path)
    grid = {"hash": ["morton", "original"]}
    extra = {"rays": "16", "points_per_ray": "16"}
    serial = sweep("fig07", grid, executor="serial", extra_params=extra)
    procs = sweep(
        "fig07", grid,
        executor=ProcessSweepExecutor(2, min_shared_bytes=1024),
        extra_params=extra,
        store=store,
    )
    assert not procs.failed
    assert procs.to_json() == serial.to_json()
    assert len(store) > 2, "workers should persist simulation artifacts, not just cells"


def test_process_executor_reports_cell_errors():
    result = sweep(
        "fig06",
        {"num_cubes": ["64", "-1"]},  # negative cube count fails inside the worker
        executor=ProcessSweepExecutor(2),
        extra_params=FIG06_EXTRA,
    )
    assert result.cells[0].error is None
    assert result.cells[1].error is not None


def test_failing_sweep_is_byte_identical_across_executors():
    """Cell tracebacks are normalized (harness frames dropped), so even a
    partially failing sweep serializes identically under every executor."""
    grid = {"num_cubes": ["64", "-1"]}
    serial = sweep("fig06", grid, executor="serial", extra_params=FIG06_EXTRA)
    threaded = sweep("fig06", grid, workers=2, executor="thread", extra_params=FIG06_EXTRA)
    procs = sweep("fig06", grid, workers=2, executor="process", extra_params=FIG06_EXTRA)
    assert serial.cells[1].error is not None
    assert serial.to_json() == threaded.to_json() == procs.to_json()


# ------------------------------------------------------------------- resume
def _counting_spec(counter: list) -> ExperimentSpec:
    def runner(ctx, x: int = 0) -> ExperimentResult:
        counter.append(x)
        return ExperimentResult("Test", "counting", rows=[{"x": x, "y": 2 * x}])

    return ExperimentSpec(
        name="counting-test",
        paper_ref="-",
        title="counting",
        runner=runner,
        params=(ParamSpec("x", int, 0),),
    )


def test_store_hits_never_recompute(tmp_path):
    """Resume granularity: cells found in the store skip their runner."""
    calls: list = []
    spec = _counting_spec(calls)
    store = ArtifactStore(tmp_path)
    first = sweep(spec, {"x": [1, 2, 3]}, store=store)
    assert not first.failed and len(calls) == 3

    second = sweep(spec, {"x": [1, 2, 3]}, store=ArtifactStore(tmp_path), resume=True)
    assert len(calls) == 3, "a fully warm store must not invoke the runner at all"
    assert all(cell.resumed for cell in second.cells)
    assert second.to_json() == first.to_json()


def test_killed_then_resumed_sweep_equals_fresh_run(tmp_path):
    """A sweep interrupted after some cells continues to the full result."""
    calls: list = []
    spec = _counting_spec(calls)
    # "Killed" run: only a sub-grid completed before the interruption.
    sweep(spec, {"x": [1, 2]}, store=ArtifactStore(tmp_path))
    assert len(calls) == 2

    resumed = sweep(spec, {"x": [1, 2, 3, 4]}, store=ArtifactStore(tmp_path), resume=True)
    assert len(calls) == 4, "resume must evaluate exactly the missing cells"
    assert [cell.resumed for cell in resumed.cells] == [True, True, False, False]

    fresh = sweep(_counting_spec([]), {"x": [1, 2, 3, 4]})
    assert resumed.to_json() == fresh.to_json()


def test_resume_requires_store():
    with pytest.raises(ValueError, match="requires a store"):
        sweep("fig06", FIG06_GRID, resume=True)


def test_cell_store_key_distinguishes_params_and_seed():
    base = cell_store_key("fig07", {"hash": "morton"}, 0)
    assert base == cell_store_key("fig07", {"hash": "morton"}, 0)
    assert base != cell_store_key("fig07", {"hash": "original"}, 0)
    assert base != cell_store_key("fig07", {"hash": "morton"}, 1)
    assert base != cell_store_key("fig09", {"hash": "morton"}, 0)


def test_cell_store_key_binds_defaults_and_types():
    """Keys use the fully bound config: defaults included, raw values parsed."""
    base = cell_store_key("fig07", {"hash": "morton"}, 0)
    # passing a parameter at its default value hits the same cell
    assert base == cell_store_key("fig07", {"hash": "morton", "rays": "128"}, 0)
    # raw CLI strings and typed API values address the same payload
    assert cell_store_key("fig07", {"rays": "256"}, 0) == cell_store_key(
        "fig07", {"rays": 256}, 0
    )
    # ... and a non-default value is a different cell
    assert base != cell_store_key("fig07", {"hash": "morton", "rays": "256"}, 0)


# ---------------------------------------------------------- artifact writing
def test_atomic_write_text_refuses_differing_overwrite(tmp_path):
    target = tmp_path / "deep" / "nested" / "artifact.json"
    atomic_write_text(target, "one\n")  # creates parent directories
    assert target.read_text() == "one\n"
    atomic_write_text(target, "one\n")  # identical rewrite is a no-op
    with pytest.raises(FileExistsError, match="refusing to overwrite"):
        atomic_write_text(target, "two\n")
    assert target.read_text() == "one\n"
    atomic_write_text(target, "two\n", overwrite=True)
    assert target.read_text() == "two\n"
    assert not list(tmp_path.glob("**/*.tmp"))


def test_write_json_artifact_is_atomic_and_guarded(tmp_path):
    result = ExperimentResult("Fig. X", "demo", rows=[{"a": 1}])
    path = write_json_artifact(result, tmp_path / "sub" / "r.json")
    assert json.loads(path.read_text())["experiment_id"] == "Fig. X"
    write_json_artifact(result, path)  # idempotent
    differing = ExperimentResult("Fig. X", "demo", rows=[{"a": 2}])
    with pytest.raises(FileExistsError):
        write_json_artifact(differing, path)
    write_json_artifact(differing, path, overwrite=True)


def test_sweep_result_write_creates_parents_and_refuses_divergence(tmp_path):
    calls: list = []
    spec = _counting_spec(calls)
    first = sweep(spec, {"x": [1]})
    out = tmp_path / "artifacts" / "nested"
    first.write(out)  # parents created
    first.write(out)  # byte-identical rewrite passes
    diverged = sweep(_counting_spec([]), {"x": [2]})
    diverged.grid = first.grid  # same file names, different cell content
    diverged.cells[0].params = dict(first.cells[0].params)
    with pytest.raises(FileExistsError, match="refusing to overwrite"):
        diverged.write(out)
    diverged.write(out, overwrite=True)
