"""Tests for the iNGP and vanilla-NeRF radiance fields (forward + backward)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.encoding import HashGridConfig
from repro.nerf.field import InstantNGPField, VanillaNeRFField


def _unit_directions(rng, n):
    d = rng.normal(size=(n, 3))
    return d / np.linalg.norm(d, axis=1, keepdims=True)


@pytest.fixture()
def ingp_field(small_grid_config, rng):
    field = InstantNGPField(small_grid_config, hidden_dim=16, geo_features=7, rng=rng)
    # Boost embeddings so gradient checks are well conditioned.
    for emb in field.encoding.embeddings:
        emb[...] = rng.normal(0, 0.5, emb.shape).astype(np.float32)
    return field


def test_ingp_forward_shapes_and_ranges(ingp_field, rng):
    pos = rng.uniform(0, 1, (12, 3))
    dirs = _unit_directions(rng, 12)
    sigma, rgb = ingp_field.forward(pos, dirs)
    assert sigma.shape == (12,)
    assert rgb.shape == (12, 3)
    assert np.all(sigma >= 0)  # softplus output
    assert np.all((rgb >= 0) & (rgb <= 1))  # sigmoid output


def test_ingp_input_validation(ingp_field, rng):
    with pytest.raises(ValueError):
        ingp_field.forward(rng.uniform(size=(5, 2)), rng.uniform(size=(5, 3)))
    with pytest.raises(ValueError):
        ingp_field.forward(rng.uniform(size=(5, 3)), rng.uniform(size=(4, 3)))
    with pytest.raises(RuntimeError):
        InstantNGPField(HashGridConfig(num_levels=2, table_size=64, max_resolution=16)).backward(
            np.zeros(3), np.zeros((3, 3))
        )


def test_ingp_view_dependence(ingp_field, rng):
    pos = rng.uniform(0, 1, (6, 3))
    d1 = _unit_directions(rng, 6)
    d2 = _unit_directions(rng, 6)
    sigma1, rgb1 = ingp_field.forward(pos, d1)
    sigma2, rgb2 = ingp_field.forward(pos, d2)
    # Density depends only on position, color also on view direction.
    np.testing.assert_allclose(sigma1, sigma2, rtol=1e-6)
    assert not np.allclose(rgb1, rgb2)


def test_ingp_parameter_and_gradient_lists_align(ingp_field):
    params = ingp_field.parameters()
    grads = ingp_field.gradients()
    assert len(params) == len(grads)
    for p, g in zip(params, grads):
        assert p.shape == g.shape
    assert ingp_field.num_parameters() == sum(p.size for p in params)


@pytest.mark.parametrize("component", ["density_w", "color_w", "embedding"])
def test_ingp_gradients_match_finite_differences(ingp_field, rng, component):
    pos = rng.uniform(0.05, 0.95, (8, 3))
    dirs = _unit_directions(rng, 8)
    grad_sigma = rng.normal(size=8)
    grad_rgb = rng.normal(size=(8, 3))

    def scalar():
        s, c = ingp_field.forward(pos, dirs)
        return float((s * grad_sigma).sum() + (c * grad_rgb).sum())

    ingp_field.forward(pos, dirs)
    ingp_field.zero_grad()
    ingp_field.backward(grad_sigma, grad_rgb)
    if component == "density_w":
        param, grad = ingp_field.density_mlp.weights[1], ingp_field.density_mlp.weight_grads[1]
    elif component == "color_w":
        param, grad = ingp_field.color_mlp.weights[0], ingp_field.color_mlp.weight_grads[0]
    else:
        param, grad = ingp_field.encoding.embeddings[0], ingp_field.encoding.grads[0]
    idx = np.unravel_index(np.argmax(np.abs(grad)), param.shape)
    eps = 1e-3
    original = param[idx]
    param[idx] = original + eps
    plus = scalar()
    param[idx] = original - eps
    minus = scalar()
    param[idx] = original
    fd = (plus - minus) / (2 * eps)
    assert fd == pytest.approx(float(grad[idx]), rel=0.08, abs=2e-3)


def test_vanilla_field_forward_and_backward(rng):
    field = VanillaNeRFField(hidden_dim=32, num_hidden_layers=2, rng=rng)
    pos = rng.uniform(0, 1, (10, 3))
    dirs = _unit_directions(rng, 10)
    sigma, rgb = field.forward(pos, dirs)
    assert sigma.shape == (10,) and rgb.shape == (10, 3)
    assert np.all(sigma >= 0) and np.all((rgb >= 0) & (rgb <= 1))
    field.zero_grad()
    field.backward(rng.normal(size=10), rng.normal(size=(10, 3)))
    assert any(np.any(g != 0) for g in field.gradients())


def test_vanilla_field_gradcheck(rng):
    field = VanillaNeRFField(hidden_dim=16, num_hidden_layers=1, rng=rng)
    pos = rng.uniform(0, 1, (6, 3))
    dirs = _unit_directions(rng, 6)
    grad_sigma = rng.normal(size=6)
    grad_rgb = rng.normal(size=(6, 3))

    def scalar():
        s, c = field.forward(pos, dirs)
        return float((s * grad_sigma).sum() + (c * grad_rgb).sum())

    field.forward(pos, dirs)
    field.zero_grad()
    field.backward(grad_sigma, grad_rgb)
    param = field.mlp.weights[1]
    grad = field.mlp.weight_grads[1]
    idx = np.unravel_index(np.argmax(np.abs(grad)), param.shape)
    eps = 1e-3
    original = param[idx]
    param[idx] = original + eps
    plus = scalar()
    param[idx] = original - eps
    minus = scalar()
    param[idx] = original
    assert (plus - minus) / (2 * eps) == pytest.approx(float(grad[idx]), rel=0.08, abs=2e-3)
