"""Equivalence suite for occupancy-grid adaptive ray marching.

The load-bearing guarantees:

* a fully-occupied grid reproduces dense sampling *exactly* (trainer losses
  bit-identical, masks all-true);
* the vectorized adaptive mask equals the per-sample reference oracle;
* pruned corner-index streams are exact subsets of their dense twins;
* occupancy-pruned rendering matches the dense reference within 0.1 dB
  PSNR on multiple library scenes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.core.streaming import StreamingOrder
from repro.nerf import (
    HashGridConfig,
    InstantNGPField,
    OccupancyGrid,
    OccupancyGridConfig,
    Trainer,
    TrainerConfig,
    adaptive_sample_mask,
    adaptive_sample_mask_reference,
    generate_rays,
    psnr,
    render_rays,
    sample_along_rays,
    stratified_t_values,
)
from repro.pipeline import SimulationContext
from repro.pipeline.store import ArtifactStore
from repro.scenes import DatasetConfig
from repro.scenes.camera import CameraIntrinsics, poses_on_sphere
from repro.scenes.library import build_scene
from repro.workloads.traces import (
    HashTraceGenerator,
    TraceConfig,
    occupancy_grid_for_trace,
    occupancy_point_mask,
)


# ----------------------------------------------------------------- the grid
def test_grid_config_validation():
    with pytest.raises(ValueError):
        OccupancyGridConfig(resolution=0)
    with pytest.raises(ValueError):
        OccupancyGridConfig(resolution=6, num_levels=3)  # 6 % 4 != 0
    with pytest.raises(ValueError):
        OccupancyGridConfig(ema_decay=0.0)
    with pytest.raises(ValueError):
        OccupancyGridConfig(density_threshold=0.0)
    with pytest.raises(ValueError):
        OccupancyGridConfig(update_every=0)
    assert OccupancyGridConfig(resolution=16, num_levels=3).resolutions == [16, 8, 4]


def test_fully_occupied_grid_keeps_everything():
    grid = OccupancyGrid.fully_occupied(OccupancyGridConfig(resolution=8, num_levels=2))
    points = np.random.default_rng(0).random((50, 3))
    assert grid.occupied(points).all()
    assert grid.occupied(points, level=1).all()
    assert grid.occupancy_fraction() == 1.0


def test_grid_from_density_fn_halfspace():
    """Occupancy follows the density field; mips are conservative ORs."""
    cfg = OccupancyGridConfig(resolution=8, num_levels=2, density_threshold=0.5)
    grid = OccupancyGrid.from_density_fn(cfg, lambda p: (p[:, 0] > 0.5).astype(float))
    pts = np.random.default_rng(1).random((200, 3))
    occupied = grid.occupied(pts)
    # Away from the boundary cells the grid matches the half-space exactly.
    interior = np.abs(pts[:, 0] - 0.5) > 1.0 / cfg.resolution
    assert np.array_equal(occupied[interior], (pts[:, 0] > 0.5)[interior])
    # Conservative mip: whatever level 0 keeps, level 1 keeps too.
    coarse = grid.occupied(pts, level=1)
    assert np.all(coarse[occupied])
    assert 0.0 < grid.occupancy_fraction() < 1.0


def test_ema_decay_prunes_abandoned_cells():
    cfg = OccupancyGridConfig(resolution=4, ema_decay=0.5, density_threshold=0.1)
    grid = OccupancyGrid.fully_occupied(cfg)
    assert grid.occupancy_fraction() == 1.0
    # The field is empty everywhere: every update halves the estimate.
    fractions = [grid.update(lambda p: np.zeros(p.shape[0])) for _ in range(6)]
    assert fractions[-1] == 0.0
    assert fractions == sorted(fractions, reverse=True)
    # A refreshed cell stays occupied while empty cells decay away.
    grid2 = OccupancyGrid.fully_occupied(cfg)
    for _ in range(6):
        grid2.update(lambda p: (p[:, 2] > 0.75).astype(float))
    assert grid2.occupied(np.array([[0.5, 0.5, 0.9]]))[0]
    assert not grid2.occupied(np.array([[0.5, 0.5, 0.1]]))[0]


def test_densities_round_trip():
    cfg = OccupancyGridConfig(resolution=8, num_levels=2, density_threshold=0.3)
    grid = OccupancyGrid.from_density_fn(cfg, lambda p: p[:, 1])
    clone = OccupancyGrid.from_densities(cfg, grid.densities)
    pts = np.random.default_rng(2).random((100, 3))
    for level in range(cfg.num_levels):
        assert np.array_equal(grid.occupied(pts, level), clone.occupied(pts, level))


# ------------------------------------------------------------ mask vs oracle
@pytest.mark.parametrize("threshold", [0.0, 1e-3, 0.2])
@pytest.mark.parametrize("level", [0, 1])
def test_adaptive_mask_matches_reference(threshold, level):
    rng = np.random.default_rng(7)
    cfg = OccupancyGridConfig(resolution=16, num_levels=2, density_threshold=0.4)
    grid = OccupancyGrid.from_density_fn(cfg, lambda p: np.sin(9 * p[:, 0]) + p[:, 1])
    points = rng.random((24, 10, 3))
    t_values = np.sort(rng.random((24, 10)) * 2.0, axis=1)
    densities = rng.random((24, 10)) * 4.0
    vec = adaptive_sample_mask(grid, points, t_values, densities, threshold, level=level)
    ref = adaptive_sample_mask_reference(grid, points, t_values, densities, threshold, level=level)
    assert np.array_equal(vec, ref)


def test_termination_requires_densities():
    grid = OccupancyGrid.fully_occupied(OccupancyGridConfig(resolution=4))
    points = np.zeros((2, 3, 3))
    with pytest.raises(ValueError):
        adaptive_sample_mask(grid, points, transmittance_threshold=0.5)


# ------------------------------------------------------- pruned trace streams
def test_pruned_streams_are_subsets():
    """Pruned corner-index streams are exact subsets of the dense streams."""
    trace = TraceConfig(
        num_rays=32, points_per_ray=16, scene="lego", occupancy=True, occupancy_resolution=16
    )
    mask = occupancy_point_mask(trace)
    assert mask.dtype == bool and mask.shape == (32 * 16,)
    assert 0 < mask.sum() < mask.size
    dense_gen = HashTraceGenerator(trace_config=trace.dense())
    pruned_gen = HashTraceGenerator(trace_config=trace)
    rng = np.random.default_rng(0)
    perm = rng.permutation(mask.size)
    for level in (0, 6):
        for order in (None, perm):
            dense_idx = dense_gen.indices_for_level(level, order)
            pruned_idx = pruned_gen.indices_for_level(level, order)
            keep = mask if order is None else mask[order]
            assert np.array_equal(pruned_idx, dense_idx[keep])


def test_termination_only_tightens_the_mask():
    base = TraceConfig(num_rays=32, points_per_ray=16, scene="lego", occupancy=True)
    tightened = dataclasses.replace(base, occupancy_termination=1e-2)
    mask = occupancy_point_mask(base)
    mask_term = occupancy_point_mask(tightened)
    assert np.all(mask[~mask] == mask_term[~mask])  # pruned stays pruned
    assert np.all(~mask_term | mask)  # termination is a subset of skipping
    assert mask_term.sum() < mask.sum()


def test_occupancy_requires_scene():
    trace = TraceConfig(num_rays=4, points_per_ray=4, occupancy=True)
    with pytest.raises(ValueError):
        occupancy_grid_for_trace(trace)
    with pytest.raises(ValueError):
        SimulationContext().occupancy_mask(trace)


def test_context_pruned_artifacts_and_store_round_trip(tmp_path):
    trace = TraceConfig(
        num_rays=24, points_per_ray=12, scene="mic", occupancy=True, occupancy_resolution=16
    )
    grid = HashGridConfig(num_levels=4)
    hash_fn = MortonLocalityHash()
    store = ArtifactStore(tmp_path / "store")
    ctx = SimulationContext(store=store)
    mask = ctx.occupancy_mask(trace)
    pruned = ctx.level_indices(grid, trace, hash_fn, 3)
    dense = ctx.level_indices(grid, trace.dense(), hash_fn, 3)
    assert np.array_equal(pruned, dense[mask])
    # Pruned row requests never exceed dense ones; the cached-corner-index
    # reuse path (dense stream warmed above) must agree with the direct
    # re-hashing path of a cold context.
    dense_rows = ctx.row_requests(grid, trace.dense(), hash_fn, StreamingOrder.RAY_FIRST, 3)
    pruned_rows = ctx.row_requests(grid, trace, hash_fn, StreamingOrder.RAY_FIRST, 3)
    assert 0 < pruned_rows <= dense_rows
    cold = SimulationContext()
    assert cold.row_requests(grid, trace, hash_fn, StreamingOrder.RAY_FIRST, 3) == pruned_rows
    # A fresh context over the same store loads instead of recomputing.
    ctx2 = SimulationContext(store=ArtifactStore(tmp_path / "store"))
    mask2 = ctx2.occupancy_mask(trace)
    assert np.array_equal(mask, mask2)
    assert ctx2.stats.store_hits > 0


# -------------------------------------------------------------- the trainer
def _make_trainer(dataset, occupancy, iterations=6):
    grid = HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64)
    field = InstantNGPField(grid, hidden_dim=8, geo_features=3, rng=np.random.default_rng(5))
    config = TrainerConfig(
        num_iterations=iterations,
        rays_per_batch=48,
        samples_per_ray=12,
        seed=11,
        occupancy=occupancy,
    )
    return Trainer(field, dataset, config)


@pytest.fixture(scope="module")
def small_dataset():
    return SimulationContext().dataset(
        "lego",
        DatasetConfig(image_size=16, num_train_views=3, num_test_views=1, gt_samples_per_ray=24),
    )


def test_fully_occupied_trainer_is_exactly_dense(small_dataset):
    dense = _make_trainer(small_dataset, None)
    adaptive = _make_trainer(
        small_dataset, OccupancyGridConfig(resolution=8, update_every=10_000)
    )
    dense_history = dense.train()
    adaptive_history = adaptive.train()
    assert dense_history.losses == adaptive_history.losses
    assert adaptive_history.samples_evaluated == dense_history.samples_evaluated
    assert np.array_equal(dense.render_image(0), adaptive.render_image(0))


def test_adaptive_trainer_prunes_and_stays_finite(small_dataset):
    occupancy = OccupancyGridConfig(
        resolution=8, update_every=2, ema_decay=0.5, density_threshold=0.5
    )
    trainer = _make_trainer(small_dataset, occupancy, iterations=8)
    history = trainer.train()
    assert np.isfinite(history.final_loss)
    assert trainer.occupancy_grid.updates == 4
    dense_count = 48 * 12
    assert history.samples_evaluated == [dense_count] * 8  # warm-up: all occupied
    # Decay toward an empty field prunes cells monotonically (the mean clamp
    # keeps the above-average cells, as iNGP's update rule does) ...
    fractions = [trainer.occupancy_grid.update(lambda p: np.zeros(p.shape[0])) for _ in range(4)]
    assert fractions == sorted(fractions, reverse=True) and fractions[-1] < 1.0
    # ... and with a fully empty grid the trainer evaluates nothing at all —
    # the kept == 0 path must still produce a finite, background-only loss.
    trainer.occupancy_grid = OccupancyGrid.from_densities(
        occupancy, np.zeros(occupancy.num_cells)
    )
    assert trainer.occupancy_grid.occupancy_fraction() == 0.0
    before = [p.copy() for p in trainer.field.parameters()]
    loss = trainer.train_step()
    assert np.isfinite(loss)
    assert trainer.history.samples_evaluated[-1] == 0
    # No surviving samples -> no gradient signal -> the field must be frozen
    # (no blind Adam step on stale moments / weight decay).
    for old, new in zip(before, trainer.field.parameters()):
        assert np.array_equal(old, new)
    image = trainer.render_image(0)
    assert image.shape == (16, 16, 3)
    assert np.isfinite(image).all()


def test_sample_along_rays_occupancy_mode():
    rays = generate_rays(np.eye(4), np.array([[20.0, 0, 8], [0, 20.0, 8], [0, 0, 1]]), 4, 4)
    t_values = stratified_t_values(len(rays), 5, 0.1, 1.0, jitter=False)
    grid = OccupancyGrid.fully_occupied(OccupancyGridConfig(resolution=4))
    dense = sample_along_rays(rays, t_values)
    points, mask = sample_along_rays(rays, t_values, occupancy=grid, normalize=lambda p: p)
    assert np.array_equal(points, dense)
    assert mask.shape == (len(rays), 5) and mask.all()


# ----------------------------------------------------------- PSNR equivalence
def _render_scene_view(scene_name, samples, grid=None, image_size=24):
    """Reference-render one orbit view from the analytic scene radiance."""
    scene = build_scene(scene_name)
    bound = 1.2
    pose = poses_on_sphere(4, radius=2.2, elevation_degrees=25.0)[0]
    intrinsics = CameraIntrinsics.from_fov(image_size, image_size, 50.0)
    rays = generate_rays(pose, intrinsics.matrix, image_size, image_size)
    t_values = stratified_t_values(len(rays), samples, 0.5, 3.5, jitter=False)
    points = sample_along_rays(rays, t_values)
    dirs = np.repeat(rays.directions, samples, axis=0)
    sigma, rgb = scene.radiance(points.reshape(-1, 3), dirs)
    sigma = sigma.reshape(len(rays), samples)
    rgb = rgb.reshape(len(rays), samples, 3)
    if grid is not None:
        unit = np.clip((points + bound) / (2.0 * bound), 0.0, 1.0)
        sigma = np.where(adaptive_sample_mask(grid, unit), sigma, 0.0)
    out = render_rays(sigma, rgb, t_values, background=np.ones(3))
    return np.clip(out.rgb.reshape(image_size, image_size, 3), 0.0, 1.0)


@pytest.mark.parametrize("scene_name", ["lego", "mic"])
def test_pruned_rendering_matches_dense_psnr(scene_name):
    """Occupancy pruning costs < 0.1 dB against the dense reference render."""
    trace = TraceConfig(scene=scene_name, occupancy=True, occupancy_resolution=32)
    grid = occupancy_grid_for_trace(trace)
    assert grid.occupancy_fraction() < 0.5  # it actually skips space
    reference = _render_scene_view(scene_name, samples=96)
    dense = _render_scene_view(scene_name, samples=48)
    pruned = _render_scene_view(scene_name, samples=48, grid=grid)
    dense_psnr = psnr(dense, reference)
    pruned_psnr = psnr(pruned, reference)
    assert abs(dense_psnr - pruned_psnr) <= 0.1
