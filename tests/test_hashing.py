"""Tests for the hash mapping functions and Fig. 6 locality statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    DISTANCE_BIN_LABELS,
    DenseGridIndexer,
    MortonLocalityHash,
    OriginalSpatialHash,
    average_row_requests_per_cube,
    average_row_requests_per_cube_reference,
    cube_vertices,
    index_distance_breakdown,
)


@pytest.fixture(scope="module")
def sampled_cubes():
    rng = np.random.default_rng(7)
    return rng.integers(0, 2048, size=(1500, 3))


def test_cube_vertices_shape_and_offsets():
    base = np.array([[0, 0, 0], [5, 6, 7]])
    verts = cube_vertices(base)
    assert verts.shape == (2, 8, 3)
    # The 8 corners of the first cube are exactly the binary offsets.
    expected = {(i, j, k) for i in (0, 1) for j in (0, 1) for k in (0, 1)}
    assert {tuple(v) for v in verts[0]} == expected
    assert {tuple(v) for v in verts[1]} == {(5 + i, 6 + j, 7 + k) for i, j, k in expected}


def test_cube_vertices_rejects_bad_shape():
    with pytest.raises(ValueError):
        cube_vertices(np.zeros((3, 2)))


def test_hash_functions_return_valid_indices(sampled_cubes):
    table = 2**19
    for fn in (OriginalSpatialHash(), MortonLocalityHash(), DenseGridIndexer(64)):
        idx = fn(sampled_cubes, table)
        assert idx.shape == (sampled_cubes.shape[0],)
        assert idx.min() >= 0
        assert idx.max() < table


def test_original_hash_uses_primes():
    custom = OriginalSpatialHash(primes=(1, 3, 5))
    default = OriginalSpatialHash()
    coords = np.array([[10, 20, 30]])
    assert int(custom(coords, 10007)[0]) != int(default(coords, 10007)[0])


def test_dense_grid_indexer_is_row_major():
    indexer = DenseGridIndexer(resolution=4)
    # vertex (1, 0, 0) -> 1, (0, 1, 0) -> 5, (0, 0, 1) -> 25 for resolution 4 (5 vertices/axis)
    assert int(indexer(np.array([[1, 0, 0]]), 1000)[0]) == 1
    assert int(indexer(np.array([[0, 1, 0]]), 1000)[0]) == 5
    assert int(indexer(np.array([[0, 0, 1]]), 1000)[0]) == 25


def test_index_distance_breakdown_fractions_sum_to_one(sampled_cubes):
    stats = index_distance_breakdown(MortonLocalityHash(), sampled_cubes, 2**19)
    assert set(stats.fractions) == set(DISTANCE_BIN_LABELS)
    assert sum(stats.fractions.values()) == pytest.approx(1.0, abs=1e-9)


def test_morton_is_more_local_than_original(sampled_cubes):
    """Fig. 6 shape: Morton concentrates neighbour distances in small bins."""
    table = 2**19
    morton = index_distance_breakdown(MortonLocalityHash(), sampled_cubes, table)
    original = index_distance_breakdown(OriginalSpatialHash(), sampled_cubes, table)
    assert morton.fraction_leq_16 > original.fraction_leq_16
    assert morton.fraction_gt_5000 < original.fraction_gt_5000
    assert morton.fraction_leq_16 > 0.5
    assert original.fraction_gt_5000 > 0.4


def test_requests_per_cube_matches_paper_shape(sampled_cubes):
    """Sec. III-A: ~1.58 requests/cube for Morton vs ~4.02 for the original hash."""
    table = 2**19
    morton = average_row_requests_per_cube(MortonLocalityHash(), sampled_cubes, table)
    original = average_row_requests_per_cube(OriginalSpatialHash(), sampled_cubes, table)
    assert morton == pytest.approx(1.58, abs=0.35)
    assert original == pytest.approx(4.02, abs=0.35)
    assert morton < original / 2


def test_requests_per_cube_bounds(sampled_cubes):
    # Between 1 (all corners in one row) and 8 (every corner in its own row).
    value = average_row_requests_per_cube(MortonLocalityHash(), sampled_cubes, 2**19)
    assert 1.0 <= value <= 8.0


def test_requests_per_cube_rejects_bad_row_size(sampled_cubes):
    with pytest.raises(ValueError):
        average_row_requests_per_cube(MortonLocalityHash(), sampled_cubes, 2**19, row_bytes=0)
    with pytest.raises(ValueError):
        average_row_requests_per_cube_reference(
            MortonLocalityHash(), sampled_cubes, 2**19, row_bytes=0
        )


def test_requests_per_cube_vectorized_matches_unique_oracle(sampled_cubes):
    """The per-axis-sort version must equal the retained per-cube np.unique loop."""
    for fn in (MortonLocalityHash(), OriginalSpatialHash(), DenseGridIndexer(64)):
        for row_bytes in (64, 1024):
            fast = average_row_requests_per_cube(fn, sampled_cubes, 2**19, row_bytes=row_bytes)
            slow = average_row_requests_per_cube_reference(
                fn, sampled_cubes, 2**19, row_bytes=row_bytes
            )
            assert fast == slow
    empty = np.zeros((0, 3), dtype=np.int64)
    assert average_row_requests_per_cube(MortonLocalityHash(), empty, 2**19) == 0.0


@given(st.integers(1, 2**16))
@settings(max_examples=30, deadline=None)
def test_hash_indices_always_within_table(table_size):
    coords = np.array([[0, 0, 0], [100, 200, 300], [2047, 2047, 2047]])
    for fn in (OriginalSpatialHash(), MortonLocalityHash()):
        idx = fn(coords, table_size)
        assert np.all((idx >= 0) & (idx < table_size))
