"""Tests for the FastNeRF and TensoRF baseline radiance fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.baselines import FastNeRFField, TensoRFField, _LineFactorSet


def _unit_directions(rng, n):
    d = rng.normal(size=(n, 3))
    return d / np.linalg.norm(d, axis=1, keepdims=True)


@pytest.mark.parametrize("field_cls", [FastNeRFField, TensoRFField])
def test_baseline_forward_shapes(field_cls, rng):
    field = field_cls(rng=rng)
    pos = rng.uniform(0, 1, (9, 3))
    dirs = _unit_directions(rng, 9)
    sigma, rgb = field.forward(pos, dirs)
    assert sigma.shape == (9,)
    assert rgb.shape == (9, 3)
    assert np.all(sigma >= 0)
    assert np.all((rgb >= 0) & (rgb <= 1))


@pytest.mark.parametrize("field_cls", [FastNeRFField, TensoRFField])
def test_baseline_backward_populates_gradients(field_cls, rng):
    field = field_cls(rng=rng)
    pos = rng.uniform(0, 1, (7, 3))
    dirs = _unit_directions(rng, 7)
    field.forward(pos, dirs)
    field.zero_grad()
    field.backward(rng.normal(size=7), rng.normal(size=(7, 3)))
    grads = field.gradients()
    assert len(grads) == len(field.parameters())
    assert any(np.any(np.abs(g) > 0) for g in grads)
    with pytest.raises(RuntimeError):
        field_cls(rng=rng).backward(np.zeros(3), np.zeros((3, 3)))


def test_fastnerf_gradcheck(rng):
    field = FastNeRFField(num_components=3, hidden_dim=24, rng=rng)
    pos = rng.uniform(0, 1, (5, 3))
    dirs = _unit_directions(rng, 5)
    gs, gc = rng.normal(size=5), rng.normal(size=(5, 3))

    def scalar():
        s, c = field.forward(pos, dirs)
        return float((s * gs).sum() + (c * gc).sum())

    field.forward(pos, dirs)
    field.zero_grad()
    field.backward(gs, gc)
    param = field.dir_mlp.weights[0]
    grad = field.dir_mlp.weight_grads[0]
    idx = np.unravel_index(np.argmax(np.abs(grad)), param.shape)
    eps = 1e-3
    original = param[idx]
    param[idx] = original + eps
    plus = scalar()
    param[idx] = original - eps
    minus = scalar()
    param[idx] = original
    assert (plus - minus) / (2 * eps) == pytest.approx(float(grad[idx]), rel=0.08, abs=2e-3)


def test_tensorf_gradcheck_on_line_factor(rng):
    field = TensoRFField(density_rank=3, appearance_rank=4, resolution=32, hidden_dim=16, rng=rng)
    pos = rng.uniform(0.05, 0.95, (6, 3))
    dirs = _unit_directions(rng, 6)
    gs, gc = rng.normal(size=6), rng.normal(size=(6, 3))

    def scalar():
        s, c = field.forward(pos, dirs)
        return float((s * gs).sum() + (c * gc).sum())

    field.forward(pos, dirs)
    field.zero_grad()
    field.backward(gs, gc)
    param = field.density_factors.lines[0]
    grad = field.density_factors.grads[0]
    idx = np.unravel_index(np.argmax(np.abs(grad)), param.shape)
    eps = 1e-3
    original = param[idx]
    param[idx] = original + eps
    plus = scalar()
    param[idx] = original - eps
    minus = scalar()
    param[idx] = original
    assert (plus - minus) / (2 * eps) == pytest.approx(float(grad[idx]), rel=0.08, abs=2e-3)


def test_line_factor_set_interpolation_and_validation(rng):
    factors = _LineFactorSet(rank=2, resolution=8, rng=rng)
    pos = rng.uniform(0, 1, (10, 3))
    values = factors.evaluate(pos)
    assert values.shape == (10, 2)
    with pytest.raises(ValueError):
        _LineFactorSet(rank=0, resolution=8, rng=rng)
    with pytest.raises(RuntimeError):
        _LineFactorSet(rank=2, resolution=8, rng=rng).backward(np.zeros((10, 2)))


def test_tensorf_density_is_position_only(rng):
    field = TensoRFField(rng=rng)
    pos = rng.uniform(0, 1, (5, 3))
    sigma1, _ = field.forward(pos, _unit_directions(rng, 5))
    sigma2, _ = field.forward(pos, _unit_directions(rng, 5))
    np.testing.assert_allclose(sigma1, sigma2, rtol=1e-6)
