"""Tests for the differentiable volume renderer (Eq. (1))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nerf.losses import mse_loss
from repro.nerf.volume_rendering import accumulate_transmittance, render_rays, render_rays_backward


def _random_inputs(rng, rays=4, samples=8):
    sigma = rng.uniform(0.0, 4.0, (rays, samples))
    colors = rng.uniform(0.0, 1.0, (rays, samples, 3))
    t_values = np.sort(rng.uniform(0.2, 4.0, (rays, samples)), axis=1)
    return sigma, colors, t_values


def test_transmittance_starts_at_one_and_decreases():
    sigma = np.array([[1.0, 1.0, 1.0]])
    deltas = np.array([[0.5, 0.5, 0.5]])
    trans = accumulate_transmittance(sigma, deltas)
    assert trans[0, 0] == pytest.approx(1.0)
    assert np.all(np.diff(trans[0]) <= 0)


def test_zero_density_renders_background():
    sigma = np.zeros((2, 5))
    colors = np.ones((2, 5, 3)) * 0.3
    t_values = np.linspace(0.5, 2.0, 5)
    out = render_rays(sigma, colors, t_values, background=np.array([1.0, 0.0, 0.5]))
    np.testing.assert_allclose(out.rgb, np.broadcast_to([1.0, 0.0, 0.5], (2, 3)), atol=1e-12)
    np.testing.assert_allclose(out.opacity, 0.0, atol=1e-12)


def test_opaque_first_sample_dominates():
    sigma = np.zeros((1, 4))
    sigma[0, 0] = 1e6
    colors = np.zeros((1, 4, 3))
    colors[0, 0] = [0.2, 0.4, 0.6]
    colors[0, 1:] = [1.0, 1.0, 1.0]
    out = render_rays(sigma, colors, np.linspace(0.5, 2.0, 4))
    np.testing.assert_allclose(out.rgb[0], [0.2, 0.4, 0.6], atol=1e-6)
    assert out.opacity[0] == pytest.approx(1.0, abs=1e-6)


def test_weights_are_nonnegative_and_bounded(rng):
    sigma, colors, t_values = _random_inputs(rng)
    out = render_rays(sigma, colors, t_values)
    assert np.all(out.weights >= 0)
    assert np.all(out.weights.sum(axis=-1) <= 1.0 + 1e-9)
    assert np.all(out.rgb >= 0) and np.all(out.rgb <= 1.0 + 1e-9)


def test_render_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        render_rays(np.zeros((2, 3)), np.zeros((2, 4, 3)), np.linspace(0, 1, 3))
    with pytest.raises(ValueError):
        render_rays(np.zeros(3), np.zeros((3, 3)), np.linspace(0, 1, 3))


@pytest.mark.parametrize("use_background", [False, True])
def test_backward_matches_finite_differences(rng, use_background):
    sigma, colors, t_values = _random_inputs(rng, rays=3, samples=6)
    background = np.array([1.0, 1.0, 1.0]) if use_background else None
    target = rng.uniform(0, 1, (3, 3))

    def loss_of(s, c):
        return mse_loss(render_rays(s, c, t_values, background=background).rgb, target)[0]

    out = render_rays(sigma, colors, t_values, background=background)
    _, grad_rgb = mse_loss(out.rgb, target)
    grad_sigma, grad_colors = render_rays_backward(
        grad_rgb, sigma, colors, t_values, out, background=background
    )

    eps = 1e-6
    for i in range(sigma.shape[0]):
        for j in range(sigma.shape[1]):
            plus, minus = sigma.copy(), sigma.copy()
            plus[i, j] += eps
            minus[i, j] -= eps
            fd = (loss_of(plus, colors) - loss_of(minus, colors)) / (2 * eps)
            assert fd == pytest.approx(grad_sigma[i, j], rel=1e-4, abs=1e-7)
    for idx in [(0, 0, 0), (1, 3, 1), (2, 5, 2)]:
        plus, minus = colors.copy(), colors.copy()
        plus[idx] += eps
        minus[idx] -= eps
        fd = (loss_of(sigma, plus) - loss_of(sigma, minus)) / (2 * eps)
        assert fd == pytest.approx(grad_colors[idx], rel=1e-4, abs=1e-7)


@given(
    arrays(np.float64, (2, 6), elements=st.floats(0.0, 10.0)),
    arrays(np.float64, (2, 6, 3), elements=st.floats(0.0, 1.0)),
)
@settings(max_examples=40, deadline=None)
def test_rendered_color_is_convex_combination(sigma, colors):
    """Property: without background, C_hat is a sub-convex combination of sample colors."""
    t_values = np.linspace(0.1, 2.0, 6)
    out = render_rays(sigma, colors, t_values)
    max_color = colors.max(axis=1)
    assert np.all(out.rgb <= max_color + 1e-9)
    assert np.all(out.rgb >= 0.0)


def test_depth_increases_when_density_moves_farther():
    t_values = np.linspace(0.5, 3.0, 8)
    near_sigma = np.zeros((1, 8))
    near_sigma[0, 1] = 50.0
    far_sigma = np.zeros((1, 8))
    far_sigma[0, 6] = 50.0
    colors = np.ones((1, 8, 3)) * 0.5
    near_depth = render_rays(near_sigma, colors, t_values).depth[0]
    far_depth = render_rays(far_sigma, colors, t_values).depth[0]
    assert far_depth > near_depth
