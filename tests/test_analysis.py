"""Tests for ``repro.analysis`` — the determinism-invariant linter.

Every RPR rule gets a minimal firing fixture *and* a minimal silent one, the
waiver grammar is exercised (reason required, multi-rule, standalone-line
coverage), and a self-clean test asserts the repo's own ``src/`` +
``benchmarks/`` lint clean — the enforcement the CI gate relies on.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import collect_waivers, lint_sources, parse_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(code: str, rel: str = "src/repro/example.py", extra: dict[str, str] | None = None):
    """Lint one in-memory snippet (plus optional sibling files)."""
    files = []
    sources = {rel: code, **(extra or {})}
    for path, source in sources.items():
        parsed = parse_source(source, path)
        assert parsed is not None, f"fixture snippet for {path} has a syntax error"
        files.append(parsed)
    return lint_sources(files)


def rule_ids(result) -> list[str]:
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------- RPR001


def test_rpr001_fires_on_global_rng_draw():
    result = lint_snippet(
        "import numpy as np\n"
        "def f(seed):\n"
        "    np.random.seed(seed)\n"
        "    return np.random.rand(3)\n"
    )
    assert rule_ids(result) == ["RPR001", "RPR001"]
    assert "default_rng" in result.findings[0].message


def test_rpr001_fires_on_stdlib_random():
    result = lint_snippet("import random\nx = random.random()\n")
    assert rule_ids(result) == ["RPR001"]


def test_rpr001_fires_on_from_import_of_draws():
    result = lint_snippet("from random import shuffle\nfrom numpy.random import rand\n")
    assert rule_ids(result) == ["RPR001", "RPR001"]


def test_rpr001_silent_on_seeded_generator():
    result = lint_snippet(
        "import numpy as np\n"
        "def f(seed: int) -> np.ndarray:\n"
        "    rng = np.random.default_rng(seed)\n"
        "    gen = np.random.Generator(np.random.PCG64(seed))\n"
        "    return rng.normal(size=3) + gen.normal(size=3)\n"
    )
    assert result.ok


# ----------------------------------------------------------------- RPR002


def test_rpr002_fires_on_raw_write_modes():
    result = lint_snippet(
        "from pathlib import Path\n"
        "import os\n"
        "def f(fd):\n"
        "    Path('x.json').write_text('{}')\n"
        "    Path('y.bin').write_bytes(b'')\n"
        "    open('z.txt', 'w').close()\n"
        "    os.fdopen(fd, 'wb').close()\n"
    )
    assert rule_ids(result) == ["RPR002"] * 4


def test_rpr002_silent_on_reads_and_in_ioutil():
    read_only = "def f():\n    return open('z.txt').read()\n"
    assert lint_snippet(read_only).ok
    raw_write = "def g(fd):\n    import os\n    return os.fdopen(fd, 'wb')\n"
    assert lint_snippet(raw_write, rel="src/repro/core/ioutil.py").ok


# ----------------------------------------------------------------- RPR003


UNFROZEN_KEYED = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class MyConfig:\n"
    "    depth: int = 3\n"
    "def cache_key(cfg: MyConfig):\n"
    "    return config_key(cfg)\n"
)


def test_rpr003_fires_on_unfrozen_key_dataclass():
    result = lint_snippet(UNFROZEN_KEYED)
    assert rule_ids(result) == ["RPR003"]
    assert "MyConfig" in result.findings[0].message


def test_rpr003_fires_transitively_and_on_mutable_defaults():
    result = lint_snippet(
        "from dataclasses import dataclass, field\n"
        "@dataclass(frozen=True)\n"
        "class Inner:\n"
        "    sizes: list = field(default_factory=list)\n"
        "@dataclass(frozen=True)\n"
        "class Outer:\n"
        "    inner: Inner | None = None\n"
        "def cache_key(cfg: Outer):\n"
        "    return config_key(cfg)\n"
    )
    assert rule_ids(result) == ["RPR003"]
    assert "Inner.sizes" in result.findings[0].message


def test_rpr003_silent_on_frozen_and_unreachable():
    frozen = UNFROZEN_KEYED.replace("@dataclass\n", "@dataclass(frozen=True)\n")
    assert lint_snippet(frozen).ok
    # An unfrozen dataclass nobody hashes into a canonical key is fine.
    unreachable = (
        "from dataclasses import dataclass\n@dataclass\nclass Scratch:\n    n: int = 0\n"
    )
    assert lint_snippet(unreachable).ok


def test_rpr003_callable_annotations_do_not_leak_reachability():
    # A Callable[..., X] field types a function, not key material: X must
    # not become key-reachable through it (ExperimentSpec.runner pattern).
    result = lint_snippet(
        "from dataclasses import dataclass\n"
        "from typing import Callable\n"
        "@dataclass\n"
        "class Result:\n"
        "    rows: int = 0\n"
        "@dataclass(frozen=True)\n"
        "class Spec:\n"
        "    runner: Callable[..., Result] | None = None\n"
        "def cache_key(spec: Spec):\n"
        "    return config_key(spec)\n"
    )
    assert result.ok


# ----------------------------------------------------------------- RPR004


def test_rpr004_fires_on_wall_clock_and_stray_timer():
    result = lint_snippet(
        "import time\n"
        "from datetime import datetime\n"
        "def f():\n"
        "    return time.time(), datetime.now(), time.perf_counter()\n"
    )
    assert rule_ids(result) == ["RPR004"] * 3


def test_rpr004_silent_in_timing_allowlist():
    timed = "import time\ndef f():\n    return time.perf_counter()\n"
    assert lint_snippet(timed, rel="src/repro/obs/clock.py").ok
    assert lint_snippet(timed, rel="benchmarks/test_perf_example.py").ok
    # Everything else — including the CLI, which used to be allowlisted —
    # must route timing through repro.obs.clock.
    assert rule_ids(lint_snippet(timed, rel="src/repro/pipeline/cli.py")) == ["RPR004"]
    # Formatting an explicit timestamp is not a wall-clock read.
    stamped = "import time\ndef f(mtime: float) -> str:\n    return time.ctime(mtime)\n"
    assert lint_snippet(stamped).ok


# ----------------------------------------------------------------- RPR005


def test_rpr005_fires_on_set_iteration():
    result = lint_snippet(
        "def f(items):\n"
        "    out = [x for x in set(items)]\n"
        "    for v in {1, 2, 3}:\n"
        "        out.append(v)\n"
        "    return list({'a', 'b'}), out\n"
    )
    assert rule_ids(result) == ["RPR005"] * 3


def test_rpr005_silent_on_sorted_sets():
    result = lint_snippet(
        "def f(items, other):\n"
        "    joined = ', '.join(sorted(set(items) | set(other)))\n"
        "    total = sum({1, 2, 3})\n"
        "    return [x for x in sorted(set(items))], joined, total\n"
    )
    assert result.ok


# ----------------------------------------------------------------- RPR006


EXPERIMENT_TEMPLATE = (
    "from repro.pipeline.registry import register_experiment\n"
    "from repro.workloads.traces import TraceConfig, generate_batch_points\n"
    "@register_experiment('fake', paper_ref='Fig. 0', title='fake')\n"
    "def run_fake(context):\n"
    "    {body}\n"
)


def test_rpr006_fires_on_inline_recompute_in_experiment_module():
    code = EXPERIMENT_TEMPLATE.format(body="return generate_batch_points(TraceConfig())")
    result = lint_snippet(code, rel="src/repro/experiments/fake.py")
    assert rule_ids(result) == ["RPR006"]
    assert "context.batch_points" in result.findings[0].message


def test_rpr006_silent_via_context_and_outside_experiments():
    good = EXPERIMENT_TEMPLATE.format(body="return context.batch_points(TraceConfig())")
    assert lint_snippet(good, rel="src/repro/experiments/fake.py").ok
    # The producer itself (no register_experiment reference) may call it.
    plain = (
        "from repro.workloads.traces import TraceConfig, generate_batch_points\n"
        "def helper():\n"
        "    return generate_batch_points(TraceConfig())\n"
    )
    assert lint_snippet(plain, rel="src/repro/workloads/batch.py").ok


# ----------------------------------------------------------------- RPR007


def test_rpr007_fires_on_direct_numpy_in_portable_kernel():
    code = "import numpy as np\ndef forward(x):\n    return np.zeros_like(x)\n"
    result = lint_snippet(code, rel="src/repro/nerf/encoding.py")
    assert rule_ids(result) == ["RPR007"]


def test_rpr007_exempts_reference_oracles_and_neutral_calls():
    code = (
        "import numpy as np\n"
        "from ..core import xp\n"
        "def forward(x):\n"
        "    dt = np.float32(0.5)\n"
        "    rng = np.random.default_rng(0)\n"
        "    return xp.asarray(x, dtype=np.float64), dt, rng\n"
        "def forward_reference(x):\n"
        "    return np.asarray(x)\n"
    )
    assert lint_snippet(code, rel="src/repro/nerf/encoding.py").ok


def test_rpr007_silent_outside_portable_modules():
    code = "import numpy as np\ndef f(x):\n    return np.zeros_like(x)\n"
    assert lint_snippet(code, rel="src/repro/workloads/steps.py").ok


# ----------------------------------------------------------------- RPR008


def test_rpr008_fires_on_adhoc_print_and_logging():
    result = lint_snippet(
        "import logging\n"
        "def f(x):\n"
        "    print('loss', x)\n"
        "    logging.info('loss %s', x)\n"
        "    return x\n",
        rel="src/repro/dram/system.py",
    )
    assert rule_ids(result) == ["RPR008"] * 2


def test_rpr008_silent_in_frontends_obs_and_outside_src():
    noisy = "def f(x):\n    print(x)\n    return x\n"
    assert lint_snippet(noisy, rel="src/repro/pipeline/cli.py").ok
    assert lint_snippet(noisy, rel="src/repro/pipeline/bench.py").ok
    assert lint_snippet(noisy, rel="src/repro/analysis/cli.py").ok
    assert lint_snippet(noisy, rel="src/repro/obs/__init__.py").ok
    assert lint_snippet(noisy, rel="benchmarks/test_perf_example.py").ok
    assert lint_snippet(noisy, rel="tests/test_example.py").ok


# ----------------------------------------------------------------- RPR009


def test_rpr009_fires_on_inline_address_arrays_at_the_boundary():
    result = lint_snippet(
        "import numpy as np\n"
        "def f(hierarchy, dram, indices, grid, trace):\n"
        "    hierarchy.filter_stream(indices * 4)\n"
        "    dram.service_batch(np.arange(32) * 64)\n"
        "    dram.service_batch(lookup_addresses(indices, 0, grid, trace))\n",
        rel="src/repro/pipeline/example.py",
    )
    assert rule_ids(result) == ["RPR009"] * 3
    assert "RequestStream" in result.findings[0].message


def test_rpr009_silent_on_streams_and_plumbed_values():
    code = (
        "def f(ctx, hierarchy, dram, grid, trace, hash_fn, order, level, addresses):\n"
        "    hierarchy.filter_stream(ctx.request_stream(grid, trace, hash_fn, order, level))\n"
        "    dram.service_batch(hierarchy.filter_stream(addresses).dram_stream())\n"
        "    dram.service_batch(addresses)\n"
    )
    assert lint_snippet(code, rel="src/repro/pipeline/example.py").ok
    # the IR package and the memory-system backends are exempt by design
    raw = "def f(dram):\n    dram.service_batch([1, 2, 3])\n"
    assert lint_snippet(raw, rel="src/repro/mem/hierarchy.py").ok
    assert lint_snippet(raw, rel="src/repro/dram/system.py").ok
    assert lint_snippet(raw, rel="src/repro/streams/ir.py").ok


# ----------------------------------------------------------------- waivers


def test_waiver_with_reason_suppresses_finding():
    code = (
        "import time\n"
        "t = time.time()  # repro: allow[RPR004] -- fixture: timestamp is display-only\n"
    )
    assert lint_snippet(code).ok


def test_waiver_without_reason_is_rpr000_and_does_not_suppress():
    code = "import time\nt = time.time()  # repro: allow[RPR004]\n"
    result = lint_snippet(code)
    assert sorted(rule_ids(result)) == ["RPR000", "RPR004"]


def test_waiver_covers_multiple_rules_and_next_line():
    code = (
        "import time, numpy as np\n"
        "# repro: allow[RPR001,RPR004] -- fixture: both violations are intentional\n"
        "t = (time.time(), np.random.rand())\n"
    )
    assert lint_snippet(code).ok


def test_waiver_parsing_extracts_rules_and_reason():
    waivers, broken, waived_lines = collect_waivers(
        "x = 1  # repro: allow[RPR001, RPR005] -- because the fixture says so\n"
        "# repro: allow[RPR002]\n"
    )
    assert len(waivers) == 1 and waivers[0].rules == ("RPR001", "RPR005")
    assert waivers[0].reason == "because the fixture says so"
    assert broken == [(2, 0)]
    assert waived_lines[1] == frozenset({"RPR001", "RPR005"})


def test_waivers_do_not_suppress_other_rules():
    code = "import time\nt = time.time()  # repro: allow[RPR001] -- fixture: wrong rule id\n"
    result = lint_snippet(code)
    assert rule_ids(result) == ["RPR004"]


# ------------------------------------------------------------- self-clean


def test_repo_lints_clean():
    """The enforcement test: the repo's own code passes its own linter."""
    result = lint_paths(["src", "benchmarks"], root=REPO_ROOT)
    formatted = "\n".join(f.format_text() for f in result.findings)
    assert result.ok, f"repro lint found violations:\n{formatted}"
    assert result.files_checked > 90


def test_every_rule_has_docs_and_both_fixtures_exist():
    ids = [rule.id for rule in RULES]
    assert ids == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
        "RPR008",
        "RPR009",
    ]
    for rule in RULES:
        assert rule.summary and rule.rationale


def test_cli_exit_codes_and_github_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(bad), "--root", str(tmp_path), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=bad.py,line=2" in out and "title=RPR001" in out
    assert lint_main([str(clean), "--root", str(tmp_path)]) == 0
    assert lint_main([str(bad), "--root", str(tmp_path), "--rules", "RPR999"]) == 2
    assert lint_main(["--list-rules"]) == 0


def test_python_m_repro_lint_is_wired():
    """`python -m repro lint` runs the same engine and exits 0 on the repo."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stderr


# ------------------------------------------------------- typing ratchet


def test_mypy_ratchet_matches_config():
    """Packages are either strict in mypy.ini or listed in the ratchet file."""
    import configparser

    config = configparser.ConfigParser()
    config.read(REPO_ROOT / "mypy.ini")
    ratchet = {
        line.split("#")[0].strip()
        for line in (REPO_ROOT / "mypy-ratchet.txt").read_text().splitlines()
        if line.split("#")[0].strip()
    }
    src_packages = {
        f"repro.{p.name}"
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    strict = {
        pkg
        for pkg in src_packages
        if config.has_section(f"mypy-{pkg}.*")
        and config.getboolean(f"mypy-{pkg}.*", "disallow_untyped_defs", fallback=False)
    }
    assert {"repro.core", "repro.pipeline", "repro.mem", "repro.analysis"} <= strict
    assert strict.isdisjoint(ratchet)
    assert strict | ratchet == src_packages, (
        "every package must be either strict or explicitly on the ratchet"
    )
    # Ratchet packages are *explicitly* suppressed, never silently missing:
    # each one carries an `ignore_errors` section so the CI mypy run over the
    # whole tree only bites on the strict packages until they are ratcheted.
    for pkg in ratchet:
        section = f"mypy-{pkg}.*"
        assert config.has_section(section), f"{pkg} is on the ratchet but has no mypy.ini section"
        assert config.getboolean(section, "ignore_errors", fallback=False), (
            f"{pkg} must set ignore_errors until it is ratcheted to strict"
        )
