"""Tests for the NumPy MLP and its hand-written backward pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.mlp import MLP, relu, sigmoid, softplus


def test_activation_functions_basic_values():
    assert relu(np.array([-1.0, 2.0])).tolist() == [0.0, 2.0]
    assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
    assert softplus(np.array([0.0]))[0] == pytest.approx(np.log(2.0))
    # softplus must be stable for large inputs
    assert softplus(np.array([100.0]))[0] == pytest.approx(100.0)
    assert sigmoid(np.array([-500.0]))[0] == pytest.approx(0.0, abs=1e-12)


def test_mlp_shapes_and_parameter_count():
    mlp = MLP([8, 16, 4])
    assert mlp.input_dim == 8
    assert mlp.output_dim == 4
    assert mlp.num_parameters() == 8 * 16 + 16 + 16 * 4 + 4
    out = mlp.forward(np.zeros((5, 8), dtype=np.float32))
    assert out.shape == (5, 4)


def test_mlp_rejects_invalid_configs():
    with pytest.raises(ValueError):
        MLP([8])
    with pytest.raises(ValueError):
        MLP([8, 0, 4])
    mlp = MLP([8, 4])
    with pytest.raises(ValueError):
        mlp.forward(np.zeros((5, 7)))
    with pytest.raises(RuntimeError):
        MLP([3, 2]).backward(np.zeros((1, 2)))


def test_mlp_flops_per_input():
    mlp = MLP([10, 20, 5])
    assert mlp.num_flops_per_input() == 2 * (10 * 20 + 20 * 5)


def test_mlp_gradients_match_finite_differences(rng):
    # softplus hidden units keep the loss smooth, so finite differences are
    # reliable (relu kinks would make the comparison flaky).
    mlp = MLP([6, 10, 3], hidden_activation="softplus", output_activation="sigmoid", rng=rng)
    x = rng.normal(size=(7, 6)).astype(np.float32)
    upstream = rng.normal(size=(7, 3)).astype(np.float32)

    def scalar_loss():
        return float((mlp.forward(x) * upstream).sum())

    mlp.forward(x)
    mlp.zero_grad()
    grad_input = mlp.backward(upstream)
    assert grad_input.shape == x.shape

    eps = 1e-3
    checks = [
        (mlp.weights[0], mlp.weight_grads[0]),
        (mlp.weights[1], mlp.weight_grads[1]),
        (mlp.biases[0], mlp.bias_grads[0]),
        (mlp.biases[1], mlp.bias_grads[1]),
    ]
    for param, grad in checks:
        idx = np.unravel_index(np.argmax(np.abs(grad)), param.shape)
        original = param[idx]
        param[idx] = original + eps
        plus = scalar_loss()
        param[idx] = original - eps
        minus = scalar_loss()
        param[idx] = original
        fd = (plus - minus) / (2 * eps)
        assert fd == pytest.approx(float(grad[idx]), rel=0.05, abs=1e-4)


def test_mlp_input_gradient_matches_finite_differences(rng):
    mlp = MLP([4, 8, 2], hidden_activation="softplus", rng=rng)
    x = rng.normal(size=(3, 4)).astype(np.float32)
    upstream = rng.normal(size=(3, 2)).astype(np.float32)
    mlp.forward(x)
    mlp.zero_grad()
    grad_input = mlp.backward(upstream)
    eps = 1e-3
    idx = (1, 2)
    x_plus, x_minus = x.copy(), x.copy()
    x_plus[idx] += eps
    x_minus[idx] -= eps
    fd = ((mlp.forward(x_plus) * upstream).sum() - (mlp.forward(x_minus) * upstream).sum()) / (
        2 * eps
    )
    assert fd == pytest.approx(float(grad_input[idx]), rel=0.05, abs=1e-4)


def test_gradients_accumulate_until_zero_grad(rng):
    mlp = MLP([3, 4, 2], rng=rng)
    x = rng.normal(size=(5, 3)).astype(np.float32)
    upstream = np.ones((5, 2), dtype=np.float32)
    mlp.forward(x)
    mlp.backward(upstream)
    first = mlp.weight_grads[0].copy()
    mlp.forward(x)
    mlp.backward(upstream)
    np.testing.assert_allclose(mlp.weight_grads[0], 2 * first, rtol=1e-5)
    mlp.zero_grad()
    assert np.all(mlp.weight_grads[0] == 0)


def test_intermediate_bytes_scales_with_batch():
    mlp = MLP([32, 64, 16])
    assert mlp.intermediate_bytes(batch_size=100) == 100 * (64 + 16) * 4
