"""Tests for the workload characterisation (batch, steps, traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash
from repro.nerf.encoding import HashGridConfig
from repro.workloads import (
    PAPER_BATCH,
    BatchGeometry,
    HashTraceGenerator,
    INGPWorkloadModel,
    StepName,
    TraceConfig,
    generate_batch_points,
    level_lookup_indices,
    lookup_addresses,
)


def test_paper_batch_geometry():
    PAPER_BATCH.validate()
    assert PAPER_BATCH.points_per_iteration == 256 * 1024
    assert PAPER_BATCH.iterations_per_scene == 35_000
    assert PAPER_BATCH.rays_per_iteration == 8192
    assert PAPER_BATCH.input_bytes_per_iteration == 256 * 1024 * 24


def test_batch_geometry_validation():
    with pytest.raises(ValueError):
        BatchGeometry(points_per_iteration=0).validate()
    with pytest.raises(ValueError):
        BatchGeometry(points_per_iteration=100, points_per_ray=32).validate()


def test_table2_sizes_match_paper():
    """Table II: derived sizes must be close to the paper's reported MB values."""
    table = INGPWorkloadModel().table2()
    assert table["HT"]["param_mb"] == pytest.approx(25.0, rel=0.15)
    assert table["HT"]["input_mb"] == pytest.approx(3.0, rel=0.05)
    assert table["HT"]["output_mb"] == pytest.approx(16.0, rel=0.05)
    assert table["MLP"]["param_mb"] == pytest.approx(0.014, rel=0.5)
    assert table["MLP"]["input_mb"] == pytest.approx(16.0, rel=0.05)
    assert table["MLP"]["output_mb"] == pytest.approx(1.5, rel=0.4)
    assert table["MLP"]["intermediate_mb"] == pytest.approx(32.0, rel=0.05)
    assert table["HT_b"]["param_mb"] == pytest.approx(25.0, rel=0.15)
    assert table["HT_b"]["input_mb"] == pytest.approx(16.0, rel=0.05)
    assert table["HT_b"]["output_mb"] == 0.0
    assert table["HT"]["intermediate_mb"] == 0.0


def test_each_hash_level_is_about_2mb():
    model = INGPWorkloadModel()
    fine_levels = [b for lvl, b in enumerate(model.level_bytes) if model.grid.level_uses_hash(lvl)]
    for level_bytes in fine_levels:
        assert level_bytes / 1024**2 == pytest.approx(2.0, rel=0.01)


def test_step_descriptors_are_consistent():
    model = INGPWorkloadModel()
    steps = model.all_steps()
    assert len(steps) == len(StepName)
    for step in steps:
        assert step.dram_traffic_bytes > 0
        assert step.arithmetic_intensity >= 0
    ht = model.step(StepName.HT)
    assert ht.reads_parameters_randomly
    assert ht.int_ops > ht.fp_ops  # index calculation dominates integer work
    mlp = model.step(StepName.MLP_COLOR)
    assert not mlp.reads_parameters_randomly
    assert mlp.fp_ops > 0 and mlp.int_ops == 0
    backward = model.step(StepName.MLP_COLOR_BACKWARD)
    assert backward.fp_ops == pytest.approx(2 * mlp.fp_ops)


def test_workload_scales_with_batch_size():
    small = INGPWorkloadModel(
        batch=BatchGeometry(points_per_iteration=64 * 1024, points_per_ray=32)
    )
    large = INGPWorkloadModel(
        batch=BatchGeometry(points_per_iteration=256 * 1024, points_per_ray=32)
    )
    assert large.encoding_output_bytes == 4 * small.encoding_output_bytes
    assert large.step(StepName.HT).fp_ops == 4 * small.step(StepName.HT).fp_ops
    # Hash-table size is independent of batch size.
    assert large.hash_table_bytes == small.hash_table_bytes


# -------------------------------------------------------------------- traces
def test_generate_batch_points_shape_and_ray_ordering():
    config = TraceConfig(num_rays=16, points_per_ray=8, seed=3)
    points = generate_batch_points(config)
    assert points.shape == (16, 8, 3)
    assert np.all((points >= 0) & (points <= 1))
    # Points along one ray are closer to each other than to other rays' points.
    intra = np.linalg.norm(np.diff(points, axis=1), axis=-1).mean()
    inter = np.linalg.norm(points[0, 0] - points[1:, 0], axis=-1).mean()
    assert intra < inter


def test_level_lookup_indices_bounds():
    grid = HashGridConfig(num_levels=8, table_size=2**14, max_resolution=256)
    points = generate_batch_points(TraceConfig(num_rays=8, points_per_ray=8))
    for level in (0, 4, 7):
        idx = level_lookup_indices(points.reshape(-1, 3), level, grid)
        assert idx.shape == (64, 8)
        assert idx.min() >= 0
        assert idx.max() < grid.level_table_entries(level)


def test_lookup_addresses_respect_level_offsets():
    grid = HashGridConfig(num_levels=4, table_size=2**12, max_resolution=64)
    indices = np.array([0, 1, 2])
    addr_l0 = lookup_addresses(indices, 0, grid, entry_bytes=4)
    addr_l1 = lookup_addresses(indices, 1, grid, entry_bytes=4)
    assert list(addr_l0) == [0, 4, 8]
    assert addr_l1.min() >= grid.level_table_entries(0) * 4


def test_hash_trace_generator_full_trace():
    grid = HashGridConfig(num_levels=4, table_size=2**12, max_resolution=64)
    generator = HashTraceGenerator(
        grid, TraceConfig(num_rays=8, points_per_ray=8), hash_fn=MortonLocalityHash()
    )
    trace = generator.full_trace()
    assert trace.shape == (4 * 64 * 8,)
    assert np.all(trace >= 0)
    # A point permutation changes the trace order but not its multiset size.
    order = np.random.default_rng(0).permutation(64)
    permuted = generator.full_trace(order)
    assert permuted.shape == trace.shape


def test_trace_generator_hash_function_changes_addresses():
    grid = HashGridConfig(num_levels=6, table_size=2**12, max_resolution=256)
    trace_cfg = TraceConfig(num_rays=8, points_per_ray=8)
    morton = HashTraceGenerator(grid, trace_cfg, hash_fn=MortonLocalityHash()).addresses_for_level(
        5
    )
    original = HashTraceGenerator(
        grid, trace_cfg, hash_fn=OriginalSpatialHash()
    ).addresses_for_level(5)
    assert not np.array_equal(morton, original)
