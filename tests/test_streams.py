"""Tests for the typed request-stream IR (``repro.streams``).

Covers the PR's acceptance points:

* ``RequestStream`` construction, validation, derived properties and the
  reshape operations (``with_order`` / ``subset`` / ``run_starts``);
* address derivation bit-identical to the legacy
  :func:`repro.workloads.traces.lookup_addresses` arithmetic;
* both front-ends satisfy the ``StreamSource`` protocol, and occupancy
  pruning yields exact IR subsets of the dense stream;
* ``RequestStream`` round-trips through the :class:`ArtifactStore` (npz
  payload with a typed JSON metadata document);
* fig07/fig09/fig12 artifacts are byte-identical to values recomputed with
  the pre-redesign ndarray kernels;
* the deprecated shims (ndarray ``filter_stream``, the corner-index
  row-request helper, the legacy ``run_*`` wrappers) warn once and return
  identical results;
* the embedding front-end: determinism, Zipfian skew, bag sorting, and the
  ``fig15_embedding_locality`` experiment that runs the shared analyses on
  embedding traffic with no analysis-code changes.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.accel.nmp import AlgorithmLocality
from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash
from repro.core.mapping import HashTableMapper, HashTableMappingConfig, IntraLevelPolicy
from repro.core.streaming import (
    StreamingOrder,
    memory_requests_for_stream,
    point_order,
    row_requests_for_stream,
    row_requests_from_corner_indices,
    stream_register_hit_rate,
    stream_sharing_run_length,
)
from repro.dram.system import DRAMSystem
from repro.experiments import run_fig07, run_fig09, run_fig10, run_fig12, run_fig15
from repro.mem import CacheConfig, CacheHierarchy, PrefetcherConfig
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import ArtifactStore, SimulationContext
from repro.pipeline.registry import get_experiment
from repro.streams import (
    RequestStream,
    StreamKind,
    StreamSource,
    iter_streams,
    table_base_address,
)
from repro.workloads.embedding import (
    EmbeddingStreamSource,
    EmbeddingTableLayout,
    EmbeddingTraceConfig,
    zipfian_indices,
)
from repro.workloads.traces import HashTraceGenerator, TraceConfig, lookup_addresses

GRID = HashGridConfig(num_levels=4)
TRACE = TraceConfig(num_rays=16, points_per_ray=8, seed=3)
EMB = EmbeddingTraceConfig(num_tables=2, table_rows=512, batch_size=32, pooling_factor=4)


def small_stream(**overrides):
    defaults = dict(
        indices=np.arange(12).reshape(3, 4),
        entry_bytes=8,
        table_entries=64,
        group_ids=np.array([0, 0, 1]),
        source="test",
        label="unit",
    )
    defaults.update(overrides)
    return RequestStream(**defaults)


# ------------------------------------------------------------------ the IR
def test_request_stream_properties_and_freezing():
    stream = small_stream()
    assert stream.num_points == 3
    assert stream.accesses_per_point == 4
    assert stream.num_accesses == 12
    assert stream.total_bytes == 12 * 8
    assert stream.kind is StreamKind.GATHER and not stream.writes
    assert not stream.indices.flags.writeable
    assert not stream.group_ids.flags.writeable
    # the constructor copies rather than freezing the caller's array
    mine = np.arange(12).reshape(3, 4)
    RequestStream(indices=mine, entry_bytes=4, table_entries=64)
    assert mine.flags.writeable


def test_request_stream_validation():
    with pytest.raises(ValueError, match=r"\(N, P\)"):
        small_stream(indices=np.arange(4))
    with pytest.raises(ValueError, match="entry_bytes"):
        small_stream(entry_bytes=0)
    with pytest.raises(ValueError, match="table_entries"):
        small_stream(table_entries=0)
    with pytest.raises(ValueError, match="base_address"):
        small_stream(base_address=-1)
    with pytest.raises(ValueError, match=r"indices must lie"):
        small_stream(table_entries=4)
    with pytest.raises(ValueError, match="group_ids"):
        small_stream(group_ids=np.array([0, 1]))


def test_addresses_with_order_subset_and_run_starts():
    stream = small_stream(base_address=1000)
    assert np.array_equal(
        stream.addresses, 1000 + np.arange(12) * 8
    )
    perm = np.array([2, 0, 1])
    reordered = stream.with_order(perm)
    assert np.array_equal(reordered.indices, stream.indices[perm])
    assert np.array_equal(reordered.group_ids, stream.group_ids[perm])
    sub = stream.subset(np.array([True, False, True]))
    assert np.array_equal(sub.indices, stream.indices[[0, 2]])
    assert np.array_equal(sub.group_ids, np.array([0, 1]))
    # runs of equal consecutive group ids charge only their first point
    assert np.array_equal(stream.run_starts(), np.array([True, False, True]))
    assert stream.subset(np.zeros(3, dtype=bool)).num_points == 0
    with pytest.raises(ValueError, match="keep"):
        stream.subset(np.array([True]))


def test_table_base_address_matches_back_to_back_layout():
    layout = EmbeddingTableLayout(num_tables=3, table_rows=100)
    assert table_base_address(layout, 0, 8) == 0
    assert table_base_address(layout, 2, 8) == 2 * 100 * 8
    with pytest.raises(ValueError, match="out of range"):
        table_base_address(layout, 3, 8)


# ------------------------------------------------------------ stream sources
def test_both_front_ends_satisfy_the_stream_source_protocol():
    nerf = HashTraceGenerator(GRID, TRACE, MortonLocalityHash())
    emb = EmbeddingStreamSource(EMB)
    for source, expected in ((nerf, GRID.num_levels), (emb, EMB.num_tables)):
        assert isinstance(source, StreamSource)
        assert source.num_streams == expected
        streams = list(iter_streams(source))
        assert len(streams) == expected
        assert all(isinstance(s, RequestStream) for s in streams)
        assert streams[0].source == source.name


def test_nerf_stream_addresses_match_legacy_lookup_addresses():
    gen = HashTraceGenerator(GRID, TRACE, MortonLocalityHash())
    order = point_order(
        TRACE.num_rays, TRACE.points_per_ray, StreamingOrder.RANDOM, np.random.default_rng(7)
    )
    for level in range(GRID.num_levels):
        for perm in (None, order):
            stream = gen.stream(level, perm)
            legacy = lookup_addresses(stream.indices, level, GRID, TRACE.entry_bytes)
            assert np.array_equal(stream.addresses, legacy)
            assert stream.entry_bytes == TRACE.entry_bytes
            assert stream.table_entries == GRID.level_table_entries(level)
            assert stream.label == f"level={level}"


def test_pruned_occupancy_streams_are_exact_ir_subsets_of_dense():
    ctx = SimulationContext()
    occ = TraceConfig(num_rays=16, points_per_ray=8, seed=3, scene="lego", occupancy=True)
    hash_fn = MortonLocalityHash()
    for level in (0, GRID.num_levels - 1):
        dense = ctx.request_stream(GRID, occ.dense(), hash_fn, StreamingOrder.RAY_FIRST, level)
        pruned = ctx.request_stream(GRID, occ, hash_fn, StreamingOrder.RAY_FIRST, level)
        mask = ctx.occupancy_mask(occ)
        assert 0 < pruned.num_points < dense.num_points
        assert np.array_equal(pruned.indices, dense.indices[mask])
        assert np.array_equal(pruned.group_ids, dense.group_ids[mask])


# ----------------------------------------------------------- store roundtrip
def test_request_stream_roundtrips_through_the_artifact_store(tmp_path):
    store = ArtifactStore(tmp_path)
    gen = HashTraceGenerator(GRID, TRACE, MortonLocalityHash())
    original = gen.stream(1)
    assert store.put(("k", "stream"), original)
    loaded = ArtifactStore(tmp_path).get(("k", "stream"))
    assert isinstance(loaded, RequestStream)
    assert np.array_equal(loaded.indices, original.indices)
    assert np.array_equal(loaded.group_ids, original.group_ids)
    assert not loaded.indices.flags.writeable
    for attr in ("entry_bytes", "table_entries", "base_address", "kind", "dtype",
                 "source", "label"):
        assert getattr(loaded, attr) == getattr(original, attr), attr
    # a group-less WRITE stream keeps its kind and its None group axis
    bare = RequestStream(
        indices=np.arange(6).reshape(6, 1),
        entry_bytes=2,
        table_entries=8,
        kind=StreamKind.WRITE,
        dtype="int8",
    )
    assert store.put(("k", "bare"), bare)
    reloaded = ArtifactStore(tmp_path).get(("k", "bare"))
    assert reloaded.kind is StreamKind.WRITE and reloaded.writes
    assert reloaded.group_ids is None and reloaded.dtype == "int8"


def test_warm_store_reproduces_fig09_byte_identically(tmp_path):
    kwargs = dict(subarrays="1,4", levels=3, rays=16, points_per_ray=8, scene="")
    cold = get_experiment("fig09").run(SimulationContext(store=ArtifactStore(tmp_path)), **kwargs)
    warm = get_experiment("fig09").run(SimulationContext(store=ArtifactStore(tmp_path)), **kwargs)
    assert cold.to_json() == warm.to_json()


# --------------------------------------------- byte-identity vs legacy paths
def test_fig07_row_requests_match_the_legacy_kernel():
    ctx = SimulationContext()
    baseline, optimized = OriginalSpatialHash(), MortonLocalityHash()
    result = run_fig07.__wrapped__(
        GRID, TRACE, context=ctx, baseline_hash=baseline, optimized_hash=optimized
    )
    points = ctx.batch_points(TRACE).reshape(-1, 3)
    for row in result.rows:
        level = row["level"]
        legacy_base = memory_requests_for_stream(
            points, level, GRID, baseline,
            order=ctx.stream_order(TRACE, StreamingOrder.RANDOM),
        )
        legacy_opt = memory_requests_for_stream(
            points, level, GRID, optimized,
            order=ctx.stream_order(TRACE, StreamingOrder.RAY_FIRST),
        )
        assert row["baseline_row_requests"] == legacy_base
        assert row["optimized_row_requests"] == legacy_opt


def test_fig09_conflicts_match_the_legacy_level_indices_path():
    ctx = SimulationContext()
    hash_fn = MortonLocalityHash()
    result = run_fig09.__wrapped__((1, 4), GRID, TRACE, 16, context=ctx, hash_fn=hash_fn)
    for row in result.rows:
        indices = ctx.level_indices(GRID, TRACE, hash_fn, row["level"]).ravel()
        for subarrays in (1, 4):
            mapper = HashTableMapper(
                GRID,
                HashTableMappingConfig(
                    subarrays_per_bank=subarrays,
                    intra_level_policy=IntraLevelPolicy.SUBARRAY_INTERLEAVED,
                ),
            )
            stats = mapper.count_conflicts(row["level"], indices, parallel_points=16)
            assert row[f"conflicts_{subarrays}sa"] == stats.bank_conflicts


def test_fig12_filtering_matches_the_legacy_ndarray_path():
    ctx = SimulationContext()
    hash_fn = MortonLocalityHash()
    hierarchy = CacheHierarchy(cache=CacheConfig(capacity_bytes=16 * 1024))
    for level in range(GRID.num_levels):
        via_ir = ctx.filtered_stream(
            hierarchy, GRID, TRACE, hash_fn, StreamingOrder.RAY_FIRST, level
        )
        addresses = lookup_addresses(
            ctx.level_indices(GRID, TRACE, hash_fn, level), level, GRID, TRACE.entry_bytes
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = hierarchy.filter_stream(
                addresses, accesses_per_point=8, entry_bytes=TRACE.entry_bytes
            )
        assert via_ir.stats == legacy.stats
        assert np.array_equal(via_ir.dram_lines, legacy.dram_lines)
        assert np.array_equal(via_ir.demand_lines, legacy.demand_lines)


def test_dram_service_batch_accepts_streams_and_matches_addresses():
    gen = HashTraceGenerator(GRID, TRACE, MortonLocalityHash())
    stream = gen.stream(0)
    capacity = DRAMSystem().spec.organization.total_capacity_bytes
    via_stream = DRAMSystem().service_batch(stream, size_bytes=32)
    via_addresses = DRAMSystem().service_batch(stream.addresses % capacity, size_bytes=32)
    assert via_stream.total_cycles == via_addresses.total_cycles
    assert via_stream.row_hits == via_addresses.row_hits


# -------------------------------------------------------------- deprecations
def test_corner_index_row_request_shim_warns_and_matches_the_ir():
    ctx = SimulationContext()
    points = ctx.batch_points(TRACE).reshape(-1, 3)
    gen = HashTraceGenerator(GRID, TRACE, MortonLocalityHash())
    stream = gen.stream(2)
    with pytest.warns(DeprecationWarning, match="row_requests_for_stream"):
        legacy = row_requests_from_corner_indices(points, stream.indices, 2, GRID)
    assert legacy == row_requests_for_stream(stream)


def test_filter_stream_ndarray_path_warns_stream_path_does_not():
    hierarchy = CacheHierarchy(cache=CacheConfig(capacity_bytes=4096))
    stream = HashTraceGenerator(GRID, TRACE, MortonLocalityHash()).stream(0)
    with pytest.warns(DeprecationWarning, match="RequestStream"):
        hierarchy.filter_stream(stream.addresses)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        hierarchy.filter_stream(stream)


def test_legacy_run_wrappers_warn_and_return_identical_results():
    with pytest.warns(DeprecationWarning, match="python -m repro run fig10"):
        legacy = run_fig10(num_banks=4)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        direct = run_fig10.__wrapped__(num_banks=4)
    assert legacy.to_json() == direct.to_json()
    # the registered path never touches the deprecated wrapper
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        registered = get_experiment("fig10").run(num_banks=4)
    assert registered.to_json() == direct.to_json()


# ---------------------------------------------------------------- embeddings
def test_embedding_streams_are_deterministic_and_in_range():
    a = EmbeddingStreamSource(EMB)
    b = EmbeddingStreamSource(EmbeddingTraceConfig(**vars(EMB)))
    for table in range(EMB.num_tables):
        sa, sb = a.stream(table), b.stream(table)
        assert np.array_equal(sa.indices, sb.indices)
        assert np.array_equal(sa.group_ids, sb.group_ids)
        assert sa.indices.shape == (EMB.batch_size, EMB.pooling_factor)
        assert sa.table_entries == EMB.table_rows
        assert sa.base_address == table * EMB.table_rows * EMB.entry_bytes
    assert not np.array_equal(a.stream(0).indices, a.stream(1).indices)


def test_zipfian_keys_are_skewed_toward_low_ranks():
    rng = np.random.default_rng(0)
    draws = zipfian_indices(rng, 1000, 20_000, alpha=1.2)
    assert draws.min() >= 0 and draws.max() < 1000
    # rank 0 must dominate; a uniform draw would put ~20 samples on any row
    assert (draws == 0).sum() > 1000
    uniform_cfg = EmbeddingTraceConfig(**{**vars(EMB), "distribution": "uniform"})
    zipf_unique = len(np.unique(EmbeddingStreamSource(EMB).stream(0).indices))
    uniform_unique = len(np.unique(EmbeddingStreamSource(uniform_cfg).stream(0).indices))
    assert zipf_unique < uniform_unique


def test_embedding_sorted_order_groups_bags_and_never_costs_more_rows():
    skewed = EmbeddingTraceConfig(
        num_tables=1, table_rows=64, batch_size=128, pooling_factor=2, zipf_alpha=1.6
    )
    source = EmbeddingStreamSource(skewed)
    arrival, bagged = source.stream(0, order="arrival"), source.stream(0, order="sorted")
    assert np.all(np.diff(bagged.group_ids) >= 0)
    assert np.array_equal(np.sort(arrival.indices, axis=None), np.sort(bagged.indices, axis=None))
    assert row_requests_for_stream(bagged) <= row_requests_for_stream(arrival)
    assert stream_sharing_run_length(bagged) >= stream_sharing_run_length(arrival)
    assert 0.0 <= stream_register_hit_rate(bagged) <= 1.0


def test_embedding_validation_errors():
    with pytest.raises(ValueError, match="distribution"):
        EmbeddingTraceConfig(distribution="gaussian")
    with pytest.raises(ValueError, match="zipf_alpha"):
        EmbeddingTraceConfig(zipf_alpha=0.0)
    with pytest.raises(ValueError, match="out of range"):
        EmbeddingStreamSource(EMB).stream(EMB.num_tables)
    with pytest.raises(ValueError, match="order"):
        EmbeddingStreamSource(EMB).stream(0, order="shuffled")


def test_algorithm_locality_from_request_stream():
    bagged = EmbeddingStreamSource(EMB).stream(0, order="sorted")
    locality = AlgorithmLocality.from_request_stream(bagged)
    assert locality.row_requests_per_cube > 0
    assert locality.cube_sharing_run_length >= 1.0


# -------------------------------------------------------------------- fig15
def test_fig15_runs_the_shared_analyses_on_embedding_traffic():
    ctx = SimulationContext()
    result = run_fig15.__wrapped__(EMB, (1, 4), context=ctx, timing=True)
    assert len(result.rows) == EMB.num_tables
    expected = {
        "table", "bag_sharing_run_length", "register_hit_rate",
        "arrival_row_requests", "sorted_row_requests", "effective_bw_improvement",
        "conflicts_1sa", "conflicts_4sa", "sequential_fraction",
        "l0_hit_rate", "overall_hit_rate", "dram_lines", "traffic_reduction",
        "dram_cycles", "uncached_dram_cycles", "dram_time_reduction",
    }
    assert expected <= set(result.rows[0])
    # zero-analysis-change proof: the row's numbers ARE the shared consumers'
    # outputs on the embedding stream, not an embedding-specific reimplementation
    row_bytes = ctx.dram_spec("lpddr4-2400").organization.row_buffer_bytes
    bagged = ctx.embedding_stream(EMB, 0, order="sorted")
    assert result.rows[0]["sorted_row_requests"] == row_requests_for_stream(bagged, row_bytes)
    assert result.rows[0]["bag_sharing_run_length"] == stream_sharing_run_length(bagged)
    json.loads(result.to_json())  # artifact-serializable


def test_fig15_registered_experiment_end_to_end():
    result = get_experiment("fig15_embedding_locality").run(
        tables=2, table_rows=512, batch=32, pooling=4,
        subarrays="1", timing=False, distribution="uniform",
    )
    assert len(result.rows) == 2
    assert all(row["distribution"] == "uniform" for row in result.rows)
    assert all(row["arrival_row_requests"] >= row["sorted_row_requests"] for row in result.rows)
