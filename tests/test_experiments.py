"""Integration tests for the experiment harnesses (fast experiments only).

Table IV (real training) is covered by its benchmark and by a smoke test here
with a minimal configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    QualityRunConfig,
    format_series,
    format_table,
    run_fig01,
    run_fig04,
    run_fig06,
    run_fig07,
    run_fig09,
    run_fig10,
    run_fig11,
    run_tab01,
    run_tab02,
    run_tab03,
    run_tab04,
)
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import TraceConfig


def test_experiment_result_helpers():
    result = ExperimentResult(
        "Fig. X", "demo", rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 0.001}], notes="n"
    )
    assert result.column("a") == [1, 3]
    text = result.to_text()
    assert "Fig. X" in text and "note:" in text
    assert format_table([]) == "(no rows)"
    assert "demo" in format_series("demo", [1.0, 2.0])


def test_experiment_result_column_error_names_available_columns():
    result = ExperimentResult("Fig. X", "demo", rows=[{"a": 1, "b": 2.5}])
    with pytest.raises(KeyError) as excinfo:
        result.column("c")
    message = str(excinfo.value)
    assert "'c'" in message and "a, b" in message


def test_experiment_result_json_round_trip():
    result = ExperimentResult(
        "Fig. X",
        "demo",
        rows=[
            {"a": np.int64(1), "b": np.float64(2.5), "ok": np.bool_(True)},
            {"a": 3, "b": float("nan"), "ok": False},
        ],
        notes="scaled down",
    )
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.experiment_id == result.experiment_id
    assert restored.description == result.description
    assert restored.notes == result.notes
    assert restored.rows[0] == {"a": 1, "b": 2.5, "ok": True}
    assert restored.rows[1]["a"] == 3 and np.isnan(restored.rows[1]["b"])
    # Serializing the restored result reproduces the same artifact text.
    assert restored.to_json() == result.to_json()


def test_experiment_result_csv_includes_all_columns():
    result = ExperimentResult("Fig. X", "demo", rows=[{"a": 1}, {"a": 2, "b": 3}])
    csv_text = result.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1," and lines[2] == "2,3"


def test_fig01_training_time_shape():
    result = run_fig01.__wrapped__()
    devices = {row["device"]: row for row in result.rows}
    assert devices["XNX"]["modelled_s_per_scene"] > 5 * devices["2080Ti"]["modelled_s_per_scene"]
    assert devices["XNX"]["bottleneck_fraction"] > 0.6
    assert devices["XNX"]["frac_HT"] + devices["XNX"]["frac_HT_b"] > 0.5


def test_fig04_utilization_shape():
    result = run_fig04.__wrapped__()
    assert len(result.rows) == 6
    by_kernel = {row["kernel"]: row for row in result.rows}
    # The hash-table kernels dominate and are firmly DRAM-bandwidth bound.
    for kernel in ("HT", "HT_b"):
        assert by_kernel[kernel]["memory_bound"]
        assert by_kernel[kernel]["bw_to_compute_ratio"] > 5.0
        assert by_kernel[kernel]["dram_util"] > 0.3
        assert max(by_kernel[kernel]["fp32_util"], by_kernel[kernel]["fp16_util"]) < 0.15
    for row in result.rows:
        assert row["dram_util"] > 0.1
        assert max(row["fp32_util"], row["fp16_util"], row["int32_util"]) <= 1.0


def test_fig06_index_distance_shape():
    result = run_fig06.__wrapped__(num_cubes=2048)
    by_hash = {row["hash"]: row for row in result.rows}
    morton, original = by_hash["morton-locality"], by_hash["ingp-prime-xor"]
    assert morton["frac_leq_16"] > original["frac_leq_16"]
    assert morton["frac_gt_5000"] < 0.1
    assert original["frac_gt_5000"] > 0.4
    assert morton["requests_per_cube"] == pytest.approx(1.58, abs=0.35)
    assert original["requests_per_cube"] == pytest.approx(4.02, abs=0.35)


def test_fig07_locality_shape():
    result = run_fig07.__wrapped__(
        grid_config=HashGridConfig(num_levels=8, table_size=2**14, max_resolution=1024),
        trace_config=TraceConfig(num_rays=48, points_per_ray=48),
    )
    improvements = result.column("effective_bw_improvement")
    assert len(improvements) == 8
    assert all(i > 1.5 for i in improvements)
    assert max(improvements) > 5.0
    sharing = result.column("points_sharing_cube")
    assert sharing[0] > sharing[-1]


def test_fig09_bank_conflicts_shape():
    result = run_fig09.__wrapped__(
        subarray_counts=(1, 4, 16),
        grid_config=HashGridConfig(num_levels=8, table_size=2**14, max_resolution=1024),
        trace_config=TraceConfig(num_rays=32, points_per_ray=32),
    )
    for row in result.rows:
        assert row["conflicts_1sa"] >= row["conflicts_4sa"] >= row["conflicts_16sa"]
        assert row["norm_1sa"] <= 1.0 + 1e-9
    # Per-level conflicts are unbalanced (motivation for inter-level grouping).
    finest = [row["conflicts_1sa"] for row in result.rows]
    assert max(finest) > 2 * (min(finest) + 1)


def test_fig10_parallelism_shape():
    result = run_fig10.__wrapped__()
    totals = {row["plan"]: row["total_mb"] for row in result.rows}
    assert totals["heterogeneous"] < totals["all-data-parallel"]
    assert totals["heterogeneous"] < totals["all-parameter-parallel"]


def test_fig11_speedup_energy_shape():
    result = run_fig11.__wrapped__()
    average = result.rows[-1]
    assert average["scene"] == "AVERAGE"
    assert average["speedup_vs_XNX"] > 10.0
    assert average["speedup_vs_TX2"] > 60.0
    assert average["energy_improvement_vs_XNX"] > 20.0
    assert average["energy_improvement_vs_TX2"] > 100.0


def test_tab01_tab02_tab03_contents():
    tab1 = run_tab01.__wrapped__()
    assert {row["device"] for row in tab1.rows} == {"XNX", "TX2", "2080Ti", "QuestPro"}
    tab2 = run_tab02.__wrapped__()
    for row in tab2.rows:
        if row["paper_param_mb"] > 0:
            assert row["param_mb"] == pytest.approx(row["paper_param_mb"], rel=0.3)
    tab3 = run_tab03.__wrapped__()
    values = {row["parameter"]: row["value"] for row in tab3.rows}
    assert values["INT32 PEs per bank"] == 256
    assert values["Area per bank (mm^2, modelled)"] == pytest.approx(3.6, rel=0.05)
    assert values["Power per bank (mW, modelled)"] == pytest.approx(596.3, rel=0.05)


@pytest.mark.slow
def test_tab04_psnr_smoke():
    """Tiny Table IV run: only two hash-grid methods, one scene, a few iterations."""
    config = QualityRunConfig(
        scenes=("lego",), image_size=24, num_train_views=4, num_test_views=1,
        iterations=40, rays_per_batch=96, samples_per_ray=24,
    )
    result = run_tab04.__wrapped__(config, methods=("ingp", "instant-nerf"))
    by_method = {row["method"]: row["avg_psnr"] for row in result.rows}
    assert np.isfinite(by_method["ingp"]) and np.isfinite(by_method["instant-nerf"])
    assert by_method["ingp"] > 8.0
    # The Morton hash must not cost meaningful quality (paper: -0.23 dB).
    assert abs(by_method["ingp"] - by_method["instant-nerf"]) < 3.0
