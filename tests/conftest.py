"""Shared fixtures for the test suite (kept tiny so the suite stays fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.encoding import HashGridConfig
from repro.scenes.dataset import DatasetConfig, SyntheticNeRFDataset
from repro.scenes.library import build_scene


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticNeRFDataset:
    """A very small posed-image dataset rendered once per test session."""
    config = DatasetConfig(
        image_size=20,
        num_train_views=3,
        num_test_views=1,
        gt_samples_per_ray=48,
    )
    return SyntheticNeRFDataset(build_scene("lego"), config)


@pytest.fixture(scope="session")
def small_grid_config() -> HashGridConfig:
    """A hash-grid configuration small enough for fast gradient checks."""
    return HashGridConfig(num_levels=4, table_size=512, base_resolution=4, max_resolution=64)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
