"""Tests for the point streaming orders and Fig. 7 locality statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash
from repro.core.streaming import (
    StreamingOrder,
    effective_bandwidth_improvement,
    memory_requests_for_stream,
    memory_requests_for_stream_reference,
    point_order,
    points_sharing_same_cube,
    register_hit_rate,
)
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import TraceConfig, generate_batch_points


@pytest.fixture(scope="module")
def ray_points():
    return generate_batch_points(TraceConfig(num_rays=32, points_per_ray=32, seed=0))


def test_point_order_shapes_and_kinds():
    ray_first = point_order(4, 8, StreamingOrder.RAY_FIRST)
    assert ray_first.tolist() == list(range(32))
    shuffled = point_order(4, 8, StreamingOrder.RANDOM, rng=np.random.default_rng(0))
    assert sorted(shuffled.tolist()) == list(range(32))
    assert shuffled.tolist() != list(range(32))
    with pytest.raises(ValueError):
        point_order(0, 8, StreamingOrder.RANDOM)


def test_ray_first_order_shares_cubes_more_than_random(ray_points):
    """Fig. 7(a): ray-first streaming keeps consecutive points in the same cube."""
    flat = ray_points.reshape(-1, 3)
    num = ray_points.shape[0] * ray_points.shape[1]
    ray_order = point_order(ray_points.shape[0], ray_points.shape[1], StreamingOrder.RAY_FIRST)
    random_order = point_order(
        ray_points.shape[0],
        ray_points.shape[1],
        StreamingOrder.RANDOM,
        rng=np.random.default_rng(1),
    )
    for resolution in (16, 64):
        ray_sharing = points_sharing_same_cube(flat, resolution, ray_order)
        random_sharing = points_sharing_same_cube(flat, resolution, random_order)
        assert ray_sharing > random_sharing
        assert ray_sharing > 1.5
        assert random_sharing < 1.5
    assert register_hit_rate(flat, 16, ray_order) > register_hit_rate(flat, 16, random_order)


def test_sharing_decreases_with_resolution(ray_points):
    """Fig. 7(a) shape: coarse levels share much more than fine levels."""
    flat = ray_points.reshape(-1, 3)
    coarse = points_sharing_same_cube(flat, 16)
    fine = points_sharing_same_cube(flat, 1024)
    assert coarse > fine
    assert fine >= 1.0


def test_memory_requests_reduced_by_morton_and_ray_order(ray_points):
    grid = HashGridConfig(num_levels=8, table_size=2**14, max_resolution=512)
    flat = ray_points.reshape(-1, 3)
    level = 6
    baseline = memory_requests_for_stream(
        flat, level, grid, OriginalSpatialHash(),
        order=point_order(32, 32, StreamingOrder.RANDOM, rng=np.random.default_rng(2)),
    )
    optimized = memory_requests_for_stream(flat, level, grid, MortonLocalityHash())
    assert optimized < baseline
    assert optimized >= 1


def test_effective_bandwidth_improvement_matches_paper_shape(ray_points):
    """Fig. 7(b): the combined techniques give a multi-x improvement on every level."""
    grid = HashGridConfig(num_levels=8, table_size=2**14, max_resolution=1024)
    reports = effective_bandwidth_improvement(
        points=ray_points,
        grid_config=grid,
        baseline_hash=OriginalSpatialHash(),
        optimized_hash=MortonLocalityHash(),
        num_rays=32,
        points_per_ray=32,
    )
    assert len(reports) == 8
    improvements = [r.effective_bandwidth_improvement for r in reports]
    assert all(imp > 1.5 for imp in improvements)
    assert max(improvements) > 5.0
    # Coarse levels improve at least as much as the finest level (paper shape).
    assert improvements[0] > improvements[-1]
    for report in reports:
        assert report.baseline_requests >= report.optimized_requests
        assert 0.0 <= report.register_hit_rate <= 1.0


def test_points_sharing_empty_input():
    assert points_sharing_same_cube(np.zeros((0, 3)), 16) == 0.0
    assert register_hit_rate(np.zeros((1, 3)), 16) == 0.0


def test_memory_requests_vectorized_matches_loop_oracle(ray_points):
    """The vectorized run-length/row-set accounting must equal the retained loop."""
    flat = ray_points.reshape(-1, 3)
    grid = HashGridConfig(num_levels=8, table_size=2**14, max_resolution=512)
    orders = [
        None,
        point_order(32, 32, StreamingOrder.RANDOM, rng=np.random.default_rng(5)),
    ]
    for hash_fn in (OriginalSpatialHash(), MortonLocalityHash()):
        for level in range(grid.num_levels):
            for order in orders:
                fast = memory_requests_for_stream(flat, level, grid, hash_fn, order)
                slow = memory_requests_for_stream_reference(flat, level, grid, hash_fn, order)
                assert fast == slow


def test_memory_requests_empty_and_single_point():
    grid = HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64)
    empty = np.zeros((0, 3))
    one = np.array([[0.3, 0.4, 0.5]])
    for level in range(grid.num_levels):
        assert memory_requests_for_stream(empty, level, grid, MortonLocalityHash()) == 0
        fast = memory_requests_for_stream(one, level, grid, MortonLocalityHash())
        slow = memory_requests_for_stream_reference(one, level, grid, MortonLocalityHash())
        assert fast == slow
        assert 1 <= fast <= 8
