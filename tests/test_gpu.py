"""Tests for the GPU specs, roofline model and analytical profiler."""

from __future__ import annotations

import pytest

from repro.gpu import (
    ALL_GPUS,
    RTX_2080TI,
    TX2,
    XNX,
    GPUProfiler,
    RooflineModel,
    get_gpu,
)
from repro.workloads.steps import StepName


def test_table1_specs_transcription():
    assert XNX.dram_bandwidth_gbps == pytest.approx(59.7)
    assert XNX.power_w == 20.0
    assert XNX.l2_cache_mb == 0.5
    assert TX2.dram_bandwidth_gbps == pytest.approx(25.6)
    assert RTX_2080TI.dram_bandwidth_gbps == pytest.approx(616.0)
    assert RTX_2080TI.l2_cache_mb == 5.5
    assert XNX.measured_training_s == pytest.approx(7088.0)
    assert TX2.measured_training_s == pytest.approx(44653.0)
    assert RTX_2080TI.measured_training_s == pytest.approx(306.0)
    assert len(ALL_GPUS) == 4
    for gpu in ALL_GPUS.values():
        gpu.validate()


def test_get_gpu_lookup():
    assert get_gpu("xnx") is XNX
    assert get_gpu("2080Ti") is RTX_2080TI
    with pytest.raises(KeyError):
        get_gpu("a100")


def test_roofline_bottleneck_steps_are_memory_bound():
    """The hash-table kernels (the dominant cost) must be memory-bound on the
    edge GPU; the tiny color MLP can come out marginally compute-bound in the
    roofline model, which the paper's coarser profiling does not resolve."""
    model = RooflineModel(XNX)
    for step in (StepName.HT, StepName.HT_BACKWARD, StepName.MLP_DENSITY):
        timing = model.step_timing(step)
        assert timing.memory_bound, f"{step} should be memory-bound on the edge GPU"
        assert timing.seconds > 0
    assert model.step_timing(StepName.MLP_COLOR).seconds > 0


def test_roofline_training_time_orders_of_magnitude():
    """Fig. 1(a) shape: edge GPUs are >1 hour/scene, the cloud GPU is minutes."""
    xnx_time = RooflineModel(XNX).scene_training_seconds()
    tx2_time = RooflineModel(TX2).scene_training_seconds()
    cloud_time = RooflineModel(RTX_2080TI).scene_training_seconds()
    assert xnx_time > 3600.0
    assert tx2_time > xnx_time
    assert cloud_time < 1200.0
    assert xnx_time / cloud_time > 5.0
    # Within ~2x of the paper's measured averages.
    assert xnx_time == pytest.approx(7088.0, rel=1.0)
    assert cloud_time == pytest.approx(305.8, rel=1.0)


def test_roofline_breakdown_dominated_by_hash_table():
    """Fig. 1(b) shape: HT + HT_b dominate, the four bottleneck steps >60%."""
    breakdown = RooflineModel(XNX).breakdown()
    assert breakdown["HT"] > 0.2
    assert breakdown["HT_b"] > 0.2
    assert breakdown["HT"] + breakdown["HT_b"] > 0.5
    bottleneck = 1.0 - breakdown["Other"]
    assert bottleneck > 0.6
    assert sum(breakdown.values()) == pytest.approx(1.0)


def test_larger_cache_absorbs_hash_lookups():
    xnx_bytes = RooflineModel(XNX).effective_bytes(StepName.HT)
    cloud_bytes = RooflineModel(RTX_2080TI).effective_bytes(StepName.HT)
    assert cloud_bytes < xnx_bytes


def test_profiler_reports_memory_bound_utilization():
    """Fig. 4 shape: DRAM utilization far above any compute utilization."""
    profiler = GPUProfiler.for_gpu(XNX)
    for step in (StepName.HT, StepName.MLP_DENSITY):
        profile = profiler.profile_step(step)
        assert profile.dram_bandwidth_utilization > 0.3
        assert profile.dram_read_gbps > profile.dram_write_gbps  # forward steps read-heavy
    ht_profile = profiler.profile_step(StepName.HT)
    assert ht_profile.fp32_utilization < 0.1
    assert ht_profile.fp16_utilization < 0.1
    assert ht_profile.bandwidth_to_compute_ratio > 5.0
    assert profiler.profile_step(StepName.HT_BACKWARD).bandwidth_to_compute_ratio > 5.0


def test_profiler_backward_steps_are_write_heavy():
    profile = GPUProfiler.for_gpu(XNX).profile_step(StepName.HT_BACKWARD)
    assert profile.dram_write_gbps > profile.dram_read_gbps


def test_profile_scene_and_bottleneck_listing():
    profiler = GPUProfiler.for_gpu(XNX)
    scene = profiler.profile_scene()
    assert scene.gpu_name == "XNX"
    assert set(scene.kernels) == {s.value for s in StepName}
    assert 0.5 < scene.bottleneck_fraction() <= 1.0
    bottlenecks = profiler.bottleneck_steps()
    assert StepName.HT in bottlenecks
    assert StepName.HT_BACKWARD in bottlenecks


def test_scene_energy_scales_with_power():
    xnx_energy = RooflineModel(XNX).scene_training_energy_j()
    tx2_energy = RooflineModel(TX2).scene_training_energy_j()
    assert xnx_energy > 0 and tx2_energy > 0
    with pytest.raises(ValueError):
        RooflineModel(XNX).scene_training_energy_j(utilization_of_tdp=0.0)
