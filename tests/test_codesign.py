"""Tests for the top-level co-design system model."""

from __future__ import annotations

import pytest

from repro.core.codesign import SCENE_DIFFICULTY, AlgorithmConfig, InstantNeRFSystem
from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash
from repro.core.streaming import StreamingOrder
from repro.gpu import TX2, XNX
from repro.nerf.encoding import HashGridConfig
from repro.scenes.library import SCENE_NAMES
from repro.workloads.traces import TraceConfig


@pytest.fixture(scope="module")
def small_trace():
    return TraceConfig(num_rays=48, points_per_ray=48, seed=0)


@pytest.fixture(scope="module")
def instant_system(small_trace):
    return InstantNeRFSystem(AlgorithmConfig.instant_nerf(), trace_config=small_trace)


@pytest.fixture(scope="module")
def ingp_system(small_trace):
    return InstantNeRFSystem(AlgorithmConfig.ingp(), trace_config=small_trace)


def test_algorithm_configs():
    ours = AlgorithmConfig.instant_nerf()
    theirs = AlgorithmConfig.ingp()
    assert isinstance(ours.hash_fn, MortonLocalityHash)
    assert ours.streaming_order is StreamingOrder.RAY_FIRST
    assert isinstance(theirs.hash_fn, OriginalSpatialHash)
    assert theirs.streaming_order is StreamingOrder.RANDOM


def test_scene_difficulty_covers_all_scenes():
    assert set(SCENE_DIFFICULTY) == set(SCENE_NAMES)
    assert sum(SCENE_DIFFICULTY.values()) / len(SCENE_DIFFICULTY) == pytest.approx(1.0, abs=0.05)


def test_measured_locality_reproduces_paper_statistics(instant_system, ingp_system):
    ours = instant_system.locality
    theirs = ingp_system.locality
    # Sec. III-A: ~1.58 vs ~4.02 row requests per cube.
    assert ours.row_requests_per_cube == pytest.approx(1.58, abs=0.4)
    assert theirs.row_requests_per_cube == pytest.approx(4.02, abs=0.5)
    # Ray-first streaming shares cubes; random order does not.
    assert ours.cube_sharing_run_length > 1.5
    assert theirs.cube_sharing_run_length == pytest.approx(1.0, abs=0.1)
    assert ours.bank_conflict_stall_factor < theirs.bank_conflict_stall_factor


def test_codesign_outperforms_ingp_on_nmp(instant_system, ingp_system):
    ours = instant_system.scene_training_seconds("lego")
    theirs = ingp_system.scene_training_seconds("lego")
    assert theirs > 1.5 * ours


def test_scene_difficulty_scales_results(instant_system):
    assert instant_system.scene_training_seconds("ship") > instant_system.scene_training_seconds(
        "mic"
    )
    assert instant_system.scene_training_energy_j(
        "ship"
    ) > instant_system.scene_training_energy_j("mic")


def test_fig11_comparisons_within_expected_regime(instant_system):
    xnx = instant_system.compare_against(XNX)
    tx2 = instant_system.compare_against(TX2)
    assert len(xnx) == 8 and len(tx2) == 8
    for comparison in xnx:
        assert comparison.speedup > 10.0
        assert comparison.energy_efficiency_improvement > 20.0
    for comparison in tx2:
        assert comparison.speedup > 60.0
        assert comparison.energy_efficiency_improvement > 100.0
    # TX2 is the slower baseline, so it shows the larger gains (paper Fig. 11).
    assert min(c.speedup for c in tx2) > max(c.speedup for c in xnx)


def test_algorithm_speedup_on_gpu_close_to_paper(instant_system, ingp_system):
    """Sec. V-B: the algorithm alone boosts 2080Ti training efficiency by ~1.15x."""
    boost = instant_system.algorithm_speedup_on_gpu(ingp_system)
    assert 1.0 < boost < 1.5
    assert boost == pytest.approx(1.15, abs=0.12)


def test_custom_grid_config_flows_through(small_trace):
    grid = HashGridConfig(num_levels=8, table_size=2**16, max_resolution=512)
    system = InstantNeRFSystem(grid_config=grid, trace_config=small_trace)
    assert system.workload.grid.num_levels == 8
    assert system.accelerator.workload is system.workload
