"""Tests for ray generation and point sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.rays import RayBundle, generate_rays, sample_along_rays, stratified_t_values
from repro.scenes.camera import CameraIntrinsics, look_at


def test_ray_bundle_validation_and_selection():
    origins = np.zeros((4, 3))
    directions = np.tile([0.0, 0.0, -1.0], (4, 1))
    bundle = RayBundle(origins, directions)
    assert len(bundle) == 4
    sub = bundle.select(np.array([0, 2]))
    assert len(sub) == 2
    with pytest.raises(ValueError):
        RayBundle(np.zeros((4, 3)), np.zeros((3, 3)))


def test_generate_rays_directions_are_unit_and_through_center():
    intr = CameraIntrinsics.from_fov(8, 8, 60.0)
    pose = look_at(np.array([0.0, 0.0, 2.0]), np.zeros(3))
    rays = generate_rays(pose, intr.matrix, 8, 8)
    assert len(rays) == 64
    np.testing.assert_allclose(np.linalg.norm(rays.directions, axis=1), 1.0, atol=1e-9)
    # All origins are the camera position.
    np.testing.assert_allclose(rays.origins, np.broadcast_to([0.0, 0.0, 2.0], (64, 3)))
    # The mean ray direction points toward the scene (negative z).
    assert rays.directions[:, 2].mean() < -0.9


def test_generate_rays_rejects_bad_intrinsics():
    with pytest.raises(ValueError):
        generate_rays(np.eye(4), np.eye(2), 4, 4)


def test_stratified_t_values_within_bounds_and_sorted():
    t = stratified_t_values(10, 16, near=0.5, far=3.5, rng=np.random.default_rng(0), jitter=True)
    assert t.shape == (10, 16)
    assert np.all(t >= 0.5) and np.all(t <= 3.5)
    assert np.all(np.diff(t, axis=1) > 0)  # one sample per increasing bin


def test_stratified_t_values_no_jitter_is_deterministic():
    a = stratified_t_values(3, 8, 1.0, 2.0, jitter=False)
    b = stratified_t_values(3, 8, 1.0, 2.0, jitter=False)
    np.testing.assert_array_equal(a, b)
    with pytest.raises(ValueError):
        stratified_t_values(3, 8, 2.0, 1.0)
    with pytest.raises(ValueError):
        stratified_t_values(0, 8, 1.0, 2.0)


def test_sample_along_rays_positions():
    bundle = RayBundle(np.zeros((2, 3)), np.array([[0.0, 0.0, -1.0], [1.0, 0.0, 0.0]]))
    t = np.array([[1.0, 2.0], [1.0, 2.0]])
    points = sample_along_rays(bundle, t)
    assert points.shape == (2, 2, 3)
    np.testing.assert_allclose(points[0, 0], [0.0, 0.0, -1.0])
    np.testing.assert_allclose(points[1, 1], [2.0, 0.0, 0.0])
    with pytest.raises(ValueError):
        sample_along_rays(bundle, np.zeros((3, 2)))
