"""Coverage for the eight named procedural scenes (ISSUE 2 satellite).

All eight scenes must build, be deterministic across independent builds, and
unknown names must fail with an error that lists the valid scenes.  The
scene-conditioned trace generator builds on these guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenes.library import SCENE_NAMES, available_scenes, build_scene
from repro.scenes.primitives import SDFScene
from repro.workloads.traces import TraceConfig, generate_batch_points, generate_scene_batch_points


@pytest.fixture(scope="module")
def probe_points() -> np.ndarray:
    rng = np.random.default_rng(123)
    return rng.uniform(-1.0, 1.0, size=(256, 3))


def test_library_lists_the_eight_synthetic_nerf_scenes():
    assert available_scenes() == SCENE_NAMES
    assert len(SCENE_NAMES) == 8
    assert len(set(SCENE_NAMES)) == 8


@pytest.mark.parametrize("name", SCENE_NAMES)
def test_every_named_scene_builds_and_is_occupied(name, probe_points):
    scene = build_scene(name)
    assert isinstance(scene, SDFScene)
    assert scene.name == name
    density = scene.density(probe_points)
    assert density.shape == (256,)
    assert np.all(np.isfinite(density)) and np.all(density >= 0.0)
    assert density.max() > 0.0, "scene should contain occupied space"
    color = scene.color(probe_points)
    assert color.shape == (256, 3)
    assert np.all((color >= 0.0) & (color <= 1.0))


@pytest.mark.parametrize("name", SCENE_NAMES)
def test_scene_builds_are_deterministic_across_calls(name, probe_points):
    first = build_scene(name)
    second = build_scene(name)
    assert first is not second
    np.testing.assert_array_equal(first.density(probe_points), second.density(probe_points))
    np.testing.assert_array_equal(first.color(probe_points), second.color(probe_points))


def test_scene_names_are_case_insensitive():
    assert build_scene("LEGO").name == "lego"


def test_unknown_scene_rejected_with_available_names():
    with pytest.raises(KeyError) as excinfo:
        build_scene("warehouse")
    message = str(excinfo.value)
    assert "warehouse" in message
    for name in SCENE_NAMES:
        assert name in message


def test_scenes_are_pairwise_distinct(probe_points):
    fields = {name: build_scene(name).density(probe_points) for name in SCENE_NAMES}
    names = list(fields)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            assert not np.array_equal(fields[a], fields[b]), f"{a} and {b} coincide"


# ------------------------------------------------- scene-conditioned traces
def test_scene_trace_points_deterministic_and_in_unit_cube():
    config = TraceConfig(num_rays=24, points_per_ray=16, seed=5, scene="ship")
    points = generate_batch_points(config)
    assert points.shape == (24, 16, 3)
    assert points.min() >= 0.0 and points.max() <= 1.0
    np.testing.assert_array_equal(points, generate_batch_points(config))


def test_scene_trace_differs_from_random_trace_and_between_scenes():
    base = TraceConfig(num_rays=16, points_per_ray=8, seed=1)
    lego = TraceConfig(num_rays=16, points_per_ray=8, seed=1, scene="lego")
    mic = TraceConfig(num_rays=16, points_per_ray=8, seed=1, scene="mic")
    assert not np.array_equal(generate_batch_points(base), generate_batch_points(lego))
    assert not np.array_equal(generate_batch_points(lego), generate_batch_points(mic))


def test_scene_trace_concentrates_samples_in_occupied_space():
    """Density-guided bounds put most samples near the object, unlike the
    scene-agnostic uniform rays."""
    scene = build_scene("lego")
    config = TraceConfig(num_rays=64, points_per_ray=32, seed=0, scene="lego")
    unit = generate_batch_points(config).reshape(-1, 3)
    world = unit * 2.0 * config.scene_bound - config.scene_bound
    occupied_fraction = float((scene.density(world) > 1e-3).mean())
    assert occupied_fraction > 0.2


def test_scene_trace_requires_scene_name():
    with pytest.raises(ValueError, match="scene"):
        generate_scene_batch_points(TraceConfig(num_rays=4, points_per_ray=4))


def test_scene_trace_unknown_scene_error():
    with pytest.raises(KeyError, match="available"):
        generate_batch_points(TraceConfig(num_rays=4, points_per_ray=4, scene="moon"))
