"""Tests for the LPDDR4 DRAM substrate: spec, addressing, banks, controller, system."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    LPDDR4_2400,
    AddressMapper,
    Bank,
    ChannelController,
    DRAMEnergyModel,
    DRAMOrganization,
    DRAMSpec,
    DRAMSystem,
    DRAMTiming,
    MemoryRequest,
    RequestType,
    coalesce_row_requests,
    requests_from_addresses,
)


# --------------------------------------------------------------------- spec
def test_default_spec_matches_table3():
    org = LPDDR4_2400.organization
    assert org.total_capacity_bytes == 16 * 1024**3
    assert org.num_channels == 8
    assert org.banks_per_chip == 16
    assert org.row_buffer_bytes == 1024
    assert org.num_banks_total == 128
    # 128 MB per bank for the 16 GB / 128-bank system (paper: 128-256 MB).
    assert org.bank_capacity_bytes == 128 * 1024**2
    # Peak external bandwidth of LPDDR4-2400 x 128-bit is ~38.4 GB/s x 2? No:
    # 128 bit * 2400 MT/s = 38.4 GB/s; XNX pairs it with LPDDR4x at 59.7 GB/s.
    assert org.peak_bandwidth_gbps == pytest.approx(38.4, rel=0.01)
    assert LPDDR4_2400.timing.tRCD == 4
    assert LPDDR4_2400.timing.tRP == 6
    LPDDR4_2400.validate()


def test_spec_validation_errors():
    with pytest.raises(ValueError):
        DRAMSpec(organization=DRAMOrganization(num_channels=0)).validate()
    with pytest.raises(ValueError):
        DRAMSpec(timing=DRAMTiming(tRCD=-1)).validate()


def test_internal_bandwidth_exceeds_external():
    org = LPDDR4_2400.organization
    assert org.internal_bank_bandwidth_gbps > 5 * org.peak_bandwidth_gbps


# ------------------------------------------------------------------- traces
def test_memory_request_validation():
    with pytest.raises(ValueError):
        MemoryRequest(address=-1)
    with pytest.raises(ValueError):
        MemoryRequest(address=0, size_bytes=0)
    request = MemoryRequest(address=4096, request_type=RequestType.WRITE, size_bytes=64)
    assert request.request_type is RequestType.WRITE


def test_requests_from_addresses_and_coalescing():
    addresses = np.array([0, 8, 1024, 2048, 2052])
    requests = requests_from_addresses(addresses, issue_interval=2)
    assert len(requests) == 5
    assert requests[3].arrival_cycle == 6
    coalesced = coalesce_row_requests(addresses, row_bytes=1024)
    assert list(coalesced) == [0, 1024, 2048]
    with pytest.raises(ValueError):
        coalesce_row_requests(addresses, row_bytes=0)


# ----------------------------------------------------------------- address
def test_address_mapper_roundtrip_and_fields():
    mapper = AddressMapper()
    address = mapper.encode(channel=3, bank=5, row=100, column=17)
    decoded = mapper.decode(address)
    assert decoded.channel == 3
    assert decoded.bank == 5
    assert decoded.row == 100
    assert decoded.column == 17
    with pytest.raises(ValueError):
        mapper.encode(channel=99, bank=0, row=0)


@given(st.integers(0, 7), st.integers(0, 15), st.integers(0, 10000), st.integers(0, 1023))
@settings(max_examples=60, deadline=None)
def test_address_mapper_roundtrip_property(channel, bank, row, column):
    mapper = AddressMapper()
    decoded = mapper.decode(mapper.encode(channel=channel, bank=bank, row=row, column=column))
    assert (decoded.channel, decoded.bank, decoded.row, decoded.column) == (
        channel,
        bank,
        row,
        column,
    )


def test_sequential_addresses_fill_a_row_before_switching_banks():
    mapper = AddressMapper()
    addrs = np.arange(0, 4096, 64)
    channels, _, banks, _, rows, _ = mapper.decode_array(addrs)
    # First 1 KB stays in one (bank, row); the next 1 KB moves to another bank.
    assert len(set(zip(banks[:16], rows[:16]))) == 1
    assert banks[16] != banks[0]


# -------------------------------------------------------------------- banks
def test_bank_row_hit_vs_miss_latency():
    bank = Bank(LPDDR4_2400)
    miss = bank.access(row=10, subarray=0, cycle=0)
    hit = bank.access(row=10, subarray=0, cycle=miss.ready_cycle)
    other = bank.access(row=11, subarray=0, cycle=hit.ready_cycle)
    assert not miss.row_hit and hit.row_hit and not other.row_hit
    # Switching rows costs the precharge on top of activate + column access.
    assert hit.latency < other.latency
    assert bank.state.row_hits == 1
    assert bank.state.row_misses == 2
    assert bank.row_hit_rate() == pytest.approx(1 / 3)


def test_bank_first_access_to_idle_subarray_skips_precharge():
    """Regression: an idle subarray has no open row, so no tRP is charged."""
    t = LPDDR4_2400.timing
    bank = Bank(LPDDR4_2400)
    first = bank.access(row=10, subarray=0, cycle=0)
    assert not first.row_hit
    assert first.latency == t.tRCD + t.tCL  # no tRP on an idle subarray
    switch = bank.access(row=11, subarray=0, cycle=first.ready_cycle)
    assert switch.latency == t.tRP + t.tRCD + t.tCL  # row 10 must be precharged
    # A write to a second idle subarray also skips the precharge.
    first_write = bank.access(row=3, subarray=1, cycle=0, is_write=True)
    assert first_write.latency == t.tRCD + t.tWR


def test_bank_access_reports_actual_start_cycle():
    bank = Bank(LPDDR4_2400)
    first = bank.access(row=1, subarray=0, cycle=0)
    assert first.start_cycle == 0
    # Bank is busy until first.ready_cycle: the next access starts there.
    delayed = bank.access(row=2, subarray=0, cycle=0)
    assert delayed.start_cycle == first.ready_cycle
    assert delayed.ready_cycle == delayed.start_cycle + delayed.latency


def test_bank_conflict_detection_and_reset():
    bank = Bank(LPDDR4_2400, subarrays=4)
    first = bank.access(row=1, subarray=0, cycle=0)
    # Second request arrives before the bank is free and targets another row.
    second = bank.access(row=2, subarray=1, cycle=0)
    assert second.bank_conflict
    assert bank.state.bank_conflicts == 1
    bank.reset()
    assert bank.total_accesses == 0
    with pytest.raises(ValueError):
        bank.access(row=-1, subarray=0, cycle=0)
    with pytest.raises(ValueError):
        Bank(LPDDR4_2400, subarrays=0)


def test_subarrays_keep_independent_open_rows():
    bank = Bank(LPDDR4_2400, subarrays=2)
    bank.access(row=5, subarray=0, cycle=0)
    result = bank.access(row=7, subarray=1, cycle=100)
    assert not result.row_hit
    hit0 = bank.access(row=5, subarray=0, cycle=200)
    hit1 = bank.access(row=7, subarray=1, cycle=300)
    assert hit0.row_hit and hit1.row_hit


# --------------------------------------------------------------- controller
def test_controller_counts_and_hit_rate():
    controller = ChannelController(LPDDR4_2400)
    addrs = [0, 64, 128, 1024 * 16 * 50]  # three to one row, one far away
    finish = controller.service_all([MemoryRequest(a) for a in addrs])
    assert finish > 0
    assert controller.stats.requests == 4
    assert controller.stats.row_hits >= 2
    assert controller.row_hit_rate() > 0.4
    controller.reset()
    assert controller.stats.requests == 0


def test_controller_write_requests_tracked():
    controller = ChannelController(LPDDR4_2400)
    controller.service(MemoryRequest(0, RequestType.WRITE))
    assert controller.stats.writes == 1 and controller.stats.reads == 0


def test_controller_anchors_activation_window_on_actual_start():
    """Regression: when the bank is busy, the ACT happens at the bank's next
    free cycle, and tRRD must be measured from there, not the issue cycle."""
    controller = ChannelController(LPDDR4_2400)
    mapper = controller.mapper
    t = LPDDR4_2400.timing
    # Two activations to different rows of the same bank, both arriving at 0.
    first = controller.service(MemoryRequest(mapper.encode(channel=0, bank=0, row=0)))
    assert controller._last_activation_cycle == 0
    controller.service(MemoryRequest(mapper.encode(channel=0, bank=0, row=100)))
    # The second ACT could only issue once the bank freed up at `first`,
    # which is later than the tRRD-constrained issue cycle.
    assert first > t.tRRD
    assert controller._last_activation_cycle == first


def test_controller_service_batch_matches_per_request_service():
    rng = np.random.default_rng(3)
    addrs = (rng.integers(0, 2**24, size=500) * 4).astype(np.int64)
    one_by_one = ChannelController(LPDDR4_2400)
    finish_ref = one_by_one.service_all([MemoryRequest(int(a)) for a in addrs])
    batched = ChannelController(LPDDR4_2400)
    finish_batch = batched.service_batch(addrs)
    assert finish_batch == finish_ref
    assert batched.stats == one_by_one.stats
    assert batched.service_batch(np.array([], dtype=np.int64)) == 0
    with pytest.raises(ValueError):
        batched.service_batch(np.array([-1]))
    with pytest.raises(ValueError):
        batched.service_batch(addrs, arrival_cycles=np.zeros(3, dtype=np.int64))


# ------------------------------------------------------------------- system
def test_dram_system_sequential_faster_than_random():
    """Streaming rows of one bank in order beats visiting them shuffled."""
    system = DRAMSystem()
    mapper = AddressMapper()
    rng = np.random.default_rng(0)
    sequential = np.array(
        [
            mapper.encode(channel=0, bank=0, row=row, column=col)
            for row in range(32)
            for col in range(0, 1024, 64)
        ]
    )
    shuffled = rng.permutation(sequential)
    seq_result = system.service_addresses(sequential)
    rand_result = system.service_addresses(shuffled)
    assert seq_result.row_hit_rate > rand_result.row_hit_rate
    assert seq_result.total_cycles < rand_result.total_cycles
    assert seq_result.achieved_bandwidth_gbps > rand_result.achieved_bandwidth_gbps
    assert rand_result.bank_conflict_rate >= 0.0


def test_dram_system_energy_accounting_and_near_bank_saves_io():
    system = DRAMSystem()
    addrs = np.arange(0, 256 * 64, 64)
    external = system.service_addresses(addrs, near_bank=False)
    internal = system.service_addresses(addrs, near_bank=True)
    assert external.energy.io_j > 0
    assert internal.energy.io_j == 0
    assert internal.energy.total_j < external.energy.total_j
    assert external.bytes_transferred == internal.bytes_transferred


def test_dram_system_empty_trace():
    result = DRAMSystem().service_requests([])
    assert result.total_cycles == 0
    assert result.total_requests == 0
    batch = DRAMSystem().service_batch(np.array([], dtype=np.int64))
    assert batch.total_cycles == 0 and batch.total_requests == 0


def test_dram_system_service_batch_matches_object_path():
    rng = np.random.default_rng(11)
    addrs = (rng.integers(0, 2**27, size=2000) * 4).astype(np.int64)
    via_requests = DRAMSystem().service_requests([MemoryRequest(int(a)) for a in addrs])
    via_batch = DRAMSystem().service_batch(addrs)
    assert via_batch == via_requests
    with pytest.raises(ValueError):
        DRAMSystem().service_batch(np.array([-4]))


def test_energy_model_validation():
    model = DRAMEnergyModel()
    with pytest.raises(ValueError):
        model.energy(-1, 0, 0, 0.0)
    breakdown = model.energy(10, 1000, 1000, 1e-3)
    assert breakdown.total_j > 0
