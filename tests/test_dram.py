"""Tests for the LPDDR4 DRAM substrate: spec, addressing, banks, controller, system."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    LPDDR4_2400,
    AddressMapper,
    Bank,
    ChannelController,
    DRAMEnergyModel,
    DRAMOrganization,
    DRAMSpec,
    DRAMSystem,
    DRAMTiming,
    MemoryRequest,
    RequestType,
    coalesce_row_requests,
    requests_from_addresses,
)


# --------------------------------------------------------------------- spec
def test_default_spec_matches_table3():
    org = LPDDR4_2400.organization
    assert org.total_capacity_bytes == 16 * 1024**3
    assert org.num_channels == 8
    assert org.banks_per_chip == 16
    assert org.row_buffer_bytes == 1024
    assert org.num_banks_total == 128
    # 128 MB per bank for the 16 GB / 128-bank system (paper: 128-256 MB).
    assert org.bank_capacity_bytes == 128 * 1024**2
    # Peak external bandwidth of LPDDR4-2400 x 128-bit is ~38.4 GB/s x 2? No:
    # 128 bit * 2400 MT/s = 38.4 GB/s; XNX pairs it with LPDDR4x at 59.7 GB/s.
    assert org.peak_bandwidth_gbps == pytest.approx(38.4, rel=0.01)
    assert LPDDR4_2400.timing.tRCD == 4
    assert LPDDR4_2400.timing.tRP == 6
    LPDDR4_2400.validate()


def test_spec_validation_errors():
    with pytest.raises(ValueError):
        DRAMSpec(organization=DRAMOrganization(num_channels=0)).validate()
    with pytest.raises(ValueError):
        DRAMSpec(timing=DRAMTiming(tRCD=-1)).validate()


def test_internal_bandwidth_exceeds_external():
    org = LPDDR4_2400.organization
    assert org.internal_bank_bandwidth_gbps > 5 * org.peak_bandwidth_gbps


# ------------------------------------------------------------------- traces
def test_memory_request_validation():
    with pytest.raises(ValueError):
        MemoryRequest(address=-1)
    with pytest.raises(ValueError):
        MemoryRequest(address=0, size_bytes=0)
    request = MemoryRequest(address=4096, request_type=RequestType.WRITE, size_bytes=64)
    assert request.request_type is RequestType.WRITE


def test_requests_from_addresses_and_coalescing():
    addresses = np.array([0, 8, 1024, 2048, 2052])
    requests = requests_from_addresses(addresses, issue_interval=2)
    assert len(requests) == 5
    assert requests[3].arrival_cycle == 6
    coalesced = coalesce_row_requests(addresses, row_bytes=1024)
    assert list(coalesced) == [0, 1024, 2048]
    with pytest.raises(ValueError):
        coalesce_row_requests(addresses, row_bytes=0)


# ----------------------------------------------------------------- address
def test_address_mapper_roundtrip_and_fields():
    mapper = AddressMapper()
    address = mapper.encode(channel=3, bank=5, row=100, column=17)
    decoded = mapper.decode(address)
    assert decoded.channel == 3
    assert decoded.bank == 5
    assert decoded.row == 100
    assert decoded.column == 17
    with pytest.raises(ValueError):
        mapper.encode(channel=99, bank=0, row=0)


@given(st.integers(0, 7), st.integers(0, 15), st.integers(0, 10000), st.integers(0, 1023))
@settings(max_examples=60, deadline=None)
def test_address_mapper_roundtrip_property(channel, bank, row, column):
    mapper = AddressMapper()
    decoded = mapper.decode(mapper.encode(channel=channel, bank=bank, row=row, column=column))
    assert (decoded.channel, decoded.bank, decoded.row, decoded.column) == (channel, bank, row, column)


def test_sequential_addresses_fill_a_row_before_switching_banks():
    mapper = AddressMapper()
    addrs = np.arange(0, 4096, 64)
    channels, _, banks, _, rows, _ = mapper.decode_array(addrs)
    # First 1 KB stays in one (bank, row); the next 1 KB moves to another bank.
    assert len(set(zip(banks[:16], rows[:16]))) == 1
    assert banks[16] != banks[0]


# -------------------------------------------------------------------- banks
def test_bank_row_hit_vs_miss_latency():
    bank = Bank(LPDDR4_2400)
    miss = bank.access(row=10, subarray=0, cycle=0)
    hit = bank.access(row=10, subarray=0, cycle=miss.ready_cycle)
    other = bank.access(row=11, subarray=0, cycle=hit.ready_cycle)
    assert not miss.row_hit and hit.row_hit and not other.row_hit
    assert hit.latency < miss.latency
    assert bank.state.row_hits == 1
    assert bank.state.row_misses == 2
    assert bank.row_hit_rate() == pytest.approx(1 / 3)


def test_bank_conflict_detection_and_reset():
    bank = Bank(LPDDR4_2400, subarrays=4)
    first = bank.access(row=1, subarray=0, cycle=0)
    # Second request arrives before the bank is free and targets another row.
    second = bank.access(row=2, subarray=1, cycle=0)
    assert second.bank_conflict
    assert bank.state.bank_conflicts == 1
    bank.reset()
    assert bank.total_accesses == 0
    with pytest.raises(ValueError):
        bank.access(row=-1, subarray=0, cycle=0)
    with pytest.raises(ValueError):
        Bank(LPDDR4_2400, subarrays=0)


def test_subarrays_keep_independent_open_rows():
    bank = Bank(LPDDR4_2400, subarrays=2)
    bank.access(row=5, subarray=0, cycle=0)
    result = bank.access(row=7, subarray=1, cycle=100)
    assert not result.row_hit
    hit0 = bank.access(row=5, subarray=0, cycle=200)
    hit1 = bank.access(row=7, subarray=1, cycle=300)
    assert hit0.row_hit and hit1.row_hit


# --------------------------------------------------------------- controller
def test_controller_counts_and_hit_rate():
    controller = ChannelController(LPDDR4_2400)
    addrs = [0, 64, 128, 1024 * 16 * 50]  # three to one row, one far away
    finish = controller.service_all([MemoryRequest(a) for a in addrs])
    assert finish > 0
    assert controller.stats.requests == 4
    assert controller.stats.row_hits >= 2
    assert controller.row_hit_rate() > 0.4
    controller.reset()
    assert controller.stats.requests == 0


def test_controller_write_requests_tracked():
    controller = ChannelController(LPDDR4_2400)
    controller.service(MemoryRequest(0, RequestType.WRITE))
    assert controller.stats.writes == 1 and controller.stats.reads == 0


# ------------------------------------------------------------------- system
def test_dram_system_sequential_faster_than_random():
    """Streaming rows of one bank in order beats visiting them shuffled."""
    system = DRAMSystem()
    mapper = AddressMapper()
    rng = np.random.default_rng(0)
    sequential = np.array(
        [mapper.encode(channel=0, bank=0, row=row, column=col) for row in range(32) for col in range(0, 1024, 64)]
    )
    shuffled = rng.permutation(sequential)
    seq_result = system.service_addresses(sequential)
    rand_result = system.service_addresses(shuffled)
    assert seq_result.row_hit_rate > rand_result.row_hit_rate
    assert seq_result.total_cycles < rand_result.total_cycles
    assert seq_result.achieved_bandwidth_gbps > rand_result.achieved_bandwidth_gbps
    assert rand_result.bank_conflict_rate >= 0.0


def test_dram_system_energy_accounting_and_near_bank_saves_io():
    system = DRAMSystem()
    addrs = np.arange(0, 256 * 64, 64)
    external = system.service_addresses(addrs, near_bank=False)
    internal = system.service_addresses(addrs, near_bank=True)
    assert external.energy.io_j > 0
    assert internal.energy.io_j == 0
    assert internal.energy.total_j < external.energy.total_j
    assert external.bytes_transferred == internal.bytes_transferred


def test_dram_system_empty_trace():
    result = DRAMSystem().service_requests([])
    assert result.total_cycles == 0
    assert result.total_requests == 0


def test_energy_model_validation():
    model = DRAMEnergyModel()
    with pytest.raises(ValueError):
        model.energy(-1, 0, 0, 0.0)
    breakdown = model.energy(10, 1000, 1000, 1e-3)
    assert breakdown.total_j > 0
