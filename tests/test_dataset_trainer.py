"""Integration tests for the dataset and the end-to-end training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.encoding import HashGridConfig
from repro.nerf.field import InstantNGPField
from repro.nerf.trainer import Trainer, TrainerConfig, psnr_from_mse
from repro.scenes.dataset import DatasetConfig, SyntheticNeRFDataset, load_synthetic_dataset
from repro.scenes.library import build_scene


def test_dataset_shapes_and_splits(tiny_dataset):
    assert tiny_dataset.num_train_views == 3
    assert tiny_dataset.num_test_views == 1
    assert tiny_dataset.image_shape == (20, 20)
    image = tiny_dataset.test_image(0)
    assert image.shape == (20, 20, 3)
    assert np.all((image >= 0) & (image <= 1))
    assert tiny_dataset.num_train_pixels == 3 * 20 * 20


def test_dataset_images_contain_object_and_background(tiny_dataset):
    image = tiny_dataset.train_image(0)
    # White background plus a darker object: intensity must vary.
    assert image.max() > 0.9
    assert image.min() < 0.8
    assert image.std() > 0.02


def test_dataset_ray_batch_sampling(tiny_dataset, rng):
    rays, colors = tiny_dataset.sample_ray_batch(64, rng=rng)
    assert len(rays) == 64
    assert colors.shape == (64, 3)
    np.testing.assert_allclose(np.linalg.norm(rays.directions, axis=1), 1.0, atol=1e-9)
    with pytest.raises(ValueError):
        tiny_dataset.sample_ray_batch(0)


def test_dataset_position_normalisation_roundtrip(tiny_dataset, rng):
    points = rng.uniform(-1.0, 1.0, (32, 3))
    unit = tiny_dataset.normalize_positions(points)
    assert np.all((unit >= 0) & (unit <= 1))
    back = tiny_dataset.denormalize_positions(unit)
    np.testing.assert_allclose(back, points, atol=1e-9)


def test_load_synthetic_dataset_by_name():
    config = DatasetConfig(
        image_size=12, num_train_views=2, num_test_views=1, gt_samples_per_ray=24
    )
    dataset = load_synthetic_dataset("mic", config)
    assert isinstance(dataset, SyntheticNeRFDataset)
    assert dataset.scene.name == "mic"


@pytest.fixture(scope="module")
def trained_trainer():
    dataset = SyntheticNeRFDataset(
        build_scene("lego"),
        DatasetConfig(image_size=20, num_train_views=3, num_test_views=1, gt_samples_per_ray=48),
    )
    grid = HashGridConfig(num_levels=6, table_size=2**12, max_resolution=128)
    field = InstantNGPField(grid, hidden_dim=24, geo_features=7)
    config = TrainerConfig(
        num_iterations=60, rays_per_batch=128, samples_per_ray=32, learning_rate=1e-2, seed=0
    )
    trainer = Trainer(field, dataset, config)
    trainer.train()
    return trainer


def test_training_reduces_loss(trained_trainer):
    history = trained_trainer.history
    assert len(history.losses) == 60
    early = float(np.mean(history.losses[:10]))
    late = float(np.mean(history.losses[-10:]))
    assert late < early * 0.5
    assert history.final_psnr > psnr_from_mse(early)
    assert history.total_time > 0


def test_rendered_image_quality_improves_over_untrained(trained_trainer):
    rendered = trained_trainer.render_image(0)
    target = trained_trainer.dataset.test_image(0)
    assert rendered.shape == target.shape
    trained_psnr = trained_trainer.evaluate([0])

    fresh_field = InstantNGPField(
        HashGridConfig(num_levels=6, table_size=2**12, max_resolution=128),
        hidden_dim=24,
        geo_features=7,
    )
    fresh_trainer = Trainer(fresh_field, trained_trainer.dataset, trained_trainer.config)
    untrained_psnr = fresh_trainer.evaluate([0])
    assert trained_psnr > untrained_psnr + 2.0
    assert trained_psnr > 10.0


def test_train_step_returns_finite_loss(tiny_dataset):
    field = InstantNGPField(
        HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64),
        hidden_dim=16,
        geo_features=3,
    )
    trainer = Trainer(
        field, tiny_dataset, TrainerConfig(num_iterations=2, rays_per_batch=32, samples_per_ray=16)
    )
    loss = trainer.train_step()
    assert np.isfinite(loss)
    assert loss > 0


def test_psnr_from_mse():
    assert psnr_from_mse(0.01) == pytest.approx(20.0)
    assert psnr_from_mse(0.0) == float("inf")
