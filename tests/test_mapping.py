"""Tests for the hash-table-to-DRAM mapping scheme (intra/inter-level)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash
from repro.core.mapping import (
    HashTableMapper,
    HashTableMappingConfig,
    IntraLevelPolicy,
    default_level_groups,
)
from repro.nerf.encoding import HashGridConfig
from repro.workloads.traces import HashTraceGenerator, TraceConfig


def test_default_level_groups_paper_clustering():
    groups = default_level_groups(16)
    assert groups[0] == [0, 1, 2, 3, 4]
    assert groups[1] == [5, 6, 7, 8]
    assert groups[2] == [9, 10]
    # Remaining fine levels get their own group.
    assert [11] in groups and [15] in groups
    flattened = sorted(lvl for group in groups for lvl in group)
    assert flattened == list(range(16))
    with pytest.raises(ValueError):
        default_level_groups(0)


def test_default_level_groups_small_tables():
    groups = default_level_groups(6)
    flattened = sorted(lvl for group in groups for lvl in group)
    assert flattened == list(range(6))


def test_mapping_config_validation():
    with pytest.raises(ValueError):
        HashTableMappingConfig(num_banks=0).validate()
    with pytest.raises(ValueError):
        HashTableMappingConfig(row_bytes=0).validate()
    assert HashTableMappingConfig().entries_per_row == 256


def test_bank_assignment_covers_all_levels():
    grid = HashGridConfig(num_levels=16)
    mapper = HashTableMapper(grid)
    banks = {mapper.bank_of_level(lvl) for lvl in range(16)}
    assert all(0 <= b < 16 for b in banks)
    assert len(banks) >= 3  # grouped levels share banks, fine levels spread out
    with pytest.raises(ValueError):
        mapper.bank_of_level(99)


def test_bank_assignment_without_grouping_round_robins():
    grid = HashGridConfig(num_levels=16)
    mapper = HashTableMapper(
        grid, HashTableMappingConfig(use_inter_level_grouping=False, num_banks=4)
    )
    assert [mapper.bank_of_level(lvl) for lvl in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert mapper.level_groups() == [[lvl] for lvl in range(16)]


def test_locate_interleaved_vs_row_major():
    grid = HashGridConfig(num_levels=16)
    indices = np.arange(0, 256 * 8, 256)  # one index per consecutive row
    interleaved = HashTableMapper(
        grid,
        HashTableMappingConfig(
            intra_level_policy=IntraLevelPolicy.SUBARRAY_INTERLEAVED, subarrays_per_bank=8
        ),
    )
    row_major = HashTableMapper(
        grid,
        HashTableMappingConfig(intra_level_policy=IntraLevelPolicy.ROW_MAJOR, subarrays_per_bank=8),
    )
    _, sub_inter, _ = interleaved.locate(15, indices)
    _, sub_major, _ = row_major.locate(15, indices)
    # Interleaving spreads consecutive rows over all subarrays; row-major keeps them together.
    assert len(np.unique(sub_inter)) == 8
    assert len(np.unique(sub_major)) == 1


def test_locate_bank_and_bounds():
    grid = HashGridConfig(num_levels=16)
    mapper = HashTableMapper(grid)
    bank, subarray, row = mapper.locate(12, np.arange(1000))
    assert np.all(bank == mapper.bank_of_level(12))
    assert np.all((subarray >= 0) & (subarray < mapper.config.subarrays_per_bank))
    assert np.all(row >= 0)


@pytest.fixture(scope="module")
def level_indices():
    grid = HashGridConfig(num_levels=16)
    generator = HashTraceGenerator(
        grid, TraceConfig(num_rays=32, points_per_ray=32, seed=2), hash_fn=MortonLocalityHash()
    )
    return grid, generator.indices_for_level(15).ravel()


def test_subarray_parallelism_reduces_conflicts(level_indices):
    """Fig. 9 shape: more subarrays => fewer residual bank conflicts."""
    grid, indices = level_indices
    conflicts = []
    for subarrays in (1, 4, 16, 64):
        mapper = HashTableMapper(grid, HashTableMappingConfig(subarrays_per_bank=subarrays))
        stats = mapper.count_conflicts(15, indices, parallel_points=32)
        conflicts.append(stats.bank_conflicts)
        assert stats.total_requests == indices.size
        assert 0 <= stats.conflict_rate <= 1
    assert conflicts[0] > conflicts[1] > conflicts[2] >= conflicts[3]
    assert conflicts[3] < 0.2 * conflicts[0]


def test_sequential_conflicts_are_significant_fraction(level_indices):
    """Sec. IV-B: a large share of single-subarray conflicts involve sequential rows."""
    grid, indices = level_indices
    mapper = HashTableMapper(grid, HashTableMappingConfig(subarrays_per_bank=1))
    stats = mapper.count_conflicts(15, indices, parallel_points=32)
    assert stats.bank_conflicts > 0
    assert stats.sequential_fraction > 0.15


def test_count_conflicts_validation(level_indices):
    grid, indices = level_indices
    mapper = HashTableMapper(grid)
    with pytest.raises(ValueError):
        mapper.count_conflicts(15, indices, parallel_points=0)
    with pytest.raises(ValueError):
        mapper.count_conflicts_reference(15, indices, parallel_points=0)


def test_count_conflicts_vectorized_matches_loop_oracle(level_indices):
    """The lexsort-segmented counter must equal the retained nested-loop oracle."""
    grid, indices = level_indices
    rng = np.random.default_rng(9)
    random_indices = rng.integers(0, grid.table_size, size=997)  # non-multiple of group size
    for subarrays in (1, 3, 16):
        for policy in IntraLevelPolicy:
            mapper = HashTableMapper(
                grid,
                HashTableMappingConfig(subarrays_per_bank=subarrays, intra_level_policy=policy),
            )
            for level in (2, 9, 15):
                for batch in (indices, random_indices):
                    for parallel_points in (7, 32):
                        fast = mapper.count_conflicts(level, batch, parallel_points)
                        slow = mapper.count_conflicts_reference(level, batch, parallel_points)
                        assert fast == slow

    empty = HashTableMapper(grid).count_conflicts(15, np.array([], dtype=np.int64))
    assert empty.total_requests == 0 and empty.bank_conflicts == 0


def test_row_major_locate_is_injective_for_non_divisible_levels():
    """Regression: the clamped overflow branch used to alias distinct table
    rows of a non-divisible level onto the same (subarray, row) slot."""
    grid = HashGridConfig(num_levels=16)
    # Level 0 is dense: 17**3 = 4913 entries -> 20 rows, not divisible by 16.
    mapper = HashTableMapper(
        grid,
        HashTableMappingConfig(
            intra_level_policy=IntraLevelPolicy.ROW_MAJOR, subarrays_per_bank=16
        ),
    )
    level = 0
    entries_per_row = mapper.config.entries_per_row
    level_rows = -(-grid.level_table_entries(level) // entries_per_row)
    assert level_rows % mapper.config.subarrays_per_bank != 0
    indices = np.arange(level_rows) * entries_per_row  # one index per distinct row
    _, subarray, row = mapper.locate(level, indices)
    assert np.all(subarray < mapper.config.subarrays_per_bank)
    slots = set(zip(subarray.tolist(), row.tolist()))
    assert len(slots) == level_rows  # distinct linear rows -> distinct slots
