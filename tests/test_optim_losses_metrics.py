"""Tests for the Adam optimizer, losses and image-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nerf.adam import Adam
from repro.nerf.losses import huber_loss, mse_loss
from repro.nerf.metrics import mse, psnr, ssim


def test_adam_minimises_quadratic():
    rng = np.random.default_rng(0)
    target = rng.normal(size=(10,)).astype(np.float32)
    param = np.zeros(10, dtype=np.float32)
    grad = np.zeros_like(param)
    opt = Adam([param], [grad], learning_rate=0.1)
    for _ in range(300):
        grad[...] = 2 * (param - target)
        opt.step()
    np.testing.assert_allclose(param, target, atol=1e-2)


def test_adam_validation():
    p = np.zeros(3, dtype=np.float32)
    with pytest.raises(ValueError):
        Adam([p], [np.zeros(4, dtype=np.float32)])
    with pytest.raises(ValueError):
        Adam([p], [np.zeros(3, dtype=np.float32)], learning_rate=0.0)
    with pytest.raises(ValueError):
        Adam([p, p], [np.zeros(3, dtype=np.float32)])


def test_adam_zero_grad_and_weight_decay():
    param = np.ones(4, dtype=np.float32)
    grad = np.ones(4, dtype=np.float32)
    opt = Adam([param], [grad], learning_rate=0.01, weight_decay=0.1)
    opt.step()
    assert np.all(param < 1.0)  # decay + positive gradient push the weight down
    opt.zero_grad()
    assert np.all(grad == 0)


def test_mse_loss_value_and_gradient():
    pred = np.array([[1.0, 2.0]])
    target = np.array([[0.0, 0.0]])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx((1.0 + 4.0) / 2)
    np.testing.assert_allclose(grad, 2 * (pred - target) / 2)
    with pytest.raises(ValueError):
        mse_loss(np.zeros(3), np.zeros(4))


def test_huber_loss_quadratic_and_linear_regions():
    pred = np.array([0.01, 1.0])
    target = np.zeros(2)
    loss, grad = huber_loss(pred, target, delta=0.1)
    # First element is in the quadratic region, second in the linear region.
    assert grad[0] == pytest.approx(0.01 / 2)
    assert grad[1] == pytest.approx(0.1 / 2)
    assert loss > 0
    with pytest.raises(ValueError):
        huber_loss(pred, target, delta=0.0)


def test_huber_gradient_finite_difference():
    rng = np.random.default_rng(1)
    pred = rng.normal(size=6)
    target = rng.normal(size=6)
    loss, grad = huber_loss(pred, target, delta=0.3)
    eps = 1e-6
    for i in range(6):
        plus, minus = pred.copy(), pred.copy()
        plus[i] += eps
        minus[i] -= eps
        fd = (huber_loss(plus, target, 0.3)[0] - huber_loss(minus, target, 0.3)[0]) / (2 * eps)
        assert fd == pytest.approx(grad[i], rel=1e-4, abs=1e-8)


def test_psnr_properties():
    image = np.random.default_rng(0).uniform(0, 1, (16, 16, 3))
    assert psnr(image, image) == float("inf")
    noisy = np.clip(image + 0.1, 0, 1)
    noisier = np.clip(image + 0.3, 0, 1)
    assert psnr(image, noisy) > psnr(image, noisier)
    assert mse(image, noisy) < mse(image, noisier)


def test_psnr_known_value():
    a = np.zeros((4, 4))
    b = np.full((4, 4), 0.1)
    assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)  # 10*log10(1/0.01)


def test_ssim_bounds_and_identity():
    rng = np.random.default_rng(2)
    image = rng.uniform(0, 1, (24, 24, 3))
    assert ssim(image, image) == pytest.approx(1.0, abs=1e-6)
    other = rng.uniform(0, 1, (24, 24, 3))
    value = ssim(image, other)
    assert -1.0 <= value <= 1.0
    assert value < 0.9
    with pytest.raises(ValueError):
        ssim(image, other[:12])
