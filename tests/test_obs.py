"""Tests for ``repro.obs``: dual-clock tracing, metrics, Chrome export.

Covers the null-object (disabled) contracts, the recording implementations,
the Chrome trace-event document and its validator, cross-subsystem span
coverage, and the load-bearing guarantee that instrumentation never changes
what the pipeline computes (byte-identical sweep artifacts with obs on/off,
across executors and fresh-vs-resume).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.accel.nmp import NMPAccelerator
from repro.dram.system import DRAMSystem
from repro.mem.hierarchy import CacheHierarchy
from repro.nerf.encoding import HashGridConfig
from repro.nerf.field import InstantNGPField
from repro.nerf.trainer import Trainer, TrainerConfig
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    NullMetricsRegistry,
    RecordingTracer,
    SpanHandle,
    TraceEvent,
    Tracer,
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.pipeline.store import ArtifactStore
from repro.streams import RequestStream
from repro.pipeline.sweep import ProcessSweepExecutor, sweep

FIG07_GRID = {"hash": ["morton", "original"]}
FIG07_EXTRA = {"rays": "16", "points_per_ray": "16"}


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with the null observability state."""
    obs.disable()
    yield
    obs.disable()


# ------------------------------------------------------------- null objects
def test_disabled_state_is_shared_null_objects():
    assert not obs.is_enabled()
    tracer = obs.get_tracer()
    assert type(tracer) is Tracer and not tracer.enabled
    # The disabled span path allocates nothing: every span IS the singleton.
    span = tracer.span("anything", "pipeline")
    assert span is NULL_SPAN and not span.enabled
    with span as inner:
        assert inner is NULL_SPAN
        inner.set_cycles(123)
        inner.add_args(ignored=True)
    tracer.instant("nothing", "pipeline")
    assert tracer.events() == [] and tracer.drain() == []

    metrics = obs.get_metrics()
    assert isinstance(metrics, NullMetricsRegistry) and not metrics.enabled
    # Null instruments are shared singletons, not per-name allocations.
    assert metrics.counter("a") is metrics.counter("b")
    assert metrics.gauge("a") is metrics.gauge("b")
    assert metrics.histogram("a") is metrics.histogram("b")
    metrics.counter("a").inc()
    metrics.gauge("a").set(1.0)
    metrics.histogram("a").observe(2.0)
    assert metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_enable_disable_roundtrip():
    tracer, metrics = obs.enable(wall_clock=False)
    assert obs.is_enabled()
    assert obs.get_tracer() is tracer and obs.get_metrics() is metrics
    assert isinstance(tracer, RecordingTracer) and not tracer.wall_clock
    obs.disable()
    assert not obs.is_enabled()
    assert obs.get_tracer() is not tracer


# ---------------------------------------------------------------- recording
def test_spans_nest_with_monotonic_ticks():
    tracer, _ = obs.enable(wall_clock=False)
    with tracer.span("outer", "pipeline") as outer:
        assert isinstance(outer, SpanHandle) and outer.enabled
        with tracer.span("inner", "mem") as inner:
            inner.set_cycles(42)
            inner.add_args(depth=2)
        tracer.instant("marker", "pipeline", note="hi")
    events = tracer.events()
    assert [e.name for e in events] == ["inner", "marker", "outer"]
    inner_ev, marker_ev, outer_ev = events
    assert outer_ev.tick < inner_ev.tick  # outer opened first
    assert inner_ev.cycles == 42 and dict(inner_ev.args)["depth"] == 2
    assert inner_ev.category == "mem" and inner_ev.phase == "X"
    assert marker_ev.phase == "i" and dict(marker_ev.args)["note"] == "hi"
    # wall_clock=False keeps the deterministic timeline only.
    assert all(e.wall_us is None for e in events)


def test_span_records_error_name_on_exception():
    tracer, _ = obs.enable(wall_clock=False)
    with pytest.raises(ValueError):
        with tracer.span("boom", "pipeline"):
            raise ValueError("nope")
    (event,) = tracer.events()
    assert dict(event.args)["error"] == "ValueError"


def test_drain_empties_events_but_keeps_ticks_monotonic():
    tracer, _ = obs.enable(wall_clock=False)
    with tracer.span("first", "pipeline"):
        pass
    first = tracer.drain()
    assert [e.name for e in first] == ["first"] and tracer.events() == []
    with tracer.span("second", "pipeline"):
        pass
    (second,) = tracer.events()
    assert second.tick > first[0].tick


def test_ingest_merges_foreign_events():
    tracer, _ = obs.enable(wall_clock=False)
    foreign = TraceEvent(
        name="worker", category="pipeline", phase="X", tick=7, dur_ticks=1, pid=999, tid=1
    )
    tracer.ingest([foreign])
    assert foreign in tracer.events()


# ------------------------------------------------------------------ metrics
def test_metrics_counter_gauge_histogram_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(2)
    registry.gauge("depth").set(4.0)
    hist = registry.histogram("lat")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    assert registry.counter("hits").value == 3
    assert hist.mean == 2.0
    snap = registry.snapshot()
    assert snap["counters"] == {"hits": 3.0}
    assert snap["gauges"] == {"depth": 4.0}
    assert snap["histograms"]["lat"] == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}


def test_metrics_merge_pools_counters_and_histograms():
    registry = MetricsRegistry()
    registry.counter("hits").inc(3)
    registry.gauge("depth").set(1.0)
    registry.histogram("lat").observe(2.0)
    snap = registry.snapshot()
    registry.merge(snap)
    merged = registry.snapshot()
    assert merged["counters"]["hits"] == 6.0
    assert merged["gauges"]["depth"] == 1.0  # last-wins, not summed
    assert merged["histograms"]["lat"] == {"count": 2, "sum": 4.0, "min": 2.0, "max": 2.0}
    assert "hits" in registry.render_table()


def test_drain_metrics_resets_the_active_registry():
    obs.enable(wall_clock=False)
    obs.get_metrics().counter("x").inc(5)
    snap = obs.drain_metrics()
    assert snap["counters"]["x"] == 5.0
    assert obs.get_metrics().snapshot()["counters"] == {}
    obs.get_metrics().merge(snap)
    obs.get_metrics().merge(snap)
    assert obs.get_metrics().snapshot()["counters"]["x"] == 10.0


# -------------------------------------------------------------- chrome JSON
def test_chrome_trace_document_shape_and_export(tmp_path):
    tracer, _ = obs.enable(wall_clock=True)
    with tracer.span("work", "mem") as span:
        span.set_cycles(10)
    tracer.instant("mark", "dram")
    doc = chrome_trace_document(tracer.events())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    by_name = {e["name"]: e for e in events}
    assert by_name["work"]["ph"] == "X" and "dur" in by_name["work"]
    assert by_name["work"]["args"]["modeled_cycles"] == 10
    assert "det_tick" in by_name["work"]["args"]
    assert by_name["mark"]["ph"] == "i" and by_name["mark"]["s"] == "t"

    path = write_chrome_trace(tmp_path / "trace.json", tracer.events())
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == 2
    # The module-level convenience exporter writes the active tracer.
    exported = obs.export_chrome_trace(tmp_path / "trace2.json")
    assert validate_chrome_trace(json.loads(exported.read_text())) == 2


def test_validate_chrome_trace_rejects_malformed_payloads():
    with pytest.raises(ValueError):
        validate_chrome_trace([])  # not a dict
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": {}})  # not a list
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"name": "x", "cat": "c", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
        )  # complete event without dur
    good = {
        "traceEvents": [
            {"name": "x", "cat": "c", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        ]
    }
    assert validate_chrome_trace(good) == 1


# ------------------------------------------------------- subsystem coverage
def test_trace_covers_five_subsystems(tmp_path, tiny_dataset):
    """One enabled session touching every instrumented layer of the stack."""
    tracer, metrics = obs.enable(wall_clock=False)

    store = ArtifactStore(tmp_path / "store")  # pipeline spans (store.put/get)
    store.put(("kind", "a"), {"v": 1})
    store.get(("kind", "a"))

    hierarchy = CacheHierarchy()  # mem span
    indices = ((np.arange(64, dtype=np.int64) % 16) * 8).reshape(8, 8)
    hierarchy.filter_stream(
        RequestStream(indices=indices, entry_bytes=4, table_entries=121, source="tests.obs")
    )

    dram = DRAMSystem()  # dram span
    dram.service_batch(np.arange(32, dtype=np.int64) * 64)

    NMPAccelerator().step_cost("HT")  # accel span

    field = InstantNGPField(  # nerf spans
        HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64),
        hidden_dim=16,
        geo_features=3,
    )
    Trainer(
        field,
        tiny_dataset,
        TrainerConfig(num_iterations=2, rays_per_batch=8, samples_per_ray=4),
    ).train()

    categories = {event.category for event in tracer.events()}
    assert {"pipeline", "mem", "dram", "accel", "nerf"} <= categories

    snap = metrics.snapshot()
    assert snap["counters"]["mem.l0_accesses"] > 0
    assert snap["counters"]["dram.requests"] == 32
    assert snap["counters"]["nerf.iterations"] == 2
    assert snap["histograms"]["accel.step_seconds"]["count"] == 1

    path = write_chrome_trace(tmp_path / "five.json", tracer.events())
    assert validate_chrome_trace(json.loads(path.read_text())) == len(tracer.events())


# ------------------------------------------------------------- determinism
def test_serial_sweep_artifact_identical_with_obs_enabled():
    baseline = sweep("fig07", FIG07_GRID, executor="serial", extra_params=FIG07_EXTRA)
    obs.enable(wall_clock=True)
    traced = sweep("fig07", FIG07_GRID, executor="serial", extra_params=FIG07_EXTRA)
    assert len(obs.get_tracer().events()) > 0
    assert traced.to_json() == baseline.to_json()


def test_process_sweep_artifact_identical_and_worker_obs_aggregated():
    baseline = sweep("fig07", FIG07_GRID, executor="serial", extra_params=FIG07_EXTRA)
    tracer, metrics = obs.enable(wall_clock=True)
    traced = sweep(
        "fig07",
        FIG07_GRID,
        executor=ProcessSweepExecutor(2),
        extra_params=FIG07_EXTRA,
    )
    assert not traced.failed
    assert traced.to_json() == baseline.to_json()
    # Worker spans were shipped back over the result channel and ingested.
    cell_events = [e for e in tracer.events() if e.name == "sweep.cell"]
    assert len(cell_events) == 2
    snap = metrics.snapshot()
    assert snap["counters"]["sweep.cells_evaluated"] == 2
    # Worker-side subsystem metrics merged into the parent registry.
    assert snap["counters"].get("context.computes", 0) > 0
    assert 0.0 <= snap["gauges"]["sweep.worker_utilization"] <= 1.0


def test_resume_with_obs_matches_fresh_without(tmp_path):
    store_root = tmp_path / "store"
    fresh = sweep(
        "fig07", FIG07_GRID, executor="serial", extra_params=FIG07_EXTRA, store=store_root
    )
    obs.enable(wall_clock=True)
    resumed = sweep(
        "fig07",
        FIG07_GRID,
        executor="serial",
        extra_params=FIG07_EXTRA,
        store=store_root,
        resume=True,
    )
    assert resumed.to_json() == fresh.to_json()
    assert obs.get_metrics().snapshot()["counters"].get("sweep.cells_resumed", 0) == 2
