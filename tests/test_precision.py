"""Tests for the array-backend shim and the end-to-end precision axis.

Covers: ``repro.core.xp`` backend selection (module forwarding, env
override, error paths), the ``repro.core.precision`` dtype/quantization
helpers (including a hypothesis round-trip bound), fp16/int8 encoding and
MLP equivalence against the fp32 path within documented tolerances, the
precision field invalidating context/store keys, and a tiny registry-level
tab05 run with monotone modeled reductions.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import precision, xp
from repro.core.hashing import MortonLocalityHash
from repro.nerf.encoding import HashGridConfig, HashGridEncoding
from repro.nerf.mlp import MLP
from repro.nerf.trainer import TrainerConfig
from repro.pipeline.context import SimulationContext, config_key
from repro.core.streaming import StreamingOrder
from repro.workloads.traces import TraceConfig

REPO_ROOT = Path(__file__).resolve().parent.parent


# ------------------------------------------------------------------ xp shim


def test_numpy_backend_forwards_module_attributes():
    assert xp.get_backend() == "numpy"
    assert xp.empty is np.empty
    assert xp.float32 is np.float32
    out = xp.asarray([1.0, 2.0])
    assert isinstance(out, np.ndarray)
    assert xp.asnumpy(out) is out
    assert "numpy" in xp.available_backends()


def test_set_backend_rejects_unknown_and_uninstalled():
    with pytest.raises(ValueError, match="unknown array backend"):
        xp.set_backend("jax")
    for backend in ("cupy", "torch"):
        if importlib.util.find_spec(backend) is None:
            with pytest.raises(ImportError):
                xp.set_backend(backend)
            assert xp.get_backend() == "numpy"
    xp.set_backend("numpy")
    assert xp.backend_module() is np


def test_env_override_selects_and_validates_backend():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), REPRO_XP="numpy")
    script = "from repro.core import xp; assert xp.get_backend() == 'numpy'"
    subprocess.run([sys.executable, "-c", script], check=True, env=env)
    env["REPRO_XP"] = "not-a-backend"
    bad = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
    assert bad.returncode != 0
    assert "unknown array backend" in bad.stderr


def test_reset_backend_rereads_environment(monkeypatch):
    monkeypatch.setenv(xp.ENV_VAR, "numpy")
    xp.reset_backend()
    assert xp.get_backend() == "numpy"
    monkeypatch.delenv(xp.ENV_VAR)
    xp.reset_backend()
    assert xp.get_backend() == "numpy"


# ------------------------------------------------------- precision helpers


def test_dtype_tables():
    assert [precision.dtype_bytes(d) for d in precision.PRECISIONS] == [8, 4, 2, 1]
    assert precision.storage_dtype("int8") == np.int8
    assert precision.compute_dtype("int8") == np.float32
    assert precision.compute_dtype("fp16") == np.float16
    with pytest.raises(ValueError, match="unknown precision"):
        precision.validate_precision("fp8")
    with pytest.raises(ValueError):
        precision.validate_precision("int8", precision.FLOAT_PRECISIONS)


def test_quantize_int8_edges():
    codes, scale, zero = precision.quantize_int8(np.full(5, 3.25))
    assert codes.dtype == np.int8 and scale == 1.0
    np.testing.assert_allclose(precision.dequantize_int8(codes, scale, zero), 3.25)

    empty_codes, empty_scale, empty_zero = precision.quantize_int8(np.array([]))
    assert empty_codes.size == 0 and empty_scale == 1.0 and empty_zero == 0.0

    with pytest.raises(ValueError, match="finite"):
        precision.quantize_int8(np.array([1.0, np.nan]))


@settings(max_examples=60, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=16),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    )
)
def test_quantize_int8_round_trip_bound(values):
    codes, scale, zero = precision.quantize_int8(values)
    assert codes.dtype == np.int8
    restored = precision.dequantize_int8(codes, scale, zero, dtype=np.float64)
    # Affine int8 reconstruction is off by at most half a code step.
    bound = scale / 2 * (1 + 1e-9) + 1e-12
    assert np.max(np.abs(restored - values), initial=0.0) <= bound


# ---------------------------------------------------- kernel equivalence


def _small_grid(dtype: str) -> HashGridConfig:
    return HashGridConfig(
        num_levels=4, table_size=2**12, max_resolution=64, dtype=dtype
    )


def test_fp16_encoding_matches_fp32_within_tolerance():
    rng = np.random.default_rng(7)
    points = rng.random((256, 3))
    fp32 = HashGridEncoding(_small_grid("fp32"), rng=np.random.default_rng(1))
    fp16 = HashGridEncoding(_small_grid("fp16"), rng=np.random.default_rng(1))
    out32, out16 = fp32.forward(points), fp16.forward(points)
    assert out16.dtype == np.float16
    # Table values are ~1e-4, fp16 keeps ~3 decimal digits: 1e-6 absolute.
    np.testing.assert_allclose(out16, out32, atol=1e-6)
    np.testing.assert_array_equal(out16, fp16.forward_reference(points))


def test_int8_encoding_quantizes_within_half_step_and_is_inference_only():
    rng = np.random.default_rng(7)
    points = rng.random((256, 3))
    fp32 = HashGridEncoding(_small_grid("fp32"), rng=np.random.default_rng(1))
    int8 = fp32.quantized_int8()
    out32, out8 = fp32.forward(points), int8.forward(points)
    # Interpolation is convex, so the output error is bounded by the worst
    # per-level half code step.
    bound = max(int8.scales) / 2 * 1.01
    np.testing.assert_allclose(out8, out32, atol=bound)
    np.testing.assert_array_equal(out8, int8.forward_reference(points))
    with pytest.raises(ValueError, match="already int8"):
        int8.quantized_int8()
    with pytest.raises(RuntimeError, match="inference-only"):
        int8.backward(np.zeros_like(out8, dtype=np.float32))
    with pytest.raises(RuntimeError, match="inference-only"):
        int8.backward_reference(np.zeros_like(out8, dtype=np.float32))


def test_mlp_fp16_matches_fp32_within_tolerance():
    rng = np.random.default_rng(0)
    x = rng.random((64, 8))
    fp32 = MLP([8, 32, 4], rng=np.random.default_rng(2), dtype="fp32")
    fp16 = MLP([8, 32, 4], rng=np.random.default_rng(2), dtype="fp16")
    out32, out16 = fp32.forward(x), fp16.forward(x)
    assert out16.dtype == np.float16
    np.testing.assert_allclose(out16, out32, rtol=0, atol=5e-3)
    with pytest.raises(ValueError):
        MLP([8, 4], dtype="int8")


# --------------------------------------------------- keys and invalidation


def test_dtype_axis_invalidates_canonical_keys():
    assert config_key(HashGridConfig(dtype="fp32")) != config_key(HashGridConfig(dtype="fp16"))
    assert config_key(TraceConfig(dtype="fp16")) != config_key(TraceConfig(dtype="int8"))
    assert config_key(TrainerConfig(dtype="fp64")) != config_key(TrainerConfig(dtype="fp32"))


def test_trace_entry_bytes_follow_dtype():
    widths = [TraceConfig(dtype=d).entry_bytes for d in precision.PRECISIONS]
    assert widths == [16, 8, 4, 2]
    assert TraceConfig().entry_bytes == 4  # fp16 default == the old hardcoded 4
    with pytest.raises(ValueError):
        TraceConfig(dtype="fp8")


def test_trainer_config_is_frozen_and_validated():
    cfg = TrainerConfig()
    with pytest.raises(AttributeError):
        cfg.dtype = "fp32"  # type: ignore[misc]
    with pytest.raises(ValueError):
        TrainerConfig(dtype="fp16")


def test_narrower_entries_shrink_row_requests_monotonically():
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=4, table_size=2**12, max_resolution=64)
    hash_fn = MortonLocalityHash()
    trace = TraceConfig(num_rays=32, points_per_ray=8)
    rows = [
        ctx.row_requests(grid, replace(trace, dtype=d), hash_fn, StreamingOrder.RAY_FIRST, 3)
        for d in precision.PRECISIONS
    ]
    assert rows == sorted(rows, reverse=True)
    assert rows[0] > rows[-1]


# ------------------------------------------------------------- tab05 smoke


@pytest.mark.slow
def test_tab05_smoke_monotone_reductions():
    from repro.experiments.tab05_psnr_precision import PrecisionRunConfig, run_tab05

    config = replace(
        PrecisionRunConfig(),
        image_size=12,
        num_train_views=2,
        iterations=4,
        rays_per_batch=32,
        samples_per_ray=8,
    )
    result = run_tab05.__wrapped__(config)
    assert [row["dtype"] for row in result.rows] == list(precision.PRECISIONS)
    for metric in ("entry_bytes", "row_requests", "dram_cycles", "sram_energy_j"):
        series = [row[metric] for row in result.rows]
        assert series == sorted(series, reverse=True), metric
    fp16_row = next(row for row in result.rows if row["dtype"] == "fp16")
    assert abs(fp16_row["psnr_drop_vs_fp32_lego"]) < 0.5
    for row in result.rows:
        assert np.isfinite(row["psnr_lego"])
