"""Tests for the SDF primitives, scene library and camera model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenes.camera import CameraIntrinsics, look_at, poses_on_sphere
from repro.scenes.library import SCENE_NAMES, available_scenes, build_scene
from repro.scenes.primitives import (
    ColoredPrimitive,
    SDFScene,
    box_sdf,
    cylinder_sdf,
    plane_sdf,
    smooth_union,
    sphere_sdf,
    torus_sdf,
)


def test_sphere_sdf_signs():
    center = np.array([0.0, 0.0, 0.0])
    assert sphere_sdf(np.array([[0.0, 0.0, 0.0]]), center, 1.0)[0] == pytest.approx(-1.0)
    assert sphere_sdf(np.array([[2.0, 0.0, 0.0]]), center, 1.0)[0] == pytest.approx(1.0)
    assert sphere_sdf(np.array([[1.0, 0.0, 0.0]]), center, 1.0)[0] == pytest.approx(0.0)


def test_box_and_cylinder_sdf_inside_outside():
    box = box_sdf(np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]]), [0, 0, 0], [0.5, 0.5, 0.5])
    assert box[0] < 0 < box[1]
    cyl = cylinder_sdf(np.array([[0.0, 0.0, 0.0], [0.0, 5.0, 0.0]]), [0, 0, 0], 1.0, 1.0)
    assert cyl[0] < 0 < cyl[1]


def test_torus_and_plane_sdf():
    torus = torus_sdf(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]), [0, 0, 0], 1.0, 0.2)
    assert torus[0] < 0 < torus[1]
    plane = plane_sdf(np.array([[0.0, 1.0, 0.0], [0.0, -1.0, 0.0]]), [0.0, 1.0, 0.0], 0.0)
    assert plane[0] > 0 > plane[1]


def test_smooth_union_lower_bound():
    d1 = np.array([0.5, -0.2])
    d2 = np.array([0.3, 0.4])
    union = smooth_union(d1, d2, k=0.1)
    assert np.all(union <= np.minimum(d1, d2) + 1e-9)


def test_colored_primitive_density_profile():
    prim = ColoredPrimitive(
        lambda p: sphere_sdf(p, [0, 0, 0], 0.5), (1.0, 0.0, 0.0), density_scale=10.0
    )
    inside = prim.density(np.array([[0.0, 0.0, 0.0]]))[0]
    outside = prim.density(np.array([[2.0, 0.0, 0.0]]))[0]
    assert inside > 9.0
    assert outside < 0.1


def test_scene_library_contains_all_eight_scenes():
    assert available_scenes() == SCENE_NAMES
    assert len(SCENE_NAMES) == 8
    for name in SCENE_NAMES:
        scene = build_scene(name)
        assert isinstance(scene, SDFScene)
        assert scene.name == name
        points = np.random.default_rng(0).uniform(-1, 1, (64, 3))
        density = scene.density(points)
        color = scene.color(points)
        assert density.shape == (64,)
        assert color.shape == (64, 3)
        assert np.all(density >= 0)
        assert np.all((color >= 0) & (color <= 1))
        # Every scene must contain some occupied volume near the origin region.
        dense_points = np.random.default_rng(1).uniform(-0.6, 0.6, (512, 3))
        assert scene.density(dense_points).max() > 1.0


def test_build_scene_unknown_name():
    with pytest.raises(KeyError):
        build_scene("spaceship")


def test_scenes_are_distinct():
    points = np.random.default_rng(3).uniform(-0.8, 0.8, (256, 3))
    signatures = {name: build_scene(name).density(points).sum() for name in SCENE_NAMES}
    assert len({round(v, 3) for v in signatures.values()}) == len(SCENE_NAMES)


def test_scene_radiance_view_dependence():
    scene = build_scene("lego")
    points = np.random.default_rng(0).uniform(-0.5, 0.5, (32, 3))
    up = np.tile([0.0, 1.0, 0.0], (32, 1))
    down = np.tile([0.0, -1.0, 0.0], (32, 1))
    _, rgb_up = scene.radiance(points, up)
    _, rgb_down = scene.radiance(points, down)
    assert rgb_up.mean() >= rgb_down.mean()


def test_camera_intrinsics_from_fov():
    intr = CameraIntrinsics.from_fov(64, 64, 90.0)
    assert intr.focal == pytest.approx(32.0, rel=1e-6)
    assert intr.matrix.shape == (3, 3)
    with pytest.raises(ValueError):
        CameraIntrinsics.from_fov(0, 64, 60.0)
    with pytest.raises(ValueError):
        CameraIntrinsics.from_fov(64, 64, 0.0)


def test_look_at_produces_orthonormal_rotation():
    pose = look_at([2.0, 1.0, 2.0], [0.0, 0.0, 0.0])
    rotation = pose[:3, :3]
    np.testing.assert_allclose(rotation.T @ rotation, np.eye(3), atol=1e-9)
    # Camera -z axis points from eye toward the target.
    forward = -rotation[:, 2]
    expected = np.array([0.0, 0.0, 0.0]) - np.array([2.0, 1.0, 2.0])
    expected = expected / np.linalg.norm(expected)
    np.testing.assert_allclose(forward, expected, atol=1e-9)


def test_look_at_degenerate_up_direction():
    pose = look_at([0.0, 2.0, 0.0], [0.0, 0.0, 0.0])
    assert np.all(np.isfinite(pose))


@given(st.integers(1, 24), st.floats(1.0, 5.0))
@settings(max_examples=20, deadline=None)
def test_poses_on_sphere_radius_property(num_poses, radius):
    poses = poses_on_sphere(num_poses, radius=radius)
    assert len(poses) == num_poses
    for pose in poses:
        assert np.linalg.norm(pose[:3, 3]) == pytest.approx(radius, rel=1e-6)


def test_poses_on_sphere_validation():
    with pytest.raises(ValueError):
        poses_on_sphere(0)
