"""Tests for the config-driven pipeline: registry, context, sweeps, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.hashing import MortonLocalityHash, OriginalSpatialHash, get_hash_function
from repro.dram.spec import DDR4_3200, LPDDR4_2400, get_dram_spec
from repro.experiments import run_fig07
from repro.nerf.encoding import HashGridConfig
from repro.pipeline import (
    SimulationContext,
    all_experiments,
    cell_seed,
    config_key,
    expand_grid,
    get_experiment,
    run_experiment,
    sweep,
)
from repro.pipeline.cli import main
from repro.workloads.traces import TraceConfig

EXPECTED_SPECS = (
    "fig01", "fig04", "fig06", "fig07", "fig09", "fig10", "fig11",
    "fig12_cache_hit_rate",
    "fig13_occupancy_traffic",
    "fig14_serving_latency",
    "fig15_embedding_locality",
    "tab01", "tab02", "tab03", "tab04",
    "tab05_psnr_precision",
)


# ----------------------------------------------------------------- registry
def test_all_experiments_registered():
    names = [spec.name for spec in all_experiments()]
    assert names == list(EXPECTED_SPECS)
    for spec in all_experiments():
        assert spec.paper_ref and spec.title


def test_unknown_experiment_error_lists_available():
    with pytest.raises(KeyError, match="fig07"):
        get_experiment("fig99")


def test_param_binding_validates_names_types_and_choices():
    spec = get_experiment("fig07")
    bound = spec.bind({"rays": "32", "seed": "5"})
    assert bound["rays"] == 32 and bound["seed"] == 5
    with pytest.raises(KeyError, match="available"):
        spec.bind({"nope": 1})
    with pytest.raises(ValueError, match="expected int"):
        spec.bind({"rays": "many"})
    gpu_spec = get_experiment("fig04")
    with pytest.raises(ValueError, match="not one of"):
        gpu_spec.bind({"gpu": "TPU"})


def test_run_experiment_produces_expected_result():
    result = run_experiment("fig06", num_cubes=512)
    assert result.experiment_id == "Fig. 6"
    assert {row["hash"] for row in result.rows} == {"morton-locality", "ingp-prime-xor"}


def test_registered_run_matches_legacy_entry_point():
    """The registry path and the legacy run_* wrapper agree exactly."""
    trace = TraceConfig(num_rays=32, points_per_ray=32, seed=0, scene="lego")
    with pytest.warns(DeprecationWarning, match="run_fig07"):
        legacy = run_fig07(HashGridConfig(num_levels=8), trace)
    registered = run_experiment(
        "fig07", levels=8, rays=32, points_per_ray=32, scene="lego"
    )
    assert legacy.rows == registered.rows


def test_suite_scheduler_orders_producers_before_consumers():
    specs = [get_experiment(n) for n in ("fig07", "fig09")]
    from repro.pipeline.registry import _schedule

    ordered = [s.name for s in _schedule(specs)]
    assert ordered.index("fig09") < ordered.index("fig07")


# ------------------------------------------------------------------ context
def test_config_key_is_value_based():
    a = TraceConfig(num_rays=8, points_per_ray=8, scene="lego")
    b = TraceConfig(num_rays=8, points_per_ray=8, scene="lego")
    assert config_key(a) == config_key(b)
    assert config_key(a) != config_key(TraceConfig(num_rays=8, points_per_ray=8))
    assert config_key(MortonLocalityHash()) == config_key(MortonLocalityHash())
    assert config_key(MortonLocalityHash()) != config_key(OriginalSpatialHash())
    arr = np.arange(6).reshape(2, 3)
    assert config_key(arr) == config_key(arr.copy())


def test_context_memoizes_and_counts_hits():
    ctx = SimulationContext()
    trace = TraceConfig(num_rays=8, points_per_ray=8, seed=3)
    first = ctx.batch_points(trace)
    second = ctx.batch_points(trace)
    assert first is second
    assert ctx.stats.hits == 1 and ctx.stats.misses == 1
    # A different configuration is a different artifact.
    ctx.batch_points(TraceConfig(num_rays=8, points_per_ray=8, seed=4))
    assert ctx.stats.misses == 2


def test_context_failed_computation_is_retryable():
    ctx = SimulationContext()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("boom")
        return 42

    with pytest.raises(RuntimeError):
        ctx.memoize(("flaky",), flaky)
    assert ctx.memoize(("flaky",), flaky) == 42


def test_context_row_requests_with_and_without_cached_indices_agree():
    grid = HashGridConfig(num_levels=6, table_size=2**12, max_resolution=256)
    trace = TraceConfig(num_rays=16, points_per_ray=16, seed=2)
    fn = MortonLocalityHash()
    from repro.core.streaming import StreamingOrder

    plain = SimulationContext()
    direct = [
        plain.row_requests(grid, trace, fn, StreamingOrder.RAY_FIRST, level)
        for level in range(grid.num_levels)
    ]
    warmed = SimulationContext()
    for level in range(grid.num_levels):
        warmed.level_indices(grid, trace, fn, level)
    derived = [
        warmed.row_requests(grid, trace, fn, StreamingOrder.RAY_FIRST, level)
        for level in range(grid.num_levels)
    ]
    assert direct == derived


def test_context_serviced_batch_summary():
    ctx = SimulationContext()
    grid = HashGridConfig(num_levels=4, table_size=2**10, max_resolution=64)
    trace = TraceConfig(num_rays=4, points_per_ray=8, seed=0)
    summary = ctx.serviced_batch("lpddr4-2400", grid, trace, MortonLocalityHash(), 0)
    assert summary["total_requests"] > 0
    assert summary["total_cycles"] > 0
    assert 0.0 <= summary["row_hit_rate"] <= 1.0
    again = ctx.serviced_batch("lpddr4-2400", grid, trace, MortonLocalityHash(), 0)
    assert again is summary  # cached


# ---------------------------------------------------------- registries/specs
def test_dram_spec_registry_and_aliases():
    assert get_dram_spec("ddr4") is DDR4_3200
    assert get_dram_spec("LPDDR4") is LPDDR4_2400
    DDR4_3200.validate()
    with pytest.raises(KeyError, match="available"):
        get_dram_spec("hbm3")


def test_hash_function_registry():
    assert isinstance(get_hash_function("morton"), MortonLocalityHash)
    assert isinstance(get_hash_function("ingp-prime-xor"), OriginalSpatialHash)
    with pytest.raises(KeyError, match="available"):
        get_hash_function("xxhash")


# -------------------------------------------------------------------- sweep
def test_expand_grid_orders_cells_deterministically():
    cells = expand_grid({"a": [1, 2], "b": ["x", "y"]})
    assert cells == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


def test_cell_seed_is_stable_and_parameter_dependent():
    seed = cell_seed("fig07", {"scene": "lego"}, base_seed=1)
    assert seed == cell_seed("fig07", {"scene": "lego"}, base_seed=1)
    assert seed != cell_seed("fig07", {"scene": "chair"}, base_seed=1)
    assert seed != cell_seed("fig07", {"scene": "lego"}, base_seed=2)


def test_sweep_pins_every_cell_to_the_base_seed():
    """Sweeping a non-stochastic axis is a controlled comparison: all cells
    run on the same sampled trace (and the context can share it)."""
    ctx = SimulationContext()
    result = sweep(
        "fig07",
        {"hash": ["morton", "original"]},
        base_seed=3,
        extra_params={"rays": "16", "points_per_ray": "16"},
        context=ctx,
    )
    assert [cell.seed for cell in result.cells] == [3, 3]
    trace_artifacts = sum(
        1 for key in ctx._cache if isinstance(key, tuple) and key[0] == "batch_points"
    )
    assert trace_artifacts == 1


def test_sweep_rejects_unknown_extra_param():
    with pytest.raises(KeyError, match="available"):
        sweep("fig07", {"hash": ["morton"]}, extra_params={"pionts_per_ray": "16"})


def test_sweep_rejects_unknown_grid_parameter():
    with pytest.raises(KeyError, match="available"):
        sweep("fig06", {"bogus": [1, 2]})


def test_sweep_runs_cells_and_collects_errors():
    result = sweep(
        "fig06",
        {"num_cubes": [128, -1]},
        extra_params={"resolution": "128"},
    )
    assert result.cells[0].error is None
    assert result.cells[0].result.rows
    assert result.cells[1].error is not None  # negative cube count fails
    payload = json.loads(result.to_json())
    assert payload["spec"] == "fig06" and len(payload["cells"]) == 2


def test_sweep_parallel_matches_serial():
    grid = {"hash": ["morton", "original"], "scene": ["lego", "chair"]}
    serial = sweep("fig07", grid, workers=1, extra_params={"rays": "16", "points_per_ray": "16"})
    parallel = sweep("fig07", grid, workers=4, extra_params={"rays": "16", "points_per_ray": "16"})
    assert [c.to_dict() for c in serial.cells] == [c.to_dict() for c in parallel.cells]


# ---------------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_SPECS:
        assert name in out


def test_cli_list_json(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [entry["name"] for entry in payload] == list(EXPECTED_SPECS)


def test_cli_run_writes_round_trippable_artifacts(tmp_path, capsys):
    code = main(
        ["run", "fig07", "--scene", "lego", "--dram", "ddr4", "--rays", "16",
         "--points-per-ray", "16", "--out", str(tmp_path), "--formats", "json,csv,text"]
    )
    assert code == 0
    from repro.experiments.runner import ExperimentResult

    restored = ExperimentResult.from_json((tmp_path / "fig07.json").read_text())
    assert restored.experiment_id == "Fig. 7"
    assert len(restored.rows) == 16
    assert (tmp_path / "fig07.csv").read_text().startswith("level,")
    assert "Fig. 7" in (tmp_path / "fig07.txt").read_text()


def test_cli_run_accepts_flags_before_the_experiment_name(tmp_path):
    code = main(
        ["run", "--quiet", "--out", str(tmp_path), "fig06", "--num-cubes", "64"]
    )
    assert code == 0
    assert (tmp_path / "fig06.json").exists()


def test_cli_run_unknown_experiment_fails_cleanly(capsys):
    assert main(["run", "fig99"]) == 2
    assert "available" in capsys.readouterr().err


def test_cli_run_bad_parameter_fails_cleanly(capsys):
    assert main(["run", "fig07", "--set", "rays=lots"]) == 2
    assert "expected int" in capsys.readouterr().err


def test_cli_sweep_writes_index(tmp_path, capsys):
    code = main(
        ["sweep", "fig06", "--grid", "num_cubes=64,128", "--workers", "2",
         "--quiet", "--out", str(tmp_path)]
    )
    assert code == 0
    index = json.loads((tmp_path / "sweep_fig06.json").read_text())
    assert [cell["params"]["num_cubes"] for cell in index["cells"]] == ["64", "128"]


def test_cli_report_subset(tmp_path, capsys):
    code = main(
        ["report", "--experiments", "tab01,tab02,tab03", "--out", str(tmp_path), "--quiet"]
    )
    assert code == 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["experiments"] == ["tab01", "tab02", "tab03"]
    assert (tmp_path / "tab01.json").exists()


def test_cli_report_single_format_writes_csv_only(tmp_path):
    code = main(
        ["report", "--experiments", "tab01,tab02", "--format", "csv",
         "--out", str(tmp_path), "--quiet"]
    )
    assert code == 0
    for name in ("tab01", "tab02"):
        assert (tmp_path / f"{name}.csv").read_text().count("\n") > 1
        assert not (tmp_path / f"{name}.json").exists()


def test_cli_run_single_format_rejects_unknown(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig06", "--num-cubes", "64", "--format", "yaml", "--out", str(tmp_path)])


def test_cli_sweep_store_resume_roundtrip(tmp_path, capsys):
    """`sweep --store` persists cells; `--resume` replays them byte-identically."""
    store = str(tmp_path / "cache")
    base = ["sweep", "fig06", "--grid", "num_cubes=64,128", "--set", "resolution=128",
            "--store", store]
    assert main(base + ["--out", str(tmp_path / "a"), "--quiet"]) == 0
    assert main(base + ["--resume", "--out", str(tmp_path / "b")]) == 0
    out = capsys.readouterr().out
    assert "2 resumed" in out
    index_a = (tmp_path / "a" / "sweep_fig06.json").read_text()
    index_b = (tmp_path / "b" / "sweep_fig06.json").read_text()
    assert index_a == index_b


def test_cli_sweep_executor_flag_is_deterministic(tmp_path):
    for directory, executor in (("s", "serial"), ("t", "thread")):
        code = main(
            ["sweep", "fig06", "--grid", "num_cubes=64,128", "--set", "resolution=128",
             "--executor", executor, "--workers", "2", "--quiet",
             "--out", str(tmp_path / directory)]
        )
        assert code == 0
    serial = (tmp_path / "s" / "sweep_fig06.json").read_text()
    threaded = (tmp_path / "t" / "sweep_fig06.json").read_text()
    assert serial == threaded


def test_cli_run_store_resume(tmp_path, capsys):
    store = str(tmp_path / "cache")
    args = ["run", "fig06", "--num-cubes", "64", "--store", store]
    assert main(args) == 0
    assert main(args + ["--resume"]) == 0
    assert "loaded from store" in capsys.readouterr().out


def test_cli_resume_without_store_fails(tmp_path):
    with pytest.raises(SystemExit, match="requires --store"):
        main(["run", "fig06", "--num-cubes", "64", "--resume"])


def test_cli_refuses_overwriting_differing_artifact_without_force(tmp_path, capsys):
    out = str(tmp_path)
    assert main(["run", "fig06", "--num-cubes", "64", "--quiet", "--out", out]) == 0
    # identical rerun: fine (idempotent)
    assert main(["run", "fig06", "--num-cubes", "64", "--quiet", "--out", out]) == 0
    # differing configuration writing the same file name: refused ...
    assert main(["run", "fig06", "--num-cubes", "128", "--quiet", "--out", out]) == 2
    assert "refusing to overwrite" in capsys.readouterr().err
    # ... unless forced
    assert main(["run", "fig06", "--num-cubes", "128", "--quiet", "--out", out, "--force"]) == 0
