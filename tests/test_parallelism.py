"""Tests for the heterogeneous inter-bank parallelism analysis (Fig. 10)."""

from __future__ import annotations

import pytest

from repro.core.parallelism import (
    MovementCategory,
    ParallelismKind,
    all_data_parallel_plan,
    all_parameter_parallel_plan,
    analyze_plan,
    heterogeneous_plan,
)


def test_heterogeneous_plan_matches_paper_assignment():
    plan = heterogeneous_plan()
    assert plan.kind_for("HT") is ParallelismKind.PARAMETER
    assert plan.kind_for("HT_b") is ParallelismKind.PARAMETER
    assert plan.kind_for("MLP") is ParallelismKind.DATA
    assert plan.kind_for("MLP_b") is ParallelismKind.DATA
    with pytest.raises(KeyError):
        plan.kind_for("conv")


def test_fig10_category_pattern_for_heterogeneous_plan():
    """Fig. 10's table: which categories are 'Yes' for each step."""
    traffic = analyze_plan(heterogeneous_plan(), num_banks=16).per_step
    # HT: duplicates (input) data, no sequential transfer (first step), no grads.
    assert traffic["HT"][MovementCategory.DUPLICATION] > 0
    assert traffic["HT"][MovementCategory.GRADIENT_PARTIAL_SUM] == 0
    # MLP: duplicates (tiny) parameters and receives HT's output.
    assert traffic["MLP"][MovementCategory.DUPLICATION] > 0
    assert traffic["MLP"][MovementCategory.SEQUENTIAL_TRANSFER] > 0
    # MLP_b: gradient partial sums only for the small MLP weights.
    assert traffic["MLP_b"][MovementCategory.GRADIENT_PARTIAL_SUM] > 0
    assert traffic["MLP_b"][MovementCategory.GRADIENT_PARTIAL_SUM] < 10 * 1024**2
    # HT_b: receives the gradient tensor, no partial sums (parameter parallel).
    assert traffic["HT_b"][MovementCategory.SEQUENTIAL_TRANSFER] > 0
    assert traffic["HT_b"][MovementCategory.GRADIENT_PARTIAL_SUM] == 0
    # Category 3 (intra-step) is zero everywhere.
    for step in traffic.values():
        assert step[MovementCategory.INTRA_STEP] == 0


def test_heterogeneous_plan_moves_least_data():
    """The paper's plan must beat both homogeneous ablations."""
    hetero = analyze_plan(heterogeneous_plan(), num_banks=16).total_bytes()
    all_data = analyze_plan(all_data_parallel_plan(), num_banks=16).total_bytes()
    all_param = analyze_plan(all_parameter_parallel_plan(), num_banks=16).total_bytes()
    assert hetero < all_data
    assert hetero < all_param
    # Duplicating the 25 MB hash table to every bank is the worst offender.
    assert all_data > 2 * hetero


def test_duplication_scales_with_bank_count():
    small = analyze_plan(heterogeneous_plan(), num_banks=2)
    large = analyze_plan(heterogeneous_plan(), num_banks=16)
    assert large.category_total(MovementCategory.DUPLICATION) > small.category_total(
        MovementCategory.DUPLICATION
    )
    with pytest.raises(ValueError):
        analyze_plan(heterogeneous_plan(), num_banks=0)


def test_traffic_helpers():
    traffic = analyze_plan(heterogeneous_plan(), num_banks=4)
    total = traffic.total_bytes()
    assert total == pytest.approx(
        sum(traffic.step_total(s) for s in ("HT", "MLP", "MLP_b", "HT_b"))
    )
    assert total == pytest.approx(sum(traffic.category_total(c) for c in MovementCategory))
