"""Tests for the ``python -m repro bench`` gate (run / compare / list).

The compare logic is exercised against synthetic BENCH files in both
on-disk formats: the append-only trajectory list (hotpaths/mem/occupancy)
and the overwrite snapshot object (pipeline).
"""

from __future__ import annotations

import json

import pytest

from repro.pipeline.bench import (
    BASELINE_DIR,
    SUITES,
    BenchSuite,
    compare_file,
    compare_suites,
    get_suites,
    stash_baselines,
)
from repro.pipeline.cli import main

SUITE = BenchSuite("hotpaths", "benchmarks/test_perf_hotpaths.py", "BENCH_hotpaths.json")


def _trajectory_entry(smoke, **metrics):
    return {"timestamp": "2026-01-01T00:00:00", "smoke": smoke, "results": metrics}


def _write(path, payload):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


# ----------------------------------------------------------------- suites
def test_suite_registry_and_lookup():
    assert [s.name for s in SUITES] == [
        "hotpaths",
        "mem",
        "pipeline",
        "occupancy",
        "precision",
        "obs",
        "serve",
    ]
    assert [s.name for s in get_suites(["mem", "occupancy"])] == ["mem", "occupancy"]
    with pytest.raises(KeyError, match="unknown benchmark suite"):
        get_suites(["nope"])


def test_stash_baselines_copies_once(tmp_path):
    _write(tmp_path / "BENCH_hotpaths.json", [_trajectory_entry(False, stream={"speedup": 7.0})])
    stashed = stash_baselines(tmp_path)
    assert stashed == tmp_path / BASELINE_DIR
    assert (stashed / "BENCH_hotpaths.json").exists()
    # Mutate the live file; a second stash must not clobber the baseline.
    _write(tmp_path / "BENCH_hotpaths.json", [_trajectory_entry(False, stream={"speedup": 1.0})])
    assert stash_baselines(tmp_path) is None
    kept = json.loads((stashed / "BENCH_hotpaths.json").read_text())
    assert kept[0]["results"]["stream"]["speedup"] == 7.0


# ------------------------------------------------------------- comparison
def test_compare_flags_regressions_and_passes_improvements(tmp_path):
    baseline = _write(
        tmp_path / "base.json",
        [_trajectory_entry(False, stream={"speedup": 8.0}, conflicts={"speedup": 4.0})],
    )
    current = _write(
        tmp_path / "cur.json",
        [_trajectory_entry(False, stream={"speedup": 9.0}, conflicts={"speedup": 2.0})],
    )
    report = compare_file(SUITE, current, baseline, max_regression=0.25, cap=50.0)
    by_metric = {(m.section, m.metric): m for m in report.metrics}
    assert not by_metric[("stream", "speedup")].regressed
    assert by_metric[("conflicts", "speedup")].regressed  # 2.0 < 4.0 * 0.75


def test_compare_only_gates_higher_is_better_metrics(tmp_path):
    baseline = _write(
        tmp_path / "base.json",
        [_trajectory_entry(False, s={"speedup": 4.0, "reference_s": 0.1, "vectorized_s": 0.01})],
    )
    current = _write(
        tmp_path / "cur.json",
        [_trajectory_entry(False, s={"speedup": 4.0, "reference_s": 9.9, "vectorized_s": 9.9})],
    )
    report = compare_file(SUITE, current, baseline, 0.25, 50.0)
    assert [m.metric for m in report.metrics] == ["speedup"]
    assert not report.regressions


def test_compare_matches_on_smoke_flag(tmp_path):
    baseline = _write(
        tmp_path / "base.json",
        [
            _trajectory_entry(False, stream={"speedup": 50.0}),
            _trajectory_entry(True, stream={"speedup": 3.0}),
        ],
    )
    # A smoke run is gated against the smoke baseline (3.0), not the 50x
    # full-scale number.
    current = _write(tmp_path / "cur.json", [_trajectory_entry(True, stream={"speedup": 2.5})])
    report = compare_file(SUITE, current, baseline, 0.25, 50.0)
    assert len(report.metrics) == 1
    assert report.metrics[0].baseline == 3.0
    assert not report.regressions


def test_compare_baseline_is_the_noise_floor_of_recent_history(tmp_path):
    """Trajectory baselines take the min over recent matching entries."""
    baseline = _write(
        tmp_path / "base.json",
        [
            _trajectory_entry(True, s={"speedup": 10.7}),
            _trajectory_entry(True, s={"speedup": 13.4}),
            _trajectory_entry(True, s={"speedup": 15.3}),
        ],
    )
    # 11.2 would regress vs the latest 15.3 entry alone, but clears the
    # 10.7 noise floor of the recent history.
    current = _write(tmp_path / "cur.json", [_trajectory_entry(True, s={"speedup": 11.2})])
    report = compare_file(SUITE, current, baseline, 0.25, 50.0)
    assert report.metrics[0].baseline == 10.7
    assert not report.regressions
    # A drop below every recent entry still fails.
    current = _write(tmp_path / "cur.json", [_trajectory_entry(True, s={"speedup": 7.0})])
    assert compare_file(SUITE, current, baseline, 0.25, 50.0).regressions


def test_compare_cap_forgives_absurdly_fast_baselines(tmp_path):
    baseline = _write(tmp_path / "base.json", [_trajectory_entry(False, warm={"speedup": 1485.0})])
    current = _write(tmp_path / "cur.json", [_trajectory_entry(False, warm={"speedup": 300.0})])
    assert not compare_file(SUITE, current, baseline, 0.25, cap=50.0).regressions
    # Without the cap the same drop would fail.
    assert compare_file(SUITE, current, baseline, 0.25, cap=1e9).regressions


def test_compare_snapshot_format(tmp_path):
    baseline = _write(
        tmp_path / "base.json",
        {"warm_store": {"speedup": 10.0, "store_hit_rate": 1.0, "smoke": False}},
    )
    current = _write(
        tmp_path / "cur.json",
        {"warm_store": {"speedup": 4.0, "store_hit_rate": 1.0, "smoke": False}},
    )
    report = compare_file(SUITE, current, baseline, 0.25, 50.0)
    assert {m.metric for m in report.metrics} == {"speedup", "store_hit_rate"}
    assert [m.metric for m in report.regressions] == ["speedup"]


def test_compare_without_baseline_falls_back_to_trajectory(tmp_path):
    current = _write(
        tmp_path / "cur.json",
        [
            _trajectory_entry(False, stream={"speedup": 8.0}),
            _trajectory_entry(False, stream={"speedup": 7.0}),
        ],
    )
    report = compare_file(SUITE, current, None, 0.25, 50.0)
    assert any("previous entry" in note for note in report.notes)
    assert len(report.metrics) == 1 and not report.regressions


def test_compare_with_nothing_to_gate_passes(tmp_path):
    current = _write(tmp_path / "cur.json", [_trajectory_entry(False, stream={"speedup": 1.0})])
    report = compare_file(SUITE, current, None, 0.25, 50.0)
    assert not report.metrics and any("no baseline" in n for n in report.notes)
    missing = compare_file(SUITE, tmp_path / "absent.json", None, 0.25, 50.0)
    assert not missing.metrics and any("bench run" in n for n in missing.notes)


def test_compare_tolerates_corrupt_files(tmp_path):
    """A truncated BENCH file yields a note, not an aborted gate."""
    current = tmp_path / "cur.json"
    current.write_text('[{"timestamp": "2026-')
    report = compare_file(SUITE, current, None, 0.25, 50.0)
    assert not report.metrics and any("corrupt" in n for n in report.notes)
    good = _write(tmp_path / "good.json", [_trajectory_entry(True, s={"speedup": 2.0})])
    bad_baseline = tmp_path / "base.json"
    bad_baseline.write_text("{nope")
    report = compare_file(SUITE, good, bad_baseline, 0.25, 50.0)
    assert not report.metrics and any("corrupt" in n for n in report.notes)


def test_compare_reports_cap_clamped_values(tmp_path):
    """The reported baseline/current match the verdict (cap applied)."""
    baseline = _write(tmp_path / "base.json", [_trajectory_entry(False, w={"speedup": 1485.0})])
    current = _write(tmp_path / "cur.json", [_trajectory_entry(False, w={"speedup": 300.0})])
    (metric,) = compare_file(SUITE, current, baseline, 0.25, cap=50.0).metrics
    assert metric.baseline == 50.0 and metric.current == 50.0 and metric.ratio == 1.0


def test_compare_suites_exit_code(tmp_path):
    stash = tmp_path / BASELINE_DIR
    _write(stash / "BENCH_mem.json", [_trajectory_entry(True, cache={"speedup": 6.0})])
    _write(tmp_path / "BENCH_mem.json", [_trajectory_entry(True, cache={"speedup": 1.0})])
    reports, exit_code = compare_suites(tmp_path, ["mem"])
    assert exit_code == 1 and reports[0].regressions
    _write(tmp_path / "BENCH_mem.json", [_trajectory_entry(True, cache={"speedup": 6.5})])
    reports, exit_code = compare_suites(tmp_path, ["mem"])
    assert exit_code == 0 and not reports[0].regressions
    with pytest.raises(ValueError):
        compare_suites(tmp_path, ["mem"], max_regression=1.5)


# -------------------------------------------------------------------- CLI
def test_cli_bench_list_and_compare(tmp_path, capsys):
    assert main(["bench", "list", "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "hotpaths" in out and "BENCH_occupancy.json" in out

    stash = tmp_path / BASELINE_DIR
    _write(stash / "BENCH_hotpaths.json", [_trajectory_entry(True, s={"speedup": 4.0})])
    _write(tmp_path / "BENCH_hotpaths.json", [_trajectory_entry(True, s={"speedup": 1.0})])
    code = main(
        ["bench", "compare", "hotpaths", "--root", str(tmp_path), "--max-regression", "0.25"]
    )
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out
    # A looser tolerance (or a fixed current value) passes and says so.
    _write(tmp_path / "BENCH_hotpaths.json", [_trajectory_entry(True, s={"speedup": 3.9})])
    assert main(["bench", "compare", "hotpaths", "--root", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["suite"] == "hotpaths" and not payload[0]["metrics"][0]["regressed"]


def test_cli_bench_compare_on_committed_baselines(tmp_path):
    """The committed BENCH files parse and gate cleanly against themselves."""
    import shutil
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    copied = 0
    for suite in SUITES:
        source = root / suite.bench_file
        if source.exists():
            shutil.copy2(source, tmp_path / suite.bench_file)
            copied += 1
    assert copied, "expected committed BENCH_*.json baselines at the repo root"
    stash_baselines(tmp_path)
    assert main(["bench", "compare", "--root", str(tmp_path)]) == 0
