"""Unit and property-based tests for Morton (Z-order) encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.morton import (
    MAX_BITS_PER_COORD,
    compact_by_two,
    morton_decode_3d,
    morton_encode_3d,
    morton_hash,
    separate_by_two,
)

COORD = st.integers(min_value=0, max_value=2**MAX_BITS_PER_COORD - 1)


def test_separate_by_two_known_value():
    # f(0b1011) = 0b1000001001 (paper example)
    assert int(separate_by_two(0b1011)) == 0b1000001001


def test_separate_by_two_zero_and_one():
    assert int(separate_by_two(0)) == 0
    assert int(separate_by_two(1)) == 1
    assert int(separate_by_two(2)) == 0b1000


def test_separate_by_two_vectorised_matches_scalar():
    values = np.arange(100)
    vector = separate_by_two(values)
    scalars = np.array([int(separate_by_two(int(v))) for v in values], dtype=np.uint64)
    np.testing.assert_array_equal(vector, scalars)


def test_morton_encode_interleaves_bits():
    # x0 bits go to positions 0,3,6..., x1 to 1,4,7..., x2 to 2,5,8...
    assert int(morton_encode_3d(np.array(1), np.array(0), np.array(0))) == 0b001
    assert int(morton_encode_3d(np.array(0), np.array(1), np.array(0))) == 0b010
    assert int(morton_encode_3d(np.array(0), np.array(0), np.array(1))) == 0b100
    assert int(morton_encode_3d(np.array(3), np.array(0), np.array(0))) == 0b001001


def test_morton_neighbors_are_close_on_average():
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 1024, size=(1000, 3))
    neighbors = coords.copy()
    neighbors[:, 0] += 1
    base = morton_encode_3d(coords[:, 0], coords[:, 1], coords[:, 2]).astype(np.int64)
    near = morton_encode_3d(neighbors[:, 0], neighbors[:, 1], neighbors[:, 2]).astype(np.int64)
    random_pairs = np.abs(base - np.roll(base, 1))
    neighbor_pairs = np.abs(base - near)
    assert np.median(neighbor_pairs) < np.median(random_pairs)


@given(COORD, COORD, COORD)
@settings(max_examples=100, deadline=None)
def test_morton_roundtrip(x0, x1, x2):
    code = morton_encode_3d(np.array(x0), np.array(x1), np.array(x2))
    d0, d1, d2 = morton_decode_3d(code)
    assert (int(d0), int(d1), int(d2)) == (x0, x1, x2)


@given(COORD)
@settings(max_examples=100, deadline=None)
def test_separate_compact_roundtrip(value):
    assert int(compact_by_two(separate_by_two(value))) == value


@given(st.lists(st.tuples(COORD, COORD, COORD), min_size=1, max_size=20), st.integers(1, 2**20))
@settings(max_examples=50, deadline=None)
def test_morton_hash_in_range(coords, table_size):
    arr = np.array(coords, dtype=np.int64)
    idx = morton_hash(arr, table_size)
    assert idx.shape == (arr.shape[0],)
    assert np.all(idx >= 0)
    assert np.all(idx < table_size)


def test_morton_hash_rejects_bad_inputs():
    with pytest.raises(ValueError):
        morton_hash(np.zeros((3, 2)), 16)
    with pytest.raises(ValueError):
        morton_hash(np.zeros((3, 3)), 0)


def test_morton_hash_rejects_negative_coordinates():
    """Regression: -1 used to silently mask to 0x1FFFFF instead of failing."""
    with pytest.raises(ValueError):
        morton_hash(np.array([[-1, 0, 0]]), 16)
    with pytest.raises(ValueError):
        morton_hash(np.array([[0, 0, 0], [2, -5, 1]]), 2**19)
    # Positive overflow keeps the documented hardware-style 21-bit masking.
    over = morton_hash(np.array([[2**MAX_BITS_PER_COORD, 0, 0]]), 2**19)
    masked = morton_hash(np.array([[0, 0, 0]]), 2**19)
    np.testing.assert_array_equal(over, masked)


def test_morton_hash_is_deterministic():
    coords = np.array([[1, 2, 3], [4, 5, 6]])
    np.testing.assert_array_equal(morton_hash(coords, 97), morton_hash(coords, 97))
