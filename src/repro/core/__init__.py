"""Instant-NeRF core contribution: locality-sensitive hashing, ray-first
streaming, hash-table mapping, inter-bank parallelism and the co-designed
system model.

Only the dependency-free hashing/Morton utilities are imported eagerly.  The
higher-level modules (streaming, mapping, parallelism, codesign) depend on
:mod:`repro.nerf`, :mod:`repro.workloads` and :mod:`repro.accel`, which in
turn import the hashing utilities from this package — importing them lazily
(PEP 562) breaks that cycle while keeping ``repro.core.X`` usable.
"""

from __future__ import annotations

from .hashing import (
    DenseGridIndexer,
    HashFunction,
    IndexDistanceStats,
    MortonLocalityHash,
    OriginalSpatialHash,
    average_row_requests_per_cube,
    average_row_requests_per_cube_reference,
    cube_vertices,
    index_distance_breakdown,
)
from .morton import morton_decode_3d, morton_encode_3d, morton_hash, separate_by_two

#: Symbols resolved lazily to avoid circular imports: name -> submodule.
_LAZY_EXPORTS = {
    # streaming
    "LocalityReport": "streaming",
    "StreamingOrder": "streaming",
    "effective_bandwidth_improvement": "streaming",
    "memory_requests_for_stream": "streaming",
    "memory_requests_for_stream_reference": "streaming",
    "point_order": "streaming",
    "points_sharing_same_cube": "streaming",
    "register_hit_rate": "streaming",
    # mapping
    "BankConflictStats": "mapping",
    "HashTableMapper": "mapping",
    "HashTableMappingConfig": "mapping",
    "IntraLevelPolicy": "mapping",
    "default_level_groups": "mapping",
    # parallelism
    "InterBankTraffic": "parallelism",
    "MovementCategory": "parallelism",
    "ParallelismKind": "parallelism",
    "ParallelismPlan": "parallelism",
    "StepPlan": "parallelism",
    "all_data_parallel_plan": "parallelism",
    "all_parameter_parallel_plan": "parallelism",
    "analyze_plan": "parallelism",
    "heterogeneous_plan": "parallelism",
    # codesign
    "AlgorithmConfig": "codesign",
    "InstantNeRFSystem": "codesign",
    "SCENE_DIFFICULTY": "codesign",
}


def __getattr__(name: str) -> object:
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(f".{_LAZY_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(list(globals().keys()) + list(_LAZY_EXPORTS.keys()))


__all__ = [
    "DenseGridIndexer",
    "HashFunction",
    "IndexDistanceStats",
    "MortonLocalityHash",
    "OriginalSpatialHash",
    "average_row_requests_per_cube",
    "average_row_requests_per_cube_reference",
    "cube_vertices",
    "index_distance_breakdown",
    "morton_decode_3d",
    "morton_encode_3d",
    "morton_hash",
    "separate_by_two",
    *sorted(_LAZY_EXPORTS.keys()),
]
