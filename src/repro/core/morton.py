"""Morton (Z-order) encoding utilities.

The Instant-NeRF algorithm replaces iNGP's prime-XOR spatial hash with a
locality-sensitive hash built on Morton codes (paper Eq. (2)):

    h(x) = (f(x0) + (f(x1) << 1) + (f(x2) << 2)) mod T

where ``f`` is the "separate one by two" bit expansion that inserts two zero
bits between every pair of adjacent bits of its argument (e.g.
``f(0b1011) = 0b1000001001``).  Interleaving the expanded coordinates gives
the Morton code of the 3D vertex, so vertices that are close in 3D space map
to nearby hash-table indices.

All functions in this module are vectorised over NumPy integer arrays so that
millions of vertices can be encoded per call.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "separate_by_two",
    "compact_by_two",
    "morton_encode_3d",
    "morton_decode_3d",
    "morton_hash",
    "morton_corner_codes",
]

# Maximum number of bits per coordinate that survive the 64-bit interleave.
# 21 bits * 3 coordinates = 63 bits, which fits in an unsigned 64-bit word.
MAX_BITS_PER_COORD = 21

# Magic-number masks for the classic parallel-prefix "part by two" expansion
# of a 21-bit integer into 63 bits (see Real-Time Collision Detection, ch. 7).
_PART_MASKS = (
    (np.uint64(0x1F00000000FFFF), np.uint64(32)),
    (np.uint64(0x1F0000FF0000FF), np.uint64(16)),
    (np.uint64(0x100F00F00F00F00F), np.uint64(8)),
    (np.uint64(0x10C30C30C30C30C3), np.uint64(4)),
    (np.uint64(0x1249249249249249), np.uint64(2)),
)


def separate_by_two(values: NDArray[Any] | int) -> NDArray[Any]:
    """Insert two zero bits between adjacent bits of each value.

    This is the ``f(x)`` function from paper Eq. (2).  Input values must be
    non-negative and fit in :data:`MAX_BITS_PER_COORD` bits; higher bits are
    masked off (matching hardware behaviour where the expansion unit has a
    fixed width).

    Parameters
    ----------
    values:
        Integer scalar or array of non-negative grid coordinates.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of the same shape with bits spread out, i.e. bit
        ``i`` of the input lands at bit ``3*i`` of the output.
    """
    v = np.asarray(values, dtype=np.uint64)
    v = v & np.uint64((1 << MAX_BITS_PER_COORD) - 1)
    for mask, shift in _PART_MASKS:
        v = (v | (v << shift)) & mask
    return v


def compact_by_two(values: NDArray[Any] | int) -> NDArray[Any]:
    """Inverse of :func:`separate_by_two` (keeps every third bit)."""
    v = np.asarray(values, dtype=np.uint64)
    v = v & np.uint64(0x1249249249249249)
    v = (v ^ (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v ^ (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v ^ (v >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    v = (v ^ (v >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    v = (v ^ (v >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return v


def morton_encode_3d(x0: NDArray[Any], x1: NDArray[Any], x2: NDArray[Any]) -> NDArray[Any]:
    """Interleave three coordinate arrays into 3D Morton codes.

    Bit ``i`` of ``x0`` lands at bit ``3*i``, of ``x1`` at ``3*i + 1`` and of
    ``x2`` at ``3*i + 2`` — exactly the ``f(x0) + (f(x1)<<1) + (f(x2)<<2)``
    combination used by the Instant-NeRF hash before the ``mod T`` step.
    """
    e0 = separate_by_two(x0)
    e1 = separate_by_two(x1)
    e2 = separate_by_two(x2)
    return e0 | (e1 << np.uint64(1)) | (e2 << np.uint64(2))


def morton_decode_3d(codes: NDArray[Any] | int) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
    """Recover the three coordinates from 3D Morton codes."""
    c = np.asarray(codes, dtype=np.uint64)
    x0 = compact_by_two(c)
    x1 = compact_by_two(c >> np.uint64(1))
    x2 = compact_by_two(c >> np.uint64(2))
    return x0, x1, x2


# Per-axis bit masks of the 3D interleave: axis a owns bits {3*i + a}.
_AXIS_MASKS = tuple(np.uint64(0x1249249249249249 << a) for a in range(3))
_AXIS_UNITS = tuple(np.uint64(1 << a) for a in range(3))


def morton_corner_codes(base_codes: NDArray[Any]) -> NDArray[Any]:
    """Morton codes of all 8 cube corners from the base (lower-corner) codes.

    Uses the classic masked-increment trick: to add 1 to one coordinate of an
    interleaved code, flood the other axes' bit positions with ones so the
    carry propagates across them, add the axis unit, and mask the axis bits
    back out.  This turns 8 full bit-interleaves per cube into one interleave
    plus a handful of word-wide operations, and produces exactly the codes of
    ``morton_encode_3d`` applied to ``base + offset`` (including the 21-bit
    wraparound at the coordinate limit).

    Parameters
    ----------
    base_codes:
        ``uint64`` array of shape ``(N,)`` with the Morton codes of the cube
        base vertices (from :func:`morton_encode_3d`).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(N, 8)``; corner ``m`` corresponds to the
        offset ``(m >> 2 & 1, m >> 1 & 1, m & 1)`` on axes ``(x0, x1, x2)``,
        matching :func:`repro.core.hashing.cube_vertex_offsets`.
    """
    c = np.asarray(base_codes, dtype=np.uint64)
    parts = []  # per axis: (bits unchanged, bits incremented)
    for mask, unit in zip(_AXIS_MASKS, _AXIS_UNITS):
        keep = c & mask
        bumped = ((c | ~mask) + unit) & mask
        parts.append((keep, bumped))
    out = np.empty(c.shape + (8,), dtype=np.uint64)
    for m in range(8):
        i, j, k = (m >> 2) & 1, (m >> 1) & 1, m & 1
        out[..., m] = parts[0][i] | parts[1][j] | parts[2][k]
    return out


def morton_hash(coords: NDArray[Any], table_size: int) -> NDArray[Any]:
    """Locality-sensitive hash of integer 3D vertices (paper Eq. (2)).

    Parameters
    ----------
    coords:
        Integer array of shape ``(..., 3)`` with non-negative vertex
        coordinates.
    table_size:
        ``T``, the number of entries per hash-table level.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of shape ``(...,)`` with indices in ``[0, T)``.

    Raises
    ------
    ValueError
        If any coordinate is negative.  A negative coordinate would silently
        wrap to 21 bits of garbage (e.g. ``-1`` -> ``0x1FFFFF``); positive
        overflow keeps the documented hardware-style masking of
        :func:`separate_by_two`.
    """
    if table_size <= 0:
        raise ValueError(f"table_size must be positive, got {table_size}")
    coords = np.asarray(coords)
    if coords.shape[-1] != 3:
        raise ValueError(f"coords must have a trailing dimension of 3, got shape {coords.shape}")
    if np.issubdtype(coords.dtype, np.signedinteger) or np.issubdtype(coords.dtype, np.floating):
        if coords.size and np.any(coords < 0):
            raise ValueError("morton_hash requires non-negative coordinates")
    codes = morton_encode_3d(coords[..., 0], coords[..., 1], coords[..., 2])
    return _mod_table(codes, table_size)


def _mod_table(codes: NDArray[Any], table_size: int) -> NDArray[Any]:
    """``codes % table_size`` as int64, via a mask when ``T`` is a power of two."""
    if table_size & (table_size - 1) == 0:
        return (codes & np.uint64(table_size - 1)).astype(np.int64)
    return (codes % np.uint64(table_size)).astype(np.int64)
