"""Point streaming orders (paper Sec. III-B).

iNGP processes the randomly selected pixels of a batch in an arbitrary
order, so consecutive points rarely share a surrounding cube and almost
every lookup misses the accelerator's local registers.  Instant-NeRF instead
streams the points of one ray before moving to the next ray ("ray-first
point streaming order"): neighbouring points along a ray frequently fall in
the same cube at coarse levels (Fig. 7(a)), so their eight embeddings are
already present in the local registers, and at finer levels the cubes are at
least adjacent, which the Morton hash turns into adjacent table entries.

This module provides the two orders, the cube-sharing statistics of
Fig. 7(a) and the effective-memory-bandwidth model of Fig. 7(b).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..nerf.encoding import HashGridConfig
from ..streams.ir import RequestStream
from .hashing import HashFunction

__all__ = [
    "StreamingOrder",
    "point_order",
    "cube_ids",
    "points_sharing_same_cube",
    "register_hit_rate",
    "memory_requests_for_stream",
    "memory_requests_for_stream_reference",
    "row_requests_from_corner_indices",
    "row_requests_for_stream",
    "stream_sharing_run_length",
    "stream_register_hit_rate",
    "effective_bandwidth_improvement",
    "LocalityReport",
]


class StreamingOrder(Enum):
    """How the points of a training batch are streamed into the accelerator."""

    RANDOM = "random"        # iNGP default: random point order
    RAY_FIRST = "ray_first"  # Instant-NeRF: all points of a ray, then the next ray


def point_order(
    num_rays: int,
    points_per_ray: int,
    order: StreamingOrder,
    rng: np.random.Generator | None = None,
) -> NDArray[Any]:
    """Permutation over the flattened ``(num_rays * points_per_ray,)`` point axis.

    Points are assumed to be laid out ray-major (all samples of ray 0, then
    ray 1, ...), which is how :func:`repro.workloads.traces.generate_batch_points`
    produces them.  ``RAY_FIRST`` therefore is the identity permutation and
    ``RANDOM`` is a uniform shuffle.
    """
    if num_rays <= 0 or points_per_ray <= 0:
        raise ValueError("num_rays and points_per_ray must be positive")
    total = num_rays * points_per_ray
    if order is StreamingOrder.RAY_FIRST:
        return np.arange(total, dtype=np.int64)
    rng = rng or np.random.default_rng(0)
    return rng.permutation(total).astype(np.int64)


def cube_ids(points: NDArray[Any], resolution: int) -> NDArray[Any]:
    """Integer id of the cube containing each point at a given resolution.

    This is the NeRF front-end's reuse-group id: consecutive points with the
    same cube id gather identical corner entries, which is exactly what the
    IR's ``group_ids`` field carries downstream.
    """
    pts = np.clip(np.asarray(points, dtype=np.float64).reshape(-1, 3), 0.0, 1.0)
    base = np.clip(np.floor(pts * resolution).astype(np.int64), 0, resolution - 1)
    return base[:, 0] + resolution * (base[:, 1] + resolution * base[:, 2])


def points_sharing_same_cube(
    points: NDArray[Any], resolution: int, order: NDArray[Any] | None = None
) -> float:
    """Average run length of consecutive points that fall in the same cube.

    This is the Fig. 7(a) metric: for the ray-first order at coarse levels a
    dozen or more consecutive points share one cube; after a random shuffle
    the average run length collapses towards 1.
    """
    ids = cube_ids(points, resolution)
    if order is not None:
        ids = ids[order]
    if ids.size == 0:
        return 0.0
    change = np.nonzero(np.diff(ids) != 0)[0]
    num_runs = change.size + 1
    return float(ids.size / num_runs)


def register_hit_rate(
    points: NDArray[Any], resolution: int, order: NDArray[Any] | None = None
) -> float:
    """Fraction of points whose cube embeddings are already in local registers.

    A point "hits" when the previous streamed point used the same cube, so
    its eight embeddings need no new memory request.
    """
    ids = cube_ids(points, resolution)
    if order is not None:
        ids = ids[order]
    if ids.size <= 1:
        return 0.0
    hits = np.sum(np.diff(ids) == 0)
    return float(hits / (ids.size - 1))


def _stream_bases_and_cubes(
    points: NDArray[Any],
    level: int,
    grid_config: HashGridConfig,
    order: NDArray[Any] | None,
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Per-point cube base vertices ``(N, 3)`` and cube ids ``(N,)`` in stream order."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    if order is not None:
        pts = pts[order]
    res = grid_config.resolutions[level]
    scaled = np.clip(pts, 0.0, 1.0) * res
    base = np.clip(np.floor(scaled).astype(np.int64), 0, res - 1)
    cube_ids = base[:, 0] + res * (base[:, 1] + res * base[:, 2])
    return base, cube_ids


def _rows_for_bases(
    base: NDArray[Any],
    level: int,
    grid_config: HashGridConfig,
    hash_fn: HashFunction,
    row_bytes: int,
    entry_bytes: int,
) -> NDArray[Any]:
    """DRAM row id of each of the 8 corner lookups per cube base, shape (N, 8)."""
    res = grid_config.resolutions[level]
    table_entries = grid_config.level_table_entries(level)
    entries_per_row = max(1, row_bytes // entry_bytes)
    if grid_config.level_uses_hash(level):
        idx = hash_fn.corner_hashes(base, table_entries)
    else:
        from .hashing import DenseGridIndexer

        idx = DenseGridIndexer(res).corner_hashes(base, table_entries)
    if entries_per_row & (entries_per_row - 1) == 0:
        return idx >> (int(entries_per_row).bit_length() - 1)
    return idx // entries_per_row


def memory_requests_for_stream(
    points: NDArray[Any],
    level: int,
    grid_config: HashGridConfig,
    hash_fn: HashFunction,
    order: NDArray[Any] | None = None,
    row_bytes: int = 1024,
    entry_bytes: int = 4,
) -> int:
    """Number of DRAM row requests needed to stream one level's lookups.

    Points are processed in stream order; a row request is needed whenever a
    cube-corner lookup touches a row that is not already held from the
    previous point (a single-row "register" reuse window, matching the
    row-buffer-sized r0 register of the microarchitecture).  Points whose
    cube is identical to the previous point's cube are register hits and
    need no request at all.

    Vectorized as run-length/row-set accounting: only the first point of each
    same-cube run is charged (so only run starts are even hashed — register
    hits never reach memory), and a run start's cost is the number of
    distinct rows it touches that the previous charged point did not.
    Equivalent to :func:`memory_requests_for_stream_reference` (the retained
    loop oracle).
    """
    base, cube_ids = _stream_bases_and_cubes(points, level, grid_config, order)
    if cube_ids.size == 0:
        return 0
    # Keep only the first point of every run of identical consecutive cubes;
    # the rest are register hits and issue no request (and need no hashing).
    keep = np.ones(cube_ids.size, dtype=bool)
    keep[1:] = np.diff(cube_ids) != 0
    rows = _rows_for_bases(base[keep], level, grid_config, hash_fn, row_bytes, entry_bytes)
    return _count_row_requests(rows)


def _count_row_requests(rows: NDArray[Any]) -> int:
    """Row requests for a stream of per-point row ids ``(M, P)`` (run starts only)."""
    if rows.size == 0:
        return 0
    kept = np.sort(rows, axis=1)  # (M, P), sorted per point
    # First occurrence of each distinct row within a point's P lookups.
    first = np.ones(kept.shape, dtype=bool)
    first[:, 1:] = np.diff(kept, axis=1) != 0
    requests = int(first[0].sum())
    if kept.shape[0] > 1:
        # Rows of point i already held from point i-1: a P-way membership
        # test, accumulated one previous-access column at a time to avoid
        # materializing the full (M, P, P) comparison cube.
        cur, prev = kept[1:], kept[:-1]
        held = cur == prev[:, :1]
        for k in range(1, kept.shape[1]):
            held |= cur == prev[:, k : k + 1]
        requests += int((first[1:] & ~held).sum())
    return requests


def row_requests_for_stream(stream: RequestStream, row_bytes: int = 1024) -> int:
    """DRAM row requests needed to service a :class:`RequestStream`.

    The IR-native form of the row-request accounting shared by every
    front-end: only the reuse-group run starts of the stream are charged
    (the single-point register window — the rest gather from registers),
    and a charged point costs the number of distinct rows it touches that
    the previous charged point did not.  Row ids come from the stream's own
    ``entry_bytes``, so precision flows into row granularity automatically.
    """
    if stream.num_points == 0:
        return 0
    kept = stream.indices[stream.run_starts()]
    entries_per_row = max(1, row_bytes // stream.entry_bytes)
    if entries_per_row & (entries_per_row - 1) == 0:
        rows = kept >> (int(entries_per_row).bit_length() - 1)
    else:
        rows = kept // entries_per_row
    return _count_row_requests(rows)


def stream_sharing_run_length(stream: RequestStream) -> float:
    """Average run length of consecutive points in the same reuse group.

    The IR form of :func:`points_sharing_same_cube`: identical on the NeRF
    front-end (where ``group_ids`` are cube ids) and meaningful for any
    other front-end that marks reuse groups.
    """
    if stream.num_points == 0:
        return 0.0
    return float(stream.num_points / int(stream.run_starts().sum()))


def stream_register_hit_rate(stream: RequestStream) -> float:
    """Fraction of points whose entries are already in local registers.

    The IR form of :func:`register_hit_rate`: a point hits when it belongs
    to the same reuse group as the previous streamed point.
    """
    if stream.num_points <= 1:
        return 0.0
    hits = stream.num_points - int(stream.run_starts().sum())
    return float(hits / (stream.num_points - 1))


def row_requests_from_corner_indices(
    points: NDArray[Any],
    corner_indices: NDArray[Any],
    level: int,
    grid_config: HashGridConfig,
    order: NDArray[Any] | None = None,
    row_bytes: int = 1024,
    entry_bytes: int = 4,
) -> int:
    """Deprecated ndarray shim for :func:`row_requests_for_stream`.

    ``corner_indices`` is the ``(N, 8)`` table-index array of
    :func:`repro.workloads.traces.level_lookup_indices` for the *unpermuted*
    ray-major point layout; ``order`` permutes points exactly as in
    :func:`memory_requests_for_stream`.  Build a :class:`RequestStream`
    (``group_ids`` = cube ids in stream order) and call
    :func:`row_requests_for_stream` instead; this wrapper does exactly that
    and will be removed after one release.
    """
    warnings.warn(
        "row_requests_from_corner_indices() is deprecated; build a "
        "repro.streams.RequestStream (group_ids = cube ids) and call "
        "row_requests_for_stream() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    _, ids = _stream_bases_and_cubes(points, level, grid_config, order)
    indices = np.asarray(corner_indices)
    if indices.ndim != 2 or indices.shape[1] != 8 or indices.shape[0] != ids.size:
        raise ValueError(
            f"corner_indices must have shape ({ids.size}, 8), got {indices.shape}"
        )
    if order is not None:
        indices = indices[order]
    stream = RequestStream(
        indices=indices,
        entry_bytes=entry_bytes,
        table_entries=grid_config.level_table_entries(level),
        group_ids=ids,
        source="core.streaming",
        label=f"level={level}",
    )
    return row_requests_for_stream(stream, row_bytes=row_bytes)


def memory_requests_for_stream_reference(
    points: NDArray[Any],
    level: int,
    grid_config: HashGridConfig,
    hash_fn: HashFunction,
    order: NDArray[Any] | None = None,
    row_bytes: int = 1024,
    entry_bytes: int = 4,
) -> int:
    """Per-point loop oracle for :func:`memory_requests_for_stream`.

    Kept as the reference implementation the vectorized path is tested
    against; do not use on paper-scale inputs.  Hashes the expanded corner
    vertices through the hash function's plain ``__call__`` so it stays
    independent of the incremental ``corner_hashes`` specializations used by
    the fast path.
    """
    base, cube_ids = _stream_bases_and_cubes(points, level, grid_config, order)
    res = grid_config.resolutions[level]
    table_entries = grid_config.level_table_entries(level)
    entries_per_row = max(1, row_bytes // entry_bytes)
    offsets = np.array([[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.int64)
    corners = base[:, None, :] + offsets[None, :, :]
    if grid_config.level_uses_hash(level):
        idx = hash_fn(corners.reshape(-1, 3), table_entries).reshape(-1, 8)
    else:
        from .hashing import DenseGridIndexer

        idx = DenseGridIndexer(res)(corners.reshape(-1, 3), table_entries).reshape(-1, 8)
    rows = idx // entries_per_row
    requests = 0
    previous_rows: set[int] = set()
    previous_cube = None
    for i in range(rows.shape[0]):
        if previous_cube is not None and cube_ids[i] == previous_cube:
            continue  # register hit: embeddings already loaded
        current_rows = set(int(r) for r in rows[i])
        requests += len(current_rows - previous_rows)
        previous_rows = current_rows
        previous_cube = cube_ids[i]
    return requests


@dataclass(frozen=True)
class LocalityReport:
    """Per-level locality comparison between a baseline and Instant-NeRF."""

    level: int
    baseline_requests: int
    optimized_requests: int
    sharing_run_length: float
    register_hit_rate: float

    @property
    def effective_bandwidth_improvement(self) -> float:
        """Fewer row requests for the same useful data = proportionally higher
        effective bandwidth (Fig. 7(b))."""
        if self.optimized_requests == 0:
            return float("inf")
        return self.baseline_requests / self.optimized_requests


def effective_bandwidth_improvement(
    points: NDArray[Any],
    grid_config: HashGridConfig,
    baseline_hash: HashFunction,
    optimized_hash: HashFunction,
    num_rays: int,
    points_per_ray: int,
    rng: np.random.Generator | None = None,
) -> list[LocalityReport]:
    """Fig. 7: per-level locality gain of Morton hashing + ray-first streaming.

    The baseline uses the original hash with a random point order; the
    optimized configuration uses the locality-sensitive hash with the
    ray-first order.  Both stream the *same* sampled points.
    """
    rng = rng or np.random.default_rng(0)
    random_order = point_order(num_rays, points_per_ray, StreamingOrder.RANDOM, rng)
    ray_order = point_order(num_rays, points_per_ray, StreamingOrder.RAY_FIRST)
    reports = []
    for level in range(grid_config.num_levels):
        res = grid_config.resolutions[level]
        baseline = memory_requests_for_stream(
            points, level, grid_config, baseline_hash, random_order
        )
        optimized = memory_requests_for_stream(
            points, level, grid_config, optimized_hash, ray_order
        )
        reports.append(
            LocalityReport(
                level=level,
                baseline_requests=baseline,
                optimized_requests=optimized,
                sharing_run_length=points_sharing_same_cube(points, res, ray_order),
                register_hit_rate=register_hit_rate(points, res, ray_order),
            )
        )
    return reports
