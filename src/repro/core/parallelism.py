"""Heterogeneous inter-bank parallelism design (paper Sec. IV-C, Fig. 10).

Two classical options exist for spreading a step over the banks of a die:

* **data parallelism** — every bank holds a copy of the parameters and
  processes a slice of the batch;
* **parameter parallelism** — every bank holds a slice of the parameters and
  all banks see the whole batch.

Because inter-bank transfers ride the narrow shared I/O path, the right
choice per step is the one that duplicates/moves the *smaller* object.  The
paper's heterogeneous plan uses parameter parallelism for HT/HT_b (the hash
table is large, the point stream is small) and data parallelism for
MLP/MLP_b (the MLP weights are tiny, the activations are large), and
classifies all inter-bank traffic into four categories (Fig. 10).

This module computes, for any plan, the per-category inter-bank movement in
bytes — the quantity the design minimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..workloads.steps import INGPWorkloadModel

__all__ = [
    "ParallelismKind",
    "MovementCategory",
    "StepPlan",
    "ParallelismPlan",
    "InterBankTraffic",
    "heterogeneous_plan",
    "all_data_parallel_plan",
    "all_parameter_parallel_plan",
    "analyze_plan",
]


class ParallelismKind(Enum):
    """Inter-bank parallelism applied to one step."""

    DATA = "data"
    PARAMETER = "parameter"


class MovementCategory(Enum):
    """The four causes of inter-bank data movement (Fig. 10)."""

    DUPLICATION = "cat1_duplication"          # parameter/data duplication for parallelism
    SEQUENTIAL_TRANSFER = "cat2_sequential"   # input/output transfer between sequential steps
    INTRA_STEP = "cat3_intra_step"            # intermediate data transfer within a single step
    GRADIENT_PARTIAL_SUM = "cat4_grad_psum"   # parameter-gradient partial-sum transfer


@dataclass(frozen=True)
class StepPlan:
    """Parallelism choice for one (aggregated) step."""

    step: str                       # "HT", "MLP", "MLP_b", "HT_b"
    parallelism: ParallelismKind


@dataclass(frozen=True)
class ParallelismPlan:
    """A complete inter-bank parallelism plan for the four bottleneck steps."""

    name: str
    steps: tuple[StepPlan, ...]

    def kind_for(self, step: str) -> ParallelismKind:
        for plan in self.steps:
            if plan.step == step:
                return plan.parallelism
        raise KeyError(f"step {step!r} not in plan {self.name!r}")


@dataclass(frozen=True)
class InterBankTraffic:
    """Per-category inter-bank data movement (bytes) for one training iteration."""

    per_step: dict[str, dict[MovementCategory, float]]

    def total_bytes(self) -> float:
        return sum(sum(categories.values()) for categories in self.per_step.values())

    def category_total(self, category: MovementCategory) -> float:
        return sum(categories.get(category, 0.0) for categories in self.per_step.values())

    def step_total(self, step: str) -> float:
        return sum(self.per_step[step].values())


def heterogeneous_plan() -> ParallelismPlan:
    """The paper's plan: parameter parallelism for HT/HT_b, data parallelism for MLP/MLP_b."""
    return ParallelismPlan(
        name="heterogeneous",
        steps=(
            StepPlan("HT", ParallelismKind.PARAMETER),
            StepPlan("MLP", ParallelismKind.DATA),
            StepPlan("MLP_b", ParallelismKind.DATA),
            StepPlan("HT_b", ParallelismKind.PARAMETER),
        ),
    )


def all_data_parallel_plan() -> ParallelismPlan:
    """Ablation: data parallelism everywhere (duplicates the 25 MB hash table)."""
    return ParallelismPlan(
        name="all-data-parallel",
        steps=tuple(
            StepPlan(step, ParallelismKind.DATA) for step in ("HT", "MLP", "MLP_b", "HT_b")
        ),
    )


def all_parameter_parallel_plan() -> ParallelismPlan:
    """Ablation: parameter parallelism everywhere (duplicates the activations)."""
    return ParallelismPlan(
        name="all-parameter-parallel",
        steps=tuple(
            StepPlan(step, ParallelismKind.PARAMETER) for step in ("HT", "MLP", "MLP_b", "HT_b")
        ),
    )


def _aggregate_sizes(workload: INGPWorkloadModel) -> dict[str, dict[str, float]]:
    """Table II sizes in *bytes*, aggregated to the paper's four-step granularity."""
    table2 = workload.table2()
    return {
        step: {key.replace("_mb", ""): value * 1024**2 for key, value in sizes.items()}
        for step, sizes in table2.items()
    }


def analyze_plan(
    plan: ParallelismPlan,
    workload: INGPWorkloadModel | None = None,
    num_banks: int = 16,
) -> InterBankTraffic:
    """Inter-bank movement (bytes/iteration) for a plan, by step and category.

    The accounting follows Fig. 10's table:

    * Category 1 (duplication): data parallelism duplicates the step's
      parameters to every bank; parameter parallelism duplicates the step's
      input data to every bank.
    * Category 2 (sequential transfer): when two consecutive steps use
      different parallelism kinds, the producer's output must be
      redistributed across banks before the consumer starts.
    * Category 3 (intra-step): intermediate data crossing banks mid-step —
      zero for every configuration considered (each bank finishes its slice
      locally).
    * Category 4 (gradient partial sums): with data parallelism, each bank
      holds a partial parameter gradient that must be reduced across banks.
    """
    if num_banks <= 0:
        raise ValueError("num_banks must be positive")
    workload = workload or INGPWorkloadModel()
    sizes = _aggregate_sizes(workload)
    order = ["HT", "MLP", "MLP_b", "HT_b"]
    result: dict[str, dict[MovementCategory, float]] = {}

    for i, step in enumerate(order):
        kind = plan.kind_for(step)
        step_sizes = sizes[step]
        categories: dict[MovementCategory, float] = {cat: 0.0 for cat in MovementCategory}

        if kind is ParallelismKind.DATA:
            # Every bank needs a full copy of the parameters (beyond the one
            # bank that already holds them).
            categories[MovementCategory.DUPLICATION] = step_sizes["param"] * (num_banks - 1)
        else:
            # Every bank needs the whole input point stream.
            categories[MovementCategory.DUPLICATION] = step_sizes["input"] * (num_banks - 1)

        if i > 0:
            prev = order[i - 1]
            prev_kind = plan.kind_for(prev)
            # The previous step's output is this step's input.  If the data
            # layout across banks differs (different parallelism kinds, or
            # parameter parallelism where outputs are sharded by level), a
            # redistribution of that tensor is needed.
            if prev_kind is not kind or kind is ParallelismKind.PARAMETER:
                categories[MovementCategory.SEQUENTIAL_TRANSFER] = sizes[prev]["output"]

        if step.endswith("_b") and kind is ParallelismKind.DATA:
            # Gradient partial sums: every bank contributes a full-size
            # parameter gradient that must be reduced.
            categories[MovementCategory.GRADIENT_PARTIAL_SUM] = step_sizes["param"] * (
                num_banks - 1
            )

        result[step] = categories
    return InterBankTraffic(per_step=result)
