"""Pluggable array backend for the hot kernels (``repro.core.xp``).

The module is a thin array-API shim: kernel code does ``from ..core import
xp`` and calls ``xp.empty`` / ``xp.clip`` / ``xp.matmul`` exactly as it would
call ``numpy``.  Attribute access forwards to the *active backend module* —
numpy by default, ``cupy`` (a drop-in numpy API on GPU) or ``torch`` (whose
top-level namespace mirrors the numpy functions these kernels use) when the
package is importable and selected.  No backend other than numpy is ever a
hard dependency: selecting an uninstalled backend raises ``ImportError`` and
leaves the previous backend active.

Selection, in precedence order:

1. :func:`set_backend` at runtime (``set_backend("numpy")``).
2. The ``REPRO_XP`` environment variable, read lazily on first use (and again
   by :func:`reset_backend`).  An empty value means "unset".
3. The default, ``numpy``.

The ``*_reference`` oracle functions throughout the repo intentionally bypass
this shim and call numpy directly, so every backend is pinned to the same
answers by the equivalence tests (lint rule RPR007 enforces the split).
"""

from __future__ import annotations

import importlib
import os
from types import ModuleType
from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "asnumpy",
    "available_backends",
    "backend_module",
    "get_backend",
    "reset_backend",
    "set_backend",
]

#: Environment variable naming the initial backend (e.g. ``REPRO_XP=numpy``).
ENV_VAR = "REPRO_XP"

DEFAULT_BACKEND = "numpy"

#: Backend name -> importable module path.  numpy is always available; the
#: others are optional accelerators resolved only when actually importable.
_BACKEND_MODULES: dict[str, str] = {
    "numpy": "numpy",
    "cupy": "cupy",
    "torch": "torch",
}

_active_name: str | None = None
_active_module: ModuleType | None = None


def available_backends() -> tuple[str, ...]:
    """Backend names importable in this environment (always includes numpy)."""
    names = []
    for name, module_path in sorted(_BACKEND_MODULES.items()):
        if name == DEFAULT_BACKEND or importlib.util.find_spec(module_path) is not None:
            names.append(name)
    return tuple(names)


def _import_backend(name: str) -> ModuleType:
    key = name.strip().lower()
    if key not in _BACKEND_MODULES:
        known = ", ".join(sorted(_BACKEND_MODULES))
        raise ValueError(f"unknown array backend {name!r}; known backends: {known}")
    try:
        return importlib.import_module(_BACKEND_MODULES[key])
    except ImportError as exc:
        raise ImportError(
            f"array backend {key!r} is not importable here ({exc}); "
            f"install it or select one of: {', '.join(available_backends())}"
        ) from exc


def set_backend(name: str) -> str:
    """Activate a backend by name; returns the canonical active name.

    Raises ``ValueError`` for unknown names and ``ImportError`` when the
    backend package is not installed — in both cases the previously active
    backend stays in effect.
    """
    global _active_name, _active_module
    module = _import_backend(name)
    _active_name = name.strip().lower()
    _active_module = module
    return _active_name


def get_backend() -> str:
    """Name of the active backend, initialising from ``REPRO_XP`` on first use."""
    if _active_name is None:
        return reset_backend()
    return _active_name


def reset_backend() -> str:
    """Re-read ``REPRO_XP`` (empty/unset -> numpy) and activate that backend."""
    env = os.environ.get(ENV_VAR, "").strip()
    return set_backend(env or DEFAULT_BACKEND)


def backend_module() -> ModuleType:
    """The module the shim currently forwards to (numpy/cupy/torch)."""
    if _active_module is None:
        reset_backend()
    assert _active_module is not None
    return _active_module


def asnumpy(array: Any) -> NDArray[Any]:
    """Convert a backend array to a host numpy array (no-op for numpy)."""
    module = backend_module()
    if get_backend() == "cupy":  # cupy arrays need an explicit device copy
        converted: NDArray[Any] = module.asnumpy(array)
        return converted
    if get_backend() == "torch" and hasattr(array, "detach"):
        return np.asarray(array.detach().cpu().numpy())
    return np.asarray(array)


def __getattr__(name: str) -> Any:
    """Forward any other attribute (functions, dtypes, submodules) to the backend."""
    return getattr(backend_module(), name)
