"""Hash-table-to-DRAM mapping schemes (paper Sec. IV-B).

Even with the locality-sensitive hash and the ray-first order, random hash
lookups still collide on banks.  The paper's mapping scheme has two parts:

* **Intra-level mapping** — more than half of the remaining bank conflicts
  come from memory requests with *sequential* addresses (neighbouring table
  entries produced exactly because the Morton hash makes neighbours
  adjacent).  Striping sequential addresses across a bank's subarrays lets
  those requests proceed in parallel via subarray-level parallelism.
* **Inter-level mapping** — per-level conflict counts are unbalanced
  (Fig. 9), so levels are clustered into groups (Levels 0-4, 5-8, 9-10, and
  the remaining fine levels individually) and the groups are distributed
  over different banks to balance processing time.

The module maps per-level table indices to (bank, subarray, row) coordinates
and counts conflicts, which feeds both Fig. 9 and the accelerator model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..nerf.encoding import HashGridConfig
from ..streams.ir import TableLayout

__all__ = [
    "IntraLevelPolicy",
    "HashTableMappingConfig",
    "HashTableMapper",
    "BankConflictStats",
    "default_level_groups",
]


class IntraLevelPolicy(Enum):
    """How entries of one level are spread inside their bank."""

    ROW_MAJOR = "row_major"            # naive: consecutive entries fill a subarray before the next
    SUBARRAY_INTERLEAVED = "subarray"  # Instant-NeRF: consecutive rows striped across subarrays


def default_level_groups(num_levels: int) -> list[list[int]]:
    """The paper's inter-level clustering for a 16-level table.

    Levels 0-4, 5-8 and 9-10 form three groups (their tables are small and
    lightly conflicted); every remaining fine level gets its own group.  For
    tables with fewer levels the same proportions are applied.
    """
    if num_levels <= 0:
        raise ValueError("num_levels must be positive")
    if num_levels >= 11:
        groups = [list(range(0, 5)), list(range(5, 9)), list(range(9, 11))]
        groups.extend([[lvl] for lvl in range(11, num_levels)])
        return groups
    # Scaled-down variant: first half in one group, rest individually.
    half = max(1, num_levels // 2)
    groups = [list(range(0, half))]
    groups.extend([[lvl] for lvl in range(half, num_levels)])
    return groups


@dataclass(frozen=True)
class HashTableMappingConfig:
    """Placement of the multi-resolution hash table onto DRAM banks."""

    num_banks: int = 16
    subarrays_per_bank: int = 16
    row_bytes: int = 1024
    entry_bytes: int = 4
    intra_level_policy: IntraLevelPolicy = IntraLevelPolicy.SUBARRAY_INTERLEAVED
    use_inter_level_grouping: bool = True

    def validate(self) -> None:
        if self.num_banks <= 0 or self.subarrays_per_bank <= 0:
            raise ValueError("num_banks and subarrays_per_bank must be positive")
        if self.row_bytes <= 0 or self.entry_bytes <= 0:
            raise ValueError("row_bytes and entry_bytes must be positive")

    @property
    def entries_per_row(self) -> int:
        return max(1, self.row_bytes // self.entry_bytes)


@dataclass
class BankConflictStats:
    """Conflict accounting for one batch of lookups at one level."""

    level: int
    total_requests: int
    bank_conflicts: int
    sequential_conflicts: int
    subarray_resolved: int

    @property
    def conflict_rate(self) -> float:
        return self.bank_conflicts / self.total_requests if self.total_requests else 0.0

    @property
    def sequential_fraction(self) -> float:
        """Fraction of conflicts caused by sequential addresses (paper: >50 %)."""
        return self.sequential_conflicts / self.bank_conflicts if self.bank_conflicts else 0.0


class HashTableMapper:
    """Maps per-level hash-table indices to (bank, subarray, row) and counts conflicts."""

    def __init__(
        self,
        grid_config: TableLayout | None = None,
        mapping: HashTableMappingConfig | None = None,
    ):
        # Any TableLayout works: the mapper only reads num_levels and
        # level_table_entries, so embedding-table banks map like grid levels.
        self.grid = grid_config or HashGridConfig()
        self.config = mapping or HashTableMappingConfig()
        self.config.validate()
        self._level_to_bank = self._assign_levels_to_banks()

    # ----------------------------------------------------------- placement
    def _assign_levels_to_banks(self) -> dict[int, int]:
        """Bank id for each level following the inter-level grouping."""
        num_levels = self.grid.num_levels
        if not self.config.use_inter_level_grouping:
            # Naive placement: level l on bank l mod num_banks.
            return {lvl: lvl % self.config.num_banks for lvl in range(num_levels)}
        groups = default_level_groups(num_levels)
        mapping: dict[int, int] = {}
        for bank, group in enumerate(groups):
            for lvl in group:
                mapping[lvl] = bank % self.config.num_banks
        return mapping

    def bank_of_level(self, level: int) -> int:
        """DRAM bank hosting a level's table (parameter parallelism)."""
        if level not in self._level_to_bank:
            raise ValueError(f"level {level} outside the configured table")
        return self._level_to_bank[level]

    def level_groups(self) -> list[list[int]]:
        """The level clustering in effect."""
        if not self.config.use_inter_level_grouping:
            return [[lvl] for lvl in range(self.grid.num_levels)]
        return default_level_groups(self.grid.num_levels)

    def locate(
        self, level: int, indices: NDArray[Any]
    ) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
        """Map table indices of one level to (bank, subarray, row-within-subarray).

        With ``ROW_MAJOR`` placement, consecutive rows of the level stay in
        the same subarray until it is full; with ``SUBARRAY_INTERLEAVED``
        placement consecutive rows rotate over subarrays, so a burst of
        sequential addresses lands on different subarrays and can be served
        in parallel.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        cfg = self.config
        bank = np.full(indices.shape, self.bank_of_level(level), dtype=np.int64)
        row_linear = indices // cfg.entries_per_row
        level_rows = max(1, -(-self.grid.level_table_entries(level) // cfg.entries_per_row))
        # Ceiling split keeps the linear-row -> (subarray, row) map injective
        # even when level_rows is not divisible by subarrays_per_bank; a floor
        # split with a clamped subarray would alias the overflow rows onto
        # already-occupied (subarray, row) slots.
        rows_per_subarray = max(1, -(-level_rows // cfg.subarrays_per_bank))
        if cfg.intra_level_policy is IntraLevelPolicy.SUBARRAY_INTERLEAVED:
            subarray = row_linear % cfg.subarrays_per_bank
            row_in_subarray = row_linear // cfg.subarrays_per_bank
        else:
            subarray = np.minimum(row_linear // rows_per_subarray, cfg.subarrays_per_bank - 1)
            row_in_subarray = row_linear % rows_per_subarray
        return bank, subarray, row_in_subarray

    # ------------------------------------------------------------ conflicts
    def count_conflicts(
        self, level: int, indices: NDArray[Any], parallel_points: int = 32
    ) -> BankConflictStats:
        """Count bank conflicts for a batch of lookups processed in groups.

        ``parallel_points`` lookups are issued together (the paper processes
        32 points in parallel in HT/HT_b).  Within one group, two requests
        conflict when they target the same bank and subarray but different
        rows; requests to different subarrays proceed in parallel thanks to
        subarray-level parallelism, and requests to the same open row merge.
        A conflict is *sequential* when the conflicting rows are adjacent —
        the class of conflicts the interleaved intra-level mapping removes.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if parallel_points <= 0:
            raise ValueError("parallel_points must be positive")
        bank, subarray, row = self.locate(level, indices)
        n = indices.size
        if n == 0:
            return BankConflictStats(level, 0, 0, 0, 0)
        group = np.arange(n, dtype=np.int64) // parallel_points
        # One segmented pass over (group, bank, subarray, row) replaces the
        # nested per-group/per-key loops: sort, then count segment boundaries.
        order = np.lexsort((row, subarray, bank, group))
        g, b, s, r = group[order], bank[order], subarray[order], row[order]

        new_gb = np.ones(n, dtype=bool)  # first element of each (group, bank) segment
        new_gb[1:] = (g[1:] != g[:-1]) | (b[1:] != b[:-1])
        new_gbs = new_gb.copy()  # first element of each (group, bank, subarray) segment
        new_gbs[1:] |= s[1:] != s[:-1]
        new_gbsr = new_gbs.copy()  # first occurrence of each distinct row in its segment
        new_gbsr[1:] |= r[1:] != r[:-1]

        # Each (group, bank, subarray) segment serializes its distinct rows:
        # conflicts = distinct rows - 1, summed over segments.
        conflicts = int(new_gbsr.sum() - new_gbs.sum())
        # Sequential conflicts: adjacent distinct rows (gap of 1) in a segment.
        ur = r[new_gbsr]
        same_segment = ~new_gbs[new_gbsr][1:]
        sequential = int(np.sum(same_segment & (np.diff(ur) == 1)))
        # Subarray-level parallelism resolves one serialization per extra
        # subarray hit within a (group, bank): distinct subarrays - 1, summed.
        resolved = int(new_gbs.sum() - new_gb.sum())
        return BankConflictStats(
            level=level,
            total_requests=n,
            bank_conflicts=conflicts,
            sequential_conflicts=sequential,
            subarray_resolved=resolved,
        )

    def count_conflicts_reference(
        self, level: int, indices: NDArray[Any], parallel_points: int = 32
    ) -> BankConflictStats:
        """Nested-loop oracle for :meth:`count_conflicts`.

        Kept as the reference implementation the lexsort-based segmented
        version is tested against; do not use on paper-scale inputs.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if parallel_points <= 0:
            raise ValueError("parallel_points must be positive")
        bank, subarray, row = self.locate(level, indices)
        conflicts = 0
        sequential = 0
        resolved = 0
        total_requests = 0
        group_size = parallel_points
        for start in range(0, indices.size, group_size):
            g_bank = bank[start : start + group_size]
            g_sub = subarray[start : start + group_size]
            g_row = row[start : start + group_size]
            total_requests += g_bank.size
            # Requests to the same (bank, subarray): serialized unless same row.
            keys = g_bank * (self.config.subarrays_per_bank + 1) + g_sub
            for key in np.unique(keys):
                mask = keys == key
                rows_here = g_row[mask]
                unique_rows = np.unique(rows_here)
                extra = unique_rows.size - 1
                if extra > 0:
                    conflicts += extra
                    gaps = np.diff(np.sort(unique_rows))
                    sequential += int(np.sum(gaps == 1))
            # Conflicts avoided because different subarrays of the same bank
            # were hit in parallel.
            for b in np.unique(g_bank):
                bank_mask = g_bank == b
                subarrays_hit = np.unique(g_sub[bank_mask]).size
                resolved += max(0, subarrays_hit - 1)
        return BankConflictStats(
            level=level,
            total_requests=total_requests,
            bank_conflicts=conflicts,
            sequential_conflicts=sequential,
            subarray_resolved=resolved,
        )
