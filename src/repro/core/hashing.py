"""Hash mapping functions for the multi-resolution hash encoding.

iNGP maps integer grid-vertex coordinates to hash-table indices with a
prime-XOR spatial hash; Instant-NeRF replaces it with a locality-sensitive
Morton-code hash (see :mod:`repro.core.morton`).  This module provides a
small class hierarchy so the encoding, the workload-trace generators and the
accelerator model can all be parameterised by the hash function, plus the
locality statistics the paper uses to motivate the change:

* the index-distance breakdown between neighbouring cube vertices (Fig. 6),
* the average number of DRAM row requests needed per 3D cube (the paper's
  1.58 vs 4.02 statistic in Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

import numpy as np
from numpy.typing import NDArray

from . import xp
from .morton import _mod_table, morton_corner_codes, morton_encode_3d, morton_hash

__all__ = [
    "HashFunction",
    "OriginalSpatialHash",
    "MortonLocalityHash",
    "DenseGridIndexer",
    "cube_vertex_offsets",
    "cube_vertices",
    "index_distance_breakdown",
    "average_row_requests_per_cube",
    "average_row_requests_per_cube_reference",
    "IndexDistanceStats",
    "DISTANCE_BIN_EDGES",
    "DISTANCE_BIN_LABELS",
    "HASH_FUNCTIONS",
    "get_hash_function",
]

# iNGP's per-dimension hashing primes (the first is 1 so that the x0
# coordinate passes through unchanged, as in the reference implementation).
INGP_PRIMES = (1, 2_654_435_761, 805_459_861)


def cube_vertex_offsets() -> NDArray[Any]:
    """The eight ``(dx, dy, dz)`` corner offsets of a unit cube, shape (8, 3)."""
    offsets = xp.array(
        [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)],
        dtype=np.int64,
    )
    return offsets


def cube_vertices(base_coords: NDArray[Any]) -> NDArray[Any]:
    """Expand base (lower-corner) vertices into the 8 cube-corner vertices.

    Parameters
    ----------
    base_coords:
        Integer array of shape ``(N, 3)`` holding the lower corner of each
        cube.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, 8, 3)``.
    """
    base = xp.asarray(base_coords, dtype=np.int64)
    if base.ndim != 2 or base.shape[1] != 3:
        raise ValueError(f"base_coords must have shape (N, 3), got {base.shape}")
    return base[:, None, :] + cube_vertex_offsets()[None, :, :]


class HashFunction:
    """Maps integer 3D vertex coordinates to hash-table indices in ``[0, T)``."""

    #: human-readable name used in experiment tables
    name: str = "abstract"

    def __call__(self, coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        raise NotImplementedError

    def corner_hashes(self, base_coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        """Table indices of all 8 cube corners per base vertex, shape ``(N, 8)``.

        Semantically identical to expanding :func:`cube_vertices` and calling
        the hash on the flattened corners; concrete hashes override this with
        incremental formulations that reuse the base computation instead of
        re-hashing every corner from scratch (the hot path of the streaming
        and row-request statistics).
        """
        verts = cube_vertices(base_coords)  # (N, 8, 3)
        return self(verts.reshape(-1, 3), table_size).reshape(verts.shape[0], 8)


class OriginalSpatialHash(HashFunction):
    """iNGP's prime-multiplication XOR spatial hash.

    ``h(x) = (x0 * pi_0 XOR x1 * pi_1 XOR x2 * pi_2) mod T`` with the primes
    of the reference implementation.  Neighbouring vertices are scattered
    essentially uniformly over the table, which is exactly the locality
    problem Instant-NeRF addresses.
    """

    name = "ingp-prime-xor"

    def __init__(self, primes: tuple[int, int, int] = INGP_PRIMES):
        self.primes = tuple(int(p) for p in primes)
        if len(self.primes) != 3:
            raise ValueError("exactly three primes are required")

    def __call__(self, coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        coords = xp.asarray(coords, dtype=np.uint64)
        if coords.shape[-1] != 3:
            raise ValueError(f"coords must have a trailing dim of 3, got {coords.shape}")
        acc = coords[..., 0] * np.uint64(self.primes[0])
        acc = acc ^ (coords[..., 1] * np.uint64(self.primes[1]))
        acc = acc ^ (coords[..., 2] * np.uint64(self.primes[2]))
        return _mod_table(acc, table_size)

    def corner_hashes(self, base_coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        # (x + dx) * p == x * p + dx * p with uint64 wraparound, so the three
        # per-axis products are computed once and each corner is two XORs.
        base = xp.asarray(base_coords, dtype=np.uint64)
        if base.ndim != 2 or base.shape[1] != 3:
            raise ValueError(f"base_coords must have shape (N, 3), got {base.shape}")
        primes = [np.uint64(p) for p in self.primes]
        products = [base[:, a] * primes[a] for a in range(3)]
        axis = [(products[a], products[a] + primes[a]) for a in range(3)]
        out = xp.empty((base.shape[0], 8), dtype=np.uint64)
        for m in range(8):
            i, j, k = (m >> 2) & 1, (m >> 1) & 1, m & 1
            out[:, m] = axis[0][i] ^ axis[1][j] ^ axis[2][k]
        return _mod_table(out, table_size)


class MortonLocalityHash(HashFunction):
    """Instant-NeRF's locality-sensitive Morton-code hash (paper Eq. (2))."""

    name = "morton-locality"

    def __call__(self, coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        return morton_hash(coords, table_size)

    def corner_hashes(self, base_coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        # One bit-interleave of the base plus masked increments in Morton
        # space replaces eight full interleaves (see morton_corner_codes).
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        base = xp.asarray(base_coords)
        if base.ndim != 2 or base.shape[1] != 3:
            raise ValueError(f"base_coords must have shape (N, 3), got {base.shape}")
        if np.issubdtype(base.dtype, np.signedinteger) or np.issubdtype(base.dtype, np.floating):
            if base.size and xp.any(base < 0):
                raise ValueError("morton_hash requires non-negative coordinates")
        codes = morton_corner_codes(morton_encode_3d(base[:, 0], base[:, 1], base[:, 2]))
        return _mod_table(codes, table_size)


class DenseGridIndexer(HashFunction):
    """Row-major dense indexing used for coarse levels where the grid fits.

    iNGP only hashes levels whose grid has more vertices than ``T``; coarser
    levels index the table directly.  Both hash functions defer to this
    indexer through :class:`repro.nerf.encoding.HashGridEncoding`.
    """

    name = "dense"

    def __init__(self, resolution: int):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = int(resolution)

    def __call__(self, coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        coords = xp.asarray(coords, dtype=np.int64)
        r = self.resolution + 1  # vertices per axis
        idx = coords[..., 0] + r * (coords[..., 1] + r * coords[..., 2])
        return (idx % table_size).astype(np.int64)

    def corner_hashes(self, base_coords: NDArray[Any], table_size: int) -> NDArray[Any]:
        # Row-major indexing is affine, so each corner is the base index plus
        # a constant stride (1, r, or r*r per incremented axis).
        base = xp.asarray(base_coords, dtype=np.int64)
        if base.ndim != 2 or base.shape[1] != 3:
            raise ValueError(f"base_coords must have shape (N, 3), got {base.shape}")
        r = self.resolution + 1
        linear = base[:, 0] + r * (base[:, 1] + r * base[:, 2])
        strides = xp.array(
            [i * 1 + j * r + k * r * r for i in (0, 1) for j in (0, 1) for k in (0, 1)],
            dtype=np.int64,
        )
        return ((linear[:, None] + strides[None, :]) % table_size).astype(np.int64)


#: Hash-function constructors addressable by name from configuration files,
#: sweep grids and the CLI.  Short names and the instances' own ``name``
#: attributes are both accepted.
HASH_FUNCTIONS: dict[str, type[HashFunction]] = {
    "morton": MortonLocalityHash,
    "original": OriginalSpatialHash,
    MortonLocalityHash.name: MortonLocalityHash,
    OriginalSpatialHash.name: OriginalSpatialHash,
}


def get_hash_function(name: str) -> HashFunction:
    """Instantiate a registered hash function by name (``morton``/``original``)."""
    key = name.strip().lower()
    try:
        return HASH_FUNCTIONS[key]()
    except KeyError:
        known = ", ".join(sorted(HASH_FUNCTIONS))
        raise KeyError(f"unknown hash function {name!r}; available: {known}") from None


# Bin edges used in Fig. 6 of the paper (index distance between two
# neighbouring vertices of one 3D cube).
DISTANCE_BIN_EDGES = (0, 4, 16, 256, 5000)
DISTANCE_BIN_LABELS = ("1~4", "4~16", "16~256", "256~5000", ">5000")


@dataclass
class IndexDistanceStats:
    """Result of :func:`index_distance_breakdown`.

    Attributes
    ----------
    fractions:
        Mapping from a Fig. 6 bin label to the fraction of neighbouring
        vertex pairs whose hash-index distance falls in the bin.
    mean_distance:
        Mean absolute index distance over all neighbouring pairs.
    fraction_leq_16:
        Convenience shortcut: fraction of pairs with distance <= 16.
    fraction_gt_5000:
        Fraction of pairs with distance > 5000.
    """

    fractions: dict[str, float] = field(default_factory=dict)
    mean_distance: float = 0.0
    fraction_leq_16: float = 0.0
    fraction_gt_5000: float = 0.0


def _neighbor_pairs() -> NDArray[Any]:
    """Pairs of cube-corner indices that differ in exactly one coordinate."""
    offsets = cube_vertex_offsets()
    pairs = []
    for a in range(8):
        for b in range(a + 1, 8):
            if xp.abs(offsets[a] - offsets[b]).sum() == 1:
                pairs.append((a, b))
    return xp.array(pairs, dtype=np.int64)


def index_distance_breakdown(
    hash_fn: HashFunction,
    base_coords: NDArray[Any],
    table_size: int,
) -> IndexDistanceStats:
    """Fig. 6: index-distance breakdown between neighbouring cube vertices.

    For each cube, the 12 pairs of edge-adjacent vertices are hashed and the
    absolute difference of their table indices is histogrammed into the
    paper's five bins.

    Parameters
    ----------
    hash_fn:
        The hash mapping function under study.
    base_coords:
        ``(N, 3)`` lower-corner vertex coordinates of the sampled cubes.
    table_size:
        Number of entries per hash-table level, ``T``.
    """
    verts = cube_vertices(base_coords)  # (N, 8, 3)
    idx = hash_fn(verts.reshape(-1, 3), table_size).reshape(verts.shape[0], 8)
    pairs = _neighbor_pairs()  # (12, 2)
    dist = xp.abs(idx[:, pairs[:, 0]] - idx[:, pairs[:, 1]]).ravel().astype(np.float64)
    # Distances of zero (same entry) count in the smallest bin.
    edges = list(DISTANCE_BIN_EDGES) + [np.inf]
    fractions: dict[str, float] = {}
    total = dist.size
    for label, lo, hi in zip(DISTANCE_BIN_LABELS, edges[:-1], edges[1:]):
        if lo == 0:
            mask = dist <= hi
        else:
            mask = (dist > lo) & (dist <= hi)
        fractions[label] = float(mask.sum()) / total
    return IndexDistanceStats(
        fractions=fractions,
        mean_distance=float(dist.mean()),
        fraction_leq_16=float((dist <= 16).mean()),
        fraction_gt_5000=float((dist > 5000).mean()),
    )


def average_row_requests_per_cube(
    hash_fn: HashFunction,
    base_coords: NDArray[Any],
    table_size: int,
    row_bytes: int = 1024,
    entry_bytes: int = 4,
) -> float:
    """Average number of DRAM row requests to fetch one cube's 8 embeddings.

    Memory requests use row-wise granularity (1 KB rows by default) while a
    hash-table entry is only ``entry_bytes`` wide, so the number of requests
    per cube equals the number of *distinct rows* touched by the 8 vertex
    indices.  The paper reports 1.58 requests/cube for the Morton hash vs
    4.02 for the original design (Sec. III-A).
    """
    if row_bytes <= 0 or entry_bytes <= 0:
        raise ValueError("row_bytes and entry_bytes must be positive")
    entries_per_row = max(1, row_bytes // entry_bytes)
    base = xp.asarray(base_coords, dtype=np.int64)
    if base.shape[0] == 0:
        return 0.0
    idx = hash_fn.corner_hashes(base, table_size)
    rows = xp.sort(idx // entries_per_row, axis=1)
    distinct = 1 + xp.count_nonzero(xp.diff(rows, axis=1), axis=1)
    return float(distinct.mean())


def average_row_requests_per_cube_reference(
    hash_fn: HashFunction,
    base_coords: NDArray[Any],
    table_size: int,
    row_bytes: int = 1024,
    entry_bytes: int = 4,
) -> float:
    """Per-cube ``np.unique`` loop oracle for :func:`average_row_requests_per_cube`.

    Kept as the reference implementation the vectorized per-axis-sort version
    is tested against; do not use on paper-scale inputs.
    """
    if row_bytes <= 0 or entry_bytes <= 0:
        raise ValueError("row_bytes and entry_bytes must be positive")
    entries_per_row = max(1, row_bytes // entry_bytes)
    verts = cube_vertices(base_coords)
    if verts.shape[0] == 0:
        return 0.0
    idx = hash_fn(verts.reshape(-1, 3), table_size).reshape(verts.shape[0], 8)
    rows = idx // entries_per_row
    unique_counts = np.array([len(np.unique(r)) for r in rows], dtype=np.float64)
    return float(unique_counts.mean())
