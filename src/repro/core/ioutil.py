"""Atomic file-write primitive shared by artifact writers and the store.

One copy of the subtle part — temp file in the destination directory,
``os.replace`` into place, cleanup on failure — so a future hardening (e.g.
fsync before rename) lands everywhere at once.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically write ``data`` to ``path``, creating parent directories.

    The bytes land in a temporary file in the destination directory and are
    renamed into place, so readers never observe a truncated file and
    concurrent writers of identical content race benignly (last rename
    wins).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
