"""The precision (dtype) axis shared by the executed kernels and the models.

Every precision has a short name (``fp64``/``fp32``/``fp16``/``int8``) that
flows through frozen configs into the canonical keys of the memoizing
context and the artifact store, and three derived facts:

* :func:`dtype_bytes` — bytes per stored scalar, which the *modeled* memory
  system turns into hash-table entry widths, DRAM/SRAM traffic and MLP
  activation bytes;
* :func:`storage_dtype` — the numpy dtype parameters are stored in by the
  *executed* kernels (``int8`` stores quantized table entries);
* :func:`compute_dtype` — the numpy dtype kernels compute in (``int8``
  tables are dequantized to float32 on gather).

``int8`` table entries use an affine quantization: an 8-bit code ``q`` in
``[-128, 127]`` maps back to ``(q + 128) * scale + zero_point`` where
``zero_point`` is the real value of code ``-128`` (the table minimum).  The
reconstruction error is bounded by ``scale / 2`` per entry, and constant
tables round-trip exactly.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "PRECISIONS",
    "FLOAT_PRECISIONS",
    "compute_dtype",
    "dequantize_int8",
    "dtype_bytes",
    "entry_bytes",
    "quantize_int8",
    "storage_dtype",
    "validate_precision",
]

#: Every precision of the dtype axis, widest first.
PRECISIONS: tuple[str, ...] = ("fp64", "fp32", "fp16", "int8")

#: Precisions kernels can train in (int8 tables are inference-only).
FLOAT_PRECISIONS: tuple[str, ...] = ("fp64", "fp32", "fp16")

_DTYPE_BYTES: dict[str, int] = {"fp64": 8, "fp32": 4, "fp16": 2, "int8": 1}

_STORAGE_DTYPES: dict[str, type] = {
    "fp64": np.float64,
    "fp32": np.float32,
    "fp16": np.float16,
    "int8": np.int8,
}

_COMPUTE_DTYPES: dict[str, type] = {
    "fp64": np.float64,
    "fp32": np.float32,
    "fp16": np.float16,
    "int8": np.float32,  # dequantized-gather compute precision
}

#: Number of representable int8 steps between table minimum and maximum.
_INT8_STEPS = 255
_INT8_OFFSET = 128  # shifts [-128, 127] codes onto [0, 255] step counts


def validate_precision(name: str, allowed: tuple[str, ...] = PRECISIONS) -> str:
    """Check a precision name against the axis; returns it unchanged."""
    if name not in allowed:
        raise ValueError(f"unknown precision {name!r}; expected one of {', '.join(allowed)}")
    return name


def dtype_bytes(name: str) -> int:
    """Bytes per stored scalar of a named precision."""
    return _DTYPE_BYTES[validate_precision(name)]


def entry_bytes(name: str, features_per_entry: int = 1) -> int:
    """Bytes of one table entry: ``features_per_entry`` scalars at ``name`` width.

    The single home of the dtype -> entry-width rule every table-shaped
    config (hash-grid entries, trace entries, embedding rows) derives its
    ``entry_bytes`` from.  Sub-byte products (e.g. a single int8 feature
    packed below one byte by a hypothetical narrower dtype) clamp to 1 byte,
    the smallest addressable unit of the modeled memory system.
    """
    if features_per_entry <= 0:
        raise ValueError(f"features_per_entry must be positive, got {features_per_entry}")
    return max(1, features_per_entry * dtype_bytes(name))


def storage_dtype(name: str) -> Any:
    """numpy dtype parameters of this precision are stored in."""
    return _STORAGE_DTYPES[validate_precision(name)]


def compute_dtype(name: str) -> Any:
    """numpy dtype kernels compute in at this precision."""
    return _COMPUTE_DTYPES[validate_precision(name)]


def quantize_int8(values: NDArray[Any]) -> tuple[NDArray[np.int8], float, float]:
    """Affine int8 quantization of an array; returns ``(codes, scale, zero_point)``.

    ``zero_point`` is the real value reconstructed for code ``-128`` (the
    array minimum), ``scale`` the real-value width of one code step.  A
    constant array gets ``scale = 1.0`` and every entry the code ``-128``,
    so it round-trips exactly; otherwise the reconstruction error is at most
    ``scale / 2`` per entry.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return data.astype(np.int8), 1.0, 0.0
    if not np.all(np.isfinite(data)):
        raise ValueError("quantize_int8 requires finite values")
    lo = float(data.min())
    hi = float(data.max())
    scale = (hi - lo) / _INT8_STEPS
    if scale <= 0.0 or not np.isfinite(scale):
        scale = 1.0
    steps = np.rint((data - lo) / scale) - _INT8_OFFSET
    codes = np.clip(steps, -128, 127).astype(np.int8)
    return codes, scale, lo


def dequantize_int8(
    codes: NDArray[Any], scale: float, zero_point: float, dtype: Any = np.float32
) -> NDArray[Any]:
    """Reconstruct real values from int8 codes produced by :func:`quantize_int8`."""
    out: NDArray[Any] = (
        (codes.astype(np.float64) + _INT8_OFFSET) * scale + zero_point
    ).astype(dtype)
    return out
