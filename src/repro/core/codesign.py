"""Top-level algorithm/accelerator co-design model.

:class:`InstantNeRFSystem` ties the two halves of the paper together:

* the *algorithm* side — which hash mapping function and point streaming
  order are used — is characterised by measuring locality statistics on a
  sampled point stream (requests per cube, cube-sharing run length), and
* the *accelerator* side consumes those statistics through
  :class:`repro.accel.nmp.AlgorithmLocality` to produce per-scene training
  time and energy.

It also quantifies the algorithm-only benefit on a commodity GPU (the paper
reports a 1.15x training-efficiency boost on the 2080Ti from the improved
effective memory bandwidth alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..accel.cost_model import ComparisonModel, SceneComparison
from ..accel.nmp import AlgorithmLocality, NMPAccelerator, NMPConfig
from ..gpu.specs import GPUSpec
from ..nerf.encoding import HashGridConfig
from ..workloads.steps import INGPWorkloadModel
from ..workloads.traces import TraceConfig, generate_batch_points
from .hashing import (
    HashFunction,
    MortonLocalityHash,
    OriginalSpatialHash,
    average_row_requests_per_cube,
)
from .streaming import StreamingOrder, point_order, points_sharing_same_cube

__all__ = ["AlgorithmConfig", "InstantNeRFSystem", "SCENE_DIFFICULTY"]


#: Relative per-scene workload difficulty used to spread the Fig. 11 bars.
#: Derived from the relative per-scene training times reported for iNGP-class
#: methods on Synthetic-NeRF (ship and ficus are the heaviest scenes, mic and
#: materials the lightest); normalised to a mean of 1.0.
SCENE_DIFFICULTY = {
    "chair": 0.95,
    "drums": 0.92,
    "ficus": 1.08,
    "hotdog": 1.02,
    "lego": 1.00,
    "materials": 0.90,
    "mic": 0.88,
    "ship": 1.25,
}


@dataclass(frozen=True)
class AlgorithmConfig:
    """The algorithm half of the co-design."""

    hash_fn: HashFunction
    streaming_order: StreamingOrder
    name: str

    @classmethod
    def instant_nerf(cls) -> "AlgorithmConfig":
        return cls(MortonLocalityHash(), StreamingOrder.RAY_FIRST, "instant-nerf")

    @classmethod
    def ingp(cls) -> "AlgorithmConfig":
        return cls(OriginalSpatialHash(), StreamingOrder.RANDOM, "ingp")


class LocalityContext(Protocol):
    """What :meth:`InstantNeRFSystem.measure_locality` needs from a memoized context.

    :class:`repro.pipeline.context.SimulationContext` satisfies it; core does
    not import pipeline, so the dependency stays one-directional.
    """

    def requests_per_cube(
        self, grid: HashGridConfig, trace: TraceConfig, hash_fn: HashFunction, level: int
    ) -> float: ...

    def cube_sharing(self, trace: TraceConfig, resolution: int, order: StreamingOrder) -> float: ...


class InstantNeRFSystem:
    """The co-designed system: algorithm configuration + NMP accelerator."""

    def __init__(
        self,
        algorithm: AlgorithmConfig | None = None,
        grid_config: HashGridConfig | None = None,
        nmp_config: NMPConfig | None = None,
        trace_config: TraceConfig | None = None,
        context: LocalityContext | None = None,
    ):
        """``context`` optionally is a :class:`repro.pipeline.context.SimulationContext`
        (any object with ``batch_points``/``stream_order``/``cube_sharing``/
        ``requests_per_cube`` works); the locality measurement then reuses
        the traces and per-level statistics other experiments already built
        instead of recomputing them."""
        self.algorithm = algorithm or AlgorithmConfig.instant_nerf()
        self.grid = grid_config or HashGridConfig()
        self.workload = INGPWorkloadModel(self.grid)
        self.trace_config = trace_config or TraceConfig(num_rays=128, points_per_ray=32, seed=0)
        self._context = context
        self.locality = self.measure_locality()
        self.accelerator = NMPAccelerator(
            config=nmp_config, workload=self.workload, locality=self.locality
        )

    # --------------------------------------------------------- measurement
    def measure_locality(self) -> AlgorithmLocality:
        """Derive the locality statistics of the configured algorithm.

        Samples a small batch of ray-ordered points, measures the average
        number of DRAM rows per cube under the configured hash function and
        the cube-sharing run length under the configured streaming order,
        and maps residual conflicts to a stall factor.
        """
        ctx = self._context
        fine_level = self.grid.num_levels - 1
        if ctx is not None:
            requests_per_cube = ctx.requests_per_cube(
                self.grid, self.trace_config, self.algorithm.hash_fn, fine_level
            )
            run_lengths = [
                ctx.cube_sharing(
                    self.trace_config, self.grid.resolutions[lvl], self.algorithm.streaming_order
                )
                for lvl in range(self.grid.num_levels)
            ]
        else:
            points = generate_batch_points(self.trace_config)
            flat = points.reshape(-1, 3)
            order = point_order(
                self.trace_config.num_rays,
                self.trace_config.points_per_ray,
                self.algorithm.streaming_order,
                rng=np.random.default_rng(self.trace_config.seed),
            )

            # Requests per cube at a representative fine (hashed) level.
            resolution = self.grid.resolutions[fine_level]
            base_coords = np.clip((flat * resolution).astype(np.int64), 0, resolution - 1)
            requests_per_cube = average_row_requests_per_cube(
                self.algorithm.hash_fn, base_coords, self.grid.level_table_entries(fine_level)
            )

            # Cube sharing averaged over levels (coarse levels share heavily).
            run_lengths = [
                points_sharing_same_cube(flat, self.grid.resolutions[lvl], order)
                for lvl in range(self.grid.num_levels)
            ]
        sharing = float(np.mean(run_lengths))

        # Residual bank-conflict stalls: the locality-sensitive hash keeps
        # conflicting requests on neighbouring rows that the subarray mapping
        # absorbs; the scattered baseline hash does not.
        if isinstance(self.algorithm.hash_fn, MortonLocalityHash) and (
            self.algorithm.streaming_order is StreamingOrder.RAY_FIRST
        ):
            stall = 1.1
        else:
            stall = 1.6
        return AlgorithmLocality(
            row_requests_per_cube=float(requests_per_cube),
            cube_sharing_run_length=max(1.0, sharing),
            bank_conflict_stall_factor=stall,
        )

    # ------------------------------------------------------------- results
    def scene_training_seconds(self, scene: str = "lego") -> float:
        difficulty = SCENE_DIFFICULTY.get(scene, 1.0)
        return self.accelerator.scene_training_seconds() * difficulty

    def scene_training_energy_j(self, scene: str = "lego") -> float:
        difficulty = SCENE_DIFFICULTY.get(scene, 1.0)
        return self.accelerator.scene_training_energy_j() * difficulty

    def compare_against(
        self,
        gpu: GPUSpec,
        scenes: list[str] | None = None,
        use_measured_gpu_time: bool = True,
    ) -> list[SceneComparison]:
        """Fig. 11: per-scene speedup and energy efficiency against a GPU."""
        scenes = scenes or list(SCENE_DIFFICULTY)
        model = ComparisonModel(self.accelerator, gpu, use_measured_gpu_time=use_measured_gpu_time)
        return model.compare_scenes({scene: SCENE_DIFFICULTY.get(scene, 1.0) for scene in scenes})

    def algorithm_speedup_on_gpu(self, baseline: "InstantNeRFSystem | None" = None) -> float:
        """Algorithm-only training-efficiency boost on a commodity GPU.

        The locality-sensitive hash plus ray-first streaming raise the
        effective memory bandwidth of the HT/HT_b kernels; on a GPU this
        shortens only the hash-table-bound portion of an iteration.  The
        paper measures a 1.15x end-to-end boost on the 2080Ti.
        """
        baseline = baseline or InstantNeRFSystem(
            AlgorithmConfig.ingp(), self.grid, trace_config=self.trace_config
        )
        # Effective-bandwidth improvement for hash-table traffic.
        ours = self.locality
        theirs = baseline.locality
        bw_gain = (theirs.row_requests_per_cube / ours.row_requests_per_cube) * (
            ours.cube_sharing_run_length / theirs.cube_sharing_run_length
        )
        # Hash-table kernels are roughly 64% of an iNGP training iteration on
        # GPUs (Fig. 1(b): HT 34.1% + HT_b 30.5%); only that part accelerates,
        # and only a small fraction of the row-locality gain is realizable on
        # a GPU whose cache lines and transaction sizes already amortise some
        # of the randomness (the 0.04 realizable fraction is calibrated to the
        # paper's measured 1.15x boost on the 2080Ti).
        ht_fraction = 0.645
        gpu_realizable_fraction = 0.04
        effective_gain = 1.0 + (bw_gain - 1.0) * gpu_realizable_fraction
        new_time = (1.0 - ht_fraction) + ht_fraction / effective_gain
        return 1.0 / new_time
