"""Hash-table access-trace generation.

The locality experiments (Fig. 6, 7, 9) need realistic streams of hash-table
lookups: points sampled along rays of a training batch, converted per level
into the eight surrounding cube vertices, hashed with a chosen hash function,
and ordered by a chosen streaming order.  The resulting byte-address traces
feed :class:`repro.dram.DRAMSystem` and the NMP accelerator model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..core import precision
from ..core.hashing import DenseGridIndexer, HashFunction
from ..nerf.encoding import HashGridConfig
from ..nerf.occupancy import OccupancyGrid, OccupancyGridConfig, adaptive_sample_mask
from ..streams.ir import RequestStream, TableLayout, table_base_address

__all__ = [
    "TraceConfig",
    "generate_batch_points",
    "generate_scene_batch_points",
    "occupancy_grid_for_trace",
    "occupancy_point_mask",
    "level_lookup_indices",
    "lookup_addresses",
    "HashTraceGenerator",
]


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a synthetic hash-lookup trace.

    The defaults mimic iNGP's ray marching through the occupied part of a
    scene: 64 samples spaced roughly ``sqrt(3)/1024`` of the scene extent
    apart, which is the cone-marching step iNGP uses inside occupied regions.
    Consecutive samples therefore share cubes at coarse and mid levels —
    exactly the locality Fig. 7(a) quantifies.

    When ``scene`` names one of the eight procedural scenes, rays are instead
    cast through random pixels of orbiting training cameras (the Synthetic-
    NeRF capture geometry) and each ray's sampling interval is tightened to
    the occupied span found by probing the scene's density field — the same
    occupancy-guided marching iNGP performs, so the resulting lookup stream
    matches a real training batch for that scene rather than a uniform
    random-ray surrogate.
    """

    num_rays: int = 256
    points_per_ray: int = 64
    near: float = 0.3
    far: float = 0.55
    seed: int = 0
    #: Precision of a stored table entry in the *modeled* memory system (one
    #: of :data:`repro.core.precision.PRECISIONS`).  The default fp16 models
    #: iNGP's production half-precision tables: F=2 x FP16 = the 4-byte
    #: entries the previous hardcoded ``entry_bytes=4`` assumed.
    dtype: str = "fp16"
    features_per_entry: int = 2
    #: Optional named scene; ``None`` keeps the scene-agnostic random rays.
    scene: str | None = None
    #: Density probes per ray used to find the occupied [near, far] span.
    probe_samples: int = 24
    #: Camera orbit radius and scene half-extent (match the dataset defaults
    #: so scene traces live in the same unit cube the trainer uses).
    camera_radius: float = 2.2
    scene_bound: float = 1.2
    fov_degrees: float = 50.0
    #: Occupancy-grid empty-space skipping: with ``occupancy=True`` (scene
    #: traces only) the per-level corner-index streams drop every sample
    #: whose occupancy-grid cell is empty, modelling iNGP's production
    #: bitfield marching.  The sampled *points* stay dense — pruning happens
    #: at stream emission, so pruned streams are exact subsets of dense ones.
    occupancy: bool = False
    occupancy_resolution: int = 32
    occupancy_levels: int = 1
    occupancy_threshold: float = 1e-3
    #: Early-ray-termination transmittance threshold (0 disables): samples a
    #: ray reaches only after its transmittance through the scene's density
    #: has fallen below this value are dropped from the stream too.
    occupancy_termination: float = 0.0

    def __post_init__(self) -> None:
        precision.validate_precision(self.dtype)

    @property
    def entry_bytes(self) -> int:
        """Bytes of one embedding vector (``F`` features at ``dtype`` width)."""
        return precision.entry_bytes(self.dtype, self.features_per_entry)

    def dense(self) -> "TraceConfig":
        """The occupancy-free twin of this trace (identical sampled points).

        All occupancy fields are reset to their defaults so every pruned
        variant of one trace shares a single dense artifact key.
        """
        defaults = {
            f.name: f.default
            for f in dataclasses.fields(TraceConfig)
            if f.name.startswith("occupancy")
        }
        if all(getattr(self, name) == value for name, value in defaults.items()):
            return self
        return dataclasses.replace(self, **defaults)


def generate_batch_points(config: TraceConfig) -> np.ndarray:
    """Sample a batch of points along rays of a training batch.

    Returns an array of shape ``(num_rays, points_per_ray, 3)`` with
    coordinates in ``[0, 1]``; consecutive points along axis 1 belong to the
    same ray (this ordering is what the ray-first streaming order exploits).
    With ``config.scene`` set, rays come from the scene's orbiting training
    cameras and are clipped to the occupied density span (see
    :func:`generate_scene_batch_points`); otherwise they are scene-agnostic
    random rays inside the unit cube.
    """
    if config.scene is not None:
        return generate_scene_batch_points(config)
    rng = np.random.default_rng(config.seed)
    origins = rng.uniform(0.0, 1.0, size=(config.num_rays, 3))
    directions = rng.normal(size=(config.num_rays, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    t = np.linspace(config.near, config.far, config.points_per_ray)
    points = origins[:, None, :] + t[None, :, None] * directions[:, None, :] * 0.5
    return np.clip(points, 0.0, 1.0)


def generate_scene_batch_points(config: TraceConfig) -> np.ndarray:
    """Sample a training batch of ray points through a named procedural scene.

    Mimics one iNGP training batch on the Synthetic-NeRF capture geometry:
    random pixels of cameras orbiting the object produce world-space rays,
    each ray's sampling interval is narrowed to the span where the scene's
    density field is occupied (probed at ``config.probe_samples`` positions),
    and the ``points_per_ray`` samples are taken uniformly inside that span.
    World coordinates are mapped to the hash grid's unit cube with the same
    ``scene_bound`` convention as :class:`repro.scenes.dataset.SyntheticNeRFDataset`.
    """
    if config.scene is None:
        raise ValueError("generate_scene_batch_points requires TraceConfig.scene to be set")
    # Imported here: workloads must stay importable without the scene stack.
    from ..scenes.camera import CameraIntrinsics, poses_on_sphere
    from ..scenes.library import build_scene

    scene = build_scene(config.scene)
    rng = np.random.default_rng(config.seed)

    # Orbiting training cameras, one random (view, pixel) per ray.
    num_views = int(max(4, min(16, config.num_rays // 16)))
    poses = np.stack(
        poses_on_sphere(num_views, radius=config.camera_radius, elevation_degrees=25.0)
    )
    image_size = 64  # only sets the pixel lattice the rays pass through
    intrinsics = CameraIntrinsics.from_fov(image_size, image_size, config.fov_degrees)
    view = rng.integers(0, num_views, size=config.num_rays)
    pixels = rng.uniform(0.0, image_size, size=(config.num_rays, 2))
    cam_dirs = np.stack(
        [
            (pixels[:, 0] - image_size / 2.0) / intrinsics.focal,
            -(pixels[:, 1] - image_size / 2.0) / intrinsics.focal,
            -np.ones(config.num_rays),
        ],
        axis=1,
    )
    rotations = poses[view][:, :3, :3]
    directions = np.einsum("rij,rj->ri", rotations, cam_dirs)
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    origins = poses[view][:, :3, 3]

    # Probe the density field to find each ray's occupied [near, far] span.
    bound = config.scene_bound
    diag = bound * np.sqrt(3.0)
    t_near = max(1e-3, config.camera_radius - diag)
    t_far = config.camera_radius + diag
    t_probe = np.linspace(t_near, t_far, config.probe_samples)
    probes = origins[:, None, :] + t_probe[None, :, None] * directions[:, None, :]
    occupied = scene.density(probes) > 1e-3
    hit = occupied.any(axis=1)
    first = occupied.argmax(axis=1)
    last = config.probe_samples - 1 - occupied[:, ::-1].argmax(axis=1)
    dt = t_probe[1] - t_probe[0] if config.probe_samples > 1 else 0.0
    near = np.where(hit, t_probe[first] - 0.5 * dt, t_near)
    far = np.where(hit, t_probe[last] + 0.5 * dt, t_far)
    far = np.maximum(far, near + 1e-3)

    fractions = np.linspace(0.0, 1.0, config.points_per_ray)
    t = near[:, None] + (far - near)[:, None] * fractions[None, :]
    world = origins[:, None, :] + t[..., None] * directions[:, None, :]
    unit = (world + bound) / (2.0 * bound)  # dataset normalize_positions convention
    return np.clip(unit, 0.0, 1.0)


def occupancy_grid_for_trace(
    config: TraceConfig, densities: np.ndarray | None = None
) -> OccupancyGrid:
    """The occupancy grid pruning a scene trace's lookup streams.

    Built from the scene's analytic density field sampled over the hash
    grid's unit cube (conservatively supersampled), or rebuilt from a stored
    ``densities`` estimate (the :class:`~repro.pipeline.store.ArtifactStore`
    round-trips the estimate array, not the grid object).
    """
    if config.scene is None:
        raise ValueError("occupancy pruning requires TraceConfig.scene to be set")
    occ_config = OccupancyGridConfig(
        resolution=config.occupancy_resolution,
        num_levels=config.occupancy_levels,
        density_threshold=config.occupancy_threshold,
    )
    if densities is not None:
        return OccupancyGrid.from_densities(occ_config, densities)
    from ..scenes.library import build_scene

    scene = build_scene(config.scene)
    bound = config.scene_bound

    def unit_density(unit_points: np.ndarray) -> np.ndarray:
        return scene.density(unit_points * (2.0 * bound) - bound)

    return OccupancyGrid.from_density_fn(occ_config, unit_density)


def occupancy_point_mask(
    config: TraceConfig,
    points: np.ndarray | None = None,
    grid: OccupancyGrid | None = None,
) -> np.ndarray:
    """Flat keep mask over a trace's ``num_rays * points_per_ray`` samples.

    A sample survives when its occupancy-grid cell is occupied; with
    ``occupancy_termination > 0`` also only while the ray's transmittance
    through the scene's density (accumulated over kept samples, world-scale
    segment widths) still exceeds the threshold.
    """
    if not config.occupancy:
        raise ValueError("occupancy_point_mask requires TraceConfig.occupancy=True")
    if points is None:
        points = generate_batch_points(config.dense())
    points = np.asarray(points, dtype=np.float64).reshape(
        config.num_rays, config.points_per_ray, 3
    )
    if grid is None:
        grid = occupancy_grid_for_trace(config)
    t_values = densities = None
    if config.occupancy_termination > 0.0:
        from ..scenes.library import build_scene

        bound = config.scene_bound
        world = points * (2.0 * bound) - bound
        densities = build_scene(config.scene).density(world.reshape(-1, 3)).reshape(
            config.num_rays, config.points_per_ray
        )
        # Scene samples are uniformly spaced per ray; recover the world-scale
        # t axis from cumulative inter-sample distances.
        step = np.linalg.norm(np.diff(world, axis=1), axis=-1)
        step = np.concatenate([np.zeros((config.num_rays, 1)), step], axis=1)
        t_values = np.cumsum(step, axis=1)
    mask = adaptive_sample_mask(
        grid,
        points,
        t_values=t_values,
        densities=densities,
        transmittance_threshold=config.occupancy_termination,
    )
    return mask.reshape(-1)


def level_lookup_indices(
    points: np.ndarray,
    level: int,
    grid_config: HashGridConfig,
    hash_fn: HashFunction | None = None,
) -> np.ndarray:
    """Hash-table indices of the 8 cube corners of each point at one level.

    Parameters
    ----------
    points:
        ``(N, 3)`` positions in ``[0, 1]`` (any leading shape is flattened).
    level:
        Hash-table level.
    grid_config:
        The multi-resolution table configuration.
    hash_fn:
        Overrides ``grid_config.hash_fn`` when given (used to compare the
        original and Morton hash functions on identical point streams).

    Returns
    -------
    numpy.ndarray
        Integer indices of shape ``(N, 8)`` in ``[0, level_table_entries)``.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    res = grid_config.resolutions[level]
    table_entries = grid_config.level_table_entries(level)
    scaled = np.clip(pts, 0.0, 1.0) * res
    base = np.clip(np.floor(scaled).astype(np.int64), 0, res - 1)
    offsets = np.array([[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.int64)
    corners = base[:, None, :] + offsets[None, :, :]
    fn = hash_fn or grid_config.hash_fn
    if grid_config.level_uses_hash(level):
        idx = fn(corners.reshape(-1, 3), table_entries)
    else:
        idx = DenseGridIndexer(res)(corners.reshape(-1, 3), table_entries)
    return idx.reshape(-1, 8)


def lookup_addresses(
    indices: np.ndarray,
    level: int,
    grid_config: HashGridConfig,
    entry_bytes: int = 4,
    base_address: int = 0,
) -> np.ndarray:
    """Convert per-level table indices to byte addresses.

    Levels are laid out back to back starting at ``base_address``; the
    Instant-NeRF hash-table mapping scheme later remaps these linear
    addresses onto banks/subarrays (see :mod:`repro.core.mapping`).
    """
    level_offset = base_address
    for lvl in range(level):
        level_offset += grid_config.level_table_entries(lvl) * entry_bytes
    return level_offset + np.asarray(indices, dtype=np.int64).ravel() * entry_bytes


class HashTraceGenerator:
    """Generates complete hash-lookup address traces for a training batch.

    With ``trace_config.occupancy`` the emitted streams are pruned by the
    occupancy-grid keep mask: samples in empty cells (and, with termination
    enabled, past the opaque part of the scene) issue no lookups, so every
    pruned stream is an exact subset of its dense twin in stream order.
    """

    def __init__(
        self,
        grid_config: HashGridConfig | None = None,
        trace_config: TraceConfig | None = None,
        hash_fn: HashFunction | None = None,
    ):
        self.grid = grid_config or HashGridConfig()
        self.config = trace_config or TraceConfig()
        self.hash_fn = hash_fn or self.grid.hash_fn
        self._points = generate_batch_points(self.config.dense())
        self.occupancy_mask: np.ndarray | None = (
            occupancy_point_mask(self.config, points=self._points)
            if self.config.occupancy
            else None
        )

    @property
    def points(self) -> np.ndarray:
        """The sampled batch, shape ``(num_rays, points_per_ray, 3)``."""
        return self._points

    # ------------------------------------------------------- StreamSource
    @property
    def name(self) -> str:
        return "nerf.hash_trace"

    @property
    def layout(self) -> TableLayout:
        return self.grid

    @property
    def num_streams(self) -> int:
        return self.grid.num_levels

    def stream(self, level: int, point_order: np.ndarray | None = None) -> RequestStream:
        """One level's lookups as a typed :class:`RequestStream`.

        The single trace-emission code path: points are permuted by
        ``point_order`` (a permutation over the flattened point axis, as
        produced by :mod:`repro.core.streaming`), hashed into per-point
        corner indices, grouped by cube id (the reuse-group axis downstream
        locality accounting keys on), and — with occupancy enabled — pruned
        to the exact IR subset of the dense stream, after the reordering so
        stream order is preserved.
        """
        from ..core.streaming import cube_ids

        pts = self._points.reshape(-1, 3)
        if point_order is not None:
            pts = pts[point_order]
        indices = level_lookup_indices(pts, level, self.grid, self.hash_fn)
        stream = RequestStream(
            indices=indices,
            entry_bytes=self.config.entry_bytes,
            table_entries=self.grid.level_table_entries(level),
            base_address=table_base_address(self.grid, level, self.config.entry_bytes),
            dtype=self.config.dtype,
            group_ids=cube_ids(pts, self.grid.resolutions[level]),
            source=self.name,
            label=f"level={level}",
        )
        if self.occupancy_mask is not None:
            keep = (
                self.occupancy_mask
                if point_order is None
                else self.occupancy_mask[point_order]
            )
            stream = stream.subset(keep)
        return stream

    # ------------------------------------------------- legacy ndarray views
    def indices_for_level(self, level: int, point_order: np.ndarray | None = None) -> np.ndarray:
        """Per-point corner indices at a level, optionally reordering points.

        A thin view over :meth:`stream` (one code path for ordering and
        occupancy pruning); the returned array is read-only because it is
        the stream's own index storage.
        """
        return self.stream(level, point_order).indices

    def addresses_for_level(
        self, level: int, point_order: np.ndarray | None = None, base_address: int = 0
    ) -> np.ndarray:
        """Flattened byte-address trace (8 lookups per point, in point order)."""
        return base_address + self.stream(level, point_order).addresses

    def full_trace(self, point_order: np.ndarray | None = None) -> np.ndarray:
        """Concatenated address trace across all levels (level-major)."""
        return np.concatenate(
            [self.stream(level, point_order).addresses for level in range(self.grid.num_levels)]
        )
