"""Embedding-table lookup traces: the second request-stream front-end.

Recommendation-style embedding lookups share exactly the access pattern the
paper's memory system targets: large tables of small rows, gathered by
data-dependent indices with a skewed (Zipfian) popularity distribution and
per-sample pooling — the same hash-gather shape as the NeRF corner lookups,
minus the spatial hashing.  This module emits those lookups as typed
:class:`repro.streams.RequestStream` objects, which is what lets the
existing locality / bank-conflict / cache analyses run on embedding traffic
without a single analysis-code change (the ``fig15_embedding_locality``
experiment).

The reuse-group axis here is the *bag signature*: two consecutive batch
samples whose pooled lookup sets are identical gather the same rows, so the
second one is a register hit — the embedding analogue of two consecutive
ray samples sharing a cube.  The ``sorted`` stream order groups equal bags
together (the analogue of ray-first streaming); ``arrival`` keeps the
sampled batch order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from ..core import precision
from ..streams.ir import RequestStream, TableLayout, table_base_address

__all__ = [
    "EmbeddingTableLayout",
    "EmbeddingTraceConfig",
    "EmbeddingStreamSource",
    "zipfian_indices",
]

#: Stream orders the source can emit (the embedding analogue of the
#: random / ray-first streaming orders of the NeRF front-end).
_ORDERS = ("arrival", "sorted")


@dataclass(frozen=True)
class EmbeddingTableLayout:
    """A bank of equally sized embedding tables, laid out back to back.

    Satisfies the :class:`repro.streams.TableLayout` protocol (tables play
    the role of hash-grid levels), so the hash-table mapper and the IR's
    base-address arithmetic work on it unchanged.
    """

    num_tables: int = 8
    table_rows: int = 2**14

    def __post_init__(self) -> None:
        if self.num_tables <= 0 or self.table_rows <= 0:
            raise ValueError("num_tables and table_rows must be positive")

    @property
    def num_levels(self) -> int:
        return self.num_tables

    def level_table_entries(self, level: int) -> int:
        if level < 0 or level >= self.num_tables:
            raise ValueError(f"table {level} out of range for {self.num_tables} tables")
        return self.table_rows


@dataclass(frozen=True)
class EmbeddingTraceConfig:
    """Parameters of a synthetic embedding-lookup trace.

    ``batch_size`` samples each gather ``pooling_factor`` rows from every
    table (multi-hot pooled lookups); keys are drawn per table from a
    Zipfian popularity distribution (``distribution="zipf"``, exponent
    ``zipf_alpha``) or uniformly (``distribution="uniform"``).  Row width is
    ``features_per_entry`` scalars at ``dtype`` precision — the same
    dtype -> entry-bytes rule every other table config uses.
    """

    num_tables: int = 8
    table_rows: int = 2**14
    features_per_entry: int = 16
    dtype: str = "fp32"
    batch_size: int = 256
    pooling_factor: int = 8
    distribution: str = "zipf"
    zipf_alpha: float = 1.05
    seed: int = 0

    def __post_init__(self) -> None:
        precision.validate_precision(self.dtype)
        if self.num_tables <= 0 or self.table_rows <= 0:
            raise ValueError("num_tables and table_rows must be positive")
        if self.batch_size <= 0 or self.pooling_factor <= 0:
            raise ValueError("batch_size and pooling_factor must be positive")
        if self.distribution not in ("zipf", "uniform"):
            raise ValueError(
                f"distribution must be 'zipf' or 'uniform', got {self.distribution!r}"
            )
        if self.zipf_alpha <= 0.0:
            raise ValueError(f"zipf_alpha must be positive, got {self.zipf_alpha}")

    @property
    def entry_bytes(self) -> int:
        """Bytes of one embedding row (``F`` features at ``dtype`` width)."""
        return precision.entry_bytes(self.dtype, self.features_per_entry)

    @property
    def layout(self) -> EmbeddingTableLayout:
        return EmbeddingTableLayout(num_tables=self.num_tables, table_rows=self.table_rows)


def zipfian_indices(
    rng: np.random.Generator, rows: int, size: int, alpha: float
) -> NDArray[np.int64]:
    """``size`` row ids drawn from a rank-``alpha`` Zipfian over ``rows`` rows.

    Row ``r`` (0-based rank) has probability proportional to
    ``(r + 1) ** -alpha``; sampling inverts the cumulative distribution with
    one ``searchsorted``, so paper-scale tables stay cheap.
    """
    if rows <= 0 or size < 0:
        raise ValueError("rows must be positive and size non-negative")
    weights = np.arange(1, rows + 1, dtype=np.float64) ** -alpha
    cumulative = np.cumsum(weights)
    cumulative /= cumulative[-1]
    return np.searchsorted(cumulative, rng.random(size), side="right").astype(np.int64)


class EmbeddingStreamSource:
    """Emits one :class:`RequestStream` per embedding table.

    Implements the :class:`repro.streams.StreamSource` protocol.  Keys are
    drawn once per table from a deterministic per-table generator
    (``default_rng([seed, table])``), so the same configuration always
    yields byte-identical streams regardless of emission order.
    """

    def __init__(self, config: EmbeddingTraceConfig | None = None):
        self.config = config or EmbeddingTraceConfig()

    # ------------------------------------------------------- StreamSource
    @property
    def name(self) -> str:
        return "embedding.lookup"

    @property
    def layout(self) -> TableLayout:
        return self.config.layout

    @property
    def num_streams(self) -> int:
        return self.config.num_tables

    def table_indices(self, table: int) -> NDArray[np.int64]:
        """The ``(batch_size, pooling_factor)`` pooled row ids of one table."""
        cfg = self.config
        if table < 0 or table >= cfg.num_tables:
            raise ValueError(f"table {table} out of range for {cfg.num_tables} tables")
        rng = np.random.default_rng([cfg.seed, table])
        size = cfg.batch_size * cfg.pooling_factor
        if cfg.distribution == "uniform":
            flat = rng.integers(0, cfg.table_rows, size=size, dtype=np.int64)
        else:
            flat = zipfian_indices(rng, cfg.table_rows, size, cfg.zipf_alpha)
        return flat.reshape(cfg.batch_size, cfg.pooling_factor)

    def stream(self, table: int, order: str = "arrival") -> RequestStream:
        """One table's pooled lookups as a typed request stream.

        ``group_ids`` carry the bag signature: samples whose *sorted* pooled
        row sets are identical share an id, so consecutive equal bags form
        the register-reuse runs downstream locality accounting charges only
        once.  ``order="sorted"`` streams equal bags back to back (a stable
        sort, so arrival order breaks ties deterministically).
        """
        if order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
        cfg = self.config
        indices = self.table_indices(table)
        bags = np.unique(np.sort(indices, axis=1), axis=0, return_inverse=True)[1].ravel()
        stream = RequestStream(
            indices=indices,
            entry_bytes=cfg.entry_bytes,
            table_entries=cfg.table_rows,
            base_address=table_base_address(cfg.layout, table, cfg.entry_bytes),
            dtype=cfg.dtype,
            group_ids=bags,
            source=self.name,
            label=f"table={table}",
        )
        if order == "sorted":
            stream = stream.with_order(np.argsort(bags, kind="stable"))
        return stream
