"""Training-batch geometry at paper scale.

The paper's profiling and hardware evaluation use 35 000 training iterations
per scene with 256 K sampled points per iteration.  This module describes
that batch geometry (rays, points per ray, bytes per point) so the workload
descriptors, GPU roofline and NMP accelerator all agree on sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BatchGeometry", "PAPER_BATCH"]


@dataclass(frozen=True)
class BatchGeometry:
    """Shape of one training iteration's batch."""

    points_per_iteration: int = 256 * 1024
    points_per_ray: int = 32
    iterations_per_scene: int = 35_000
    position_bytes: int = 12       # FP32 x, y, z
    direction_bytes: int = 12      # FP32 dx, dy, dz
    color_bytes: int = 12          # FP32 rgb

    def validate(self) -> None:
        for name in ("points_per_iteration", "points_per_ray", "iterations_per_scene"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.points_per_iteration % self.points_per_ray:
            raise ValueError("points_per_iteration must be a multiple of points_per_ray")

    @property
    def rays_per_iteration(self) -> int:
        return self.points_per_iteration // self.points_per_ray

    @property
    def total_points_per_scene(self) -> int:
        return self.points_per_iteration * self.iterations_per_scene

    @property
    def input_bytes_per_iteration(self) -> int:
        """Bytes of raw point inputs (position + direction) per iteration."""
        return self.points_per_iteration * (self.position_bytes + self.direction_bytes)


#: Batch geometry used throughout the paper's evaluation.
PAPER_BATCH = BatchGeometry()
