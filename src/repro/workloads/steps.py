"""Per-step workload descriptors for iNGP training (paper Table II).

iNGP training decomposes into the bottleneck steps the paper profiles:

* ``HT``     — hash-table encoding forward (hashing, lookup, interpolation)
* ``MLPd``   — density MLP forward
* ``MLPc``   — color MLP forward
* ``MLP_b``  — the two MLPs' backward passes
* ``HT_b``   — hash-table backward (embedding-gradient scatter)
* ``OTHER``  — everything else (ray sampling, volume rendering, loss, Adam)

For each step we derive the parameter, input, output and intermediate data
sizes (Table II), the FLOP/integer-op counts, and the dominant data type —
the quantities that drive both the GPU roofline model (Fig. 1/Fig. 4) and
the NMP accelerator model (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core import precision
from ..nerf.encoding import HashGridConfig
from .batch import PAPER_BATCH, BatchGeometry

__all__ = ["StepName", "StepWorkload", "INGPWorkloadModel"]


class StepName(Enum):
    """Bottleneck steps (and their backward passes) named as in the paper."""

    HT = "HT"
    MLP_DENSITY = "MLPd"
    MLP_COLOR = "MLPc"
    HT_BACKWARD = "HT_b"
    MLP_DENSITY_BACKWARD = "MLPd_b"
    MLP_COLOR_BACKWARD = "MLPc_b"
    OTHER = "Other"


# Steps the paper groups under "MLP" (sequential MLPd -> MLPc).
FORWARD_MLP_STEPS = (StepName.MLP_DENSITY, StepName.MLP_COLOR)
BACKWARD_MLP_STEPS = (StepName.MLP_DENSITY_BACKWARD, StepName.MLP_COLOR_BACKWARD)


@dataclass(frozen=True)
class StepWorkload:
    """Workload characterisation of one training step for one iteration."""

    name: StepName
    parameter_bytes: int
    input_bytes: int
    output_bytes: int
    intermediate_bytes: int
    fp_ops: float
    int_ops: float
    reads_parameters_randomly: bool = False

    @property
    def dram_traffic_bytes(self) -> float:
        """Bytes that must move between DRAM and compute for one iteration.

        Parameters are streamed from DRAM (hash table is far larger than any
        cache), inputs are read and outputs written; intermediates spill when
        they exceed on-chip storage, counting a write + read.
        """
        return float(
            self.parameter_bytes
            + self.input_bytes
            + self.output_bytes
            + 2 * self.intermediate_bytes
        )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs (plus integer ops) per byte of DRAM traffic."""
        traffic = self.dram_traffic_bytes
        return (self.fp_ops + self.int_ops) / traffic if traffic else 0.0


class INGPWorkloadModel:
    """Derives Table II-style sizes and op counts from the iNGP configuration.

    Parameters
    ----------
    grid_config:
        The multi-resolution hash-table configuration (L, T, F, resolutions).
    batch:
        Batch geometry (defaults to the paper's 256 K points/iteration).
    density_hidden / color_hidden / geo_features:
        The two small MLPs' layer sizes (paper/iNGP defaults: 64-wide).
    """

    def __init__(
        self,
        grid_config: HashGridConfig | None = None,
        batch: BatchGeometry | None = None,
        density_hidden: int = 64,
        color_hidden: int = 64,
        geo_features: int = 15,
        dir_encoding_dim: int = 16,
        dtype_bytes: int = 2,
        dtype: str | None = None,
    ):
        # iNGP stores the hash table, activations and MLP weights in FP16
        # (2 bytes); the Table II sizes (25 MB table, 16 MB encodings, 32 MB
        # intermediates) only come out right with half-precision storage.
        # A named ``dtype`` (see repro.core.precision) overrides the raw
        # byte width, scaling every size below with the precision axis.
        self.grid = grid_config or HashGridConfig()
        self.batch = batch or PAPER_BATCH
        self.batch.validate()
        self.density_hidden = density_hidden
        self.color_hidden = color_hidden
        self.geo_features = geo_features
        self.dir_encoding_dim = dir_encoding_dim
        self.dtype = dtype
        self.dtype_bytes = precision.dtype_bytes(dtype) if dtype is not None else dtype_bytes

    # ------------------------------------------------------------ sizes
    @property
    def hash_table_bytes(self) -> int:
        """Total multi-resolution hash-table parameter size (~25 MB at paper scale)."""
        return self.grid.table_bytes(self.dtype_bytes)

    @property
    def level_bytes(self) -> list[int]:
        """Per-level hash-table size in bytes."""
        return [
            self.grid.level_table_entries(lvl) * self.grid.features_per_entry * self.dtype_bytes
            for lvl in range(self.grid.num_levels)
        ]

    @property
    def encoding_output_bytes(self) -> int:
        """HT output = encoded features for the full batch (~16 MB at paper scale)."""
        return self.batch.points_per_iteration * self.grid.output_dim * self.dtype_bytes

    @property
    def mlp_parameter_bytes(self) -> int:
        """Both MLPs' weights (~0.014 MB at paper scale)."""
        enc_dim = self.grid.output_dim
        density_params = enc_dim * self.density_hidden + self.density_hidden * (
            1 + self.geo_features
        )
        color_in = self.geo_features + self.dir_encoding_dim
        color_params = (
            color_in * self.color_hidden
            + self.color_hidden * self.color_hidden
            + self.color_hidden * 3
        )
        return (density_params + color_params) * self.dtype_bytes

    @property
    def mlp_intermediate_bytes(self) -> int:
        """Peak layer-by-layer intermediate activations for the batch (~32 MB).

        Layer-by-layer processing keeps one hidden-layer activation of the
        whole batch live per MLP (64 wide at FP16 -> 32 MB for 256 K points
        across the two MLPs), matching Table II's "Intermediate Data" column.
        """
        widest = max(self.density_hidden, self.color_hidden)
        return 2 * self.batch.points_per_iteration * widest * self.dtype_bytes // 2

    @property
    def mlp_output_bytes(self) -> int:
        """Density + RGB outputs for the batch (~1.5 MB at FP16)."""
        return self.batch.points_per_iteration * 3 * self.dtype_bytes

    # ------------------------------------------------------------ op counts
    def _hash_int_ops(self) -> float:
        # Per point per level: 8 vertex hashes, each a handful of integer
        # multiply/xor/shift/mod operations (~12 int ops), plus index math.
        per_point = self.grid.num_levels * 8 * 12
        return float(self.batch.points_per_iteration * per_point)

    def _interp_fp_ops(self) -> float:
        # Trilinear interpolation: 8 corners x F features x (1 mul + 1 add).
        per_point = self.grid.num_levels * 8 * self.grid.features_per_entry * 2
        return float(self.batch.points_per_iteration * per_point)

    def _density_mlp_flops(self) -> float:
        enc = self.grid.output_dim
        macs = enc * self.density_hidden + self.density_hidden * (1 + self.geo_features)
        return float(self.batch.points_per_iteration * 2 * macs)

    def _color_mlp_flops(self) -> float:
        color_in = self.geo_features + self.dir_encoding_dim
        macs = (
            color_in * self.color_hidden
            + self.color_hidden * self.color_hidden
            + self.color_hidden * 3
        )
        return float(self.batch.points_per_iteration * 2 * macs)

    # ------------------------------------------------------------ steps
    def step(self, name: StepName) -> StepWorkload:
        """Workload descriptor for one step of one training iteration."""
        batch = self.batch
        if name is StepName.HT:
            return StepWorkload(
                name=name,
                parameter_bytes=self.hash_table_bytes,
                input_bytes=batch.points_per_iteration * batch.position_bytes,
                output_bytes=self.encoding_output_bytes,
                intermediate_bytes=0,
                fp_ops=self._interp_fp_ops(),
                int_ops=self._hash_int_ops(),
                reads_parameters_randomly=True,
            )
        if name is StepName.HT_BACKWARD:
            return StepWorkload(
                name=name,
                parameter_bytes=self.hash_table_bytes,
                input_bytes=self.encoding_output_bytes,
                output_bytes=0,
                intermediate_bytes=0,
                fp_ops=self._interp_fp_ops(),
                int_ops=self._hash_int_ops(),
                reads_parameters_randomly=True,
            )
        if name is StepName.MLP_DENSITY:
            return StepWorkload(
                name=name,
                parameter_bytes=self.mlp_parameter_bytes // 2,
                input_bytes=self.encoding_output_bytes,
                output_bytes=self.mlp_output_bytes // 2,
                intermediate_bytes=self.mlp_intermediate_bytes // 2,
                fp_ops=self._density_mlp_flops(),
                int_ops=0.0,
            )
        if name is StepName.MLP_COLOR:
            return StepWorkload(
                name=name,
                parameter_bytes=self.mlp_parameter_bytes // 2,
                input_bytes=self.encoding_output_bytes // 2,
                output_bytes=self.mlp_output_bytes // 2,
                intermediate_bytes=self.mlp_intermediate_bytes // 2,
                fp_ops=self._color_mlp_flops(),
                int_ops=0.0,
            )
        if name is StepName.MLP_DENSITY_BACKWARD:
            fwd = self.step(StepName.MLP_DENSITY)
            return StepWorkload(
                name=name,
                parameter_bytes=fwd.parameter_bytes,
                input_bytes=fwd.output_bytes,
                output_bytes=fwd.input_bytes,
                intermediate_bytes=fwd.intermediate_bytes,
                fp_ops=2.0 * fwd.fp_ops,
                int_ops=0.0,
            )
        if name is StepName.MLP_COLOR_BACKWARD:
            fwd = self.step(StepName.MLP_COLOR)
            return StepWorkload(
                name=name,
                parameter_bytes=fwd.parameter_bytes,
                input_bytes=fwd.output_bytes,
                output_bytes=fwd.input_bytes,
                intermediate_bytes=fwd.intermediate_bytes,
                fp_ops=2.0 * fwd.fp_ops,
                int_ops=0.0,
            )
        if name is StepName.OTHER:
            # Ray generation, stratified sampling, volume rendering, loss and
            # the Adam update.  The optimizer dominates: it streams the whole
            # hash table plus its gradient and two moment buffers (read) and
            # writes back the table and moments (~6x the table size).
            optimizer_bytes = 6 * self.hash_table_bytes
            render_bytes = batch.points_per_iteration * (batch.position_bytes + batch.color_bytes)
            return StepWorkload(
                name=name,
                parameter_bytes=optimizer_bytes,
                input_bytes=render_bytes,
                output_bytes=render_bytes // 4,
                intermediate_bytes=render_bytes // 2,
                fp_ops=float(
                    batch.points_per_iteration * 60
                    + self.hash_table_bytes // self.dtype_bytes * 8
                ),
                int_ops=float(batch.points_per_iteration * 10),
            )
        raise ValueError(f"unknown step {name}")

    def all_steps(self) -> list[StepWorkload]:
        """Every step of one training iteration, forward then backward."""
        return [self.step(name) for name in StepName]

    def table2(self) -> dict[str, dict[str, float]]:
        """Paper Table II: parameter/input/output/intermediate sizes in MB.

        The MLP rows aggregate MLPd+MLPc (the paper's "MLP stands for
        applying MLPd and MLPc sequentially").
        """
        def mb(x: float) -> float:
            return x / 1024**2

        ht = self.step(StepName.HT)
        ht_b = self.step(StepName.HT_BACKWARD)
        mlp_fwd = [self.step(s) for s in FORWARD_MLP_STEPS]
        mlp_bwd = [self.step(s) for s in BACKWARD_MLP_STEPS]
        return {
            "HT": {
                "param_mb": mb(ht.parameter_bytes),
                "input_mb": mb(ht.input_bytes),
                "output_mb": mb(ht.output_bytes),
                "intermediate_mb": mb(ht.intermediate_bytes),
            },
            "MLP": {
                "param_mb": mb(sum(s.parameter_bytes for s in mlp_fwd)),
                "input_mb": mb(mlp_fwd[0].input_bytes),
                "output_mb": mb(sum(s.output_bytes for s in mlp_fwd)),
                "intermediate_mb": mb(sum(s.intermediate_bytes for s in mlp_fwd)),
            },
            "MLP_b": {
                "param_mb": mb(sum(s.parameter_bytes for s in mlp_bwd)),
                "input_mb": mb(sum(s.input_bytes for s in mlp_bwd)),
                "output_mb": mb(mlp_bwd[0].output_bytes),
                "intermediate_mb": mb(sum(s.intermediate_bytes for s in mlp_bwd)),
            },
            "HT_b": {
                "param_mb": mb(ht_b.parameter_bytes),
                "input_mb": mb(ht_b.input_bytes),
                "output_mb": mb(ht_b.output_bytes),
                "intermediate_mb": mb(ht_b.intermediate_bytes),
            },
        }
