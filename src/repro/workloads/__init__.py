"""Workload characterisation of iNGP training: batch geometry, per-step
sizes/op-counts (Table II) and hash-table access-trace generation."""

from .batch import PAPER_BATCH, BatchGeometry
from .embedding import EmbeddingStreamSource, EmbeddingTableLayout, EmbeddingTraceConfig
from .steps import BACKWARD_MLP_STEPS, FORWARD_MLP_STEPS, INGPWorkloadModel, StepName, StepWorkload
from .traces import (
    HashTraceGenerator,
    TraceConfig,
    generate_batch_points,
    level_lookup_indices,
    lookup_addresses,
)

__all__ = [
    "PAPER_BATCH",
    "BatchGeometry",
    "BACKWARD_MLP_STEPS",
    "EmbeddingStreamSource",
    "EmbeddingTableLayout",
    "EmbeddingTraceConfig",
    "FORWARD_MLP_STEPS",
    "INGPWorkloadModel",
    "StepName",
    "StepWorkload",
    "HashTraceGenerator",
    "TraceConfig",
    "generate_batch_points",
    "level_lookup_indices",
    "lookup_addresses",
]
