"""Next-line / stride stream prefetcher for the SRAM cache tier.

The prefetcher watches the demand line stream (after the scratchpad L0
filter, before the cache) and injects prefetch accesses for the lines it
predicts.  Because the prediction state is a pure function of the demand
stream, the whole plan is computed vectorized up front and merged into one
interleaved stream — each prefetch lands immediately after the demand
access that triggered it — which :func:`repro.mem.cache.simulate_cache`
then services with its ``is_prefetch`` flags.

Policies
--------
``none``
    No prefetching; the demand stream passes through unchanged.
``next_line``
    Every demand access that moves to a new line prefetches the following
    ``degree`` lines (sequential streams, e.g. dense coarse levels).
``stride``
    A stride is confirmed when two consecutive line deltas agree (and are
    non-zero); the confirmed stride is projected ``degree`` lines ahead.
    Degenerates to next-line behaviour on unit-stride streams.

:func:`plan_prefetches_reference` is the retained per-access oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = ["PREFETCH_POLICIES", "PrefetcherConfig", "plan_prefetches", "plan_prefetches_reference"]

PREFETCH_POLICIES = ("none", "next_line", "stride")


@dataclass(frozen=True)
class PrefetcherConfig:
    """Policy and aggressiveness of the stream prefetcher."""

    policy: str = "none"
    degree: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.policy not in PREFETCH_POLICIES:
            raise ValueError(
                f"unknown prefetch policy {self.policy!r}; "
                f"available: {', '.join(PREFETCH_POLICIES)}"
            )
        if self.degree <= 0:
            raise ValueError(f"degree must be positive, got {self.degree}")


def plan_prefetches(
    line_ids: NDArray[Any], config: PrefetcherConfig
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Merge prefetch accesses into a demand line stream.

    Returns ``(merged_line_ids, is_prefetch)`` with every prefetch access
    placed directly after its triggering demand access.  Prefetch targets
    below line 0 are clamped out (not issued).  Exactly equivalent to
    :func:`plan_prefetches_reference`.
    """
    demand = np.asarray(line_ids, dtype=np.int64).ravel()
    n = demand.size
    if config.policy == "none" or n == 0:
        return demand.copy(), np.zeros(n, dtype=bool)

    moved = np.empty(n, dtype=bool)  # access switches to a new line
    moved[0] = True
    moved[1:] = demand[1:] != demand[:-1]
    if config.policy == "next_line":
        trigger = moved
        stride = np.ones(n, dtype=np.int64)
    else:  # stride: confirmed when two consecutive moves repeat one delta
        unique_idx = np.flatnonzero(moved)
        unique = demand[unique_idx]
        deltas = np.diff(unique)
        confirmed = np.zeros(unique.size, dtype=bool)
        confirmed[2:] = deltas[1:] == deltas[:-1]
        trigger = np.zeros(n, dtype=bool)
        trigger[unique_idx[confirmed]] = True
        stride = np.zeros(n, dtype=np.int64)
        stride[unique_idx[1:]] = deltas

    degree = config.degree
    counts = 1 + degree * trigger.astype(np.int64)
    offsets = np.cumsum(counts) - counts
    total = int(counts.sum())
    merged = np.empty(total, dtype=np.int64)
    is_prefetch = np.zeros(total, dtype=bool)
    merged[offsets] = demand
    fire = np.flatnonzero(trigger)
    for k in range(1, degree + 1):
        slot = offsets[fire] + k
        merged[slot] = demand[fire] + stride[fire] * k
        is_prefetch[slot] = True
    if is_prefetch.any():
        keep = ~(is_prefetch & (merged < 0))  # negative targets are not issued
        merged, is_prefetch = merged[keep], is_prefetch[keep]
    return merged, is_prefetch


def plan_prefetches_reference(
    line_ids: NDArray[Any], config: PrefetcherConfig
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Per-access state-machine oracle for :func:`plan_prefetches`."""
    demand = np.asarray(line_ids, dtype=np.int64).ravel()
    merged: list[int] = []
    flags: list[bool] = []
    last_line: int | None = None
    last_delta: int | None = None
    for raw in demand:
        line = int(raw)
        merged.append(line)
        flags.append(False)
        targets: list[int] = []
        if config.policy == "next_line":
            if line != last_line:
                targets = [line + k for k in range(1, config.degree + 1)]
        elif config.policy == "stride":
            if last_line is not None and line != last_line:
                delta = line - last_line
                if delta == last_delta:
                    targets = [line + delta * k for k in range(1, config.degree + 1)]
                last_delta = delta
        for target in targets:
            if target >= 0:
                merged.append(target)
                flags.append(True)
        if line != last_line:
            last_line = line
    return np.asarray(merged, dtype=np.int64), np.asarray(flags, dtype=bool)
