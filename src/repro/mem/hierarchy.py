"""On-chip memory hierarchy between hash-grid lookup streams and DRAM.

:class:`CacheHierarchy` composes the tiers the accelerator puts in front of
the DRAM banks:

* **L0 — scratchpad**: the per-bank :class:`repro.accel.scratchpad.Scratchpad`
  stages the lines of the point currently being interpolated.  An access
  whose line was already touched earlier in the same point, or held from the
  immediately preceding point, never leaves the scratchpad — this is the
  register/scratchpad reuse window of the microarchitecture (the same
  semantics the Fig. 7 locality statistics measure), bounded by the
  scratchpad capacity.
* **L1 — SRAM cache**: the set-associative write-back cache of
  :mod:`repro.mem.cache`, optionally fed by the stream prefetcher of
  :mod:`repro.mem.prefetch`.
* **DRAM**: only L1 misses (plus prefetch fills and dirty writebacks)
  leave the chip; :meth:`CacheHierarchy.filter_stream` returns the
  surviving line addresses so :meth:`repro.dram.system.DRAMSystem.service_batch`
  services exactly the filtered traffic.

Every stage has a vectorized whole-stream engine and a retained per-access
reference oracle (:meth:`CacheHierarchy.filter_stream_reference`), and the
two are exactly equivalent on any input stream.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..accel.scratchpad import Scratchpad
from ..obs import get_metrics, get_tracer
from ..streams.ir import RequestStream, StreamKind
from .cache import (
    MISS,
    PREFETCH_FILL,
    CacheConfig,
    CacheStats,
    simulate_cache,
    simulate_cache_reference,
)
from .prefetch import PrefetcherConfig, plan_prefetches, plan_prefetches_reference

__all__ = [
    "scratchpad_filter",
    "scratchpad_filter_reference",
    "HierarchyStats",
    "FilteredStream",
    "CacheHierarchy",
]


def scratchpad_filter(lines: NDArray[Any], capacity_lines: int) -> NDArray[Any]:
    """Mask of accesses that miss the L0 scratchpad window, shape ``(N, P)``.

    ``lines`` holds the line id of each of the ``P`` lookups of ``N``
    consecutive points in stream order.  An access is filtered (``False``)
    when its line already appeared earlier within the same point, or is
    among the first ``capacity_lines`` distinct lines of the previous point
    (the lines the scratchpad still holds).  Equivalent to
    :func:`scratchpad_filter_reference`.
    """
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    lines = np.asarray(lines, dtype=np.int64)
    if lines.ndim != 2:
        raise ValueError(f"lines must have shape (N, P), got {lines.shape}")
    n, p = lines.shape
    if n == 0:
        return np.zeros((0, p), dtype=bool)
    first = np.ones((n, p), dtype=bool)
    for j in range(1, p):
        duplicate = np.zeros(n, dtype=bool)
        for k in range(j):
            duplicate |= lines[:, j] == lines[:, k]
        first[:, j] = ~duplicate
    rank = np.cumsum(first, axis=1) - 1
    held_eligible = first & (rank < capacity_lines)
    held = np.zeros((n, p), dtype=bool)
    for k in range(p):
        held[1:] |= (lines[1:] == lines[:-1, k : k + 1]) & held_eligible[:-1, k : k + 1]
    return first & ~held


def scratchpad_filter_reference(lines: NDArray[Any], capacity_lines: int) -> NDArray[Any]:
    """Per-point loop oracle for :func:`scratchpad_filter`."""
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    lines = np.asarray(lines, dtype=np.int64)
    n, p = lines.shape
    emit = np.zeros((n, p), dtype=bool)
    held: set[int] = set()
    for i in range(n):
        distinct: list[int] = []
        for j in range(p):
            line = int(lines[i, j])
            if line not in distinct:
                if line not in held:
                    emit[i, j] = True
                distinct.append(line)
        held = set(distinct[:capacity_lines])
    return emit


@dataclass(frozen=True)
class HierarchyStats:
    """Aggregate hit/miss/energy accounting of one filtered stream."""

    num_points: int
    accesses_per_point: int
    l0_accesses: int
    l0_hits: int
    cache: CacheStats
    line_bytes: int
    l0_energy_j: float = 0.0
    cache_energy_j: float = 0.0

    @property
    def l0_hit_rate(self) -> float:
        return self.l0_hits / self.l0_accesses if self.l0_accesses else 0.0

    @property
    def demand_lines(self) -> int:
        """Line requests surviving L0 — the uncached-baseline DRAM traffic."""
        return self.cache.demand_accesses

    @property
    def dram_line_fetches(self) -> int:
        return self.cache.dram_line_fetches

    @property
    def dram_traffic_fraction(self) -> float:
        """DRAM line fetches per uncached-baseline line request (<= ~1)."""
        if self.demand_lines == 0:
            return 1.0
        return self.dram_line_fetches / self.demand_lines

    @property
    def traffic_reduction(self) -> float:
        """Uncached-baseline requests per serviced DRAM fetch (>= 1 is a win)."""
        if self.dram_line_fetches == 0:
            return float("inf") if self.demand_lines else 1.0
        return self.demand_lines / self.dram_line_fetches

    @property
    def overall_hit_rate(self) -> float:
        """Fraction of raw lookups serviced on chip (L0 or L1)."""
        if not self.l0_accesses:
            return 0.0
        return (self.l0_hits + self.cache.hits + self.cache.coalesced) / self.l0_accesses

    @property
    def sram_energy_j(self) -> float:
        return self.l0_energy_j + self.cache_energy_j

    @property
    def energy_per_access_j(self) -> float:
        return self.sram_energy_j / self.l0_accesses if self.l0_accesses else 0.0


@dataclass(frozen=True)
class FilteredStream:
    """Result of pushing one lookup stream through the hierarchy."""

    line_bytes: int
    #: L0-surviving demand line ids, in stream order (the L1 input).
    demand_lines: NDArray[Any] = field(repr=False)
    #: Demand + injected prefetch accesses, and the per-access flags/outcomes.
    merged_lines: NDArray[Any] = field(repr=False)
    is_prefetch: NDArray[Any] = field(repr=False)
    outcomes: NDArray[Any] = field(repr=False)
    #: Line ids fetched from DRAM (demand misses + prefetch fills), stream order.
    dram_lines: NDArray[Any] = field(repr=False)
    stats: HierarchyStats = None

    @property
    def demand_addresses(self) -> NDArray[Any]:
        """Byte addresses of the uncached-baseline DRAM requests."""
        return self.demand_lines * self.line_bytes

    @property
    def dram_addresses(self) -> NDArray[Any]:
        """Byte addresses of the lines that must actually be fetched."""
        return self.dram_lines * self.line_bytes

    def _line_stream(self, lines: NDArray[Any], label: str) -> RequestStream:
        table_entries = int(lines.max()) + 1 if lines.size else 1
        return RequestStream(
            indices=np.asarray(lines, dtype=np.int64).reshape(-1, 1),
            entry_bytes=self.line_bytes,
            table_entries=table_entries,
            kind=StreamKind.READ,
            source="mem.hierarchy",
            label=label,
        )

    def demand_stream(self) -> RequestStream:
        """The uncached-baseline line traffic as a line-read :class:`RequestStream`."""
        return self._line_stream(self.demand_lines, "demand")

    def dram_stream(self) -> RequestStream:
        """The surviving DRAM line fetches as a line-read :class:`RequestStream`."""
        return self._line_stream(self.dram_lines, "dram")


class CacheHierarchy:
    """Scratchpad (L0) + SRAM cache (L1) + prefetcher in front of DRAM."""

    def __init__(
        self,
        cache: CacheConfig | None = None,
        prefetcher: PrefetcherConfig | None = None,
        scratchpad: Scratchpad | None = None,
    ):
        self.cache = cache or CacheConfig()
        self.prefetcher = prefetcher or PrefetcherConfig()
        self.scratchpad = scratchpad or Scratchpad()
        self.capacity_lines = max(1, self.scratchpad.capacity_bytes // self.cache.line_bytes)

    # ----------------------------------------------------------- simulation
    def _prepare(self, addresses: NDArray[Any], accesses_per_point: int) -> NDArray[Any]:
        addr = np.asarray(addresses, dtype=np.int64).ravel()
        if accesses_per_point <= 0:
            raise ValueError("accesses_per_point must be positive")
        if addr.size % accesses_per_point:
            raise ValueError(
                f"stream length {addr.size} is not a multiple of "
                f"accesses_per_point={accesses_per_point}"
            )
        if addr.size and np.any(addr < 0):
            raise ValueError("addresses must be non-negative")
        return (addr // self.cache.line_bytes).reshape(-1, accesses_per_point)

    def _assemble(
        self,
        lines: NDArray[Any],
        emit: NDArray[Any],
        merged: NDArray[Any],
        is_prefetch: NDArray[Any],
        outcomes: NDArray[Any],
        cache_stats: CacheStats,
        entry_bytes: int,
    ) -> FilteredStream:
        num_points, per_point = lines.shape
        l0_accesses = int(lines.size)
        demand = lines[emit]
        dram = merged[(outcomes == MISS) | (outcomes == PREFETCH_FILL)]
        l0_energy = self.scratchpad.access_energy_j(
            l0_accesses * entry_bytes + demand.size * self.cache.line_bytes
        )
        stats = HierarchyStats(
            num_points=num_points,
            accesses_per_point=per_point,
            l0_accesses=l0_accesses,
            l0_hits=l0_accesses - int(demand.size),
            cache=cache_stats,
            line_bytes=self.cache.line_bytes,
            l0_energy_j=l0_energy,
            cache_energy_j=cache_stats.energy_j(self.cache),
        )
        return FilteredStream(
            line_bytes=self.cache.line_bytes,
            demand_lines=demand,
            merged_lines=merged,
            is_prefetch=is_prefetch,
            outcomes=outcomes,
            dram_lines=dram,
            stats=stats,
        )

    def _resolve_stream(
        self,
        stream: RequestStream | NDArray[Any],
        accesses_per_point: int | None,
        writes: bool | None,
        entry_bytes: int | None,
        warn: bool,
    ) -> tuple[NDArray[Any], int, bool, int]:
        """Common argument resolution for the IR and legacy-ndarray forms.

        A :class:`RequestStream` carries its own shape, direction and entry
        width; explicit keyword arguments override them.  A bare ndarray
        falls back to the historical defaults (8 lookups per point, reads,
        4-byte entries) and — on the public entry point — is deprecated.
        """
        if isinstance(stream, RequestStream):
            return (
                stream.addresses,
                stream.accesses_per_point if accesses_per_point is None else accesses_per_point,
                stream.writes if writes is None else writes,
                stream.entry_bytes if entry_bytes is None else entry_bytes,
            )
        if warn:
            warnings.warn(
                "passing a bare address ndarray to CacheHierarchy.filter_stream() "
                "is deprecated; pass a repro.streams.RequestStream instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return (
            np.asarray(stream),
            8 if accesses_per_point is None else accesses_per_point,
            False if writes is None else writes,
            4 if entry_bytes is None else entry_bytes,
        )

    def filter_stream(
        self,
        stream: RequestStream | NDArray[Any],
        accesses_per_point: int | None = None,
        writes: bool | None = None,
        entry_bytes: int | None = None,
    ) -> FilteredStream:
        """Push one request stream through L0 + prefetcher + L1.

        ``stream`` is a :class:`repro.streams.RequestStream` — its point
        shape, access kind (``writes`` models the gradient-scatter
        direction: every demand access writes its line) and ``entry_bytes``
        (which only scales the scratchpad read energy) all come from the IR,
        with the keyword arguments as explicit overrides.  A flat byte
        address ndarray (the layout of
        :func:`repro.workloads.traces.lookup_addresses`) is still accepted
        as a deprecated shim for one release.  Returns the
        :class:`FilteredStream` whose ``dram_stream()`` is the only traffic
        the DRAM system still has to service.
        """
        addresses, accesses_per_point, writes, entry_bytes = self._resolve_stream(
            stream, accesses_per_point, writes, entry_bytes, warn=True
        )
        with get_tracer().span("mem.filter_stream", "mem") as span:
            lines = self._prepare(addresses, accesses_per_point)
            emit = scratchpad_filter(lines, self.capacity_lines)
            demand = lines[emit]
            merged, is_prefetch = plan_prefetches(demand, self.prefetcher)
            is_write = ~is_prefetch if writes else None
            outcomes, cache_stats = simulate_cache(merged, self.cache, is_write, is_prefetch)
            filtered = self._assemble(
                lines, emit, merged, is_prefetch, outcomes, cache_stats, entry_bytes
            )
            if span.enabled:
                stats = filtered.stats
                span.add_args(
                    points=stats.num_points, dram_lines=int(filtered.dram_lines.size)
                )
                metrics = get_metrics()
                metrics.counter("mem.l0_accesses").inc(stats.l0_accesses)
                metrics.counter("mem.l0_hits").inc(stats.l0_hits)
                metrics.counter("mem.cache_hits").inc(stats.cache.hits)
                metrics.counter("mem.cache_misses").inc(stats.cache.misses)
                metrics.counter("mem.dram_line_fetches").inc(int(filtered.dram_lines.size))
            return filtered

    def filter_stream_reference(
        self,
        stream: RequestStream | NDArray[Any],
        accesses_per_point: int | None = None,
        writes: bool | None = None,
        entry_bytes: int | None = None,
    ) -> FilteredStream:
        """Per-access oracle composition for :meth:`filter_stream`."""
        addresses, accesses_per_point, writes, entry_bytes = self._resolve_stream(
            stream, accesses_per_point, writes, entry_bytes, warn=False
        )
        lines = self._prepare(addresses, accesses_per_point)
        emit = scratchpad_filter_reference(lines, self.capacity_lines)
        demand = lines[emit]
        merged, is_prefetch = plan_prefetches_reference(demand, self.prefetcher)
        is_write = ~is_prefetch if writes else None
        outcomes, cache_stats = simulate_cache_reference(merged, self.cache, is_write, is_prefetch)
        return self._assemble(lines, emit, merged, is_prefetch, outcomes, cache_stats, entry_bytes)
