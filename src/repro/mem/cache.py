"""Vectorized set-associative SRAM cache model (LRU, write-back, MSHR).

The cache sits between the hash-grid lookup streams and the DRAM timing
model (:mod:`repro.mem.hierarchy` wires the full tier stack): it receives a
stream of line-granular accesses and decides, exactly and deterministically,
which of them are serviced on chip and which must fetch a line from DRAM.

Model semantics (shared by the vectorized engine and the per-access oracle):

* ``num_sets = capacity_bytes / (line_bytes * ways)`` sets, set index is
  ``line_id % num_sets``, tag is ``line_id // num_sets``.
* LRU replacement with invalid ways filled first (lowest way index wins
  ties), last-use order given by the access's stream position.
* Write-back / write-allocate: a write marks the line dirty; evicting a
  dirty line costs one DRAM writeback (dirty-line accounting).
* MSHR-style duplicate-miss coalescing: a missed line stays "in flight"
  for the next ``mshr_latency`` stream slots; accesses that touch an
  in-flight line are coalesced into the outstanding fill — they are neither
  hits nor new DRAM requests.
* Prefetch accesses (flagged by the caller, see :mod:`repro.mem.prefetch`)
  allocate missing lines (one DRAM fetch each) but are dropped without any
  state change when the line is already present; a later demand touch of a
  prefetched line counts it as a useful prefetch.

The vectorized engine processes whole streams as NumPy arrays in two
segmented passes (the style of the PR 1 hot-path engines): consecutive
same-line accesses within a set collapse into one run (only run heads can
change tag state), and the surviving run heads are swept in "waves" — the
t-th access of every set is processed in one vector step, which is exact
because sets are independent and each set contributes at most one access
per wave.  :func:`simulate_cache_reference` is the retained per-access
oracle the engine is equivalence-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "MISS",
    "HIT",
    "COALESCED",
    "PREFETCH_FILL",
    "PREFETCH_REDUNDANT",
    "CacheConfig",
    "CacheStats",
    "simulate_cache",
    "simulate_cache_reference",
]

#: Per-access outcome codes shared by the engine and the oracle.
MISS = 0                #: demand access, line absent: one DRAM line fetch
HIT = 1                 #: demand access serviced by the cache
COALESCED = 2           #: demand access merged into an in-flight MSHR fill
PREFETCH_FILL = 3       #: prefetch access that fetched a new line from DRAM
PREFETCH_REDUNDANT = 4  #: prefetch access dropped (line already present)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry, policy knobs and access energies of one SRAM cache tier.

    Attributes
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache-line size (power of two; also the DRAM fetch granularity).
    ways:
        Associativity.  ``capacity_bytes // (line_bytes * ways)`` sets must
        come out whole; one set makes the cache fully associative.
    mshr_latency:
        Stream slots a missed line stays in flight (0 disables coalescing).
    access_energy_pj:
        Tag + data array energy of one lookup.
    fill_energy_pj_per_byte:
        Energy of moving one byte on a line fill or writeback.
    """

    capacity_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 4
    mshr_latency: int = 0
    access_energy_pj: float = 1.2
    fill_energy_pj_per_byte: float = 0.08

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line_bytes must be a positive power of two, got {self.line_bytes}")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")
        if self.capacity_bytes <= 0 or self.capacity_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"capacity_bytes ({self.capacity_bytes}) must be a positive multiple of "
                f"line_bytes * ways ({self.line_bytes * self.ways})"
            )
        if self.mshr_latency < 0:
            raise ValueError(f"mshr_latency must be non-negative, got {self.mshr_latency}")
        if self.access_energy_pj < 0 or self.fill_energy_pj_per_byte < 0:
            raise ValueError("access energies must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @classmethod
    def fully_associative(
        cls, capacity_bytes: int, line_bytes: int = 64, **kwargs: Any
    ) -> "CacheConfig":
        """A single-set cache whose associativity equals its line count."""
        return cls(
            capacity_bytes=capacity_bytes,
            line_bytes=line_bytes,
            ways=max(1, capacity_bytes // line_bytes),
            **kwargs,
        )


@dataclass(frozen=True)
class CacheStats:
    """Exact outcome counts of one simulated stream."""

    demand_accesses: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    prefetch_issued: int = 0
    prefetch_fills: int = 0
    prefetch_redundant: int = 0
    prefetch_useful: int = 0
    writebacks: int = 0
    dirty_lines_left: int = 0
    line_bytes: int = 64

    @property
    def hit_rate(self) -> float:
        """Demand hits per demand access (coalesced accesses are not hits)."""
        return self.hits / self.demand_accesses if self.demand_accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.demand_accesses if self.demand_accesses else 0.0

    @property
    def dram_line_fetches(self) -> int:
        """Lines read from DRAM: demand misses plus prefetch fills."""
        return self.misses + self.prefetch_fills

    @property
    def dram_read_bytes(self) -> int:
        return self.dram_line_fetches * self.line_bytes

    @property
    def dram_writeback_bytes(self) -> int:
        return self.writebacks * self.line_bytes

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_writeback_bytes

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched lines later touched by a demand access."""
        return self.prefetch_useful / self.prefetch_fills if self.prefetch_fills else 0.0

    def energy_j(self, config: CacheConfig) -> float:
        """SRAM access + fill/writeback movement energy of the stream."""
        lookups = self.demand_accesses + self.prefetch_issued
        moved = (self.dram_line_fetches + self.writebacks) * self.line_bytes
        return (lookups * config.access_energy_pj + moved * config.fill_energy_pj_per_byte) * 1e-12


def _as_flags(flags: NDArray[Any] | None, n: int, name: str) -> NDArray[Any]:
    if flags is None:
        return np.zeros(n, dtype=bool)
    out = np.asarray(flags, dtype=bool).ravel()
    if out.size != n:
        raise ValueError(f"{name} must have one entry per access ({n}), got {out.size}")
    return out


def _build_stats(
    outcomes: NDArray[Any], writebacks: int, useful: int, dirty_left: int, config: CacheConfig
) -> CacheStats:
    counts = np.bincount(outcomes, minlength=5)
    return CacheStats(
        demand_accesses=int(counts[MISS] + counts[HIT] + counts[COALESCED]),
        hits=int(counts[HIT]),
        misses=int(counts[MISS]),
        coalesced=int(counts[COALESCED]),
        prefetch_issued=int(counts[PREFETCH_FILL] + counts[PREFETCH_REDUNDANT]),
        prefetch_fills=int(counts[PREFETCH_FILL]),
        prefetch_redundant=int(counts[PREFETCH_REDUNDANT]),
        prefetch_useful=useful,
        writebacks=writebacks,
        dirty_lines_left=dirty_left,
        line_bytes=config.line_bytes,
    )


def simulate_cache(
    line_ids: NDArray[Any],
    config: CacheConfig,
    is_write: NDArray[Any] | None = None,
    is_prefetch: NDArray[Any] | None = None,
) -> tuple[NDArray[Any], CacheStats]:
    """Simulate a line-access stream; returns per-access outcomes and stats.

    Parameters
    ----------
    line_ids:
        Flat integer array of line addresses (byte address // line size) in
        stream order.
    config:
        Cache geometry and policy.
    is_write / is_prefetch:
        Optional per-access flags (default all-reads, all-demand).

    Returns
    -------
    (outcomes, stats):
        ``outcomes`` holds one of the module's outcome codes per access;
        ``stats`` the aggregate :class:`CacheStats`.  Exactly equivalent to
        :func:`simulate_cache_reference`.
    """
    lines = np.asarray(line_ids, dtype=np.int64).ravel()
    n = lines.size
    outcomes = np.empty(n, dtype=np.int8)
    if n == 0:
        return outcomes, _build_stats(outcomes, 0, 0, 0, config)
    if np.any(lines < 0):
        raise ValueError("line ids must be non-negative")
    writes = _as_flags(is_write, n, "is_write")
    prefetches = _as_flags(is_prefetch, n, "is_prefetch")
    num_sets, ways, mshr = config.num_sets, config.ways, config.mshr_latency

    sets = lines % num_sets
    tags = lines // num_sets

    # Pass 1 — group accesses by set, keeping stream order inside each set.
    by_set = np.argsort(sets, kind="stable")
    s_sorted, t_sorted = sets[by_set], tags[by_set]
    p_sorted = by_set.astype(np.int64)  # original stream position = LRU clock
    w_sorted, f_sorted = writes[by_set], prefetches[by_set]

    # Pass 2 — collapse consecutive same-line accesses within a set into
    # runs: only the head can change tag state; members are hits (or MSHR
    # coalesces, resolved from the head's fill window afterwards).  Prefetch
    # accesses never merge: a dropped prefetch must not refresh LRU state.
    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = (
        (s_sorted[1:] != s_sorted[:-1])
        | (t_sorted[1:] != t_sorted[:-1])
        | f_sorted[1:]
        | f_sorted[:-1]
    )
    head_idx = np.flatnonzero(head)
    run_id = np.cumsum(head) - 1
    num_runs = head_idx.size
    run_end = np.append(head_idx[1:], n) - 1
    run_write = np.logical_or.reduceat(w_sorted, head_idx)
    run_last_p = p_sorted[run_end]  # stream position of the run's last member

    s_h, t_h, p_h = s_sorted[head_idx], t_sorted[head_idx], p_sorted[head_idx]
    f_h = f_sorted[head_idx]

    # Pass 3 — wave schedule: sort run heads by their within-set ordinal, so
    # wave t (one contiguous slice) holds the t-th surviving access of every
    # set.  Sets are independent and appear at most once per wave, so each
    # wave is one race-free vector step.
    set_start = np.empty(num_runs, dtype=bool)
    set_start[0] = True
    set_start[1:] = s_h[1:] != s_h[:-1]
    starts = np.flatnonzero(set_start)
    per_set = np.diff(np.append(starts, num_runs))
    ordinal = np.arange(num_runs) - np.repeat(starts, per_set)
    by_wave = np.argsort(ordinal, kind="stable")
    s_g, t_g, p_g = s_h[by_wave], t_h[by_wave], p_h[by_wave]
    w_g, f_g, lp_g = run_write[by_wave], f_h[by_wave], run_last_p[by_wave]
    wave_sizes = np.bincount(ordinal)
    bounds = np.append(0, np.cumsum(wave_sizes))

    tag_state = np.zeros((num_sets, ways), dtype=np.int64)
    last_used = np.full((num_sets, ways), -1, dtype=np.int64)  # -1 = invalid way
    dirty = np.zeros((num_sets, ways), dtype=bool)
    fill_done = np.zeros((num_sets, ways), dtype=np.int64)
    prefetched = np.zeros((num_sets, ways), dtype=bool)
    head_out = np.empty(num_runs, dtype=np.int8)
    head_fd = np.empty(num_runs, dtype=np.int64)
    writebacks = 0
    useful = 0

    for wave in range(wave_sizes.size):
        lo, hi = bounds[wave], bounds[wave + 1]
        s, t, p = s_g[lo:hi], t_g[lo:hi], p_g[lo:hi]
        wr, pf, lp = w_g[lo:hi], f_g[lo:hi], lp_g[lo:hi]
        match = (tag_state[s] == t[:, None]) & (last_used[s] >= 0)
        present = match.any(axis=1)
        way = np.argmax(match, axis=1)
        fd = fill_done[s, way]
        inflight = present & (p < fd)
        out = np.where(
            pf,
            np.where(present, PREFETCH_REDUNDANT, PREFETCH_FILL),
            np.where(present, np.where(inflight, COALESCED, HIT), MISS),
        ).astype(np.int8)

        touch = present & ~pf  # demand touch: refresh LRU, absorb writes
        st, wt = s[touch], way[touch]
        last_used[st, wt] = lp[touch]
        dirty[st, wt] |= wr[touch]
        was_prefetched = touch & prefetched[s, way]
        useful += int(was_prefetched.sum())
        prefetched[s[was_prefetched], way[was_prefetched]] = False

        absent = ~present
        sm = s[absent]
        if sm.size:
            victim = np.argmin(last_used[sm], axis=1)  # invalid (-1) ways first
            writebacks += int(((last_used[sm, victim] >= 0) & dirty[sm, victim]).sum())
            tag_state[sm, victim] = t[absent]
            last_used[sm, victim] = lp[absent]
            dirty[sm, victim] = wr[absent] & ~pf[absent]  # prefetch fills start clean
            new_fd = p[absent] + 1 + mshr
            fill_done[sm, victim] = new_fd
            prefetched[sm, victim] = pf[absent]
            fd = fd.copy()
            fd[absent] = new_fd
        head_out[by_wave[lo:hi]] = out
        head_fd[by_wave[lo:hi]] = fd

    outcomes[p_h] = head_out
    members = ~head
    if members.any():
        m_p = p_sorted[members]
        m_fd = head_fd[run_id[members]]
        outcomes[m_p] = np.where(m_p < m_fd, COALESCED, HIT).astype(np.int8)
    dirty_left = int((dirty & (last_used >= 0)).sum())
    return outcomes, _build_stats(outcomes, writebacks, useful, dirty_left, config)


def simulate_cache_reference(
    line_ids: NDArray[Any],
    config: CacheConfig,
    is_write: NDArray[Any] | None = None,
    is_prefetch: NDArray[Any] | None = None,
) -> tuple[NDArray[Any], CacheStats]:
    """Per-access loop oracle for :func:`simulate_cache`.

    One plain-Python state machine step per access; kept as the reference
    implementation the vectorized engine is tested against — do not use on
    paper-scale streams.
    """
    lines = np.asarray(line_ids, dtype=np.int64).ravel()
    n = lines.size
    outcomes = np.empty(n, dtype=np.int8)
    if n and np.any(lines < 0):
        raise ValueError("line ids must be non-negative")
    writes = _as_flags(is_write, n, "is_write")
    prefetches = _as_flags(is_prefetch, n, "is_prefetch")
    num_sets, ways, mshr = config.num_sets, config.ways, config.mshr_latency

    # Per set, per way: [tag, last_used, dirty, fill_done, prefetched]
    state: dict[int, list[list[int]]] = {}
    writebacks = 0
    useful = 0
    for p in range(n):
        line = int(lines[p])
        s, tag = line % num_sets, line // num_sets
        ways_state = state.setdefault(s, [[0, -1, False, 0, False] for _ in range(ways)])
        way = next(
            (w for w in range(ways) if ways_state[w][1] >= 0 and ways_state[w][0] == tag), None
        )
        if prefetches[p]:
            if way is None:
                victim = min(range(ways), key=lambda w: (ways_state[w][1], w))
                if ways_state[victim][1] >= 0 and ways_state[victim][2]:
                    writebacks += 1
                ways_state[victim][:] = [tag, p, False, p + 1 + mshr, True]
                outcomes[p] = PREFETCH_FILL
            else:
                outcomes[p] = PREFETCH_REDUNDANT
        elif way is not None:
            outcomes[p] = COALESCED if p < ways_state[way][3] else HIT
            ways_state[way][1] = p
            ways_state[way][2] = ways_state[way][2] or bool(writes[p])
            if ways_state[way][4]:
                useful += 1
                ways_state[way][4] = False
        else:
            victim = min(range(ways), key=lambda w: (ways_state[w][1], w))
            if ways_state[victim][1] >= 0 and ways_state[victim][2]:
                writebacks += 1
            ways_state[victim][:] = [tag, p, bool(writes[p]), p + 1 + mshr, False]
            outcomes[p] = MISS
    dirty_left = sum(
        1 for ways_state in state.values() for w in ways_state if w[1] >= 0 and w[2]
    )
    return outcomes, _build_stats(outcomes, writebacks, useful, dirty_left, config)
