"""On-chip memory-hierarchy simulator: SRAM cache, prefetcher, tier stack.

The hash-grid locality the paper exploits (Fig. 6/7) only pays off if the
memory system can turn reuse into serviced-request reductions; this package
models the on-chip tiers that do so, between the corner-index streams of
:mod:`repro.core.streaming` and the DRAM timing model of :mod:`repro.dram`:

* :mod:`repro.mem.cache`     — vectorized set-associative LRU cache
  (write-back dirty accounting, MSHR miss coalescing) + per-access oracle.
* :mod:`repro.mem.prefetch`  — next-line / stride stream prefetcher.
* :mod:`repro.mem.hierarchy` — :class:`CacheHierarchy` composing the
  scratchpad L0 window, the prefetcher and the L1 cache; its
  ``filter_stream`` output is what :class:`repro.dram.system.DRAMSystem`
  still has to service.
"""

from .cache import (
    COALESCED,
    HIT,
    MISS,
    PREFETCH_FILL,
    PREFETCH_REDUNDANT,
    CacheConfig,
    CacheStats,
    simulate_cache,
    simulate_cache_reference,
)
from .hierarchy import (
    CacheHierarchy,
    FilteredStream,
    HierarchyStats,
    scratchpad_filter,
    scratchpad_filter_reference,
)
from .prefetch import (
    PREFETCH_POLICIES,
    PrefetcherConfig,
    plan_prefetches,
    plan_prefetches_reference,
)

__all__ = [
    "MISS",
    "HIT",
    "COALESCED",
    "PREFETCH_FILL",
    "PREFETCH_REDUNDANT",
    "CacheConfig",
    "CacheStats",
    "simulate_cache",
    "simulate_cache_reference",
    "PREFETCH_POLICIES",
    "PrefetcherConfig",
    "plan_prefetches",
    "plan_prefetches_reference",
    "CacheHierarchy",
    "FilteredStream",
    "HierarchyStats",
    "scratchpad_filter",
    "scratchpad_filter_reference",
]
