"""``python -m repro`` dispatches to the pipeline CLI."""

from .pipeline.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
