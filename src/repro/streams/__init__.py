"""``repro.streams``: the typed request-stream IR.

See :mod:`repro.streams.ir` for the :class:`RequestStream` dataclass and the
:class:`StreamSource`/:class:`TableLayout` protocols front-ends implement.
"""

from .ir import (
    RequestStream,
    StreamKind,
    StreamSource,
    TableLayout,
    iter_streams,
    table_base_address,
)

__all__ = [
    "RequestStream",
    "StreamKind",
    "StreamSource",
    "TableLayout",
    "iter_streams",
    "table_base_address",
]
