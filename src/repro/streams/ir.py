"""The typed request-stream IR: the front-end / memory-system boundary.

Every front-end (the NeRF hash-grid trace generator, the embedding-table
workload, future serving/sharding producers) compiles its memory traffic
down to one small typed value — a :class:`RequestStream` — instead of the
bare ndarrays whose meaning (corner indices? byte addresses? accesses per
point?) used to be implicit convention at every consumer seam.  The memory
system (``repro.core.streaming`` row-request accounting,
:meth:`repro.mem.hierarchy.CacheHierarchy.filter_stream`,
:meth:`repro.dram.system.DRAMSystem.service_batch`, the NMP accelerator's
:class:`~repro.accel.nmp.AlgorithmLocality`) consumes the IR without knowing
which front-end produced it.

A stream is *table-relative*: it stores per-point table ``indices`` plus the
layout facts (``entry_bytes``, ``table_entries``, ``base_address``) needed
to derive flat byte addresses on demand.  Keeping indices rather than
addresses preserves the information the mapping/conflict analyses need and
makes address derivation exactly the arithmetic of
:func:`repro.workloads.traces.lookup_addresses` — which is what guarantees
byte-identical artifacts across the redesign.

``group_ids`` is the per-point reuse-group axis: consecutive points with
equal ids access identical entry sets (the NeRF cube id of a point; the
bag signature of an embedding lookup), so only the first point of a run
costs memory requests — the register-reuse window of the paper's
microarchitecture, now a first-class IR field instead of a recomputed
side-channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from ..core import precision

__all__ = [
    "StreamKind",
    "RequestStream",
    "TableLayout",
    "StreamSource",
    "iter_streams",
    "table_base_address",
]


class StreamKind(enum.Enum):
    """Direction/shape of the accesses a stream carries."""

    READ = "read"          # plain reads (e.g. cache-line fetch traffic)
    WRITE = "write"        # scatter/update traffic (gradient writes)
    GATHER = "gather"      # indexed reads of table entries (the hot path)


class TableLayout(Protocol):
    """Structural view of a multi-table memory layout.

    Satisfied by :class:`repro.nerf.encoding.HashGridConfig` (levels of a
    multi-resolution hash table) and by
    :class:`repro.workloads.embedding.EmbeddingTableLayout` (a bank of
    embedding tables) without either importing this module.
    """

    @property
    def num_levels(self) -> int: ...

    def level_table_entries(self, level: int) -> int: ...


def table_base_address(layout: TableLayout, level: int, entry_bytes: int) -> int:
    """Byte offset of one table in the back-to-back flat layout.

    Tables (hash-grid levels, embedding tables) are laid out contiguously in
    index order; this is the same arithmetic
    :func:`repro.workloads.traces.lookup_addresses` applies, hoisted to the
    IR so every front-end derives identical flat addresses.
    """
    if level < 0 or level >= layout.num_levels:
        raise ValueError(f"level {level} out of range for {layout.num_levels} tables")
    offset = 0
    for lvl in range(level):
        offset += layout.level_table_entries(lvl) * entry_bytes
    return offset


def _frozen_array(values: Any, dtype: Any) -> NDArray[Any]:
    """A read-only int array for an IR field.

    Never mutates the caller's array: an array (or view) passed in is
    copied before freezing; arrays freshly built from sequences, and arrays
    that are already read-only (memoized artifacts), are adopted as-is.
    """
    array = np.asarray(values, dtype=dtype)
    if array.flags.writeable:
        if array is values or array.base is not None:
            array = array.copy()
        array.flags.writeable = False
    return array


@dataclass(frozen=True)
class RequestStream:
    """One typed stream of table accesses, in stream order.

    Attributes
    ----------
    indices:
        ``(num_points, accesses_per_point)`` table indices, one row per
        streamed point (a NeRF sample's 8 cube corners; an embedding bag's
        pooled lookups).  Always 2-D; a flat per-access stream is a column
        (``accesses_per_point == 1``).
    entry_bytes:
        Bytes of one table entry (features x dtype width — see
        :func:`repro.core.precision.entry_bytes`).
    table_entries:
        Number of entries in the addressed table; every index is below it.
    base_address:
        Byte offset of the table in the flat layout (``addresses`` are
        ``base_address + index * entry_bytes``).
    kind:
        Access kind; :attr:`StreamKind.GATHER` for table lookups.
    dtype:
        Precision name of a stored entry (``fp64``/``fp32``/``fp16``/``int8``).
    group_ids:
        Optional ``(num_points,)`` reuse-group ids: consecutive equal ids
        mark points whose entry set is identical to the previous point's
        (register hits).  ``None`` means every point is its own group.
    source / label:
        Provenance metadata (front-end name; e.g. ``level=3``), carried
        through the store and the observability layer.
    """

    indices: NDArray[Any] = field(repr=False)
    entry_bytes: int
    table_entries: int
    base_address: int = 0
    kind: StreamKind = StreamKind.GATHER
    dtype: str = "fp32"
    group_ids: NDArray[Any] | None = field(default=None, repr=False)
    source: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        indices = _frozen_array(self.indices, np.int64)
        if indices.ndim != 2:
            raise ValueError(f"indices must have shape (N, P), got {indices.shape}")
        if self.entry_bytes <= 0:
            raise ValueError(f"entry_bytes must be positive, got {self.entry_bytes}")
        if self.table_entries <= 0:
            raise ValueError(f"table_entries must be positive, got {self.table_entries}")
        if self.base_address < 0:
            raise ValueError(f"base_address must be non-negative, got {self.base_address}")
        precision.validate_precision(self.dtype)
        if indices.size:
            lo, hi = int(indices.min()), int(indices.max())
            if lo < 0 or hi >= self.table_entries:
                raise ValueError(
                    f"indices must lie in [0, {self.table_entries}), got [{lo}, {hi}]"
                )
        object.__setattr__(self, "indices", indices)
        if self.group_ids is not None:
            groups = _frozen_array(self.group_ids, np.int64)
            if groups.shape != (indices.shape[0],):
                raise ValueError(
                    f"group_ids must have shape ({indices.shape[0]},), got {groups.shape}"
                )
            object.__setattr__(self, "group_ids", groups)

    # ------------------------------------------------------------- derived
    @property
    def num_points(self) -> int:
        """Streamed points (rows of ``indices``)."""
        return int(self.indices.shape[0])

    @property
    def accesses_per_point(self) -> int:
        """Table lookups issued per point (columns of ``indices``)."""
        return int(self.indices.shape[1])

    @property
    def num_accesses(self) -> int:
        return int(self.indices.size)

    @property
    def total_bytes(self) -> int:
        """Useful bytes the stream gathers (before any reuse filtering)."""
        return self.num_accesses * self.entry_bytes

    @property
    def writes(self) -> bool:
        return self.kind is StreamKind.WRITE

    @property
    def addresses(self) -> NDArray[Any]:
        """Flat byte addresses, point-major (the legacy ndarray boundary form).

        Exactly ``base_address + index * entry_bytes`` — bit-identical to
        :func:`repro.workloads.traces.lookup_addresses` on the same indices.
        """
        return self.base_address + self.indices.ravel() * self.entry_bytes

    # ------------------------------------------------------------ reshapes
    def with_order(self, order: NDArray[Any]) -> "RequestStream":
        """The same accesses re-streamed under a point permutation."""
        perm = np.asarray(order, dtype=np.int64)
        return replace(
            self,
            indices=self.indices[perm],
            group_ids=None if self.group_ids is None else self.group_ids[perm],
        )

    def subset(self, keep: NDArray[Any]) -> "RequestStream":
        """The sub-stream of points selected by a boolean mask, order kept.

        This is how occupancy pruning is expressed in the IR: a pruned
        stream is by construction an exact subset of its dense twin.
        """
        mask = np.asarray(keep, dtype=bool)
        if mask.shape != (self.num_points,):
            raise ValueError(f"keep must have shape ({self.num_points},), got {mask.shape}")
        return replace(
            self,
            indices=self.indices[mask],
            group_ids=None if self.group_ids is None else self.group_ids[mask],
        )

    def run_starts(self) -> NDArray[Any]:
        """Boolean mask of points that start a new reuse group.

        The first point of every run of equal consecutive ``group_ids`` —
        the only points that cost memory requests under the register-reuse
        window.  Without ``group_ids`` every point is a run start.
        """
        starts = np.ones(self.num_points, dtype=bool)
        if self.group_ids is not None and self.num_points > 1:
            starts[1:] = np.diff(self.group_ids) != 0
        return starts


@runtime_checkable
class StreamSource(Protocol):
    """A front-end that emits :class:`RequestStream`\\ s over a table layout.

    ``stream(i)`` returns the i-th of ``num_streams`` streams (one per
    hash-grid level; one per embedding table).  Implementations may accept
    extra keyword arguments (e.g. a point order) beyond the protocol.
    """

    @property
    def name(self) -> str: ...

    @property
    def layout(self) -> TableLayout: ...

    @property
    def num_streams(self) -> int: ...

    def stream(self, index: int) -> RequestStream: ...


def iter_streams(source: StreamSource) -> Iterator[RequestStream]:
    """All streams of a source, in table order."""
    for index in range(source.num_streams):
        yield source.stream(index)
