"""Analytical stand-in for the paper's nvprof profiling (Fig. 1 and Fig. 4).

:class:`GPUProfiler` applies the roofline model to the iNGP workload and
produces the two profiling artefacts the paper reports:

* the per-scene training time and its per-step breakdown (Fig. 1), and
* the per-step DRAM read/write throughput plus FP32/FP16/INT32 utilization
  (Fig. 4), from which the "memory-bandwidth-bound" diagnosis follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.steps import StepName
from .roofline import RooflineModel
from .specs import GPUSpec

__all__ = ["KernelProfile", "SceneProfile", "GPUProfiler"]

#: Steps whose traffic is predominantly writes (gradient updates).
_WRITE_HEAVY = {StepName.HT_BACKWARD, StepName.MLP_DENSITY_BACKWARD, StepName.MLP_COLOR_BACKWARD}


@dataclass(frozen=True)
class KernelProfile:
    """Per-step profiling counters (one training iteration)."""

    step: StepName
    seconds: float
    dram_read_gbps: float
    dram_write_gbps: float
    dram_bandwidth_utilization: float
    fp32_utilization: float
    fp16_utilization: float
    int32_utilization: float
    memory_bound: bool

    @property
    def bandwidth_to_compute_ratio(self) -> float:
        """How much higher the DRAM utilization is than the busiest ALU/FPU.

        The paper reports 5.24x–21.44x for the bottleneck steps.
        """
        compute = max(self.fp32_utilization, self.fp16_utilization, self.int32_utilization, 1e-9)
        return self.dram_bandwidth_utilization / compute


@dataclass(frozen=True)
class SceneProfile:
    """Whole-scene training profile on one device (Fig. 1)."""

    gpu_name: str
    training_seconds: float
    breakdown: dict[str, float]
    kernels: dict[str, KernelProfile]

    def bottleneck_fraction(self) -> float:
        """Fraction of time in HT, HT_b and the MLP kernels (paper: 76.4 %)."""
        other = self.breakdown.get(StepName.OTHER.value, 0.0)
        return 1.0 - other


class GPUProfiler:
    """Produces Fig. 1 / Fig. 4-style profiles for a GPU device."""

    def __init__(self, model: RooflineModel):
        self.model = model

    @classmethod
    def for_gpu(cls, gpu: GPUSpec, **kwargs) -> "GPUProfiler":
        return cls(RooflineModel(gpu, **kwargs))

    # ------------------------------------------------------------- kernels
    def profile_step(self, name: StepName) -> KernelProfile:
        timing = self.model.step_timing(name)
        gpu = self.model.gpu
        seconds = timing.seconds
        bytes_per_second = timing.effective_bytes / seconds if seconds > 0 else 0.0
        # Read/write split: forward steps read parameters/inputs and write a
        # smaller output; backward steps write gradients.
        write_fraction = 0.55 if name in _WRITE_HEAVY else 0.15
        dram_read = bytes_per_second * (1.0 - write_fraction) / 1e9
        dram_write = bytes_per_second * write_fraction / 1e9
        utilization = bytes_per_second / (gpu.dram_bandwidth_gbps * 1e9)

        fp_ops_per_second = timing.fp_ops / seconds if seconds > 0 else 0.0
        int_ops_per_second = timing.int_ops / seconds if seconds > 0 else 0.0
        # The fused iNGP kernels execute their floating-point math on the
        # half-precision pipelines; only a small scalar epilogue runs in FP32.
        fp32_util = min(1.0, 0.05 * fp_ops_per_second / (gpu.fp32_gflops * 1e9))
        fp16_util = min(1.0, fp_ops_per_second / (gpu.fp16_gflops * 1e9))
        int32_util = min(1.0, int_ops_per_second / (gpu.int32_gops * 1e9))
        return KernelProfile(
            step=name,
            seconds=seconds,
            dram_read_gbps=dram_read,
            dram_write_gbps=dram_write,
            dram_bandwidth_utilization=utilization,
            fp32_utilization=fp32_util,
            fp16_utilization=fp16_util,
            int32_utilization=int32_util,
            memory_bound=timing.memory_bound,
        )

    # --------------------------------------------------------------- scene
    def profile_scene(self) -> SceneProfile:
        kernels = {name.value: self.profile_step(name) for name in StepName}
        return SceneProfile(
            gpu_name=self.model.gpu.name,
            training_seconds=self.model.scene_training_seconds(),
            breakdown=self.model.breakdown(),
            kernels=kernels,
        )

    def bottleneck_steps(self, threshold: float = 0.05) -> list[StepName]:
        """Steps that exceed ``threshold`` of total training time."""
        breakdown = self.model.breakdown()
        return [
            name
            for name in StepName
            if breakdown[name.value] >= threshold and name is not StepName.OTHER
        ]
