"""GPU device specifications (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "XNX", "TX2", "RTX_2080TI", "QUEST_PRO", "ALL_GPUS", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Device parameters that drive the roofline/profiling models.

    Attributes mirror the rows of Table I: process node, board power, DRAM
    interface and bandwidth, L2 cache, and FP32/INT32/FP16 peak throughput.
    ``measured_training_s`` is the per-scene iNGP training time the paper
    reports for the device (N/A for Quest Pro).
    """

    name: str
    technology_nm: int
    power_w: float
    dram_interface_bits: int
    dram_capacity_gb: float
    dram_type: str
    dram_bandwidth_gbps: float
    l2_cache_mb: float
    fp32_gflops: float
    fp16_gflops: float
    int32_gops: float
    measured_training_s: float | None = None
    is_edge: bool = True

    def validate(self) -> None:
        for field_name in (
            "technology_nm",
            "power_w",
            "dram_interface_bits",
            "dram_capacity_gb",
            "dram_bandwidth_gbps",
            "l2_cache_mb",
            "fp32_gflops",
            "fp16_gflops",
            "int32_gops",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive for {self.name}")


#: NVIDIA Jetson Xavier NX 16GB — the paper's primary edge baseline.
XNX = GPUSpec(
    name="XNX",
    technology_nm=16,
    power_w=20.0,
    dram_interface_bits=128,
    dram_capacity_gb=16.0,
    dram_type="LPDDR4x",
    dram_bandwidth_gbps=59.7,
    l2_cache_mb=0.5,
    fp32_gflops=885.0,
    fp16_gflops=1690.0,
    int32_gops=885.0,
    measured_training_s=7088.0,
    is_edge=True,
)

#: NVIDIA Jetson TX2.
TX2 = GPUSpec(
    name="TX2",
    technology_nm=16,
    power_w=15.0,
    dram_interface_bits=128,
    dram_capacity_gb=8.0,
    dram_type="LPDDR4",
    dram_bandwidth_gbps=25.6,
    l2_cache_mb=0.5,
    fp32_gflops=750.0,
    fp16_gflops=1500.0,
    int32_gops=750.0,
    measured_training_s=44653.0,
    is_edge=True,
)

#: NVIDIA GeForce RTX 2080 Ti — the paper's cloud baseline.
RTX_2080TI = GPUSpec(
    name="2080Ti",
    technology_nm=12,
    power_w=250.0,
    dram_interface_bits=352,
    dram_capacity_gb=11.0,
    dram_type="GDDR6",
    dram_bandwidth_gbps=616.0,
    l2_cache_mb=5.5,
    fp32_gflops=13450.0,
    fp16_gflops=26900.0,
    int32_gops=13450.0,
    measured_training_s=306.0,
    is_edge=False,
)

#: Qualcomm Adreno 650 (Meta Quest Pro) — listed for context in Table I.
QUEST_PRO = GPUSpec(
    name="QuestPro",
    technology_nm=7,
    power_w=5.0,
    dram_interface_bits=64,
    dram_capacity_gb=12.0,
    dram_type="LPDDR5",
    dram_bandwidth_gbps=44.0,
    l2_cache_mb=1.0,
    fp32_gflops=955.0,
    fp16_gflops=1850.0,
    int32_gops=955.0,
    measured_training_s=None,
    is_edge=True,
)

ALL_GPUS = {gpu.name: gpu for gpu in (XNX, TX2, RTX_2080TI, QUEST_PRO)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a device spec by its Table I name (case-insensitive)."""
    for key, gpu in ALL_GPUS.items():
        if key.lower() == name.lower():
            return gpu
    raise KeyError(f"unknown GPU {name!r}; available: {', '.join(ALL_GPUS)}")
