"""GPU roofline latency model for the iNGP training steps.

The paper profiles iNGP training with nvprof on physical GPUs; here the
per-step latencies are estimated from first principles instead:

* the number of bytes each step must move through DRAM (from
  :class:`repro.workloads.steps.INGPWorkloadModel`, including the
  transaction-granularity amplification suffered by random 32-bit hash-table
  lookups and the L2-capacity effect that lets larger caches absorb part of
  the multi-resolution table),
* the paper's *measured* per-step DRAM bandwidth utilizations (Fig. 4),
  which capture how efficiently each access pattern uses the interface, and
* a compute term from the step's FP/INT operation counts.

``step_time = max(memory_time, compute_time)`` per step; all bottleneck
steps end up memory-bound, reproducing the paper's headline observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nerf.encoding import HashGridConfig
from ..workloads.batch import BatchGeometry, PAPER_BATCH
from ..workloads.steps import INGPWorkloadModel, StepName
from .specs import GPUSpec

__all__ = ["StepTiming", "RooflineModel", "MEASURED_DRAM_UTILIZATION"]


#: Per-step DRAM bandwidth utilization measured by the paper on XNX (Fig. 4
#: and Sec. II-B).  These act as access-pattern efficiency factors: random
#: fine-grained lookups reach ~61% of peak, streaming MLP traffic ~47%, the
#: MLP backward passes ~74%, and the read-modify-write hash-table backward
#: only ~35% because of idle gaps between the gradient reads and writes.
MEASURED_DRAM_UTILIZATION = {
    StepName.HT: 0.613,
    StepName.HT_BACKWARD: 0.35,
    StepName.MLP_DENSITY: 0.475,
    StepName.MLP_COLOR: 0.475,
    StepName.MLP_DENSITY_BACKWARD: 0.737,
    StepName.MLP_COLOR_BACKWARD: 0.737,
    StepName.OTHER: 0.55,
}

#: Fraction of the peak FP16/INT32 throughput the fused iNGP kernels achieve.
#: tiny-cuda-nn's fully-fused MLPs run on the half-precision pipelines at a
#: healthy fraction of peak, which is why the paper finds every bottleneck
#: step memory-bound rather than compute-bound (Fig. 4: FP utilization
#: <= 1.6% of the *device*, because the kernels simply do not need more math).
COMPUTE_EFFICIENCY_FP = 0.6
COMPUTE_EFFICIENCY_INT = 0.25

#: Bytes actually moved per random hash-table lookup in the forward pass: a
#: 32-bit embedding entry costs one 64-byte DRAM transaction on these GPUs.
RANDOM_LOOKUP_TRANSACTION_BYTES = 64

#: The backward pass updates each touched entry with a 32-bit atomic, which
#: the memory system services at 32-byte sector granularity.
RANDOM_UPDATE_TRANSACTION_BYTES = 32


@dataclass(frozen=True)
class StepTiming:
    """Latency decomposition for one step of one training iteration."""

    name: StepName
    memory_seconds: float
    compute_seconds: float
    effective_bytes: float
    fp_ops: float
    int_ops: float

    @property
    def seconds(self) -> float:
        return max(self.memory_seconds, self.compute_seconds)

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.compute_seconds


class RooflineModel:
    """Estimates per-step and per-scene iNGP training time on a GPU."""

    def __init__(
        self,
        gpu: GPUSpec,
        grid_config: HashGridConfig | None = None,
        batch: BatchGeometry | None = None,
        workload: INGPWorkloadModel | None = None,
    ):
        gpu.validate()
        self.gpu = gpu
        self.workload = workload or INGPWorkloadModel(grid_config, batch or PAPER_BATCH)
        self.batch = self.workload.batch
        self.grid = self.workload.grid

    # ------------------------------------------------------------ traffic
    def _hash_lookup_bytes(self, transaction_bytes: int = RANDOM_LOOKUP_TRANSACTION_BYTES) -> float:
        """Effective DRAM bytes for one iteration of hash-table lookups."""
        lookups = self.batch.points_per_iteration * self.grid.num_levels * 8
        raw = lookups * transaction_bytes
        return raw * (1.0 - self._cache_hit_fraction())

    def _cache_hit_fraction(self) -> float:
        """Fraction of hash-table lookups served by the GPU L2 cache.

        The working set per iteration spans all ``L`` levels; the cache can
        only retain ``l2_cache`` bytes of it, so the hit fraction scales with
        the cache-to-table ratio (capped below 1).  This is the capacity
        argument of Sec. II-B: each 2 MB level already exceeds the 512 KB
        edge-GPU L2.
        """
        table_bytes = self.workload.hash_table_bytes
        if table_bytes <= 0:
            return 0.0
        ratio = (self.gpu.l2_cache_mb * 1024**2) / table_bytes
        return min(0.85, ratio)

    def effective_bytes(self, name: StepName) -> float:
        """DRAM traffic of one step for one iteration, in bytes."""
        step = self.workload.step(name)
        if name is StepName.HT:
            return self._hash_lookup_bytes() + step.input_bytes + step.output_bytes
        if name is StepName.HT_BACKWARD:
            # Gradient accumulation performs one narrow atomic update per
            # touched entry; the latency cost of the read-modify-write shows
            # up as the low measured utilization rather than extra bytes.
            return self._hash_lookup_bytes(RANDOM_UPDATE_TRANSACTION_BYTES) + step.input_bytes
        return step.dram_traffic_bytes

    # ------------------------------------------------------------- timing
    def step_timing(self, name: StepName) -> StepTiming:
        """Latency of one step for a single training iteration."""
        step = self.workload.step(name)
        bytes_moved = self.effective_bytes(name)
        utilization = MEASURED_DRAM_UTILIZATION[name]
        achieved_bw = self.gpu.dram_bandwidth_gbps * 1e9 * utilization
        memory_seconds = bytes_moved / achieved_bw

        fp_throughput = self.gpu.fp16_gflops * 1e9 * COMPUTE_EFFICIENCY_FP
        int_throughput = self.gpu.int32_gops * 1e9 * COMPUTE_EFFICIENCY_INT
        compute_seconds = step.fp_ops / fp_throughput + step.int_ops / int_throughput
        return StepTiming(
            name=name,
            memory_seconds=memory_seconds,
            compute_seconds=compute_seconds,
            effective_bytes=bytes_moved,
            fp_ops=step.fp_ops,
            int_ops=step.int_ops,
        )

    def all_step_timings(self) -> dict[StepName, StepTiming]:
        return {name: self.step_timing(name) for name in StepName}

    def iteration_seconds(self) -> float:
        """Latency of one full training iteration."""
        return sum(t.seconds for t in self.all_step_timings().values())

    def scene_training_seconds(self) -> float:
        """End-to-end per-scene training time (Fig. 1(a))."""
        return self.iteration_seconds() * self.batch.iterations_per_scene

    def breakdown(self) -> dict[str, float]:
        """Fractional training-time breakdown by step (Fig. 1(b))."""
        timings = self.all_step_timings()
        total = sum(t.seconds for t in timings.values())
        return {name.value: t.seconds / total for name, t in timings.items()}

    # --------------------------------------------------------------- energy
    def scene_training_energy_j(self, utilization_of_tdp: float = 0.75) -> float:
        """Per-scene training energy assuming a fraction of board power.

        Edge GPUs running a memory-bound workload draw well below TDP; the
        75 % default keeps the energy-efficiency ratios of Fig. 11(b) in the
        right regime without a per-rail power model.
        """
        if not 0.0 < utilization_of_tdp <= 1.0:
            raise ValueError("utilization_of_tdp must be in (0, 1]")
        return self.scene_training_seconds() * self.gpu.power_w * utilization_of_tdp
