"""Edge/cloud GPU baselines: Table I specs, roofline model and profiler."""

from .profiler import GPUProfiler, KernelProfile, SceneProfile
from .roofline import MEASURED_DRAM_UTILIZATION, RooflineModel, StepTiming
from .specs import ALL_GPUS, QUEST_PRO, RTX_2080TI, TX2, XNX, GPUSpec, get_gpu

__all__ = [
    "GPUProfiler",
    "KernelProfile",
    "SceneProfile",
    "MEASURED_DRAM_UTILIZATION",
    "RooflineModel",
    "StepTiming",
    "ALL_GPUS",
    "QUEST_PRO",
    "RTX_2080TI",
    "TX2",
    "XNX",
    "GPUSpec",
    "get_gpu",
]
