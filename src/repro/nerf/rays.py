"""Ray generation and point sampling (vanilla-NeRF Steps (a)-(b)).

Rays are parameterised as ``r(t) = o + t * d`` with the camera origin ``o``
and unit direction ``d``.  Points are sampled along each ray either with
uniform spacing or stratified (jittered) spacing between the near and far
planes.  With an occupancy grid (:mod:`repro.nerf.occupancy`) the sampler
additionally returns the adaptive-marching keep mask, so callers evaluate
the field only where space is occupied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from .occupancy import OccupancyGrid

__all__ = ["RayBundle", "generate_rays", "sample_along_rays", "stratified_t_values"]


@dataclass
class RayBundle:
    """A batch of rays.

    Attributes
    ----------
    origins:
        ``(R, 3)`` camera-space ray origins (the camera position).
    directions:
        ``(R, 3)`` unit direction vectors.
    pixel_indices:
        ``(R, 2)`` integer ``(row, col)`` of the pixel each ray goes through,
        or ``None`` when the bundle is synthetic.
    """

    origins: np.ndarray
    directions: np.ndarray
    pixel_indices: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.origins = np.asarray(self.origins, dtype=np.float64)
        self.directions = np.asarray(self.directions, dtype=np.float64)
        if self.origins.shape != self.directions.shape or self.origins.shape[-1] != 3:
            raise ValueError(
                f"origins {self.origins.shape} and directions {self.directions.shape} "
                f"must both be (R, 3)"
            )

    def __len__(self) -> int:
        return self.origins.shape[0]

    def select(self, indices: np.ndarray) -> "RayBundle":
        """Return a sub-bundle with the given ray indices."""
        pix = None if self.pixel_indices is None else self.pixel_indices[indices]
        return RayBundle(self.origins[indices], self.directions[indices], pix)


def generate_rays(
    camera_to_world: np.ndarray,
    intrinsics: np.ndarray,
    height: int,
    width: int,
) -> RayBundle:
    """Generate one ray per pixel of an image.

    Parameters
    ----------
    camera_to_world:
        ``(4, 4)`` or ``(3, 4)`` camera-to-world pose matrix using the OpenGL
        convention (camera looks down ``-z``).
    intrinsics:
        ``(3, 3)`` pinhole intrinsics ``[[fx, 0, cx], [0, fy, cy], [0, 0, 1]]``.
    height, width:
        Image resolution in pixels.

    Returns
    -------
    RayBundle
        One ray per pixel in row-major order, with ``pixel_indices`` filled.
    """
    camera_to_world = np.asarray(camera_to_world, dtype=np.float64)
    intrinsics = np.asarray(intrinsics, dtype=np.float64)
    if intrinsics.shape != (3, 3):
        raise ValueError(f"intrinsics must be (3, 3), got {intrinsics.shape}")
    fx, fy = intrinsics[0, 0], intrinsics[1, 1]
    cx, cy = intrinsics[0, 2], intrinsics[1, 2]

    rows, cols = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
    # Pixel centers.
    x = (cols + 0.5 - cx) / fx
    y = -(rows + 0.5 - cy) / fy
    z = -np.ones_like(x)
    dirs_cam = np.stack([x, y, z], axis=-1).reshape(-1, 3)

    rotation = camera_to_world[:3, :3]
    translation = camera_to_world[:3, 3]
    dirs_world = dirs_cam @ rotation.T
    dirs_world = dirs_world / np.linalg.norm(dirs_world, axis=-1, keepdims=True)
    origins = np.broadcast_to(translation, dirs_world.shape).copy()
    pixel_indices = np.stack([rows.reshape(-1), cols.reshape(-1)], axis=-1)
    return RayBundle(origins, dirs_world, pixel_indices)


def stratified_t_values(
    num_rays: int,
    num_samples: int,
    near: float,
    far: float,
    rng: np.random.Generator | None = None,
    jitter: bool = True,
) -> np.ndarray:
    """Sample distances ``t_i`` along rays, shape ``(num_rays, num_samples)``.

    With ``jitter=True`` (training), one uniform sample is drawn per bin
    (stratified sampling as in vanilla NeRF); otherwise bin centers are used
    (evaluation/rendering).
    """
    if num_samples <= 0 or num_rays <= 0:
        raise ValueError("num_rays and num_samples must be positive")
    if far <= near:
        raise ValueError(f"far ({far}) must exceed near ({near})")
    edges = np.linspace(near, far, num_samples + 1)
    lower, upper = edges[:-1], edges[1:]
    if jitter:
        rng = rng or np.random.default_rng()
        u = rng.random((num_rays, num_samples))
    else:
        u = np.full((num_rays, num_samples), 0.5)
    return lower[None, :] + u * (upper - lower)[None, :]


def sample_along_rays(
    rays: RayBundle,
    t_values: np.ndarray,
    occupancy: "OccupancyGrid | None" = None,
    normalize: Callable[[np.ndarray], np.ndarray] | None = None,
):
    """Points ``o + t * d`` for every ray/sample pair, shape ``(R, S, 3)``.

    With ``occupancy=`` the sampler switches to adaptive marching and returns
    ``(points, mask)``: ``mask`` is the ``(R, S)`` boolean keep mask of
    samples whose grid cell is occupied.  ``normalize`` maps world points to
    the grid's unit cube before the query (e.g. a dataset's
    ``normalize_positions``); without it the points are queried as-is.
    """
    t_values = np.asarray(t_values, dtype=np.float64)
    if t_values.ndim == 1:
        t_values = np.broadcast_to(t_values, (len(rays), t_values.shape[0]))
    if t_values.shape[0] != len(rays):
        raise ValueError(f"t_values first dim {t_values.shape[0]} != number of rays {len(rays)}")
    points = rays.origins[:, None, :] + t_values[:, :, None] * rays.directions[:, None, :]
    if occupancy is None:
        return points
    unit = points if normalize is None else normalize(points)
    return points, occupancy.occupied(unit)
