"""Adam optimizer for lists of backend (``repro.core.xp``) parameter arrays."""

from __future__ import annotations

import numpy as np

from ..core import xp

__all__ = ["Adam"]


class Adam:
    """Adam with the standard bias-corrected first/second moment estimates.

    The optimizer holds *references* to the parameter and gradient arrays and
    updates the parameters in place, so modules keep owning their storage
    (mirroring how the embedding tables and MLP weights live in DRAM in the
    accelerator model).
    """

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.99,
        epsilon: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must have the same length")
        for p, g in zip(parameters, gradients):
            if p.shape != g.shape:
                raise ValueError(
                    f"parameter shape {p.shape} does not match gradient shape {g.shape}"
                )
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.parameters = parameters
        self.gradients = gradients
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [xp.zeros_like(p, dtype=np.float32) for p in parameters]
        self._v = [xp.zeros_like(p, dtype=np.float32) for p in parameters]

    def step(self) -> None:
        """Apply one Adam update using the currently accumulated gradients."""
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for p, g, m, v in zip(self.parameters, self.gradients, self._m, self._v):
            grad = g
            if self.weight_decay:
                grad = grad + self.weight_decay * p
            m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[...] = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            # The in-place subtract casts the float32 update to p.dtype itself
            # (same-kind casting), so no per-step astype temporary is needed.
            p -= self.learning_rate * m_hat / (xp.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for g in self.gradients:
            g[...] = 0.0
