"""Rendering-quality metrics: MSE, PSNR and a simplified SSIM."""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

__all__ = ["mse", "psnr", "ssim"]


def mse(predicted: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error between two images/arrays in ``[0, 1]``."""
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    return float(np.mean((predicted - target) ** 2))


def psnr(predicted: np.ndarray, target: np.ndarray, max_value: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better, Tab. IV metric)."""
    err = mse(predicted, target)
    if err <= 0.0:
        return float("inf")
    return float(10.0 * np.log10(max_value**2 / err))


def ssim(
    predicted: np.ndarray, target: np.ndarray, window: int = 7, max_value: float = 1.0
) -> float:
    """Structural similarity with a uniform window (simplified, single scale).

    Accepts ``(H, W)`` or ``(H, W, C)`` images; channels are averaged.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    if predicted.ndim == 2:
        predicted = predicted[..., None]
        target = target[..., None]
    c1 = (0.01 * max_value) ** 2
    c2 = (0.03 * max_value) ** 2
    scores = []
    for ch in range(predicted.shape[-1]):
        x = predicted[..., ch]
        y = target[..., ch]
        mu_x = uniform_filter(x, window)
        mu_y = uniform_filter(y, window)
        sigma_x = uniform_filter(x * x, window) - mu_x**2
        sigma_y = uniform_filter(y * y, window) - mu_y**2
        sigma_xy = uniform_filter(x * y, window) - mu_x * mu_y
        score = ((2 * mu_x * mu_y + c1) * (2 * sigma_xy + c2)) / (
            (mu_x**2 + mu_y**2 + c1) * (sigma_x + sigma_y + c2)
        )
        scores.append(score.mean())
    return float(np.mean(scores))
