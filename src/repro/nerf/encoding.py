"""Input encodings for radiance fields.

Two encodings are provided:

* :class:`HashGridEncoding` — iNGP's multi-resolution hash encoding with a
  pluggable hash mapping function (original prime-XOR or Instant-NeRF's
  Morton locality hash) and trilinear interpolation, including the backward
  pass that scatters gradients into the embedding tables.
* :class:`FrequencyEncoding` — the sinusoidal positional encoding of vanilla
  NeRF, used by the vanilla-NeRF baseline and for view-direction encoding.

Array math goes through the :mod:`repro.core.xp` backend shim (numpy by
default), with hand-written reverse-mode gradients.  The table precision is
an axis of :class:`HashGridConfig`: float tables (``fp64``/``fp32``/``fp16``)
train end to end, while ``int8`` tables store affine-quantized entries that
are dequantized on gather (inference only — see :meth:`quantized_int8`).
The ``*_reference`` oracles stay pure numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..core import precision, xp
from ..core.hashing import DenseGridIndexer, HashFunction, OriginalSpatialHash

__all__ = [
    "HashGridConfig",
    "HashGridEncoding",
    "FrequencyEncoding",
    "level_resolutions",
]


def level_resolutions(num_levels: int, base_resolution: int, max_resolution: int) -> list[int]:
    """Per-level grid resolutions following iNGP's geometric progression.

    ``N_l = floor(N_min * b**l)`` with the growth factor ``b`` chosen so that
    level ``L-1`` reaches ``max_resolution``.
    """
    if num_levels <= 0:
        raise ValueError("num_levels must be positive")
    if base_resolution <= 0 or max_resolution < base_resolution:
        raise ValueError("require 0 < base_resolution <= max_resolution")
    if num_levels == 1:
        return [base_resolution]
    growth = math.exp((math.log(max_resolution) - math.log(base_resolution)) / (num_levels - 1))
    return [int(math.floor(base_resolution * growth**level)) for level in range(num_levels)]


@dataclass(frozen=True)
class HashGridConfig:
    """Configuration of the multi-resolution hash table.

    Paper-scale defaults match iNGP: ``L=16`` levels, ``T=2**19`` entries per
    level, ``F=2`` features per entry, base resolution 16, finest 2048.

    ``dtype`` names the precision table entries are stored (and the encoding
    computed) in: one of :data:`repro.core.precision.PRECISIONS`.  The
    default ``fp32`` matches the historical float32 tables; ``int8`` stores
    affine-quantized entries dequantized to float32 on gather.
    """

    num_levels: int = 16
    table_size: int = 2**19
    features_per_entry: int = 2
    base_resolution: int = 16
    max_resolution: int = 2048
    hash_fn: HashFunction = field(default_factory=OriginalSpatialHash)
    dtype: str = "fp32"

    def __post_init__(self) -> None:
        precision.validate_precision(self.dtype)

    @property
    def resolutions(self) -> list[int]:
        return level_resolutions(self.num_levels, self.base_resolution, self.max_resolution)

    @property
    def output_dim(self) -> int:
        return self.num_levels * self.features_per_entry

    @property
    def entry_bytes(self) -> int:
        """Bytes of one table entry (``F`` features at this precision)."""
        return precision.entry_bytes(self.dtype, self.features_per_entry)

    def level_table_entries(self, level: int) -> int:
        """Actual number of table entries used by a level.

        Coarse levels whose dense grid is smaller than ``T`` store the grid
        directly (dense indexing); finer levels use ``T`` hashed entries.
        """
        res = self.resolutions[level]
        dense = (res + 1) ** 3
        return min(dense, self.table_size)

    def level_uses_hash(self, level: int) -> bool:
        res = self.resolutions[level]
        return (res + 1) ** 3 > self.table_size

    def table_bytes(self, dtype_bytes: int | None = None) -> int:
        """Total hash-table parameter footprint in bytes.

        ``dtype_bytes`` overrides the per-scalar width; by default it is
        derived from ``dtype`` (4 for the fp32 default).
        """
        width = precision.dtype_bytes(self.dtype) if dtype_bytes is None else dtype_bytes
        total_entries = sum(self.level_table_entries(lvl) for lvl in range(self.num_levels))
        return total_entries * self.features_per_entry * width


class HashGridEncoding:
    """Multi-resolution hash encoding (iNGP Steps (1)-(4)).

    The forward pass implements, per level: hashing of the 8 surrounding cube
    vertices, embedding lookup, trilinear interpolation, and finally the
    concatenation across levels.  The backward pass accumulates gradients
    into the embedding tables with the same trilinear weights.

    With ``config.dtype == "int8"`` the tables hold quantized codes plus a
    per-level ``(scale, zero_point)`` pair; gathers dequantize to float32 and
    :meth:`backward` refuses to run (int8 tables are inference-only — train
    a float encoding and convert it with :meth:`quantized_int8`).
    """

    def __init__(
        self, config: HashGridConfig | None = None, rng: np.random.Generator | None = None
    ):
        self.config = config or HashGridConfig()
        rng = rng or np.random.default_rng(0)
        cfg = self.config
        self._value_dtype = precision.compute_dtype(cfg.dtype)
        self._grad_dtype = np.float64 if cfg.dtype == "fp64" else np.float32
        self._quantized = cfg.dtype == "int8"
        # iNGP initialises embeddings uniformly in [-1e-4, 1e-4].
        init = [
            rng.uniform(
                -1e-4,
                1e-4,
                size=(cfg.level_table_entries(lvl), cfg.features_per_entry),
            )
            for lvl in range(cfg.num_levels)
        ]
        self.scales: list[float] = [1.0] * cfg.num_levels
        self.zero_points: list[float] = [0.0] * cfg.num_levels
        if self._quantized:
            self.embeddings: list[np.ndarray] = []
            for lvl, table in enumerate(init):
                codes, scale, zero = precision.quantize_int8(table)
                self.embeddings.append(xp.asarray(codes))
                self.scales[lvl] = scale
                self.zero_points[lvl] = zero
        else:
            storage = precision.storage_dtype(cfg.dtype)
            self.embeddings = [xp.asarray(table.astype(storage)) for table in init]
        self.grads: list[np.ndarray] = [
            xp.zeros(e.shape, dtype=self._grad_dtype) for e in self.embeddings
        ]
        self._cache: dict | None = None

    # ------------------------------------------------------------------ API
    @property
    def output_dim(self) -> int:
        return self.config.output_dim

    def parameters(self) -> list[np.ndarray]:
        return self.embeddings

    def gradients(self) -> list[np.ndarray]:
        return self.grads

    def zero_grad(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def num_parameters(self) -> int:
        return int(sum(e.size for e in self.embeddings))

    def quantized_int8(self, rng: np.random.Generator | None = None) -> HashGridEncoding:
        """Post-training int8 quantization: a new encoding with code tables.

        Each level's float table is affine-quantized independently (its own
        ``scale``/``zero_point``), which bounds the per-entry reconstruction
        error by half a code step of that level's value range.
        """
        if self._quantized:
            raise ValueError("encoding is already int8-quantized")
        out = HashGridEncoding(replace(self.config, dtype="int8"), rng=rng)
        for level, emb in enumerate(self.embeddings):
            codes, scale, zero = precision.quantize_int8(xp.asnumpy(emb))
            out.embeddings[level] = xp.asarray(codes)
            out.scales[level] = scale
            out.zero_points[level] = zero
        return out

    def _gathered_values(self, level: int, gathered: np.ndarray) -> np.ndarray:
        """Table entries in compute precision (dequantizes int8 codes)."""
        if self._quantized:
            return precision.dequantize_int8(
                gathered, self.scales[level], self.zero_points[level], dtype=self._value_dtype
            )
        return gathered

    # ------------------------------------------------------- index helpers
    def vertex_indices(
        self, positions: np.ndarray, level: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Hash-table indices and interpolation weights for one level.

        Parameters
        ----------
        positions:
            ``(N, 3)`` float array with coordinates in ``[0, 1]``.
        level:
            Level index in ``[0, L)``.

        Returns
        -------
        (indices, weights, base_coords):
            ``indices`` is ``(N, 8)`` int64 table indices, ``weights`` is the
            ``(N, 8)`` trilinear weight of each corner in the encoding's
            compute dtype (float32 by default), and ``base_coords`` is the
            ``(N, 3)`` integer lower-corner vertex of each cube.
        """
        cfg = self.config
        res = cfg.resolutions[level]
        pos = xp.clip(xp.asarray(positions, dtype=np.float64), 0.0, 1.0)
        scaled = pos * res
        base = xp.floor(scaled).astype(np.int64)
        base = xp.clip(base, 0, res - 1)
        frac = scaled - base  # in [0, 1)

        offsets = xp.array(
            [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.int64
        )  # (8, 3)
        corners = base[:, None, :] + offsets[None, :, :]  # (N, 8, 3)

        table_entries = cfg.level_table_entries(level)
        if cfg.level_uses_hash(level):
            idx = cfg.hash_fn(corners.reshape(-1, 3), table_entries).reshape(-1, 8)
        else:
            idx = DenseGridIndexer(res)(corners.reshape(-1, 3), table_entries).reshape(-1, 8)

        # Trilinear weights: product over axes of (1-frac) or frac per corner.
        w = xp.ones((pos.shape[0], 8), dtype=np.float64)
        for axis in range(3):
            take_hi = offsets[:, axis][None, :]  # (1, 8)
            f = frac[:, axis][:, None]  # (N, 1)
            w = w * xp.where(take_hi == 1, f, 1.0 - f)
        return idx, w.astype(self._value_dtype), base

    #: Points per block of the fused multi-level pass.  The block bounds the
    #: working set ((L, block, 8, 3) corners and friends) to a few MB so the
    #: intermediate arrays stay cache/allocator-friendly at paper-scale N;
    #: an unblocked (L, N, 8, 3) broadcast at N=256K would materialize close
    #: to a GB of short-lived temporaries and run slower than the level loop.
    MULTILEVEL_BLOCK = 4096

    def multilevel_vertex_indices(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Hash-table indices and weights for *all* levels in one fused pass.

        The per-level geometry (cube bases, fractional offsets, trilinear
        weights) is a broadcast over a ``(L, block, ...)`` batch, and each
        level's 8 corner indices come from one incremental
        :meth:`HashFunction.corner_hashes` call on the base vertices — the
        ``(L, N, 8, 3)`` corner expansion of the per-level path is never
        materialized.  Produces bit-identical results to calling
        :meth:`vertex_indices` level by level.

        Returns
        -------
        (indices, weights):
            ``indices`` is ``(L, N, 8)`` int64 and ``weights`` is ``(L, N, 8)``
            in the encoding's compute dtype (float32 by default).
        """
        cfg = self.config
        pos = xp.clip(xp.asarray(positions, dtype=np.float64), 0.0, 1.0)
        n = pos.shape[0]
        block = self.MULTILEVEL_BLOCK
        if n <= block:
            return self._multilevel_block(pos)
        idx = xp.empty((cfg.num_levels, n, 8), dtype=np.int64)
        w = xp.empty((cfg.num_levels, n, 8), dtype=self._value_dtype)
        for start in range(0, n, block):
            stop = min(start + block, n)
            idx[:, start:stop], w[:, start:stop] = self._multilevel_block(pos[start:stop])
        return idx, w

    def _multilevel_block(self, pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused multi-level indices/weights for one block of clipped positions."""
        cfg = self.config
        n = pos.shape[0]
        res = xp.asarray(cfg.resolutions, dtype=np.int64)  # (L,)
        scaled = pos[None, :, :] * res[:, None, None].astype(np.float64)  # (L, N, 3)
        base = xp.floor(scaled).astype(np.int64)
        base = xp.clip(base, 0, (res - 1)[:, None, None])
        frac = scaled - base  # (L, N, 3), in [0, 1)

        offsets = xp.array(
            [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.int64
        )  # (8, 3)
        # Trilinear weights for all levels at once; same multiply order as the
        # per-level path so the reduced-precision results match bit-for-bit.
        w = xp.ones((cfg.num_levels, n, 8), dtype=np.float64)
        for axis in range(3):
            take_hi = offsets[:, axis][None, None, :]  # (1, 1, 8)
            f = frac[:, :, axis][:, :, None]  # (L, N, 1)
            w = w * xp.where(take_hi == 1, f, 1.0 - f)

        # Incremental corner hashing from the base vertices: no (L, N, 8, 3)
        # corner expansion is ever materialized.
        idx = xp.empty((cfg.num_levels, n, 8), dtype=np.int64)
        for level in range(cfg.num_levels):
            entries = cfg.level_table_entries(level)
            if cfg.level_uses_hash(level):
                idx[level] = cfg.hash_fn.corner_hashes(base[level], entries)
            else:
                idx[level] = DenseGridIndexer(int(res[level])).corner_hashes(base[level], entries)
        return idx, w.astype(self._value_dtype)

    # ------------------------------------------------------------- forward
    def forward(self, positions: np.ndarray) -> np.ndarray:
        """Encode positions; returns ``(N, L*F)`` features in compute dtype.

        Uses the fused multi-level path of :meth:`multilevel_vertex_indices`;
        :meth:`forward_reference` keeps the original per-level loop as the
        oracle the fused path is tested against.
        """
        positions = xp.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"positions must have shape (N, 3), got {positions.shape}")
        cfg = self.config
        n = positions.shape[0]
        idx, w = self.multilevel_vertex_indices(positions)
        features = xp.empty((n, cfg.output_dim), dtype=self._value_dtype)
        cache_levels = []
        for level in range(cfg.num_levels):
            emb = self._gathered_values(level, self.embeddings[level][idx[level]])  # (N, 8, F)
            feat = (emb * w[level][:, :, None]).sum(axis=1)  # (N, F)
            lo = level * cfg.features_per_entry
            features[:, lo : lo + cfg.features_per_entry] = feat
            cache_levels.append((idx[level], w[level]))
        self._cache = {"levels": cache_levels, "n": n}
        return features

    __call__ = forward

    def forward_reference(self, positions: np.ndarray) -> np.ndarray:
        """Original per-level-loop forward, kept as the oracle for tests."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"positions must have shape (N, 3), got {positions.shape}")
        cfg = self.config
        n = positions.shape[0]
        features = np.empty((n, cfg.output_dim), dtype=self._value_dtype)
        cache_levels = []
        for level in range(cfg.num_levels):
            idx, w, _ = self.vertex_indices(positions, level)
            emb = self._gathered_values(level, self.embeddings[level][idx])  # (N, 8, F)
            feat = (emb * w[:, :, None]).sum(axis=1)  # (N, F)
            lo = level * cfg.features_per_entry
            features[:, lo : lo + cfg.features_per_entry] = feat
            cache_levels.append((idx, w))
        self._cache = {"levels": cache_levels, "n": n}
        return features

    # ------------------------------------------------------------ backward
    def backward(self, grad_output: np.ndarray) -> None:
        """Accumulate embedding-table gradients given ``dL/d(features)``.

        ``grad_output`` has shape ``(N, L*F)`` and must correspond to the
        most recent :meth:`forward` call.  Positions are treated as constants
        (iNGP does not back-propagate into sample positions either).

        The scatter-add over the 8 cube corners uses a ``bincount`` segment
        sum per feature channel (accumulated in float64), which is typically
        an order of magnitude faster than the ``np.add.at`` path retained in
        :meth:`backward_reference`.
        """
        if self._quantized:
            raise RuntimeError(
                "int8-quantized tables are inference-only; train a float encoding "
                "and convert it with quantized_int8()"
            )
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        cfg = self.config
        grad_output = xp.asarray(grad_output, dtype=self._grad_dtype)
        expected = (self._cache["n"], cfg.output_dim)
        if grad_output.shape != expected:
            raise ValueError(f"grad_output shape {grad_output.shape} != {expected}")
        # Reusable (N, 8) float64 weight buffer: multiplying straight into
        # float64 lets bincount consume the weights without an internal cast.
        buf = xp.empty((expected[0], 8), dtype=np.float64)
        flat_buf = buf.reshape(-1)
        for level, (idx, w) in enumerate(self._cache["levels"]):
            lo = level * cfg.features_per_entry
            flat_idx = idx.reshape(-1)
            entries = self.grads[level].shape[0]
            # dL/d emb[idx] = w * g_feat, segment-summed over the 8 corners.
            for f in range(cfg.features_per_entry):
                xp.multiply(w, grad_output[:, lo + f][:, None], out=buf)
                self.grads[level][:, f] += xp.bincount(flat_idx, flat_buf, minlength=entries)

    def backward_reference(self, grad_output: np.ndarray) -> None:
        """Original ``np.add.at`` scatter backward, kept as the oracle for tests."""
        if self._quantized:
            raise RuntimeError(
                "int8-quantized tables are inference-only; train a float encoding "
                "and convert it with quantized_int8()"
            )
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        cfg = self.config
        grad_output = np.asarray(grad_output, dtype=self._grad_dtype)
        expected = (self._cache["n"], cfg.output_dim)
        if grad_output.shape != expected:
            raise ValueError(f"grad_output shape {grad_output.shape} != {expected}")
        for level, (idx, w) in enumerate(self._cache["levels"]):
            lo = level * cfg.features_per_entry
            g_feat = grad_output[:, lo : lo + cfg.features_per_entry]  # (N, F)
            # dL/d emb[idx] = w * g_feat, scatter-added over the 8 corners.
            contrib = w[:, :, None] * g_feat[:, None, :]  # (N, 8, F)
            np.add.at(
                self.grads[level], idx.reshape(-1), contrib.reshape(-1, cfg.features_per_entry)
            )


class FrequencyEncoding:
    """Sinusoidal positional encoding ``gamma(p)`` from vanilla NeRF.

    Maps each input coordinate to ``(sin(2^k pi p), cos(2^k pi p))`` for
    ``k = 0..num_frequencies-1``, optionally keeping the raw input.
    """

    def __init__(self, input_dim: int = 3, num_frequencies: int = 10, include_input: bool = True):
        if input_dim <= 0 or num_frequencies <= 0:
            raise ValueError("input_dim and num_frequencies must be positive")
        self.input_dim = input_dim
        self.num_frequencies = num_frequencies
        self.include_input = include_input
        self.freq_bands = (2.0 ** xp.arange(num_frequencies)).astype(np.float64) * np.pi

    @property
    def output_dim(self) -> int:
        dim = self.input_dim * self.num_frequencies * 2
        if self.include_input:
            dim += self.input_dim
        return dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = xp.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected shape (N, {self.input_dim}), got {x.shape}")
        angles = x[:, :, None] * self.freq_bands[None, None, :]  # (N, D, K)
        enc = xp.concatenate(
            [xp.sin(angles).reshape(x.shape[0], -1), xp.cos(angles).reshape(x.shape[0], -1)],
            axis=1,
        )
        if self.include_input:
            enc = xp.concatenate([x, enc], axis=1)
        return enc.astype(np.float32)

    __call__ = forward

    def parameters(self) -> list[np.ndarray]:
        return []

    def gradients(self) -> list[np.ndarray]:
        return []

    def zero_grad(self) -> None:  # no trainable state
        return None
