"""Reduced-fidelity baseline radiance fields for the Table IV comparison.

The paper compares the Instant-NeRF algorithm against vanilla NeRF [13],
FastNeRF [5] and TensoRF [2].  Vanilla NeRF lives in
:class:`repro.nerf.field.VanillaNeRFField`; this module implements compact
versions of the other two that keep their *structural* ideas:

* :class:`FastNeRFField` — factorises the radiance function into a
  position-dependent branch producing ``D`` color components and a
  direction-dependent branch producing ``D`` mixing weights
  (``rgb = sigmoid(sum_d beta_d(view) * u_d(pos))``), which is what makes
  FastNeRF cacheable.
* :class:`TensoRFField` — represents density and appearance with a CP
  (rank-``R``) factorisation over three axis-aligned 1-D line factors with
  linear interpolation, followed by a small color MLP.

Both implement the :class:`repro.nerf.field.RadianceField` interface with
hand-written gradients so the shared trainer can optimise them.
"""

from __future__ import annotations

import numpy as np

from .encoding import FrequencyEncoding
from .field import RadianceField, _check_inputs
from .mlp import MLP, sigmoid, sigmoid_grad, softplus, softplus_grad

__all__ = ["FastNeRFField", "TensoRFField"]


class FastNeRFField(RadianceField):
    """Position/direction factorised field in the spirit of FastNeRF."""

    name = "fastnerf"

    def __init__(
        self,
        num_components: int = 6,
        pos_frequencies: int = 8,
        dir_frequencies: int = 4,
        hidden_dim: int = 96,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.num_components = int(num_components)
        self.pos_encoding = FrequencyEncoding(3, pos_frequencies, include_input=True)
        self.dir_encoding = FrequencyEncoding(3, dir_frequencies, include_input=True)
        # F_pos: sigma + D color components (each a 3-vector).
        self.pos_mlp = MLP(
            [self.pos_encoding.output_dim, hidden_dim, hidden_dim, 1 + 3 * self.num_components],
            rng=rng,
        )
        # F_dir: D mixing weights.
        self.dir_mlp = MLP(
            [self.dir_encoding.output_dim, hidden_dim // 2, self.num_components], rng=rng
        )
        self._cache: dict | None = None

    def forward(
        self, positions: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions, directions = _check_inputs(positions, directions)
        n = positions.shape[0]
        d = self.num_components
        pos_out = self.pos_mlp.forward(self.pos_encoding.forward(positions))
        dir_out = self.dir_mlp.forward(self.dir_encoding.forward(directions))
        sigma_logit = pos_out[:, 0]
        sigma = softplus(sigma_logit)
        components = pos_out[:, 1:].reshape(n, d, 3)
        beta = dir_out  # (N, D) raw mixing weights
        rgb_logit = np.einsum("nd,ndc->nc", beta, components)
        rgb = sigmoid(rgb_logit)
        self._cache = {
            "sigma_logit": sigma_logit,
            "sigma": sigma,
            "components": components,
            "beta": beta,
            "rgb_logit": rgb_logit,
            "rgb": rgb,
            "n": n,
        }
        return sigma.astype(np.float64), rgb.astype(np.float64)

    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        c = self._cache
        n, d = c["n"], self.num_components
        grad_sigma = np.asarray(grad_sigma, dtype=np.float32).reshape(n)
        grad_rgb = np.asarray(grad_rgb, dtype=np.float32).reshape(n, 3)

        grad_rgb_logit = grad_rgb * sigmoid_grad(c["rgb_logit"], c["rgb"])  # (N, 3)
        grad_beta = np.einsum("nc,ndc->nd", grad_rgb_logit, c["components"])
        grad_components = np.einsum("nd,nc->ndc", c["beta"], grad_rgb_logit)

        grad_pos_out = np.zeros((n, 1 + 3 * d), dtype=np.float32)
        grad_pos_out[:, 0] = grad_sigma * softplus_grad(c["sigma_logit"], c["sigma"])
        grad_pos_out[:, 1:] = grad_components.reshape(n, 3 * d)
        self.pos_mlp.backward(grad_pos_out)
        self.dir_mlp.backward(grad_beta.astype(np.float32))

    def parameters(self) -> list[np.ndarray]:
        return [*self.pos_mlp.parameters(), *self.dir_mlp.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [*self.pos_mlp.gradients(), *self.dir_mlp.gradients()]

    def zero_grad(self) -> None:
        self.pos_mlp.zero_grad()
        self.dir_mlp.zero_grad()


class _LineFactorSet:
    """Rank-``R`` CP line factors along the three axes with linear interp.

    Stores three arrays of shape ``(R, resolution)``.  ``evaluate`` returns
    the per-rank product ``vx_r(x) * vy_r(y) * vz_r(z)`` and caches the
    interpolation weights for the backward pass.
    """

    def __init__(self, rank: int, resolution: int, rng: np.random.Generator, scale: float = 0.1):
        if rank <= 0 or resolution < 2:
            raise ValueError("rank must be positive and resolution >= 2")
        self.rank = rank
        self.resolution = resolution
        self.lines = [
            rng.normal(0.0, scale, size=(rank, resolution)).astype(np.float32) for _ in range(3)
        ]
        self.grads = [np.zeros_like(line) for line in self.lines]
        self._cache: dict | None = None

    def _interp(self, coords_axis: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Linear-interpolation indices/weights along one axis."""
        scaled = np.clip(coords_axis, 0.0, 1.0) * (self.resolution - 1)
        lo = np.floor(scaled).astype(np.int64)
        lo = np.clip(lo, 0, self.resolution - 2)
        frac = (scaled - lo).astype(np.float32)
        return lo, lo + 1, frac

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        """Per-rank factor products for positions in [0,1]^3, shape (N, R)."""
        n = positions.shape[0]
        axis_values = []
        cache_axes = []
        for axis in range(3):
            lo, hi, frac = self._interp(positions[:, axis])
            line = self.lines[axis]  # (R, res)
            val = line[:, lo] * (1.0 - frac)[None, :] + line[:, hi] * frac[None, :]  # (R, N)
            axis_values.append(val)
            cache_axes.append((lo, hi, frac))
        prod = axis_values[0] * axis_values[1] * axis_values[2]  # (R, N)
        self._cache = {"axis_values": axis_values, "axes": cache_axes, "n": n}
        return prod.T  # (N, R)

    def backward(self, grad_prod: np.ndarray) -> None:
        """Accumulate gradients given ``dL/d(prod)`` of shape (N, R)."""
        if self._cache is None:
            raise RuntimeError("backward() before evaluate()")
        c = self._cache
        grad_prod = np.asarray(grad_prod, dtype=np.float32).T  # (R, N)
        axis_values = c["axis_values"]
        for axis in range(3):
            others = grad_prod.copy()
            for other_axis in range(3):
                if other_axis != axis:
                    others = others * axis_values[other_axis]
            lo, hi, frac = c["axes"][axis]
            np.add.at(self.grads[axis].T, lo, (others * (1.0 - frac)[None, :]).T)
            np.add.at(self.grads[axis].T, hi, (others * frac[None, :]).T)

    def parameters(self) -> list[np.ndarray]:
        return list(self.lines)

    def gradients(self) -> list[np.ndarray]:
        return list(self.grads)


class TensoRFField(RadianceField):
    """CP-factorised tensorial radiance field (TensoRF-CP, reduced scale)."""

    name = "tensorf"

    def __init__(
        self,
        density_rank: int = 8,
        appearance_rank: int = 16,
        resolution: int = 128,
        appearance_features: int = 12,
        dir_frequencies: int = 2,
        hidden_dim: int = 64,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.density_factors = _LineFactorSet(density_rank, resolution, rng)
        self.appearance_factors = _LineFactorSet(appearance_rank, resolution, rng)
        self.appearance_features = int(appearance_features)
        # Per-rank feature basis mapping appearance ranks to a feature vector.
        self.basis = rng.normal(0.0, 0.2, size=(appearance_rank, appearance_features)).astype(
            np.float32
        )
        self.basis_grad = np.zeros_like(self.basis)
        self.dir_encoding = FrequencyEncoding(3, dir_frequencies, include_input=True)
        self.color_mlp = MLP(
            [appearance_features + self.dir_encoding.output_dim, hidden_dim, 3],
            rng=rng,
        )
        self._cache: dict | None = None

    def forward(
        self, positions: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions, directions = _check_inputs(positions, directions)
        density_prod = self.density_factors.evaluate(positions)  # (N, Rd)
        sigma_logit = density_prod.sum(axis=1)
        sigma = softplus(sigma_logit)
        app_prod = self.appearance_factors.evaluate(positions)  # (N, Ra)
        features = app_prod @ self.basis  # (N, F)
        dir_enc = self.dir_encoding.forward(directions)
        color_in = np.concatenate([features, dir_enc], axis=1).astype(np.float32)
        rgb_logit = self.color_mlp.forward(color_in)
        rgb = sigmoid(rgb_logit)
        self._cache = {
            "sigma_logit": sigma_logit,
            "sigma": sigma,
            "app_prod": app_prod,
            "rgb_logit": rgb_logit,
            "rgb": rgb,
            "n": positions.shape[0],
        }
        return sigma.astype(np.float64), rgb.astype(np.float64)

    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        c = self._cache
        n = c["n"]
        grad_sigma = np.asarray(grad_sigma, dtype=np.float32).reshape(n)
        grad_rgb = np.asarray(grad_rgb, dtype=np.float32).reshape(n, 3)

        grad_rgb_logit = grad_rgb * sigmoid_grad(c["rgb_logit"], c["rgb"])
        grad_color_in = self.color_mlp.backward(grad_rgb_logit)
        grad_features = grad_color_in[:, : self.appearance_features]
        self.basis_grad += c["app_prod"].T @ grad_features
        grad_app_prod = grad_features @ self.basis.T
        self.appearance_factors.backward(grad_app_prod)

        grad_sigma_logit = grad_sigma * softplus_grad(c["sigma_logit"], c["sigma"])
        grad_density_prod = np.repeat(grad_sigma_logit[:, None], self.density_factors.rank, axis=1)
        self.density_factors.backward(grad_density_prod)

    def parameters(self) -> list[np.ndarray]:
        return [
            *self.density_factors.parameters(),
            *self.appearance_factors.parameters(),
            self.basis,
            *self.color_mlp.parameters(),
        ]

    def gradients(self) -> list[np.ndarray]:
        return [
            *self.density_factors.gradients(),
            *self.appearance_factors.gradients(),
            self.basis_grad,
            *self.color_mlp.gradients(),
        ]

    def zero_grad(self) -> None:
        for g in self.gradients():
            g[...] = 0.0
