"""Occupancy-grid adaptive ray marching (empty-space skipping).

Instant-NGP-style training spends most of its hash-table bandwidth on
samples that land in empty space.  The production fix is an *occupancy
grid*: a coarse multi-resolution bitfield over the unit cube that records
where the density field is (still) non-trivial, updated periodically from
the trained field with an exponential-moving-average decay.  The adaptive
ray marcher queries the bitfield per sample and skips unoccupied cells, and
optionally terminates a ray once its accumulated transmittance falls below
a threshold — both directly shrink the hash-grid memory-request streams
that every DRAM/cache/accelerator experiment in this repository measures.

Everything here is vectorised NumPy with an exact per-sample reference
oracle (:func:`adaptive_sample_mask_reference`) retained for equivalence
tests, mirroring the repo's vectorized-engine-plus-oracle convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "OccupancyGridConfig",
    "OccupancyGrid",
    "sample_density_grid",
    "adaptive_sample_mask",
    "adaptive_sample_mask_reference",
    "segment_deltas",
]

#: Field evaluations per chunk when sampling a density function over the grid
#: (keeps periodic grid updates from materialising multi-million-point MLP
#: batches at high resolutions).
_DENSITY_CHUNK = 1 << 16


@dataclass(frozen=True)
class OccupancyGridConfig:
    """Configuration of a multi-resolution occupancy grid over ``[0, 1]^3``.

    Attributes
    ----------
    resolution:
        Cells per axis of the finest level (level 0).
    num_levels:
        Mip levels.  Level ``l`` halves the resolution of level ``l - 1``
        and is the conservative OR-reduction of the finest bits, so a coarse
        query never prunes a sample the finest level would keep.
    ema_decay:
        Per-update decay of the stored density estimate; a cell that stops
        producing density fades below the threshold after
        ``log(threshold / d) / log(decay)`` updates.
    density_threshold:
        A cell is occupied while its density estimate exceeds
        ``min(density_threshold, mean_estimate)`` (the mean clamp keeps a
        near-empty early field from pruning everything).
    update_every:
        Trainer iterations between grid updates from the trained field.
    """

    resolution: int = 32
    num_levels: int = 1
    ema_decay: float = 0.8
    density_threshold: float = 1e-2
    update_every: int = 16

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.num_levels <= 0:
            raise ValueError("num_levels must be positive")
        if self.resolution % (1 << (self.num_levels - 1)) != 0:
            raise ValueError(
                f"resolution {self.resolution} must be divisible by 2**(num_levels-1) "
                f"= {1 << (self.num_levels - 1)} for the mip pyramid"
            )
        if not 0.0 < self.ema_decay <= 1.0:
            raise ValueError("ema_decay must be in (0, 1]")
        if self.density_threshold <= 0:
            raise ValueError("density_threshold must be positive")
        if self.update_every <= 0:
            raise ValueError("update_every must be positive")

    @property
    def resolutions(self) -> list[int]:
        """Per-level cells per axis, finest first."""
        return [self.resolution >> level for level in range(self.num_levels)]

    @property
    def num_cells(self) -> int:
        """Cells of the finest level."""
        return self.resolution**3


def sample_density_grid(density_fn, resolution: int, supersample: int = 2) -> np.ndarray:
    """Max-pooled density estimate of ``density_fn`` over the unit cube.

    ``density_fn`` maps ``(N, 3)`` unit-cube positions to ``(N,)`` densities.
    Each of the ``resolution**3`` cells is probed at ``supersample**3``
    interior positions and keeps the maximum — a conservative estimate that
    makes thin features survive coarse grids.  Returns a float32 array of
    shape ``(resolution**3,)`` in C order over ``(x, y, z)`` cell indices.
    """
    if supersample <= 0:
        raise ValueError("supersample must be positive")
    fine = resolution * supersample
    centers = (np.arange(fine, dtype=np.float64) + 0.5) / fine
    total = fine**3
    values = np.empty(total, dtype=np.float64)
    # Chunked in C order over (x, y, z) probe indices; coordinates are
    # generated per chunk so memory stays bounded by the chunk size, not by
    # the (resolution * supersample)**3 probe lattice.
    for start in range(0, total, _DENSITY_CHUNK):
        flat = np.arange(start, min(start + _DENSITY_CHUNK, total))
        chunk = np.stack(
            [centers[flat // (fine * fine)], centers[(flat // fine) % fine], centers[flat % fine]],
            axis=-1,
        )
        values[start : start + flat.size] = np.asarray(density_fn(chunk), dtype=np.float64)
    pooled = values.reshape(
        resolution, supersample, resolution, supersample, resolution, supersample
    )
    return pooled.max(axis=(1, 3, 5)).reshape(-1).astype(np.float32)


class OccupancyGrid:
    """Multi-resolution occupancy bitfield with EMA density decay.

    The grid stores one float32 density estimate per finest-level cell and
    derives packed occupancy bitfields for every mip level.  ``update``
    refreshes the estimate from a density function (typically the trained
    field) with the iNGP ``max(old * decay, new)`` rule; ``occupied``
    answers vectorised point queries against the packed bits.
    """

    def __init__(
        self, config: OccupancyGridConfig | None = None, densities: np.ndarray | None = None
    ):
        self.config = config or OccupancyGridConfig()
        if densities is None:
            # Start fully occupied: every cell sits above the threshold until
            # updates from the trained field discover the empty space.
            densities = np.full(
                self.config.num_cells, 2.0 * self.config.density_threshold, np.float32
            )
        densities = np.asarray(densities, dtype=np.float32).reshape(-1)
        if densities.shape[0] != self.config.num_cells:
            raise ValueError(
                f"densities must have {self.config.num_cells} entries, got {densities.shape[0]}"
            )
        self.densities = densities.copy()
        self.updates = 0
        self.bits: list[np.ndarray] = []
        self._rebuild_bits()

    # ------------------------------------------------------------- builders
    @classmethod
    def fully_occupied(cls, config: OccupancyGridConfig | None = None) -> "OccupancyGrid":
        """A grid whose every cell is occupied (dense sampling falls out)."""
        return cls(config)

    @classmethod
    def from_densities(cls, config: OccupancyGridConfig, densities: np.ndarray) -> "OccupancyGrid":
        """Rebuild a grid from a stored density-estimate array."""
        return cls(config, densities)

    @classmethod
    def from_density_fn(
        cls, config: OccupancyGridConfig, density_fn, supersample: int = 2
    ) -> "OccupancyGrid":
        """One-shot grid from a known density field (scenes, trace pruning)."""
        return cls(config, sample_density_grid(density_fn, config.resolution, supersample))

    # ------------------------------------------------------------- bitfield
    def _rebuild_bits(self) -> None:
        cfg = self.config
        occupied = self.densities > self.threshold
        cube = occupied.reshape(cfg.resolution, cfg.resolution, cfg.resolution)
        self.bits = [np.packbits(cube.reshape(-1), bitorder="little")]
        for _ in range(1, cfg.num_levels):
            r = cube.shape[0] // 2
            # Conservative OR-reduction: a coarse cell is occupied when any
            # of its eight children is.
            cube = cube.reshape(r, 2, r, 2, r, 2).any(axis=(1, 3, 5))
            self.bits.append(np.packbits(cube.reshape(-1), bitorder="little"))

    @property
    def threshold(self) -> float:
        """Effective density threshold (mean-clamped, as in iNGP).

        Cells strictly above ``min(density_threshold, mean)`` are occupied.
        Like iNGP's rule, a *uniform* estimate at or below the configured
        threshold prunes every cell (mean == value, strict comparison); the
        trainer tolerates that degenerate state by freezing the field on
        fully pruned batches instead of stepping the optimiser blind.
        """
        return min(self.config.density_threshold, float(self.densities.mean()))

    def occupancy_fraction(self, level: int = 0) -> float:
        """Fraction of occupied cells at one level."""
        res = self.config.resolutions[level]
        bits = np.unpackbits(self.bits[level], bitorder="little", count=res**3)
        return float(bits.mean())

    def cell_indices(self, points: np.ndarray, level: int = 0) -> np.ndarray:
        """Flat cell ids of unit-cube points at one level (C order)."""
        res = self.config.resolutions[level]
        pts = np.asarray(points, dtype=np.float64)
        cell = np.clip(np.floor(np.clip(pts, 0.0, 1.0) * res).astype(np.int64), 0, res - 1)
        return (cell[..., 0] * res + cell[..., 1]) * res + cell[..., 2]

    def occupied(self, points: np.ndarray, level: int = 0) -> np.ndarray:
        """Boolean occupancy of each point, preserving the leading shape."""
        flat = self.cell_indices(points, level)
        bits = self.bits[level]
        return ((bits[flat >> 3] >> (flat & 7)) & 1).astype(bool)

    # -------------------------------------------------------------- updates
    def update(self, density_fn, supersample: int = 1) -> float:
        """EMA-refresh the density estimate from ``density_fn``.

        Cell estimates follow iNGP's rule ``max(old * decay, new)``: cells
        the field still fills stay occupied, cells it abandoned decay below
        the threshold after a few updates.  Returns the occupied fraction of
        the finest level after the update.
        """
        fresh = sample_density_grid(density_fn, self.config.resolution, supersample)
        self.densities = np.maximum(self.densities * self.config.ema_decay, fresh)
        self.updates += 1
        self._rebuild_bits()
        return self.occupancy_fraction()


def segment_deltas(t_values: np.ndarray) -> np.ndarray:
    """Per-sample segment widths with the renderer's last-width duplication."""
    t_values = np.asarray(t_values, dtype=np.float64)
    deltas = np.diff(t_values, axis=-1)
    if deltas.shape[-1] == 0:
        return np.full(t_values.shape, 1e10)
    return np.concatenate([deltas, deltas[..., -1:]], axis=-1)


def adaptive_sample_mask(
    grid: OccupancyGrid,
    points: np.ndarray,
    t_values: np.ndarray | None = None,
    densities: np.ndarray | None = None,
    transmittance_threshold: float = 0.0,
    level: int = 0,
) -> np.ndarray:
    """Which ray samples the adaptive marcher keeps, shape ``(R, S)``.

    A sample survives when its cell is occupied in ``grid`` (empty-space
    skipping) and — with ``transmittance_threshold > 0`` — while the ray's
    accumulated transmittance over the *kept* samples still exceeds the
    threshold (early ray termination).  ``densities`` supplies the per-sample
    extinction used for termination (the scene's analytic density for trace
    generation; a cached field estimate during rendering) and ``t_values``
    the sample distances; both are only required when termination is on.

    Equivalent to :func:`adaptive_sample_mask_reference`, the per-sample
    loop oracle.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[-1] != 3:
        raise ValueError(f"points must be (R, S, 3), got {points.shape}")
    mask = grid.occupied(points, level)
    if transmittance_threshold > 0.0:
        if t_values is None or densities is None:
            raise ValueError("transmittance termination requires t_values and densities")
        densities = np.asarray(densities, dtype=np.float64)
        if densities.shape != mask.shape:
            raise ValueError(f"densities must be {mask.shape}, got {densities.shape}")
        deltas = segment_deltas(t_values)
        tau = np.where(mask, np.maximum(densities, 0.0), 0.0) * deltas
        cum = np.cumsum(tau, axis=-1)
        entering = np.exp(-np.concatenate([np.zeros_like(cum[..., :1]), cum[..., :-1]], axis=-1))
        mask &= entering > transmittance_threshold
    return mask


def adaptive_sample_mask_reference(
    grid: OccupancyGrid,
    points: np.ndarray,
    t_values: np.ndarray | None = None,
    densities: np.ndarray | None = None,
    transmittance_threshold: float = 0.0,
    level: int = 0,
) -> np.ndarray:
    """Per-ray, per-sample loop oracle for :func:`adaptive_sample_mask`."""
    points = np.asarray(points, dtype=np.float64)
    num_rays, num_samples = points.shape[0], points.shape[1]
    mask = np.zeros((num_rays, num_samples), dtype=bool)
    deltas = segment_deltas(t_values) if t_values is not None else None
    for ray in range(num_rays):
        log_transmittance = 0.0
        for sample in range(num_samples):
            occupied = bool(grid.occupied(points[ray, sample][None, :], level)[0])
            keep = occupied
            if transmittance_threshold > 0.0:
                if deltas is None or densities is None:
                    raise ValueError("transmittance termination requires t_values and densities")
                if np.exp(log_transmittance) <= transmittance_threshold:
                    keep = False
                if keep:
                    log_transmittance -= max(float(densities[ray, sample]), 0.0) * float(
                        deltas[ray, sample]
                    )
            mask[ray, sample] = keep
    return mask
