"""Photometric losses and their gradients (vanilla-NeRF Step (e))."""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "huber_loss"]


def mse_loss(predicted: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean-squared photometric loss ``L = mean((C_hat - C)^2)``.

    Returns ``(loss, grad)`` where ``grad`` is ``dL/dpredicted`` with the
    same shape as ``predicted``.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    diff = predicted - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def huber_loss(
    predicted: np.ndarray, target: np.ndarray, delta: float = 0.1
) -> tuple[float, np.ndarray]:
    """Huber loss (quadratic near zero, linear in the tails) and gradient."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    diff = predicted - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    per_elem = np.where(quadratic, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta))
    loss = float(per_elem.mean())
    grad = np.where(quadratic, diff, delta * np.sign(diff)) / diff.size
    return loss, grad
