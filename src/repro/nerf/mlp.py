"""Small fully-connected networks with hand-written backprop.

iNGP replaces vanilla NeRF's large MLP with two small MLPs: a density MLP
(one hidden layer of 64 units) and a color MLP (two hidden layers of 64
units).  This module provides a generic :class:`MLP` used by both, plus the
activation functions and their derivatives.  Array math goes through the
:mod:`repro.core.xp` backend shim; the parameter/activation precision is a
constructor axis (``fp64``/``fp32``/``fp16`` — reduced-precision networks
keep their gradient accumulators in float32, standard mixed precision).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import precision, xp

__all__ = ["MLP", "Activation", "relu", "sigmoid", "softplus", "identity"]


# --------------------------------------------------------------- activations
def relu(x: np.ndarray) -> np.ndarray:
    return xp.maximum(x, 0.0)


def relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = xp.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + xp.exp(-x[pos]))
    ex = xp.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def softplus(x: np.ndarray) -> np.ndarray:
    return xp.where(x > 20.0, x, xp.log1p(xp.exp(xp.minimum(x, 20.0))))


def softplus_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sigmoid(x)


def identity(x: np.ndarray) -> np.ndarray:
    return x


def identity_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return xp.ones_like(x)


@dataclass(frozen=True)
class Activation:
    """An activation function together with its derivative.

    The derivative receives both the pre-activation ``x`` and the activation
    output ``y`` so cheap forms (e.g. ``y*(1-y)`` for sigmoid) can be used.
    """

    name: str
    fn: callable
    grad: callable


ACTIVATIONS = {
    "relu": Activation("relu", relu, relu_grad),
    "sigmoid": Activation("sigmoid", sigmoid, sigmoid_grad),
    "softplus": Activation("softplus", softplus, softplus_grad),
    "none": Activation("none", identity, identity_grad),
}


class MLP:
    """A fully-connected network with explicit forward/backward passes.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[32, 64, 16]``.
    hidden_activation / output_activation:
        Names from :data:`ACTIVATIONS`.
    rng:
        Generator used for He-style weight initialisation.
    dtype:
        Precision name for weights and activations: ``fp64``, ``fp32``
        (default, the historical behavior) or ``fp16``.  Gradients are
        accumulated in float32 for fp32/fp16 networks and float64 for fp64.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        hidden_activation: str = "relu",
        output_activation: str = "none",
        rng: np.random.Generator | None = None,
        dtype: str = "fp32",
    ):
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least an input and an output size")
        if any(s <= 0 for s in layer_sizes):
            raise ValueError("all layer sizes must be positive")
        rng = rng or np.random.default_rng(0)
        self.layer_sizes = list(layer_sizes)
        self.hidden_act = ACTIVATIONS[hidden_activation]
        self.output_act = ACTIVATIONS[output_activation]
        self.precision = precision.validate_precision(dtype, precision.FLOAT_PRECISIONS)
        self.dtype = precision.compute_dtype(self.precision)
        grad_dtype = np.float64 if self.precision == "fp64" else np.float32
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = math.sqrt(2.0 / fan_in)
            self.weights.append(
                xp.asarray(rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(self.dtype))
            )
            self.biases.append(xp.zeros(fan_out, dtype=self.dtype))
        self.weight_grads = [xp.zeros(w.shape, dtype=grad_dtype) for w in self.weights]
        self.bias_grads = [xp.zeros(b.shape, dtype=grad_dtype) for b in self.biases]
        self._cache: dict | None = None

    # ------------------------------------------------------------------ API
    @property
    def input_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        return self.layer_sizes[-1]

    def parameters(self) -> list[np.ndarray]:
        return [*self.weights, *self.biases]

    def gradients(self) -> list[np.ndarray]:
        return [*self.weight_grads, *self.bias_grads]

    def zero_grad(self) -> None:
        for g in self.weight_grads:
            g[...] = 0.0
        for g in self.bias_grads:
            g[...] = 0.0

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def num_flops_per_input(self) -> int:
        """Multiply-accumulate FLOPs per input sample (2 per MAC)."""
        return int(sum(2 * fi * fo for fi, fo in zip(self.layer_sizes[:-1], self.layer_sizes[1:])))

    # ------------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = xp.asarray(x, dtype=self.dtype)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected input of shape (N, {self.input_dim}), got {x.shape}")
        activations = [x]
        pre_acts = []
        h = x
        num_layers = len(self.weights)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            pre_acts.append(z)
            act = self.output_act if i == num_layers - 1 else self.hidden_act
            h = act.fn(z)
            activations.append(h)
        self._cache = {"activations": activations, "pre_acts": pre_acts}
        return h

    __call__ = forward

    # ------------------------------------------------------------ backward
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)``; returns ``dL/d(input)``.

        Parameter gradients are *accumulated* into ``weight_grads`` /
        ``bias_grads`` (call :meth:`zero_grad` between optimisation steps).
        """
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        grad = xp.asarray(grad_output, dtype=self.dtype)
        activations = self._cache["activations"]
        pre_acts = self._cache["pre_acts"]
        num_layers = len(self.weights)
        if grad.shape != activations[-1].shape:
            raise ValueError(
                f"grad_output shape {grad.shape} != output shape {activations[-1].shape}"
            )
        for i in reversed(range(num_layers)):
            act = self.output_act if i == num_layers - 1 else self.hidden_act
            dz = grad * act.grad(pre_acts[i], activations[i + 1])
            self.weight_grads[i] += activations[i].T @ dz
            self.bias_grads[i] += dz.sum(axis=0)
            grad = dz @ self.weights[i].T
        return grad

    # -------------------------------------------------------- introspection
    def intermediate_bytes(self, batch_size: int, dtype_bytes: int | None = None) -> int:
        """Bytes of intermediate activations stored for a given batch size.

        This corresponds to the "Intermediate Data" column in paper Tab. II
        (layer-by-layer processing keeps the activations of every layer of
        the current batch live for the backward pass).  ``dtype_bytes``
        defaults to the width of the network's own precision.
        """
        width = precision.dtype_bytes(self.precision) if dtype_bytes is None else dtype_bytes
        hidden_units = sum(self.layer_sizes[1:])
        return int(batch_size * hidden_units * width)
