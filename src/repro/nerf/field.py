"""Radiance fields: iNGP-style hash-grid field and vanilla NeRF field.

A *radiance field* maps a 3D position and a viewing direction to a density
``sigma`` and an RGB color.  All fields expose the same small interface so
that the trainer, the renderer and the baselines are interchangeable:

* ``forward(positions, directions) -> (sigma, rgb)``
* ``backward(grad_sigma, grad_rgb)`` accumulating parameter gradients
* ``parameters() / gradients() / zero_grad()``
"""

from __future__ import annotations

import numpy as np

from ..core import precision, xp
from .encoding import FrequencyEncoding, HashGridConfig, HashGridEncoding
from .mlp import MLP, sigmoid, sigmoid_grad, softplus, softplus_grad

__all__ = ["RadianceField", "InstantNGPField", "VanillaNeRFField"]


class RadianceField:
    """Common interface for all radiance-field models."""

    name: str = "abstract"

    def forward(
        self, positions: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sigma, rgb)`` with shapes ``(N,)`` and ``(N, 3)``."""
        raise NotImplementedError

    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        raise NotImplementedError

    def gradients(self) -> list[np.ndarray]:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.gradients():
            g[...] = 0.0

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    __call__ = forward


def _check_inputs(positions: np.ndarray, directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    # Existing float dtypes are preserved (the encodings cast where they need
    # to); only non-float inputs are promoted, so no copy happens on the
    # common float64 path.
    positions = xp.asarray(positions)
    directions = xp.asarray(directions)
    if positions.dtype.kind != "f":
        positions = positions.astype(np.float64)
    if directions.dtype.kind != "f":
        directions = directions.astype(np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {positions.shape}")
    if directions.shape != positions.shape:
        raise ValueError(f"directions {directions.shape} must match positions {positions.shape}")
    return positions, directions


class InstantNGPField(RadianceField):
    """iNGP radiance field: hash-grid encoding + density MLP + color MLP.

    Architecture (matching the small MLPs of the paper):

    * density MLP: ``L*F -> 64 -> (1 + geo_features)``; the first output is
      passed through softplus to produce ``sigma``, the remaining
      ``geo_features`` values feed the color MLP.
    * color MLP: ``geo_features + dir_enc -> 64 -> 64 -> 3`` with a sigmoid
      output.

    The compute precision follows ``grid_config.dtype``: both MLPs run at the
    table precision (float32 for ``int8`` tables, whose gathers dequantize to
    float32).  The ``(sigma, rgb)`` interface stays float64 regardless.
    """

    name = "ingp"

    def __init__(
        self,
        grid_config: HashGridConfig | None = None,
        geo_features: int = 15,
        hidden_dim: int = 64,
        dir_frequencies: int = 4,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.grid_config = grid_config or HashGridConfig()
        self.encoding = HashGridEncoding(self.grid_config, rng=rng)
        mlp_dtype = "fp32" if self.grid_config.dtype == "int8" else self.grid_config.dtype
        self._compute_dtype = precision.compute_dtype(self.grid_config.dtype)
        self._grad_dtype = np.float64 if self.grid_config.dtype == "fp64" else np.float32
        self.geo_features = int(geo_features)
        self.dir_encoding = FrequencyEncoding(
            input_dim=3, num_frequencies=dir_frequencies, include_input=True
        )
        self.density_mlp = MLP(
            [self.encoding.output_dim, hidden_dim, 1 + self.geo_features],
            hidden_activation="relu",
            output_activation="none",
            rng=rng,
            dtype=mlp_dtype,
        )
        self.color_mlp = MLP(
            [self.geo_features + self.dir_encoding.output_dim, hidden_dim, hidden_dim, 3],
            hidden_activation="relu",
            output_activation="none",
            rng=rng,
            dtype=mlp_dtype,
        )
        self._cache: dict | None = None

    # ------------------------------------------------------------- forward
    def forward(
        self, positions: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions, directions = _check_inputs(positions, directions)
        features = self.encoding.forward(positions)  # (N, L*F)  -- "HT"
        h = self.density_mlp.forward(features)  # (N, 1+geo)  -- "MLPd"
        sigma_logit = h[:, 0]
        sigma = softplus(sigma_logit)
        geo = h[:, 1:]
        dir_enc = self.dir_encoding.forward(directions)
        color_in = xp.concatenate([geo, dir_enc], axis=1).astype(self._compute_dtype, copy=False)
        rgb_logit = self.color_mlp.forward(color_in)  # (N, 3)   -- "MLPc"
        rgb = sigmoid(rgb_logit)
        self._cache = {
            "sigma_logit": sigma_logit,
            "sigma": sigma,
            "rgb_logit": rgb_logit,
            "rgb": rgb,
            "n": positions.shape[0],
        }
        return sigma.astype(np.float64, copy=False), rgb.astype(np.float64, copy=False)

    # ------------------------------------------------------------ backward
    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        cache = self._cache
        n = cache["n"]
        grad_sigma = xp.asarray(grad_sigma, dtype=self._grad_dtype).reshape(n)
        grad_rgb = xp.asarray(grad_rgb, dtype=self._grad_dtype).reshape(n, 3)

        # Color branch ("MLPc_b"): sigmoid then MLP.
        grad_rgb_logit = grad_rgb * sigmoid_grad(cache["rgb_logit"], cache["rgb"])
        grad_color_in = self.color_mlp.backward(grad_rgb_logit)
        grad_geo = grad_color_in[:, : self.geo_features]
        # Direction encoding has no trainable parameters; its grad is dropped.

        # Density branch ("MLPd_b"): softplus on the first channel.
        grad_h = xp.zeros((n, 1 + self.geo_features), dtype=self._grad_dtype)
        grad_h[:, 0] = grad_sigma * softplus_grad(cache["sigma_logit"], cache["sigma"])
        grad_h[:, 1:] = grad_geo
        grad_features = self.density_mlp.backward(grad_h)

        # Hash-table backward ("HT_b").
        self.encoding.backward(grad_features)

    # ---------------------------------------------------------- parameters
    def parameters(self) -> list[np.ndarray]:
        return [
            *self.encoding.parameters(),
            *self.density_mlp.parameters(),
            *self.color_mlp.parameters(),
        ]

    def gradients(self) -> list[np.ndarray]:
        return [
            *self.encoding.gradients(),
            *self.density_mlp.gradients(),
            *self.color_mlp.gradients(),
        ]

    def zero_grad(self) -> None:
        self.encoding.zero_grad()
        self.density_mlp.zero_grad()
        self.color_mlp.zero_grad()


class VanillaNeRFField(RadianceField):
    """Vanilla-NeRF-style field: frequency encoding and a single large MLP.

    For tractability on CPU the MLP is narrower than the original 8x256
    network (configurable), but the structure — positional encoding of the
    position and direction feeding a fully-connected network that outputs
    density and color — is the same, which is what matters for the relative
    cost and quality comparisons of Table IV and Fig. 1.
    """

    name = "vanilla-nerf"

    def __init__(
        self,
        pos_frequencies: int = 10,
        dir_frequencies: int = 4,
        hidden_dim: int = 128,
        num_hidden_layers: int = 4,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.pos_encoding = FrequencyEncoding(
            input_dim=3, num_frequencies=pos_frequencies, include_input=True
        )
        self.dir_encoding = FrequencyEncoding(
            input_dim=3, num_frequencies=dir_frequencies, include_input=True
        )
        input_dim = self.pos_encoding.output_dim + self.dir_encoding.output_dim
        layers = [input_dim] + [hidden_dim] * num_hidden_layers + [4]
        self.mlp = MLP(layers, hidden_activation="relu", output_activation="none", rng=rng)
        self._cache: dict | None = None

    def forward(
        self, positions: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions, directions = _check_inputs(positions, directions)
        pos_enc = self.pos_encoding.forward(positions)
        dir_enc = self.dir_encoding.forward(directions)
        x = xp.concatenate([pos_enc, dir_enc], axis=1).astype(np.float32, copy=False)
        out = self.mlp.forward(x)  # (N, 4)
        sigma_logit = out[:, 0]
        rgb_logit = out[:, 1:]
        sigma = softplus(sigma_logit)
        rgb = sigmoid(rgb_logit)
        self._cache = {
            "sigma_logit": sigma_logit,
            "sigma": sigma,
            "rgb_logit": rgb_logit,
            "rgb": rgb,
            "n": positions.shape[0],
        }
        return sigma.astype(np.float64, copy=False), rgb.astype(np.float64, copy=False)

    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        cache = self._cache
        n = cache["n"]
        grad_sigma = xp.asarray(grad_sigma, dtype=np.float32).reshape(n)
        grad_rgb = xp.asarray(grad_rgb, dtype=np.float32).reshape(n, 3)
        grad_out = xp.zeros((n, 4), dtype=np.float32)
        grad_out[:, 0] = grad_sigma * softplus_grad(cache["sigma_logit"], cache["sigma"])
        grad_out[:, 1:] = grad_rgb * sigmoid_grad(cache["rgb_logit"], cache["rgb"])
        self.mlp.backward(grad_out)

    def parameters(self) -> list[np.ndarray]:
        return self.mlp.parameters()

    def gradients(self) -> list[np.ndarray]:
        return self.mlp.gradients()

    def zero_grad(self) -> None:
        self.mlp.zero_grad()
