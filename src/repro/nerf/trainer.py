"""Training loop reproducing the six-step pipeline of Fig. 2.

The :class:`Trainer` wires together a dataset (Step (a): random pixel
batches), ray sampling (Step (b)), a radiance field (Step (c)), volume
rendering (Step (d)), the photometric loss (Step (e)) and back-propagation
plus the Adam update (Step (f)).  It works with any
:class:`repro.nerf.field.RadianceField`, so iNGP, the Instant-NeRF variant
(Morton hash) and all baselines share the exact same loop — only the field
differs, which is what Table IV compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import precision
from ..obs import console, get_metrics, get_tracer
from ..obs.clock import wall_time
from .adam import Adam
from .field import RadianceField
from .losses import mse_loss
from .metrics import psnr
from .occupancy import OccupancyGrid, OccupancyGridConfig
from .rays import RayBundle, sample_along_rays, stratified_t_values
from .volume_rendering import render_rays, render_rays_backward

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the training loop.

    Paper-scale values are 35 000 iterations with 256 K sampled points per
    iteration; the defaults here are reduced so CPU training finishes in
    seconds while exercising the identical code path (see DESIGN.md §4).

    With ``occupancy`` set, sampling switches to occupancy-grid adaptive ray
    marching: the grid starts fully occupied, is refreshed from the trained
    field every ``occupancy.update_every`` iterations, and the field is only
    evaluated on samples whose cell is occupied (skipped samples contribute
    zero density/color to the renderer, exactly as empty space would).

    The config is frozen so it can flow into ``config_key`` (memoizing
    context and artifact store); ``dtype`` names the precision the sampled
    point/direction batches are handed to the field in — ``fp64`` (the
    historical double-precision interface) or ``fp32`` (positions quantized
    to single precision before the forward, as real mixed-precision trainers
    do; the field's own compute precision is set by its grid config).
    """

    num_iterations: int = 300
    rays_per_batch: int = 256
    samples_per_ray: int = 32
    near: float = 0.5
    far: float = 3.5
    learning_rate: float = 1e-2
    weight_decay: float = 0.0
    background: tuple[float, float, float] | None = (1.0, 1.0, 1.0)
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing
    occupancy: OccupancyGridConfig | None = None
    dtype: str = "fp64"

    def __post_init__(self) -> None:
        # fp16 positions would quantize sample coordinates below the finest
        # grid resolution and int8 tables cannot train at all, so the batch
        # interface stays at fp32 or better.
        precision.validate_precision(self.dtype, ("fp64", "fp32"))


@dataclass
class TrainingHistory:
    """Per-iteration loss curve, timing and sample counts."""

    losses: list[float] = field(default_factory=list)
    psnrs: list[float] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)
    #: Field evaluations per iteration (pruned count under occupancy mode).
    samples_evaluated: list[int] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_psnr(self) -> float:
        return self.psnrs[-1] if self.psnrs else float("nan")

    @property
    def total_time(self) -> float:
        return float(sum(self.iteration_times))

    @property
    def total_samples(self) -> int:
        return int(sum(self.samples_evaluated))


class Trainer:
    """Optimises a radiance field against a dataset of posed images."""

    def __init__(self, field_model: RadianceField, dataset, config: TrainerConfig | None = None):
        self.field = field_model
        self.dataset = dataset
        self.config = config or TrainerConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(
            self.field.parameters(),
            self.field.gradients(),
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()
        self.occupancy_grid = (
            OccupancyGrid.fully_occupied(self.config.occupancy) if self.config.occupancy else None
        )
        self._iterations_done = 0

    # ----------------------------------------------------------- occupancy
    def _field_density(self, unit_points: np.ndarray) -> np.ndarray:
        """Density of the trained field at unit-cube positions (grid updates)."""
        sigma, _ = self.field.forward(unit_points, np.zeros_like(unit_points))
        return sigma

    def _forward_masked(
        self, flat_points: np.ndarray, flat_dirs: np.ndarray, keep: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Field forward on the kept samples only; skipped samples are empty.

        Returns ``(sigma, rgb, kept_indices)`` with full-batch shapes —
        pruned entries hold zero density and color, which is exactly what
        dense sampling would have produced in truly empty space.
        """
        if keep is None or keep.all():
            sigma, rgb = self.field.forward(flat_points, flat_dirs)
            return sigma, rgb, None
        kept = np.flatnonzero(keep)
        sigma = np.zeros(flat_points.shape[0], dtype=np.float64)
        rgb = np.zeros((flat_points.shape[0], 3), dtype=np.float64)
        if kept.size:
            sigma[kept], rgb[kept] = self.field.forward(flat_points[kept], flat_dirs[kept])
        return sigma, rgb, kept

    # --------------------------------------------------------------- steps
    def train_step(self) -> float:
        """Run one optimisation step and return the batch loss."""
        cfg = self.config
        rays, target_rgb = self.dataset.sample_ray_batch(cfg.rays_per_batch, rng=self.rng)
        t_values = stratified_t_values(
            len(rays), cfg.samples_per_ray, cfg.near, cfg.far, rng=self.rng, jitter=True
        )
        points = sample_along_rays(rays, t_values)  # (R, S, 3)
        flat_points = self.dataset.normalize_positions(points.reshape(-1, 3))
        flat_dirs = np.repeat(rays.directions, cfg.samples_per_ray, axis=0)
        # No-op for the fp64 default (copy=False); fp32 quantizes the batch
        # once here instead of per-module downstream.
        batch_dtype = precision.compute_dtype(cfg.dtype)
        flat_points = flat_points.astype(batch_dtype, copy=False)
        flat_dirs = flat_dirs.astype(batch_dtype, copy=False)
        keep = None
        if self.occupancy_grid is not None:
            keep = self.occupancy_grid.occupied(flat_points)

        sigma, rgb, kept = self._forward_masked(flat_points, flat_dirs, keep)
        self.history.samples_evaluated.append(
            flat_points.shape[0] if kept is None else int(kept.size)
        )
        sigma = sigma.reshape(len(rays), cfg.samples_per_ray)
        rgb = rgb.reshape(len(rays), cfg.samples_per_ray, 3)

        background = None if cfg.background is None else np.asarray(cfg.background)
        out = render_rays(sigma, rgb, t_values, background=background)
        loss, grad_pred = mse_loss(out.rgb, target_rgb)
        grad_sigma, grad_rgb = render_rays_backward(
            grad_pred, sigma, rgb, t_values, out, background=background
        )

        self.field.zero_grad()
        if kept is None:
            self.field.backward(grad_sigma.reshape(-1), grad_rgb.reshape(-1, 3))
        elif kept.size:
            self.field.backward(grad_sigma.reshape(-1)[kept], grad_rgb.reshape(-1, 3)[kept])
        if kept is None or kept.size:
            # A fully pruned batch carries no gradient signal: stepping Adam
            # anyway would drift every parameter on stale moments and weight
            # decay, so the field is left untouched until samples survive.
            self.optimizer.step()
        return loss

    def train(self, num_iterations: int | None = None) -> TrainingHistory:
        """Run the full loop; returns the accumulated history."""
        iters = num_iterations if num_iterations is not None else self.config.num_iterations
        tracer = get_tracer()
        for _ in range(iters):
            with tracer.span("nerf.train_iteration", "nerf") as span:
                start = wall_time()
                loss = self.train_step()
                self._iterations_done += 1
                if (
                    self.occupancy_grid is not None
                    and self._iterations_done % self.config.occupancy.update_every == 0
                ):
                    self.occupancy_grid.update(self._field_density)
                elapsed = wall_time() - start
                self.history.losses.append(loss)
                self.history.psnrs.append(psnr_from_mse(loss))
                self.history.iteration_times.append(elapsed)
                if span.enabled:
                    span.add_args(iteration=self._iterations_done, loss=loss)
                    metrics = get_metrics()
                    metrics.counter("nerf.iterations").inc()
                    metrics.counter("nerf.samples_evaluated").inc(
                        self.config.rays_per_batch * self.config.samples_per_ray
                    )
                    metrics.histogram("nerf.loss").observe(loss)
                    metrics.histogram("nerf.train_psnr").observe(self.history.psnrs[-1])
            if self.config.log_every and self._iterations_done % self.config.log_every == 0:
                console(
                    f"iter {self._iterations_done:5d}  loss {loss:.5f}  "
                    f"train-psnr {self.history.psnrs[-1]:.2f} dB"
                )
        return self.history

    # ----------------------------------------------------------- rendering
    def render_image(self, view_index: int, chunk_size: int = 4096) -> np.ndarray:
        """Render a full test image with the current field (no jitter)."""
        cfg = self.config
        rays = self.dataset.rays_for_view(view_index)
        height, width = self.dataset.image_shape
        rgb_out = np.zeros((len(rays), 3), dtype=np.float64)
        background = None if cfg.background is None else np.asarray(cfg.background)
        for start in range(0, len(rays), chunk_size):
            sub = rays.select(np.arange(start, min(start + chunk_size, len(rays))))
            t_values = stratified_t_values(
                len(sub), cfg.samples_per_ray, cfg.near, cfg.far, jitter=False
            )
            points = sample_along_rays(sub, t_values)
            flat_points = self.dataset.normalize_positions(points.reshape(-1, 3))
            flat_dirs = np.repeat(sub.directions, cfg.samples_per_ray, axis=0)
            keep = None
            if self.occupancy_grid is not None:
                keep = self.occupancy_grid.occupied(flat_points)
            sigma, rgb, _ = self._forward_masked(flat_points, flat_dirs, keep)
            sigma = sigma.reshape(len(sub), cfg.samples_per_ray)
            rgb = rgb.reshape(len(sub), cfg.samples_per_ray, 3)
            out = render_rays(sigma, rgb, t_values, background=background)
            rgb_out[start : start + len(sub)] = out.rgb
        return np.clip(rgb_out.reshape(height, width, 3), 0.0, 1.0)

    def evaluate(self, view_indices: list[int] | None = None) -> float:
        """Average PSNR over held-out test views (Table IV metric)."""
        if view_indices is None:
            view_indices = list(range(self.dataset.num_test_views))
        scores = []
        for view in view_indices:
            rendered = self.render_image(view)
            target = self.dataset.test_image(view)
            scores.append(psnr(rendered, target))
        return float(np.mean(scores))


def psnr_from_mse(mse_value: float, max_value: float = 1.0) -> float:
    """PSNR implied by an MSE loss value."""
    if mse_value <= 0:
        return float("inf")
    return float(10.0 * np.log10(max_value**2 / mse_value))
