"""Differentiable volume rendering (paper Eq. (1)).

Given per-sample densities ``sigma_i`` and colors ``c_i`` along a ray with
segment lengths ``delta_i = t_{i+1} - t_i``, the rendered pixel color is

    C_hat(r) = sum_i T_i * (1 - exp(-sigma_i * delta_i)) * c_i
    T_i      = exp(-sum_{j<i} sigma_j * delta_j)

Both the forward compositing and the reverse-mode gradients w.r.t. densities
and colors are implemented as vectorised array math over rays x samples
batches, routed through the :mod:`repro.core.xp` backend shim (numpy by
default).  Rendering always runs in float64 regardless of the field's
precision: compositing sums many small terms and is cheap relative to the
field evaluation it post-processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import xp

__all__ = ["render_rays", "render_rays_backward", "RenderOutput", "accumulate_transmittance"]


@dataclass
class RenderOutput:
    """Result of :func:`render_rays`.

    Attributes
    ----------
    rgb:
        ``(R, 3)`` composited pixel colors.
    weights:
        ``(R, S)`` per-sample compositing weights ``T_i * alpha_i``.
    transmittance:
        ``(R, S)`` accumulated transmittance ``T_i`` before each sample.
    alpha:
        ``(R, S)`` per-sample opacities ``1 - exp(-sigma_i * delta_i)``.
    depth:
        ``(R,)`` expected ray termination depth (weights-weighted t).
    opacity:
        ``(R,)`` accumulated opacity (sum of weights).
    """

    rgb: np.ndarray
    weights: np.ndarray
    transmittance: np.ndarray
    alpha: np.ndarray
    depth: np.ndarray
    opacity: np.ndarray


def accumulate_transmittance(sigma: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Transmittance ``T_i = exp(-sum_{j<i} sigma_j delta_j)``, shape (R, S)."""
    tau = sigma * deltas
    cum = xp.cumsum(tau, axis=-1)
    # Exclusive cumulative sum: T_0 = 1.
    shifted = xp.concatenate([xp.zeros_like(cum[..., :1]), cum[..., :-1]], axis=-1)
    return xp.exp(-shifted)


def render_rays(
    sigma: np.ndarray,
    colors: np.ndarray,
    t_values: np.ndarray,
    background: np.ndarray | None = None,
) -> RenderOutput:
    """Composite per-sample density/color into pixel colors (Eq. (1)).

    Parameters
    ----------
    sigma:
        ``(R, S)`` non-negative densities.
    colors:
        ``(R, S, 3)`` per-sample RGB in ``[0, 1]``.
    t_values:
        ``(R, S)`` or ``(S,)`` sample distances along each ray (increasing).
    background:
        Optional ``(3,)`` background color composited behind the volume with
        the residual transmittance (Synthetic-NeRF uses white).
    """
    sigma = xp.asarray(sigma, dtype=np.float64)
    colors = xp.asarray(colors, dtype=np.float64)
    t_values = xp.asarray(t_values, dtype=np.float64)
    if sigma.ndim != 2:
        raise ValueError(f"sigma must be (R, S), got {sigma.shape}")
    if colors.shape != sigma.shape + (3,):
        raise ValueError(f"colors must be (R, S, 3), got {colors.shape}")
    if t_values.ndim == 1:
        t_values = xp.broadcast_to(t_values, sigma.shape)
    if t_values.shape != sigma.shape:
        raise ValueError(f"t_values must broadcast to {sigma.shape}, got {t_values.shape}")

    deltas = xp.diff(t_values, axis=-1)
    # The last segment duplicates the last spacing so every sample has a width.
    last = deltas[..., -1:] if deltas.shape[-1] > 0 else xp.full(sigma[..., :1].shape, 1e10)
    deltas = xp.concatenate([deltas, last], axis=-1)

    alpha = 1.0 - xp.exp(-xp.maximum(sigma, 0.0) * deltas)
    transmittance = accumulate_transmittance(xp.maximum(sigma, 0.0), deltas)
    weights = transmittance * alpha
    rgb = (weights[..., None] * colors).sum(axis=-2)
    opacity = weights.sum(axis=-1)
    depth = (weights * t_values).sum(axis=-1)
    if background is not None:
        background = xp.asarray(background, dtype=np.float64).reshape(1, 3)
        rgb = rgb + (1.0 - opacity)[..., None] * background
    return RenderOutput(
        rgb=rgb,
        weights=weights,
        transmittance=transmittance,
        alpha=alpha,
        depth=depth,
        opacity=opacity,
    )


def render_rays_backward(
    grad_rgb: np.ndarray,
    sigma: np.ndarray,
    colors: np.ndarray,
    t_values: np.ndarray,
    output: RenderOutput,
    background: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of the rendered color w.r.t. ``sigma`` and ``colors``.

    Parameters
    ----------
    grad_rgb:
        ``(R, 3)`` upstream gradient ``dL/dC_hat``.
    sigma, colors, t_values:
        The same inputs that were passed to :func:`render_rays`.
    output:
        The :class:`RenderOutput` returned by the matching forward call.
    background:
        The same background used in the forward pass (affects the density
        gradient through the residual-transmittance term).

    Returns
    -------
    (grad_sigma, grad_colors):
        Arrays of shapes ``(R, S)`` and ``(R, S, 3)``.

    Notes
    -----
    With ``w_i = T_i * alpha_i``:

    * ``dC/dc_i = w_i``
    * ``dC/dsigma_i`` has two parts: the local term through ``alpha_i``
      (``T_i * exp(-sigma_i delta_i) * delta_i * c_i``) and the occlusion
      term through every later sample's transmittance
      (``-delta_i * sum_{j>i} w_j c_j``), plus ``-delta_i * (1 - O) * bg``
      when a background is composited.
    """
    sigma = xp.asarray(sigma, dtype=np.float64)
    colors = xp.asarray(colors, dtype=np.float64)
    t_values = xp.asarray(t_values, dtype=np.float64)
    grad_rgb = xp.asarray(grad_rgb, dtype=np.float64)
    if t_values.ndim == 1:
        t_values = xp.broadcast_to(t_values, sigma.shape)

    deltas = xp.diff(t_values, axis=-1)
    # Same segment widths as the forward pass: the last spacing is duplicated.
    last = deltas[..., -1:] if deltas.shape[-1] > 0 else xp.full(sigma[..., :1].shape, 1e10)
    deltas = xp.concatenate([deltas, last], axis=-1)

    weights = output.weights
    transmittance = output.transmittance

    # dL/dc_i = w_i * dL/dC
    grad_colors = weights[..., None] * grad_rgb[..., None, :]

    # Per-sample contribution to the pixel color, projected on grad_rgb.
    contrib = (colors * grad_rgb[..., None, :]).sum(axis=-1)  # (R, S) = c_i . dL/dC

    # Local term: d alpha_i / d sigma_i = delta_i * exp(-sigma_i delta_i)
    exp_term = xp.exp(-xp.maximum(sigma, 0.0) * deltas)
    local = transmittance * exp_term * deltas * contrib

    # Occlusion term: increasing sigma_i reduces T_j for all j > i by delta_i.
    weighted_contrib = weights * contrib  # (R, S) = w_j * (c_j . dL/dC)
    # suffix_sum[i] = sum_{j > i} weighted_contrib[j]
    rev_cum = xp.cumsum(weighted_contrib[..., ::-1], axis=-1)[..., ::-1]
    suffix = rev_cum - weighted_contrib
    occlusion = -deltas * suffix

    grad_sigma = local + occlusion

    if background is not None:
        background = xp.asarray(background, dtype=np.float64).reshape(1, 3)
        bg_contrib = (background * grad_rgb).sum(axis=-1)  # (R,)
        # The background term is (1 - sum_j w_j) * bg; d(1 - O)/d sigma_i = -delta_i * T_residual_i
        # where the residual transmittance after the last sample equals
        # T_S = prod_j (1 - alpha_j).  d T_S / d sigma_i = -delta_i * T_S.
        residual = 1.0 - output.opacity  # (R,)
        grad_sigma = grad_sigma - deltas * residual[..., None] * bg_contrib[..., None]

    # Densities are clamped at zero in the forward pass; gradient is zero there
    # when sigma < 0 (subgradient convention).
    grad_sigma = xp.where(sigma < 0.0, 0.0, grad_sigma)
    return grad_sigma, grad_colors
