"""NeRF / iNGP training substrate: encodings, fields, rendering, training."""

from .adam import Adam
from .baselines import FastNeRFField, TensoRFField
from .encoding import FrequencyEncoding, HashGridConfig, HashGridEncoding, level_resolutions
from .field import InstantNGPField, RadianceField, VanillaNeRFField
from .losses import huber_loss, mse_loss
from .metrics import mse, psnr, ssim
from .mlp import MLP
from .occupancy import (
    OccupancyGrid,
    OccupancyGridConfig,
    adaptive_sample_mask,
    adaptive_sample_mask_reference,
    sample_density_grid,
)
from .rays import RayBundle, generate_rays, sample_along_rays, stratified_t_values
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .volume_rendering import RenderOutput, render_rays, render_rays_backward

__all__ = [
    "Adam",
    "FastNeRFField",
    "TensoRFField",
    "FrequencyEncoding",
    "HashGridConfig",
    "HashGridEncoding",
    "level_resolutions",
    "InstantNGPField",
    "RadianceField",
    "VanillaNeRFField",
    "huber_loss",
    "mse_loss",
    "mse",
    "psnr",
    "ssim",
    "MLP",
    "OccupancyGrid",
    "OccupancyGridConfig",
    "adaptive_sample_mask",
    "adaptive_sample_mask_reference",
    "sample_density_grid",
    "RayBundle",
    "generate_rays",
    "sample_along_rays",
    "stratified_t_values",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "RenderOutput",
    "render_rays",
    "render_rays_backward",
]
