"""Scratchpad memory model (2 KB per bank, Table III)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scratchpad"]


@dataclass(frozen=True)
class Scratchpad:
    """A small SRAM buffer between the row-buffer register and the PEs.

    Doubles as the L0 tier of :class:`repro.mem.hierarchy.CacheHierarchy`:
    its capacity bounds how many lines of the previous point the hierarchy
    holds on chip before an access is forwarded to the SRAM cache.

    Attributes
    ----------
    capacity_bytes:
        Storage capacity (Table III: 2 KB).
    bytes_per_cycle:
        Read+write bandwidth to the PE array per cycle.
    energy_pj_per_byte:
        Access energy per byte.
    area_mm2:
        Layout area.
    """

    capacity_bytes: int = 2048
    bytes_per_cycle: int = 128
    energy_pj_per_byte: float = 0.08
    area_mm2: float = 0.15

    def __post_init__(self) -> None:
        # Invalid geometries must fail at construction, not when a cost
        # model eventually divides by them.
        self.validate()

    def validate(self) -> None:
        if self.capacity_bytes <= 0 or self.bytes_per_cycle <= 0:
            raise ValueError("capacity_bytes and bytes_per_cycle must be positive")
        if self.energy_pj_per_byte < 0 or self.area_mm2 < 0:
            raise ValueError("energy_pj_per_byte and area_mm2 must be non-negative")

    def fits(self, working_set_bytes: int) -> bool:
        """Whether a working set fits without spilling to DRAM."""
        return working_set_bytes <= self.capacity_bytes

    def transfer_cycles(self, num_bytes: float) -> float:
        """Cycles to stream ``num_bytes`` through the scratchpad."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.bytes_per_cycle

    def access_energy_j(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.energy_pj_per_byte * 1e-12
