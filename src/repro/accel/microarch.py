"""Per-bank Instant-NeRF microarchitecture (Fig. 8).

Each DRAM bank is paired with a compute engine (INT32 + FP32 PE groups,
scratchpad, crossbar, hash registers) and a controller (instruction FIFO,
decoder, address buffer, command/address generators).  The paper implements
this block in RTL (28 nm, 3 metal layers) and reports 3.6 mm^2 and 596.3 mW;
this model reproduces the same roll-up from per-block area/power estimates so
that the constants feeding the system simulation are traceable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pe import FP32_PE_GROUP, INT32_PE_GROUP, PEGroup
from .scratchpad import Scratchpad

__all__ = ["ControllerConfig", "MicroarchitectureConfig", "BankMicroarchitecture"]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller blocks of Fig. 8 with area/power estimates (28 nm)."""

    instruction_fifo_depth: int = 64
    address_buffer_entries: int = 32
    area_mm2: float = 0.35
    power_mw: float = 45.0

    def validate(self) -> None:
        if self.instruction_fifo_depth <= 0 or self.address_buffer_entries <= 0:
            raise ValueError("FIFO depth and address buffer entries must be positive")


@dataclass(frozen=True)
class MicroarchitectureConfig:
    """Full per-bank configuration (paper Table III)."""

    technology_nm: int = 28
    frequency_mhz: float = 200.0
    int_pe_group: PEGroup = INT32_PE_GROUP
    fp_pe_group: PEGroup = FP32_PE_GROUP
    scratchpad: Scratchpad = field(default_factory=Scratchpad)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    crossbar_area_mm2: float = 0.25
    crossbar_power_mw: float = 40.0
    hash_register_bytes: int = 64
    row_register_bytes: int = 1024  # r0, sized to the global row buffer

    def validate(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")
        self.int_pe_group.validate()
        self.fp_pe_group.validate()
        self.scratchpad.validate()
        self.controller.validate()


class BankMicroarchitecture:
    """Area/power/throughput roll-up for one per-bank Instant-NeRF engine."""

    #: Post-layout numbers reported by the paper (Sec. V-C); the analytic
    #: roll-up below is calibrated to land on these anchors.
    PAPER_AREA_MM2 = 3.6
    PAPER_POWER_MW = 596.3

    def __init__(self, config: MicroarchitectureConfig | None = None):
        self.config = config or MicroarchitectureConfig()
        self.config.validate()

    # -------------------------------------------------------------- area
    def area_mm2(self) -> float:
        """Total area: PE groups + scratchpad + crossbar + controller + registers."""
        cfg = self.config
        register_area = 0.12  # r0 row register + hash registers
        return (
            cfg.int_pe_group.area_mm2
            + cfg.fp_pe_group.area_mm2
            + cfg.scratchpad.area_mm2
            + cfg.crossbar_area_mm2
            + cfg.controller.area_mm2
            + register_area
        )

    def area_fraction_of_bank(self, bank_area_mm2: float = 240.0) -> float:
        """Area overhead relative to one DRAM bank (~1.5% in the paper)."""
        if bank_area_mm2 <= 0:
            raise ValueError("bank_area_mm2 must be positive")
        return self.area_mm2() / bank_area_mm2

    # -------------------------------------------------------------- power
    def power_mw(self, int_activity: float = 1.0, fp_activity: float = 1.0) -> float:
        """Power at the given PE activity factors (defaults: peak, ~596 mW)."""
        if not 0 <= int_activity <= 1 or not 0 <= fp_activity <= 1:
            raise ValueError("activity factors must be in [0, 1]")
        cfg = self.config
        int_group, fp_group = cfg.int_pe_group, cfg.fp_pe_group
        int_power = (
            int_group.peak_ops_per_second * int_activity * int_group.energy_pj_per_op * 1e-12 * 1e3
        )
        fp_power = (
            fp_group.peak_ops_per_second * fp_activity * fp_group.energy_pj_per_op * 1e-12 * 1e3
        )
        spm_bytes_per_s = cfg.scratchpad.bytes_per_cycle * cfg.frequency_mhz * 1e6 * 0.5
        spm_power = spm_bytes_per_s * cfg.scratchpad.energy_pj_per_byte * 1e-12 * 1e3
        static_power = 145.0  # leakage + clock tree at 28 nm
        dynamic = int_power + fp_power + spm_power
        return dynamic + cfg.crossbar_power_mw + cfg.controller.power_mw + static_power

    # --------------------------------------------------------- throughput
    @property
    def int_peak_gops(self) -> float:
        return self.config.int_pe_group.peak_gops

    @property
    def fp_peak_gops(self) -> float:
        return self.config.fp_pe_group.peak_gops

    def compute_seconds(self, fp_ops: float, int_ops: float, efficiency: float = 0.8) -> float:
        """Time for a block of work using both PE groups in parallel."""
        fp_time = self.config.fp_pe_group.seconds_for(fp_ops, efficiency) if fp_ops else 0.0
        int_time = self.config.int_pe_group.seconds_for(int_ops, efficiency) if int_ops else 0.0
        # INT32 index calculation overlaps FP32 interpolation/MAC work.
        return max(fp_time, int_time)

    def compute_energy_j(self, fp_ops: float, int_ops: float) -> float:
        cfg = self.config
        return cfg.fp_pe_group.energy_for(fp_ops) + cfg.int_pe_group.energy_for(int_ops)

    # ---------------------------------------------------------- reporting
    def summary(self) -> dict[str, float]:
        """Key microarchitecture numbers for Table III / Sec. V-C."""
        return {
            "technology_nm": float(self.config.technology_nm),
            "frequency_mhz": self.config.frequency_mhz,
            "int32_pes": float(self.config.int_pe_group.num_pes),
            "fp32_pes": float(self.config.fp_pe_group.num_pes),
            "scratchpad_kb": self.config.scratchpad.capacity_bytes / 1024.0,
            "area_mm2": self.area_mm2(),
            "power_mw": self.power_mw(),
            "paper_area_mm2": self.PAPER_AREA_MM2,
            "paper_power_mw": self.PAPER_POWER_MW,
        }
