"""Instant-NeRF NMP accelerator: per-bank microarchitecture, ISA, system
model and the speedup/energy comparison harness."""

from .cost_model import ComparisonModel, SceneComparison
from .isa import Instruction, InstructionStream, Opcode, build_step_program
from .microarch import BankMicroarchitecture, ControllerConfig, MicroarchitectureConfig
from .nmp import AlgorithmLocality, IterationCost, NMPAccelerator, NMPConfig, StepCost
from .pe import FP32_PE_GROUP, INT32_PE_GROUP, PEGroup
from .scratchpad import Scratchpad

__all__ = [
    "ComparisonModel",
    "SceneComparison",
    "Instruction",
    "InstructionStream",
    "Opcode",
    "build_step_program",
    "BankMicroarchitecture",
    "ControllerConfig",
    "MicroarchitectureConfig",
    "AlgorithmLocality",
    "IterationCost",
    "NMPAccelerator",
    "NMPConfig",
    "StepCost",
    "PEGroup",
    "FP32_PE_GROUP",
    "INT32_PE_GROUP",
    "Scratchpad",
]
