"""Near-memory-processing accelerator model (paper Sec. IV / Fig. 5).

:class:`NMPAccelerator` models the full Instant-NeRF accelerator: an LPDDR4
memory system in which every bank is paired with one
:class:`repro.accel.microarch.BankMicroarchitecture`.  Given the iNGP
training workload, an algorithm configuration (hash locality and streaming
order expressed as request-reduction factors) and an inter-bank parallelism
plan, it estimates per-iteration latency, per-scene training time and energy.

The timing model is phase-based rather than cycle-by-cycle (the paper uses a
Ramulator-extended cycle simulator; see DESIGN.md §1 for the substitution
argument): each training step is mapped onto the banks according to the
parallelism plan, its row accesses and PE operations are counted, and the
step latency is the slowest bank's memory/compute time plus the inter-bank
transfer time dictated by the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.parallelism import (
    MovementCategory,
    ParallelismPlan,
    analyze_plan,
    heterogeneous_plan,
)
from ..dram.energy import DRAMEnergyModel
from ..dram.spec import DRAMSpec, LPDDR4_2400
from ..obs import get_metrics, get_tracer
from ..workloads.batch import BatchGeometry
from ..workloads.steps import INGPWorkloadModel, StepName
from .microarch import BankMicroarchitecture

if TYPE_CHECKING:  # imported lazily at runtime (repro.mem depends on accel)
    from ..mem.hierarchy import HierarchyStats
    from ..streams.ir import RequestStream

__all__ = ["AlgorithmLocality", "NMPConfig", "StepCost", "IterationCost", "NMPAccelerator"]


@dataclass(frozen=True)
class AlgorithmLocality:
    """How the Instant-NeRF algorithm reduces hash-table memory requests.

    Attributes
    ----------
    row_requests_per_cube:
        Average distinct DRAM rows touched to gather one 3D cube's eight
        embeddings (paper Sec. III-A: 4.02 for the original hash, 1.58 for
        the Morton locality hash).
    cube_sharing_run_length:
        Average number of consecutive streamed points that reuse the same
        cube (Fig. 7(a)); register hits remove their lookups entirely.
    bank_conflict_stall_factor:
        Multiplicative latency penalty from residual bank conflicts after
        the hash-table mapping scheme (1.0 = no stalls).
    """

    row_requests_per_cube: float = 1.58
    cube_sharing_run_length: float = 3.0
    bank_conflict_stall_factor: float = 1.1

    def validate(self) -> None:
        if self.row_requests_per_cube <= 0 or self.cube_sharing_run_length < 1:
            raise ValueError("row_requests_per_cube must be > 0 and cube_sharing_run_length >= 1")
        if self.bank_conflict_stall_factor < 1.0:
            raise ValueError("bank_conflict_stall_factor must be >= 1")

    @classmethod
    def instant_nerf(cls) -> "AlgorithmLocality":
        """Defaults measured for Morton hashing + ray-first streaming."""
        return cls(
            row_requests_per_cube=1.58, cube_sharing_run_length=3.0, bank_conflict_stall_factor=1.1
        )

    @classmethod
    def ingp_baseline(cls) -> "AlgorithmLocality":
        """Defaults for the original iNGP hash with random point order."""
        return cls(
            row_requests_per_cube=4.02, cube_sharing_run_length=1.05, bank_conflict_stall_factor=1.6
        )

    @classmethod
    def from_request_stream(
        cls,
        stream: "RequestStream",
        row_bytes: int = 1024,
        bank_conflict_stall_factor: float = 1.0,
    ) -> "AlgorithmLocality":
        """Locality factors measured from an actual :class:`RequestStream`.

        Replaces the paper's hand-measured constants with the IR's own
        accounting: row requests per charged point from the row-request
        kernel, sharing run length from the stream's reuse groups.  The
        residual ``bank_conflict_stall_factor`` still has to come from the
        mapping analysis (it depends on the bank layout, not the stream).
        """
        from ..core.streaming import row_requests_for_stream, stream_sharing_run_length

        if stream.num_points == 0:
            raise ValueError("cannot measure locality factors from an empty stream")
        charged = int(stream.run_starts().sum())
        requests = row_requests_for_stream(stream, row_bytes=row_bytes)
        return cls(
            row_requests_per_cube=max(requests / charged, 1e-9),
            cube_sharing_run_length=max(stream_sharing_run_length(stream), 1.0),
            bank_conflict_stall_factor=bank_conflict_stall_factor,
        )


@dataclass(frozen=True)
class NMPConfig:
    """System-level configuration of the accelerator."""

    dram: DRAMSpec = field(default_factory=lambda: LPDDR4_2400)
    num_active_banks: int = 16             # one DRAM die: 16 banks, each with a microarchitecture
    plan: ParallelismPlan = field(default_factory=heterogeneous_plan)
    compute_efficiency: float = 0.9        # PE-array utilisation on mapped kernels
    load_imbalance: float = 1.2            # slowest-bank factor after inter-level balancing
    subarray_parallel_speedup: float = 2.0  # row-access overlap from subarray-level parallelism
    interbank_bandwidth_gbps: float | None = None  # defaults to the external LPDDR4 bandwidth

    def validate(self) -> None:
        if self.num_active_banks <= 0:
            raise ValueError("num_active_banks must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.load_imbalance < 1.0:
            raise ValueError("load_imbalance must be >= 1")
        if self.subarray_parallel_speedup < 1.0:
            raise ValueError("subarray_parallel_speedup must be >= 1")

    @property
    def effective_interbank_bandwidth_gbps(self) -> float:
        if self.interbank_bandwidth_gbps is not None:
            return self.interbank_bandwidth_gbps
        # Inter-bank transfers ride the shared channel I/O: 16 bit x 2400 MT/s
        # per channel, summed over channels, derated for protocol overhead.
        org = self.dram.organization
        per_channel = org.channel_io_bits / 8 * org.clock_mhz * 2 * 1e6 / 1e9
        return 0.8 * per_channel * org.num_channels


@dataclass(frozen=True)
class StepCost:
    """Latency/energy of one training step on the accelerator (one iteration)."""

    name: str
    memory_seconds: float
    compute_seconds: float
    interbank_seconds: float
    energy_j: float

    @property
    def seconds(self) -> float:
        return max(self.memory_seconds, self.compute_seconds) + self.interbank_seconds


@dataclass(frozen=True)
class IterationCost:
    """All steps of one training iteration."""

    steps: dict[str, StepCost]

    @property
    def seconds(self) -> float:
        return sum(step.seconds for step in self.steps.values())

    @property
    def energy_j(self) -> float:
        return sum(step.energy_j for step in self.steps.values())

    def breakdown(self) -> dict[str, float]:
        total = self.seconds
        return {name: step.seconds / total for name, step in self.steps.items()} if total else {}


class NMPAccelerator:
    """Executes the iNGP training workload on the near-bank accelerator."""

    #: Memory-clock cycles for one near-bank row access (precharge + activate
    #: + column access into the r0 register, Table III timings).
    ROW_ACCESS_CYCLES = 14
    #: Additional cycles for the write-back of a modified row (tWR).
    ROW_WRITE_CYCLES = 6

    def __init__(
        self,
        config: NMPConfig | None = None,
        workload: INGPWorkloadModel | None = None,
        locality: AlgorithmLocality | None = None,
        microarch: BankMicroarchitecture | None = None,
        energy_model: DRAMEnergyModel | None = None,
        cache_stats: "HierarchyStats | None" = None,
        sample_fraction: float = 1.0,
    ):
        self.config = config or NMPConfig()
        self.config.validate()
        self.workload = workload or INGPWorkloadModel()
        self.locality = locality or AlgorithmLocality.instant_nerf()
        self.locality.validate()
        self.microarch = microarch or BankMicroarchitecture()
        self.energy_model = energy_model or DRAMEnergyModel()
        self.batch: BatchGeometry = self.workload.batch
        #: Measured :class:`repro.mem.hierarchy.HierarchyStats` of the SRAM
        #: cache tier in front of the banks.  When given, only the cache
        #: misses (plus prefetch fills) of the hash-table streams reach the
        #: row buffers, and the SRAM lookup energy joins the HT step energy.
        self.cache_stats = cache_stats
        if cache_stats is not None and cache_stats.dram_traffic_fraction <= 0:
            raise ValueError("cache_stats must describe a stream with DRAM traffic fraction > 0")
        #: Fraction of the batch's samples that survive occupancy-grid
        #: adaptive marching (1.0 = dense sampling).  Pruned samples skip the
        #: hash-table lookups, the interpolation and the MLPs entirely, so
        #: every per-point memory/compute term scales with it; the
        #: plan-derived inter-bank traffic is kept unscaled (conservative).
        self.sample_fraction = sample_fraction
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")

    @property
    def effective_points_per_iteration(self) -> float:
        """Field-evaluated samples per iteration after occupancy pruning."""
        return self.batch.points_per_iteration * self.sample_fraction

    # ------------------------------------------------------------ hash side
    def _hash_row_accesses_per_iteration(self) -> float:
        """Distinct near-bank row accesses for one iteration of HT lookups."""
        cubes = self.effective_points_per_iteration * self.workload.grid.num_levels
        effective_cubes = cubes / self.locality.cube_sharing_run_length
        rows = effective_cubes * self.locality.row_requests_per_cube
        if self.cache_stats is not None:
            rows *= self.cache_stats.dram_traffic_fraction
        return rows

    def _hash_sram_energy_j(self) -> float:
        """SRAM (scratchpad + cache) energy of one iteration's HT lookups."""
        if self.cache_stats is None:
            return 0.0
        lookups = self.effective_points_per_iteration * self.workload.grid.num_levels * 8
        return lookups * self.cache_stats.energy_per_access_j

    def _row_seconds(self, row_accesses: float, include_write_back: bool = False) -> float:
        write_back_cycles = self.ROW_WRITE_CYCLES if include_write_back else 0
        cycles_per_access = self.ROW_ACCESS_CYCLES + write_back_cycles
        clock_hz = self.config.dram.organization.clock_mhz * 1e6
        per_bank = row_accesses / self.config.num_active_banks
        per_bank *= self.config.load_imbalance * self.locality.bank_conflict_stall_factor
        per_bank /= self.config.subarray_parallel_speedup
        return per_bank * cycles_per_access / clock_hz

    # ----------------------------------------------------------- step costs
    def _interbank_seconds(
        self, step: str, traffic_bytes_by_category: dict[MovementCategory, float]
    ) -> float:
        bandwidth = self.config.effective_interbank_bandwidth_gbps * 1e9
        # Broadcasts (category 1 duplication) go out once over the shared bus
        # and are snooped by every bank, so they cost one tensor transfer, not
        # (banks - 1) copies; the remaining categories are point-to-point.
        duplication = traffic_bytes_by_category.get(MovementCategory.DUPLICATION, 0.0)
        broadcast_bytes = duplication / max(1, self.config.num_active_banks - 1)
        other_bytes = sum(
            value
            for cat, value in traffic_bytes_by_category.items()
            if cat is not MovementCategory.DUPLICATION
        )
        return (broadcast_bytes + other_bytes) / bandwidth

    def step_cost(self, step: str) -> StepCost:
        """Latency/energy of one aggregated step: "HT", "MLP", "MLP_b" or "HT_b"."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._step_cost(step)
        with tracer.span("accel.step", "accel") as span:
            cost = self._step_cost(step)
            # Modeled nanoseconds as the deterministic duration of the span.
            span.set_cycles(int(cost.seconds * 1e9))
            span.add_args(
                step=step,
                memory_s=cost.memory_seconds,
                compute_s=cost.compute_seconds,
                interbank_s=cost.interbank_seconds,
            )
            get_metrics().histogram("accel.step_seconds").observe(cost.seconds)
            return cost

    def _step_cost(self, step: str) -> StepCost:
        if step not in ("HT", "MLP", "MLP_b", "HT_b"):
            raise ValueError(f"unknown step {step!r}")
        cfg = self.config
        wl = self.workload
        traffic = analyze_plan(cfg.plan, wl, num_banks=cfg.num_active_banks).per_step[step]
        interbank_seconds = self._interbank_seconds(step, traffic)

        grid = wl.grid
        points = self.effective_points_per_iteration
        int_ops_ht = points * grid.num_levels * 8 * 12
        fp_ops_interp = points * grid.num_levels * 8 * grid.features_per_entry * 2
        mlp_flops = self.sample_fraction * (
            wl.step(StepName.MLP_DENSITY).fp_ops + wl.step(StepName.MLP_COLOR).fp_ops
        )

        if step == "HT":
            rows = self._hash_row_accesses_per_iteration()
            memory_seconds = self._row_seconds(rows)
            compute_seconds = self.microarch.compute_seconds(
                fp_ops_interp / cfg.num_active_banks,
                int_ops_ht / cfg.num_active_banks,
                cfg.compute_efficiency,
            )
            dynamic_j = self.microarch.compute_energy_j(fp_ops_interp, int_ops_ht)
            dynamic_j += self._hash_sram_energy_j()
            activations = rows
        elif step == "HT_b":
            rows = self._hash_row_accesses_per_iteration()
            memory_seconds = self._row_seconds(rows, include_write_back=True)
            compute_seconds = self.microarch.compute_seconds(
                fp_ops_interp / cfg.num_active_banks,
                int_ops_ht / cfg.num_active_banks,
                cfg.compute_efficiency,
            )
            dynamic_j = self.microarch.compute_energy_j(fp_ops_interp, int_ops_ht)
            dynamic_j += self._hash_sram_energy_j()
            activations = rows
        elif step == "MLP":
            per_bank_flops = mlp_flops / cfg.num_active_banks
            compute_seconds = self.microarch.compute_seconds(
                per_bank_flops, 0.0, cfg.compute_efficiency
            )
            # Activations stream from the local row buffers.
            bytes_per_bank = (
                self.sample_fraction
                * (wl.encoding_output_bytes + wl.mlp_output_bytes)
                / cfg.num_active_banks
            )
            row_buffer_bytes = cfg.dram.organization.row_buffer_bytes
            memory_seconds = self._row_seconds(
                bytes_per_bank / row_buffer_bytes * cfg.num_active_banks
            )
            activations = bytes_per_bank * cfg.num_active_banks / row_buffer_bytes
            dynamic_j = self.microarch.compute_energy_j(mlp_flops, 0.0)
        elif step == "MLP_b":
            backward_flops = 2.0 * mlp_flops
            per_bank_flops = backward_flops / cfg.num_active_banks
            compute_seconds = self.microarch.compute_seconds(
                per_bank_flops, 0.0, cfg.compute_efficiency
            )
            bytes_per_bank = (
                self.sample_fraction
                * (wl.encoding_output_bytes + 2 * wl.mlp_intermediate_bytes)
                / cfg.num_active_banks
            )
            row_buffer_bytes = cfg.dram.organization.row_buffer_bytes
            memory_seconds = self._row_seconds(
                bytes_per_bank / row_buffer_bytes * cfg.num_active_banks
            )
            activations = bytes_per_bank * cfg.num_active_banks / row_buffer_bytes
            dynamic_j = self.microarch.compute_energy_j(backward_flops, 0.0)
        else:
            raise ValueError(f"unknown step {step!r}")

        busy_seconds = max(memory_seconds, compute_seconds) + interbank_seconds
        dram_energy = self.energy_model.energy(
            activations=int(activations),
            bytes_accessed=int(activations * cfg.dram.organization.row_buffer_bytes),
            bytes_on_io=int(sum(traffic.values())),
            elapsed_seconds=busy_seconds,
        )
        static_j = self.static_power_w() * busy_seconds
        return StepCost(
            name=step,
            memory_seconds=memory_seconds,
            compute_seconds=compute_seconds,
            interbank_seconds=interbank_seconds,
            energy_j=dynamic_j + dram_energy.total_j + static_j,
        )

    # --------------------------------------------------------------- totals
    def iteration_cost(self) -> IterationCost:
        steps = {name: self.step_cost(name) for name in ("HT", "MLP", "MLP_b", "HT_b")}
        return IterationCost(steps=steps)

    def scene_training_seconds(self) -> float:
        """Per-scene training time (Fig. 11(a) numerator)."""
        return self.iteration_cost().seconds * self.batch.iterations_per_scene

    def scene_training_energy_j(self) -> float:
        """Per-scene training energy (Fig. 11(b) numerator)."""
        return self.iteration_cost().energy_j * self.batch.iterations_per_scene

    def static_power_w(self) -> float:
        """Leakage + controller power of all active microarchitectures."""
        per_bank_static_mw = 0.25 * self.microarch.power_mw()  # idle fraction of peak
        return per_bank_static_mw * 1e-3 * self.config.num_active_banks

    def average_power_w(self) -> float:
        cost = self.iteration_cost()
        return cost.energy_j / cost.seconds if cost.seconds else 0.0
