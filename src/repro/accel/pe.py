"""Processing-element (PE) group models.

Each per-bank Instant-NeRF microarchitecture contains two PE groups
(Table III: 256 INT32 PEs + 256 FP32 PEs at 200 MHz).  The INT32 group
executes the hash-index calculations; the FP32 group executes trilinear
interpolation, the MLP MACs and the gradient math.  The model exposes
throughput (ops/second), per-op energy and area so the microarchitecture can
roll them up.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PEGroup", "INT32_PE_GROUP", "FP32_PE_GROUP"]


@dataclass(frozen=True)
class PEGroup:
    """A SIMD group of identical processing elements.

    Attributes
    ----------
    name:
        Human-readable name (``int32`` / ``fp32``).
    num_pes:
        Number of parallel lanes.
    frequency_mhz:
        Clock frequency.
    ops_per_pe_per_cycle:
        Operations each lane retires per cycle (1 for a simple ALU/MAC).
    energy_pj_per_op:
        Dynamic energy per operation (28 nm-class estimates).
    area_mm2:
        Area of the whole group.
    """

    name: str
    num_pes: int = 256
    frequency_mhz: float = 200.0
    ops_per_pe_per_cycle: float = 1.0
    energy_pj_per_op: float = 1.0
    area_mm2: float = 1.0

    def validate(self) -> None:
        if self.num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")
        if self.ops_per_pe_per_cycle <= 0:
            raise ValueError("ops_per_pe_per_cycle must be positive")

    @property
    def peak_ops_per_second(self) -> float:
        return self.num_pes * self.frequency_mhz * 1e6 * self.ops_per_pe_per_cycle

    @property
    def peak_gops(self) -> float:
        return self.peak_ops_per_second / 1e9

    def cycles_for(self, num_ops: float, efficiency: float = 1.0) -> float:
        """Cycles needed to execute ``num_ops`` operations on this group."""
        if num_ops < 0:
            raise ValueError("num_ops must be non-negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        ops_per_cycle = self.num_pes * self.ops_per_pe_per_cycle * efficiency
        return num_ops / ops_per_cycle

    def seconds_for(self, num_ops: float, efficiency: float = 1.0) -> float:
        return self.cycles_for(num_ops, efficiency) / (self.frequency_mhz * 1e6)

    def energy_for(self, num_ops: float) -> float:
        """Dynamic energy in joules for ``num_ops`` operations."""
        if num_ops < 0:
            raise ValueError("num_ops must be non-negative")
        return num_ops * self.energy_pj_per_op * 1e-12


#: Paper Table III configuration: 256 INT32 PEs per bank at 200 MHz.  The
#: per-op energy is a 28 nm estimate for an INT32 ALU op including operand
#: movement from the local register file.
INT32_PE_GROUP = PEGroup(
    name="int32", num_pes=256, frequency_mhz=200.0, energy_pj_per_op=2.0, area_mm2=0.9
)

#: Paper Table III configuration: 256 FP32 PEs per bank at 200 MHz.  The
#: mixed-precision datapath processes FP16 operands two per lane and fuses
#: multiply-accumulate, so each PE retires 4 FLOPs per cycle on MLP work;
#: the per-op energy corresponds to one such FP16 lane operation at 28 nm.
FP32_PE_GROUP = PEGroup(
    name="fp32",
    num_pes=256,
    frequency_mhz=200.0,
    ops_per_pe_per_cycle=4.0,
    energy_pj_per_op=1.3,
    area_mm2=1.8,
)
