"""Speedup / energy-efficiency comparisons (paper Fig. 11).

:class:`ComparisonModel` puts the NMP accelerator and the GPU baselines side
by side for a set of scenes and reports the normalized speedup and energy
efficiency the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.roofline import RooflineModel
from ..gpu.specs import GPUSpec
from .nmp import NMPAccelerator

__all__ = ["SceneComparison", "ComparisonModel"]


@dataclass(frozen=True)
class SceneComparison:
    """Accelerator-vs-GPU result for one scene."""

    scene: str
    gpu_name: str
    gpu_seconds: float
    gpu_energy_j: float
    nmp_seconds: float
    nmp_energy_j: float

    @property
    def speedup(self) -> float:
        return self.gpu_seconds / self.nmp_seconds if self.nmp_seconds else float("inf")

    @property
    def energy_efficiency_improvement(self) -> float:
        return self.gpu_energy_j / self.nmp_energy_j if self.nmp_energy_j else float("inf")


class ComparisonModel:
    """Runs the Fig. 11 comparison for one accelerator and one GPU baseline."""

    def __init__(
        self, accelerator: NMPAccelerator, gpu: GPUSpec, use_measured_gpu_time: bool = True
    ):
        self.accelerator = accelerator
        self.gpu = gpu
        self.gpu_model = RooflineModel(gpu, workload=accelerator.workload)
        self.use_measured_gpu_time = use_measured_gpu_time

    def gpu_seconds(self) -> float:
        """GPU per-scene training time: modelled, or the paper's measurement."""
        if self.use_measured_gpu_time and self.gpu.measured_training_s is not None:
            return self.gpu.measured_training_s
        return self.gpu_model.scene_training_seconds()

    def compare_scene(self, scene: str, scene_difficulty: float = 1.0) -> SceneComparison:
        """One Fig. 11 bar.

        ``scene_difficulty`` scales both platforms' workload identically (a
        denser scene samples more occupied cubes); it preserves the paper's
        per-scene variation without changing the relative speedup regime.
        """
        if scene_difficulty <= 0:
            raise ValueError("scene_difficulty must be positive")
        gpu_seconds = self.gpu_seconds() * scene_difficulty
        gpu_energy = gpu_seconds * self.gpu.power_w * 0.75
        nmp_seconds = self.accelerator.scene_training_seconds() * scene_difficulty
        nmp_energy = self.accelerator.scene_training_energy_j() * scene_difficulty
        return SceneComparison(
            scene=scene,
            gpu_name=self.gpu.name,
            gpu_seconds=gpu_seconds,
            gpu_energy_j=gpu_energy,
            nmp_seconds=nmp_seconds,
            nmp_energy_j=nmp_energy,
        )

    def compare_scenes(self, scene_difficulties: dict[str, float]) -> list[SceneComparison]:
        """All Fig. 11 bars for this GPU baseline."""
        return [self.compare_scene(scene, diff) for scene, diff in scene_difficulties.items()]

    def memory_system_summary(self) -> dict:
        """Memory-side accounting of the accelerator under comparison.

        Folds in the on-chip hierarchy statistics
        (:class:`repro.mem.hierarchy.HierarchyStats`) when the accelerator
        was built with measured ``cache_stats``: hit rates per tier, the
        fraction of hash-table traffic still reaching DRAM, and the SRAM
        energy share of one training iteration.
        """
        accel = self.accelerator
        iteration = accel.iteration_cost()
        summary = {
            "gpu": self.gpu.name,
            "dram_peak_gbps": accel.config.dram.organization.peak_bandwidth_gbps,
            "num_active_banks": accel.config.num_active_banks,
            "iteration_energy_j": iteration.energy_j,
            "cache_modelled": accel.cache_stats is not None,
            # Occupancy-grid adaptive marching: fraction of the dense batch
            # that still reaches the hash tables and MLPs (1.0 = dense).
            "sample_fraction": accel.sample_fraction,
            "effective_points_per_iteration": accel.effective_points_per_iteration,
        }
        stats = accel.cache_stats
        if stats is not None:
            # iteration_cost folds the SRAM lookup energy into both the HT
            # (forward) and HT_b (backward) steps.
            sram_j = 2 * accel._hash_sram_energy_j()
            summary.update(
                {
                    "l0_hit_rate": stats.l0_hit_rate,
                    "cache_hit_rate": stats.cache.hit_rate,
                    "overall_hit_rate": stats.overall_hit_rate,
                    "dram_traffic_fraction": stats.dram_traffic_fraction,
                    "cache_writebacks": stats.cache.writebacks,
                    "sram_energy_j_per_iteration": sram_j,
                    "sram_energy_fraction": (
                        sram_j / iteration.energy_j if iteration.energy_j else 0.0
                    ),
                }
            )
        return summary
