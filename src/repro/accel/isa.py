"""Micro-instruction set of the per-bank Instant-NeRF controller.

The controller (Fig. 8) reads instructions from an instruction FIFO, decodes
them, and drives the compute engine and the bank command/address generators.
This module defines the instruction encoding, a tiny assembler-style builder
for the instruction streams of each training step, and a functional decoder
used by the microarchitecture model to estimate control activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Opcode", "Instruction", "InstructionStream", "build_step_program"]


class Opcode(Enum):
    """Operations the per-bank controller can dispatch."""

    ROW_READ = "row_read"        # bank row -> r0 register
    ROW_WRITE = "row_write"      # r0 register -> bank row
    SPM_LOAD = "spm_load"        # r0 -> scratchpad (through the crossbar)
    SPM_STORE = "spm_store"      # scratchpad -> r0
    HASH = "hash"                # INT32 PE group: hash-index calculation
    GATHER = "gather"            # select embedding entries out of r0/scratchpad
    MAC = "mac"                  # FP32 PE group: multiply-accumulate block
    INTERP = "interp"            # FP32 PE group: trilinear interpolation
    ACT = "act"                  # activation function evaluation
    REDUCE = "reduce"            # partial-sum reduction (gradient accumulation)
    SCATTER_ADD = "scatter_add"  # gradient scatter into embedding rows
    SYNC = "sync"                # wait for outstanding bank commands
    NOP = "nop"


@dataclass(frozen=True)
class Instruction:
    """One controller instruction.

    ``operand`` carries a size (elements or bytes, opcode-dependent) so the
    timing model knows how much work the instruction represents.
    """

    opcode: Opcode
    operand: int = 0
    target_subarray: int | None = None

    def __post_init__(self) -> None:
        if self.operand < 0:
            raise ValueError("operand must be non-negative")


@dataclass
class InstructionStream:
    """An ordered list of instructions for one step on one bank."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, opcode: Opcode, operand: int = 0, target_subarray: int | None = None) -> None:
        self.instructions.append(Instruction(opcode, operand, target_subarray))

    def __len__(self) -> int:
        return len(self.instructions)

    def count(self, opcode: Opcode) -> int:
        return sum(1 for inst in self.instructions if inst.opcode is opcode)

    def total_operand(self, opcode: Opcode) -> int:
        return sum(inst.operand for inst in self.instructions if inst.opcode is opcode)


def build_step_program(
    step_name: str,
    num_points: int,
    num_levels: int,
    mac_ops: int = 0,
    rows_touched: int = 0,
) -> InstructionStream:
    """Assemble a representative instruction stream for one training step.

    The stream is schematic (one instruction per block of work rather than
    per element) but preserves the relative mix of row accesses, hash index
    calculations, gathers, interpolations and MACs, which is what the
    controller-activity and instruction-FIFO sizing estimates need.

    Parameters
    ----------
    step_name:
        One of ``"HT"``, ``"HT_b"``, ``"MLP"``, ``"MLP_b"``.
    num_points:
        Points processed by this bank.
    num_levels:
        Hash-table levels handled by this bank (parameter parallelism).
    mac_ops:
        Total MAC operations for MLP-type steps.
    rows_touched:
        Number of distinct DRAM rows the step reads or writes.
    """
    if num_points < 0 or num_levels < 0:
        raise ValueError("num_points and num_levels must be non-negative")
    stream = InstructionStream(step_name)
    key = step_name.upper()
    if key == "HT":
        for _ in range(max(1, rows_touched)):
            stream.append(Opcode.ROW_READ, operand=1024)
        stream.append(Opcode.HASH, operand=num_points * num_levels * 8)
        stream.append(Opcode.GATHER, operand=num_points * num_levels * 8)
        stream.append(Opcode.INTERP, operand=num_points * num_levels)
        stream.append(Opcode.SPM_STORE, operand=num_points * num_levels * 4)
        stream.append(Opcode.SYNC)
    elif key == "HT_B":
        stream.append(Opcode.HASH, operand=num_points * num_levels * 8)
        for _ in range(max(1, rows_touched)):
            stream.append(Opcode.ROW_READ, operand=1024)
        stream.append(Opcode.SCATTER_ADD, operand=num_points * num_levels * 8)
        for _ in range(max(1, rows_touched)):
            stream.append(Opcode.ROW_WRITE, operand=1024)
        stream.append(Opcode.SYNC)
    elif key == "MLP":
        stream.append(Opcode.SPM_LOAD, operand=num_points * 64)
        stream.append(Opcode.MAC, operand=max(1, mac_ops))
        stream.append(Opcode.ACT, operand=num_points)
        stream.append(Opcode.SPM_STORE, operand=num_points * 4)
        stream.append(Opcode.SYNC)
    elif key == "MLP_B":
        stream.append(Opcode.SPM_LOAD, operand=num_points * 4)
        stream.append(Opcode.MAC, operand=max(1, mac_ops))
        stream.append(Opcode.REDUCE, operand=max(1, mac_ops // 64))
        stream.append(Opcode.ROW_WRITE, operand=1024)
        stream.append(Opcode.SYNC)
    else:
        raise ValueError(f"unknown step name {step_name!r}")
    return stream
