"""Byte-address to (channel, rank, bank, subarray, row, column) mapping.

The default interleaving follows the common row-bank-column policy used for
LPDDR4 in edge SoCs: the column bits (within a row) are least significant so
a streaming access fills a row before moving on, bank bits sit above the
column bits so consecutive rows map to different banks (bank-level
parallelism), then channel bits, then row bits.

The mapping is intentionally configurable because the Instant-NeRF hash-table
mapping scheme (Sec. IV-B) works precisely by *changing* how hash-table
addresses land on subarrays and banks; see :mod:`repro.core.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import DRAMOrganization

__all__ = ["DecodedAddress", "AddressMapper"]


@dataclass(frozen=True)
class DecodedAddress:
    """Result of decoding one byte address."""

    channel: int
    rank: int
    bank: int
    subarray: int
    row: int
    column: int


class AddressMapper:
    """Decode byte addresses into DRAM coordinates.

    Bit layout (LSB to MSB): column | bank | channel | row.  The subarray is
    derived from the row index (rows are striped over subarrays), matching
    how subarray-level parallelism exposes mostly-independent row groups
    within a bank.
    """

    def __init__(self, organization: DRAMOrganization | None = None):
        self.org = organization or DRAMOrganization()
        self.org.validate()
        self._column_bits = int(np.log2(self.org.row_buffer_bytes))
        self._bank_bits = int(np.ceil(np.log2(self.org.banks_per_chip)))
        self._channel_bits = (
            int(np.ceil(np.log2(self.org.num_channels))) if self.org.num_channels > 1 else 0
        )
        if 2**self._column_bits != self.org.row_buffer_bytes:
            raise ValueError("row_buffer_bytes must be a power of two")

    # ------------------------------------------------------------- scalars
    def decode(self, address: int) -> DecodedAddress:
        """Decode a single byte address."""
        channel, rank, bank, subarray, row, column = (
            int(v[0]) for v in self.decode_array(np.array([address]))
        )
        return DecodedAddress(channel, rank, bank, subarray, row, column)

    def encode(self, channel: int, bank: int, row: int, column: int = 0, rank: int = 0) -> int:
        """Inverse of :meth:`decode` (rank collapses into the channel for 1 rank/ch)."""
        if not 0 <= channel < self.org.num_channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= bank < self.org.banks_per_chip:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= column < self.org.row_buffer_bytes:
            raise ValueError(f"column {column} out of range")
        addr = row
        if self._channel_bits:
            addr = (addr << self._channel_bits) | channel
        addr = (addr << self._bank_bits) | bank
        addr = (addr << self._column_bits) | column
        return int(addr)

    # -------------------------------------------------------------- arrays
    def decode_array(self, addresses: np.ndarray) -> tuple[np.ndarray, ...]:
        """Vectorised decode; returns (channel, rank, bank, subarray, row, column)."""
        addr = np.asarray(addresses, dtype=np.int64)
        column = addr & (self.org.row_buffer_bytes - 1)
        rest = addr >> self._column_bits
        bank = rest & (2**self._bank_bits - 1)
        rest = rest >> self._bank_bits
        if self._channel_bits:
            channel = rest & (2**self._channel_bits - 1)
            rest = rest >> self._channel_bits
        else:
            channel = np.zeros_like(rest)
        row = rest
        rank = np.zeros_like(rest)
        subarray = row % self.org.subarrays_per_bank
        bank = np.minimum(bank, self.org.banks_per_chip - 1)
        channel = np.minimum(channel, self.org.num_channels - 1)
        return channel, rank, bank, subarray, row, column

    # ---------------------------------------------------------- utilities
    def row_of(self, addresses: np.ndarray) -> np.ndarray:
        """Global row identifier (unique across channel/bank/row) per address."""
        channel, _, bank, _, row, _ = self.decode_array(addresses)
        return ((row * self.org.num_channels + channel) * self.org.banks_per_chip) + bank

    def bank_of(self, addresses: np.ndarray) -> np.ndarray:
        """Flat bank identifier (channel-major) per address."""
        channel, _, bank, _, _, _ = self.decode_array(addresses)
        return channel * self.org.banks_per_chip + bank
