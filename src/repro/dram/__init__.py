"""LPDDR4 DRAM substrate: organization/timing specs, bank/subarray model,
controllers, full-system trace simulation and energy accounting."""

from .address import AddressMapper, DecodedAddress
from .bank import AccessResult, Bank, BankState
from .controller import ChannelController, ChannelStats
from .energy import DRAMEnergyModel, EnergyBreakdown
from .spec import LPDDR4_2400, DRAMOrganization, DRAMSpec, DRAMTiming
from .system import DRAMSystem, TraceResult
from .trace import MemoryRequest, RequestType, coalesce_row_requests, requests_from_addresses

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "AccessResult",
    "Bank",
    "BankState",
    "ChannelController",
    "ChannelStats",
    "DRAMEnergyModel",
    "EnergyBreakdown",
    "LPDDR4_2400",
    "DRAMOrganization",
    "DRAMSpec",
    "DRAMTiming",
    "DRAMSystem",
    "TraceResult",
    "MemoryRequest",
    "RequestType",
    "coalesce_row_requests",
    "requests_from_addresses",
]
