"""Bank and subarray state machines with an open-page row-buffer policy.

Each bank tracks which row is open in each of its subarrays (subarray-level
parallelism: different subarrays keep independent local row buffers, so two
requests to different subarrays of the same bank do not necessarily conflict
— the property exploited by the Instant-NeRF intra-level hash-table mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import DRAMSpec

__all__ = ["AccessResult", "BankState", "Bank"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one row access issued to a bank.

    ``start_cycle`` is the cycle at which the bank actually began the access
    (and, on a row miss, issued the ACT) — ``max(issue cycle, bank free
    cycle)``; activation-rate windows (tRRD/tFAW) must anchor on it, not on
    the issue cycle.
    """

    ready_cycle: int
    latency: int
    row_hit: bool
    bank_conflict: bool
    subarray: int
    start_cycle: int = 0


@dataclass
class BankState:
    """Mutable per-bank bookkeeping."""

    open_rows: dict[int, int] = field(default_factory=dict)  # subarray -> open row
    next_free_cycle: int = 0
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_conflicts: int = 0
    reads: int = 0
    writes: int = 0


class Bank:
    """A single DRAM bank with subarray-aware open-row tracking."""

    def __init__(self, spec: DRAMSpec, bank_id: int = 0, subarrays: int | None = None):
        self.spec = spec
        self.bank_id = bank_id
        default_subarrays = spec.organization.subarrays_per_bank
        self.num_subarrays = subarrays if subarrays is not None else default_subarrays
        if self.num_subarrays <= 0:
            raise ValueError("a bank needs at least one subarray")
        self.state = BankState()

    # ----------------------------------------------------------- internals
    def _row_cycle_latencies(
        self, row_hit: bool, is_write: bool, precharge_needed: bool = True
    ) -> int:
        t = self.spec.timing
        if row_hit:
            # Column access straight out of the open row buffer.
            latency = t.tCL + t.tCCD if not is_write else t.tWR + t.tCCD
        else:
            # Precharge (only if a different row was open) + activate + column access.
            latency = (
                (t.tRP if precharge_needed else 0) + t.tRCD + (t.tCL if not is_write else t.tWR)
            )
        return latency

    # ----------------------------------------------------------------- API
    def access(self, row: int, subarray: int, cycle: int, is_write: bool = False) -> AccessResult:
        """Issue one row-granularity access; returns timing and hit/conflict flags.

        A *bank conflict* is recorded when the request has to wait because the
        bank (all subarrays share the command path and global row buffer) is
        still busy with a previous request to a *different* row.
        """
        if row < 0:
            raise ValueError("row must be non-negative")
        subarray = subarray % self.num_subarrays
        state = self.state

        open_row = state.open_rows.get(subarray)
        row_hit = open_row == row
        start_cycle = max(cycle, state.next_free_cycle)
        waited = start_cycle > cycle
        bank_conflict = waited and not row_hit

        # A first access to an idle subarray has no open row to precharge.
        precharge_needed = not row_hit and open_row is not None
        latency = self._row_cycle_latencies(row_hit, is_write, precharge_needed)
        ready = start_cycle + latency

        state.open_rows[subarray] = row
        state.next_free_cycle = ready
        if row_hit:
            state.row_hits += 1
        else:
            state.row_misses += 1
            state.activations += 1
        if bank_conflict:
            state.bank_conflicts += 1
        if is_write:
            state.writes += 1
        else:
            state.reads += 1
        return AccessResult(ready, latency, row_hit, bank_conflict, subarray, start_cycle)

    def reset(self) -> None:
        """Clear all open rows and statistics."""
        self.state = BankState()

    # ------------------------------------------------------------ statistics
    @property
    def total_accesses(self) -> int:
        return self.state.reads + self.state.writes

    def row_hit_rate(self) -> float:
        total = self.state.row_hits + self.state.row_misses
        return self.state.row_hits / total if total else 0.0
