"""Per-channel memory controller.

The controller accepts row-granularity requests, decodes them with the
address mapper, enforces a small set of inter-command constraints (tRRD,
tFAW across banks of a channel) on top of the per-bank timing handled by
:class:`repro.dram.bank.Bank`, and keeps aggregate statistics.

Scheduling policy: requests are serviced in arrival order per channel
(FCFS).  Row hits are naturally cheaper because the bank model charges only
the column-access latency, which is what gives the open-page behaviour its
first-ready flavour without a full FR-FCFS reorder queue.  This is a
deliberate simplification over Ramulator; see DESIGN.md §1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .address import AddressMapper
from .bank import Bank
from .spec import DRAMSpec
from .trace import MemoryRequest, RequestType

__all__ = ["ChannelStats", "ChannelController"]


@dataclass
class ChannelStats:
    """Aggregate statistics for one channel."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_conflicts: int = 0
    activations: int = 0
    bytes_transferred: int = 0
    busy_cycles: int = 0
    last_ready_cycle: int = 0


class ChannelController:
    """FCFS open-page controller for one LPDDR4 channel."""

    def __init__(self, spec: DRAMSpec, channel_id: int = 0, subarrays_per_bank: int | None = None):
        self.spec = spec
        self.channel_id = channel_id
        org = spec.organization
        self.banks = [
            Bank(spec, bank_id=b, subarrays=subarrays_per_bank) for b in range(org.banks_per_chip)
        ]
        self.mapper = AddressMapper(org)
        self.stats = ChannelStats()
        self._recent_activations: list[int] = []  # cycles of recent ACTs for tFAW
        self._last_activation_cycle: int = -(10**9)

    # ------------------------------------------------------------ internals
    def _activation_constraint(self, cycle: int) -> int:
        """Earliest cycle at which a new activation may be issued (tRRD/tFAW)."""
        t = self.spec.timing
        earliest = max(cycle, self._last_activation_cycle + t.tRRD)
        if len(self._recent_activations) >= 4:
            earliest = max(earliest, self._recent_activations[-4] + t.tFAW)
        return earliest

    def _note_activation(self, cycle: int) -> None:
        self._last_activation_cycle = cycle
        self._recent_activations.append(cycle)
        if len(self._recent_activations) > 8:
            self._recent_activations = self._recent_activations[-8:]

    def _service_decoded(
        self,
        bank_idx: int,
        subarray: int,
        row: int,
        is_write: bool,
        arrival_cycle: int,
        size_bytes: int,
    ) -> int:
        """Service one already-decoded request; returns its data-ready cycle."""
        org = self.spec.organization
        bank = self.banks[bank_idx % len(self.banks)]

        issue_cycle = arrival_cycle
        # Activation-rate limits only matter when the access misses the row buffer.
        open_row = bank.state.open_rows.get(subarray % bank.num_subarrays)
        will_activate = open_row != row
        if will_activate:
            issue_cycle = self._activation_constraint(issue_cycle)
        result = bank.access(row, subarray, issue_cycle, is_write=is_write)
        if will_activate:
            # Anchor the tRRD/tFAW window on the cycle the ACT actually issued:
            # a busy bank delays the ACT to its next free cycle, not the issue
            # cycle the controller asked for.
            self._note_activation(result.start_cycle)

        stats = self.stats
        stats.requests += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if result.row_hit:
            stats.row_hits += 1
        else:
            stats.row_misses += 1
            stats.activations += 1
        if result.bank_conflict:
            stats.bank_conflicts += 1
        stats.bytes_transferred += min(size_bytes, org.row_buffer_bytes)
        stats.busy_cycles += result.latency
        stats.last_ready_cycle = max(stats.last_ready_cycle, result.ready_cycle)
        return result.ready_cycle

    # ----------------------------------------------------------------- API
    def service(self, request: MemoryRequest) -> int:
        """Service one request; returns the cycle at which its data is ready."""
        _, _, bank_idx, subarray, row, _ = (
            int(v[0]) for v in self.mapper.decode_array([request.address])
        )
        return self._service_decoded(
            bank_idx,
            subarray,
            row,
            request.request_type is RequestType.WRITE,
            request.arrival_cycle,
            request.size_bytes,
        )

    def service_all(self, requests: list[MemoryRequest]) -> int:
        """Service a request list in order; returns the completion cycle."""
        if not requests:
            return 0
        addresses = np.array([request.address for request in requests], dtype=np.int64)
        _, _, banks, subarrays, rows, _ = self.mapper.decode_array(addresses)
        finish = 0
        for request, bank_idx, subarray, row in zip(
            requests, banks.tolist(), subarrays.tolist(), rows.tolist()
        ):
            ready = self._service_decoded(
                bank_idx,
                subarray,
                row,
                request.request_type is RequestType.WRITE,
                request.arrival_cycle,
                request.size_bytes,
            )
            finish = max(finish, ready)
        return finish

    def service_batch(
        self,
        addresses: np.ndarray,
        request_type: RequestType = RequestType.READ,
        size_bytes: int = 32,
        arrival_cycles: np.ndarray | None = None,
    ) -> int:
        """Service a flat address array in order with one vectorized decode.

        Equivalent to wrapping every address in a :class:`MemoryRequest` and
        calling :meth:`service` per request, but all addresses are decoded in
        a single :meth:`AddressMapper.decode_array` call instead of one
        6-array decode per request.  Returns the completion cycle.
        """
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        if addresses.size == 0:
            return 0
        if np.any(addresses < 0):
            raise ValueError("addresses must be non-negative")
        _, _, banks, subarrays, rows, _ = self.mapper.decode_array(addresses)
        is_write = request_type is RequestType.WRITE
        if arrival_cycles is None:
            arrivals = [0] * addresses.size
        else:
            arrival_array = np.asarray(arrival_cycles, dtype=np.int64).ravel()
            if arrival_array.shape != addresses.shape:
                raise ValueError("arrival_cycles must match addresses in length")
            arrivals = arrival_array.tolist()
        finish = 0
        for bank_idx, subarray, row, arrival in zip(
            banks.tolist(), subarrays.tolist(), rows.tolist(), arrivals
        ):
            ready = self._service_decoded(bank_idx, subarray, row, is_write, arrival, size_bytes)
            finish = max(finish, ready)
        return finish

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = ChannelStats()
        self._recent_activations = []
        self._last_activation_cycle = -(10**9)

    # ------------------------------------------------------------ statistics
    def row_hit_rate(self) -> float:
        total = self.stats.row_hits + self.stats.row_misses
        return self.stats.row_hits / total if total else 0.0
