"""Per-channel memory controller.

The controller accepts row-granularity requests, decodes them with the
address mapper, enforces a small set of inter-command constraints (tRRD,
tFAW across banks of a channel) on top of the per-bank timing handled by
:class:`repro.dram.bank.Bank`, and keeps aggregate statistics.

Scheduling policy: requests are serviced in arrival order per channel
(FCFS).  Row hits are naturally cheaper because the bank model charges only
the column-access latency, which is what gives the open-page behaviour its
first-ready flavour without a full FR-FCFS reorder queue.  This is a
deliberate simplification over Ramulator; see DESIGN.md §1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .address import AddressMapper
from .bank import Bank
from .spec import DRAMSpec
from .trace import MemoryRequest, RequestType

__all__ = ["ChannelStats", "ChannelController"]


@dataclass
class ChannelStats:
    """Aggregate statistics for one channel."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_conflicts: int = 0
    activations: int = 0
    bytes_transferred: int = 0
    busy_cycles: int = 0
    last_ready_cycle: int = 0


class ChannelController:
    """FCFS open-page controller for one LPDDR4 channel."""

    def __init__(self, spec: DRAMSpec, channel_id: int = 0, subarrays_per_bank: int | None = None):
        self.spec = spec
        self.channel_id = channel_id
        org = spec.organization
        self.banks = [
            Bank(spec, bank_id=b, subarrays=subarrays_per_bank) for b in range(org.banks_per_chip)
        ]
        self.mapper = AddressMapper(org)
        self.stats = ChannelStats()
        self._recent_activations: list[int] = []  # cycles of recent ACTs for tFAW
        self._last_activation_cycle: int = -(10**9)

    # ------------------------------------------------------------ internals
    def _activation_constraint(self, cycle: int) -> int:
        """Earliest cycle at which a new activation may be issued (tRRD/tFAW)."""
        t = self.spec.timing
        earliest = max(cycle, self._last_activation_cycle + t.tRRD)
        if len(self._recent_activations) >= 4:
            earliest = max(earliest, self._recent_activations[-4] + t.tFAW)
        return earliest

    def _note_activation(self, cycle: int) -> None:
        self._last_activation_cycle = cycle
        self._recent_activations.append(cycle)
        if len(self._recent_activations) > 8:
            self._recent_activations = self._recent_activations[-8:]

    # ----------------------------------------------------------------- API
    def service(self, request: MemoryRequest) -> int:
        """Service one request; returns the cycle at which its data is ready."""
        org = self.spec.organization
        channel, _, bank_idx, subarray, row, _ = (
            int(v[0]) for v in self.mapper.decode_array([request.address])
        )
        bank = self.banks[bank_idx % len(self.banks)]

        issue_cycle = request.arrival_cycle
        # Activation-rate limits only matter when the access misses the row buffer.
        open_row = bank.state.open_rows.get(subarray % bank.num_subarrays)
        will_activate = open_row != row
        if will_activate:
            issue_cycle = self._activation_constraint(issue_cycle)
        result = bank.access(row, subarray, issue_cycle, is_write=request.request_type is RequestType.WRITE)
        if will_activate:
            self._note_activation(max(issue_cycle, request.arrival_cycle))

        stats = self.stats
        stats.requests += 1
        if request.request_type is RequestType.WRITE:
            stats.writes += 1
        else:
            stats.reads += 1
        if result.row_hit:
            stats.row_hits += 1
        else:
            stats.row_misses += 1
            stats.activations += 1
        if result.bank_conflict:
            stats.bank_conflicts += 1
        stats.bytes_transferred += min(request.size_bytes, org.row_buffer_bytes)
        stats.busy_cycles += result.latency
        stats.last_ready_cycle = max(stats.last_ready_cycle, result.ready_cycle)
        return result.ready_cycle

    def service_all(self, requests: list[MemoryRequest]) -> int:
        """Service a request list in order; returns the completion cycle."""
        finish = 0
        for request in requests:
            finish = max(finish, self.service(request))
        return finish

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = ChannelStats()
        self._recent_activations = []
        self._last_activation_cycle = -(10**9)

    # ------------------------------------------------------------ statistics
    def row_hit_rate(self) -> float:
        total = self.stats.row_hits + self.stats.row_misses
        return self.stats.row_hits / total if total else 0.0
