"""Whole-memory-system simulator: channels, banks, subarrays, energy.

:class:`DRAMSystem` is the substrate shared by the hash-table locality
experiments (Fig. 6/7/9) and by the NMP accelerator model: it services
address traces and reports completion time, row-hit/bank-conflict counts,
achieved bandwidth and energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_metrics, get_tracer
from ..streams.ir import RequestStream
from .controller import ChannelController
from .energy import DRAMEnergyModel, EnergyBreakdown
from .spec import DRAMSpec, LPDDR4_2400
from .trace import MemoryRequest, RequestType

__all__ = ["TraceResult", "DRAMSystem"]


@dataclass(frozen=True)
class TraceResult:
    """Summary of servicing one trace."""

    total_cycles: int
    total_requests: int
    row_hits: int
    row_misses: int
    bank_conflicts: int
    activations: int
    bytes_transferred: int
    elapsed_ns: float
    achieved_bandwidth_gbps: float
    row_hit_rate: float
    energy: EnergyBreakdown

    @property
    def bank_conflict_rate(self) -> float:
        return self.bank_conflicts / self.total_requests if self.total_requests else 0.0


class DRAMSystem:
    """A multi-channel LPDDR4 memory system with optional NMP-side accounting."""

    def __init__(
        self,
        spec: DRAMSpec | None = None,
        subarrays_per_bank: int | None = None,
        energy_model: DRAMEnergyModel | None = None,
    ):
        self.spec = spec or LPDDR4_2400
        self.spec.validate()
        org = self.spec.organization
        self.subarrays_per_bank = subarrays_per_bank or org.subarrays_per_bank
        self.channels = [
            ChannelController(self.spec, channel_id=c, subarrays_per_bank=self.subarrays_per_bank)
            for c in range(org.num_channels)
        ]
        self.energy_model = energy_model or DRAMEnergyModel()

    # ----------------------------------------------------------------- API
    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()

    def service_requests(
        self, requests: list[MemoryRequest], near_bank: bool = False
    ) -> TraceResult:
        """Service a request trace and summarise timing, locality and energy.

        Parameters
        ----------
        requests:
            The trace (each request is routed to its channel by address).
        near_bank:
            When True, data stays inside the DRAM die (NMP access): no bytes
            cross the external I/O interface, which reduces I/O energy —
            the accounting behind the Fig. 11(b) energy-efficiency gains.
        """
        with get_tracer().span("dram.service_requests", "dram") as span:
            self.reset()
            org = self.spec.organization
            per_channel: dict[int, list[MemoryRequest]] = {c: [] for c in range(org.num_channels)}
            if requests:
                # Route every request with one vectorized decode instead of one
                # 6-array decode per request.
                addresses = np.array([request.address for request in requests], dtype=np.int64)
                channels = self.channels[0].mapper.decode_array(addresses)[0]
                for request, channel in zip(requests, channels):
                    per_channel[int(channel) % org.num_channels].append(request)

            finish_cycles = [
                self.channels[c].service_all(reqs) for c, reqs in per_channel.items() if reqs
            ]
            total_cycles = int(max(finish_cycles)) if finish_cycles else 0
            result = self._summarise(total_cycles, near_bank=near_bank)
            if span.enabled:
                span.set_cycles(result.total_cycles)
                span.add_args(requests=result.total_requests)
                self._emit_metrics(result)
            return result

    def service_addresses(
        self,
        addresses: np.ndarray | RequestStream,
        request_type: RequestType | None = None,
        size_bytes: int | None = None,
        near_bank: bool = False,
    ) -> TraceResult:
        """Convenience wrapper building a back-pressured trace from addresses."""
        return self.service_batch(
            addresses, request_type=request_type, size_bytes=size_bytes, near_bank=near_bank
        )

    def service_batch(
        self,
        stream: np.ndarray | RequestStream,
        request_type: RequestType | None = None,
        size_bytes: int | None = None,
        near_bank: bool = False,
    ) -> TraceResult:
        """Service one back-pressured request stream without building request objects.

        ``stream`` is a :class:`repro.streams.RequestStream` — its addresses
        are wrapped into the modeled capacity, its kind picks the request
        direction and its ``entry_bytes`` the burst size, with the keyword
        arguments as explicit overrides — or a flat byte-address ndarray (the
        low-level backend form, defaulting to 32-byte reads).  All addresses
        are routed to channels with a single
        :meth:`AddressMapper.decode_array` call and each channel decodes its
        share once more in :meth:`ChannelController.service_batch` — the
        per-request 6-array decode of the object-based path is gone entirely.
        Produces the same :class:`TraceResult` as :meth:`service_requests` on
        the equivalent trace.
        """
        if isinstance(stream, RequestStream):
            if request_type is None:
                request_type = RequestType.WRITE if stream.writes else RequestType.READ
            if size_bytes is None:
                size_bytes = stream.entry_bytes
            addresses = stream.addresses % self.spec.organization.total_capacity_bytes
        else:
            if request_type is None:
                request_type = RequestType.READ
            if size_bytes is None:
                size_bytes = 32
            addresses = stream
        with get_tracer().span("dram.service_batch", "dram") as span:
            self.reset()
            org = self.spec.organization
            addresses = np.asarray(addresses, dtype=np.int64).ravel()
            if np.any(addresses < 0):
                raise ValueError("addresses must be non-negative")
            finish_cycles = []
            if addresses.size:
                channels = self.channels[0].mapper.decode_array(addresses)[0] % org.num_channels
                for c in range(org.num_channels):
                    chunk = addresses[channels == c]
                    if chunk.size:
                        finish_cycles.append(
                            self.channels[c].service_batch(
                                chunk, request_type=request_type, size_bytes=size_bytes
                            )
                        )
            total_cycles = int(max(finish_cycles)) if finish_cycles else 0
            result = self._summarise(total_cycles, near_bank=near_bank)
            if span.enabled:
                span.set_cycles(result.total_cycles)
                span.add_args(requests=result.total_requests)
                self._emit_metrics(result)
            return result

    # ------------------------------------------------------------ internals
    def _emit_metrics(self, result: TraceResult) -> None:
        """Record one serviced trace in the metrics registry (enabled-only)."""
        metrics = get_metrics()
        metrics.counter("dram.requests").inc(result.total_requests)
        metrics.counter("dram.row_hits").inc(result.row_hits)
        metrics.counter("dram.row_misses").inc(result.row_misses)
        metrics.counter("dram.bank_conflicts").inc(result.bank_conflicts)
        metrics.counter("dram.bytes_transferred").inc(result.bytes_transferred)
        for channel in self.channels:
            if channel.stats.requests:
                metrics.counter(f"dram.channel{channel.channel_id}.busy_cycles").inc(
                    channel.stats.busy_cycles
                )
    def _summarise(self, total_cycles: int, near_bank: bool) -> TraceResult:
        org = self.spec.organization
        requests = sum(c.stats.requests for c in self.channels)
        row_hits = sum(c.stats.row_hits for c in self.channels)
        row_misses = sum(c.stats.row_misses for c in self.channels)
        conflicts = sum(c.stats.bank_conflicts for c in self.channels)
        activations = sum(c.stats.activations for c in self.channels)
        transferred = sum(c.stats.bytes_transferred for c in self.channels)
        elapsed_ns = total_cycles * self.spec.clock_period_ns
        bandwidth = transferred / max(elapsed_ns, 1e-9)  # bytes/ns == GB/s
        energy = self.energy_model.energy(
            activations=activations,
            bytes_accessed=transferred,
            bytes_on_io=0 if near_bank else transferred,
            elapsed_seconds=elapsed_ns * 1e-9,
        )
        total = row_hits + row_misses
        return TraceResult(
            total_cycles=total_cycles,
            total_requests=requests,
            row_hits=row_hits,
            row_misses=row_misses,
            bank_conflicts=conflicts,
            activations=activations,
            bytes_transferred=transferred,
            elapsed_ns=elapsed_ns,
            achieved_bandwidth_gbps=float(bandwidth),
            row_hit_rate=row_hits / total if total else 0.0,
            energy=energy,
        )

    # ------------------------------------------------------------ metadata
    @property
    def peak_bandwidth_gbps(self) -> float:
        return self.spec.organization.peak_bandwidth_gbps

    @property
    def num_banks(self) -> int:
        return self.spec.organization.num_banks_total
