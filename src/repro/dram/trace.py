"""Memory-request representation and trace helpers."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["RequestType", "MemoryRequest", "requests_from_addresses", "coalesce_row_requests"]


class RequestType(Enum):
    """Read or write, from the memory controller's point of view."""

    READ = "read"
    WRITE = "write"


@dataclass
class MemoryRequest:
    """A single row-granularity memory request.

    Attributes
    ----------
    address:
        Byte address of the access.
    request_type:
        Read or write.
    size_bytes:
        Number of bytes transferred (clamped to the row size by the
        controller).
    arrival_cycle:
        Cycle at which the request becomes visible to the controller.
    """

    address: int
    request_type: RequestType = RequestType.READ
    size_bytes: int = 32
    arrival_cycle: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")


def requests_from_addresses(
    addresses: np.ndarray,
    request_type: RequestType = RequestType.READ,
    size_bytes: int = 32,
    issue_interval: int = 0,
) -> list[MemoryRequest]:
    """Build a request list from a flat array of byte addresses.

    ``issue_interval`` spaces out arrival cycles (0 = all available at t=0,
    which models a fully back-pressured stream).
    """
    addresses = np.asarray(addresses, dtype=np.int64).ravel()
    return [
        MemoryRequest(int(addr), request_type, size_bytes, arrival_cycle=i * issue_interval)
        for i, addr in enumerate(addresses)
    ]


def coalesce_row_requests(addresses: np.ndarray, row_bytes: int = 1024) -> np.ndarray:
    """Collapse addresses that fall into the same DRAM row into one request.

    Consecutive requests to the same row are served from the open row buffer
    without a new activation, so for trace-volume accounting the paper counts
    *distinct row* requests (cf. the 1.58 vs 4.02 requests/cube statistic).
    Returns the deduplicated row-aligned addresses, preserving first-seen
    order.
    """
    if row_bytes <= 0:
        raise ValueError("row_bytes must be positive")
    addresses = np.asarray(addresses, dtype=np.int64).ravel()
    rows = addresses // row_bytes
    _, first_index = np.unique(rows, return_index=True)
    order = np.sort(first_index)
    return rows[order] * row_bytes
