"""LPDDR4 organization and timing specification (paper Table III).

The numbers default to the LPDDR4-2400 configuration used by the paper's
evaluation: 16 GB total capacity, 128-bit I/O split into 8 channels of
16 bits, one rank/die per channel, 16 physical banks per die, configurable
subarrays per bank, and 1 KB row buffers.  Timing parameters are expressed
in memory-clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DRAMTiming",
    "DRAMOrganization",
    "DRAMSpec",
    "LPDDR4_2400",
    "LPDDR4X_4266",
    "DDR4_3200",
    "DRAM_SPECS",
    "get_dram_spec",
]


@dataclass(frozen=True)
class DRAMTiming:
    """Command-to-command timing constraints in memory-clock cycles."""

    tCL: int = 4      # CAS latency (read command to data)
    tRCD: int = 4     # activate to read/write
    tRP: int = 6      # precharge to activate (per bank)
    tRAS: int = 9     # activate to precharge
    tCCD: int = 8     # column-to-column delay (burst gap)
    tRRD: int = 2     # activate-to-activate, different banks
    tFAW: int = 9     # four-activate window
    tWR: int = 6      # write recovery
    tRA: int = 2      # NMP register-to-array read latency (subarray parallelism)
    tWA: int = 7      # NMP array write latency (subarray parallelism)

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"timing parameter {name} must be non-negative, got {value}")


@dataclass(frozen=True)
class DRAMOrganization:
    """Physical organization of the memory system."""

    total_capacity_bytes: int = 16 * 1024**3
    io_width_bits: int = 128          # full interface width
    channel_io_bits: int = 16         # per-channel I/O width
    num_channels: int = 8
    ranks_per_channel: int = 1
    chips_per_rank: int = 1
    banks_per_chip: int = 16
    subarrays_per_bank: int = 16
    row_buffer_bytes: int = 1024      # local and global row buffer size
    prefetch_bits: int = 128          # internal prefetch width per bank
    clock_mhz: float = 1200.0         # LPDDR4-2400 is DDR at 1200 MHz

    def validate(self) -> None:
        positive_fields = [
            "total_capacity_bytes",
            "io_width_bits",
            "channel_io_bits",
            "num_channels",
            "ranks_per_channel",
            "chips_per_rank",
            "banks_per_chip",
            "subarrays_per_bank",
            "row_buffer_bytes",
            "prefetch_bits",
        ]
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    # ------------------------------------------------------ derived values
    @property
    def num_banks_total(self) -> int:
        return (
            self.num_channels * self.ranks_per_channel * self.chips_per_rank * self.banks_per_chip
        )

    @property
    def bank_capacity_bytes(self) -> int:
        return self.total_capacity_bytes // self.num_banks_total

    @property
    def rows_per_bank(self) -> int:
        return self.bank_capacity_bytes // self.row_buffer_bytes

    @property
    def rows_per_subarray(self) -> int:
        return max(1, self.rows_per_bank // self.subarrays_per_bank)

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak external bandwidth in GB/s (DDR: 2 transfers per clock)."""
        return self.io_width_bits / 8 * self.clock_mhz * 2 * 1e6 / 1e9

    @property
    def internal_bank_bandwidth_gbps(self) -> float:
        """Aggregate internal (near-bank) bandwidth exposed to NMP logic.

        Each bank's row buffer provides ``row_buffer_bytes`` per row cycle
        (approximately tRCD + tCL cycles); NMP logic reads the local row
        buffer directly, which is the ~10x bandwidth opportunity the paper
        cites for bank-level NMP.
        """
        row_cycle = 8  # conservative cycles to stream one row into the NMP register
        per_bank = self.row_buffer_bytes * self.clock_mhz * 1e6 / row_cycle / 1e9
        return per_bank * self.num_banks_total


@dataclass(frozen=True)
class DRAMSpec:
    """Organization plus timing: everything the simulator needs."""

    organization: DRAMOrganization = field(default_factory=DRAMOrganization)
    timing: DRAMTiming = field(default_factory=DRAMTiming)

    def validate(self) -> None:
        self.organization.validate()
        self.timing.validate()

    @property
    def clock_period_ns(self) -> float:
        return 1e3 / self.organization.clock_mhz


#: The paper's Table III configuration.
LPDDR4_2400 = DRAMSpec()

#: A faster LPDDR4X grade: same organization, 2133 MHz clock, slightly larger
#: cycle counts for the analog-limited timings (absolute latencies shrink).
LPDDR4X_4266 = DRAMSpec(
    organization=DRAMOrganization(clock_mhz=2133.0),
    timing=DRAMTiming(tCL=7, tRCD=7, tRP=10, tRAS=16, tCCD=8, tRRD=4, tFAW=16, tWR=10),
)

#: A commodity DDR4-3200 DIMM channel: one 64-bit channel, 8 KB rows.  Used
#: by the sweep engine to contrast the mobile LPDDR4 substrate the paper
#: assumes against a desktop-class memory; values are modelled, not vendor
#: datasheet transcriptions.
DDR4_3200 = DRAMSpec(
    organization=DRAMOrganization(
        io_width_bits=64,
        channel_io_bits=64,
        num_channels=1,
        banks_per_chip=16,
        subarrays_per_bank=32,
        row_buffer_bytes=8192,
        prefetch_bits=64,
        clock_mhz=1600.0,
    ),
    timing=DRAMTiming(tCL=22, tRCD=22, tRP=22, tRAS=52, tCCD=8, tRRD=8, tFAW=40, tWR=24),
)

#: Named specifications addressable from configuration files and the CLI.
DRAM_SPECS: dict[str, DRAMSpec] = {
    "lpddr4-2400": LPDDR4_2400,
    "lpddr4x-4266": LPDDR4X_4266,
    "ddr4-3200": DDR4_3200,
}

#: Convenience aliases accepted anywhere a spec name is (e.g. ``--dram ddr4``).
DRAM_SPEC_ALIASES: dict[str, str] = {
    "lpddr4": "lpddr4-2400",
    "lpddr4x": "lpddr4x-4266",
    "ddr4": "ddr4-3200",
}


def get_dram_spec(name: str) -> DRAMSpec:
    """Look up a named DRAM specification (accepting aliases like ``ddr4``)."""
    key = name.strip().lower()
    key = DRAM_SPEC_ALIASES.get(key, key)
    try:
        return DRAM_SPECS[key]
    except KeyError:
        known = ", ".join(sorted(set(DRAM_SPECS) | set(DRAM_SPEC_ALIASES)))
        raise KeyError(f"unknown DRAM spec {name!r}; available: {known}") from None
