"""Per-command and per-bit DRAM energy model.

Energy constants are representative LPDDR4 values (pJ) drawn from public
LPDDR4 characterisations; absolute joules are not meant to match silicon, but
the *ratios* between activation, row-buffer access and I/O transfer energy —
which drive the NMP-vs-GPU energy-efficiency comparison of Fig. 11(b) — are
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DRAMEnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (in joules) split by source."""

    activation_j: float
    read_write_j: float
    io_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        return self.activation_j + self.read_write_j + self.io_j + self.background_j


@dataclass(frozen=True)
class DRAMEnergyModel:
    """Energy per event.

    Attributes
    ----------
    activate_pj:
        Energy of one row activation (ACT + PRE pair).
    column_access_pj_per_byte:
        Energy to move one byte between a row buffer and the bank periphery.
    io_pj_per_byte:
        Energy to move one byte over the external LPDDR4 interface (not paid
        by near-bank NMP accesses, which is the key energy advantage).
    background_mw:
        Static/background power of the device.
    """

    activate_pj: float = 1500.0
    column_access_pj_per_byte: float = 1.2
    io_pj_per_byte: float = 4.0
    background_mw: float = 60.0

    def energy(
        self,
        activations: int,
        bytes_accessed: int,
        bytes_on_io: int,
        elapsed_seconds: float,
    ) -> EnergyBreakdown:
        """Total DRAM energy for a phase of execution."""
        if min(activations, bytes_accessed, bytes_on_io) < 0 or elapsed_seconds < 0:
            raise ValueError("all inputs must be non-negative")
        return EnergyBreakdown(
            activation_j=activations * self.activate_pj * 1e-12,
            read_write_j=bytes_accessed * self.column_access_pj_per_byte * 1e-12,
            io_j=bytes_on_io * self.io_pj_per_byte * 1e-12,
            background_j=self.background_mw * 1e-3 * elapsed_seconds,
        )
