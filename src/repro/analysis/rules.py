"""The RPR rule set: repo-specific determinism invariants, machine-checked.

Each rule has an id, a one-line rationale (shown in findings and by
``repro lint --list-rules``) and a visitor.  RPR003 is project-wide: it
indexes every dataclass definition, seeds the "canonical key" root set from
the annotated parameters of functions that call ``config_key``, closes over
field annotations, and requires everything reachable to be ``frozen=True``.

| id     | invariant                                                        |
|--------|------------------------------------------------------------------|
| RPR001 | no global-RNG draws/mutation; use ``np.random.default_rng(seed)``|
| RPR002 | artifact writes go through the atomic writers in ``core.ioutil`` |
| RPR003 | key-reachable dataclasses are frozen with immutable defaults     |
| RPR004 | no wall clock in artifact-producing modules; timers allowlisted  |
| RPR005 | no iteration over unordered sets feeding artifacts; ``sorted()`` |
| RPR006 | registered experiments reuse context artifacts, never recompute  |
| RPR007 | backend-portable kernels call ``repro.core.xp``, not numpy       |
| RPR008 | no ad-hoc print/logging in ``src/repro``; emit via ``repro.obs`` |
| RPR009 | memory-system consumers take ``RequestStream``s, not inline arrays|
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from .engine import FileSource, Finding, NameResolver

__all__ = ["Rule", "RULES", "ProjectIndex", "run_file_rules", "project_findings"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: id, summary and the rationale behind the invariant."""

    id: str
    summary: str
    rationale: str


RULES: tuple[Rule, ...] = (
    Rule(
        "RPR001",
        "no global-RNG mutation or draws",
        "global RNG state breaks byte-identical replay across executors and "
        "resumed runs; seed an explicit np.random.default_rng(seed) instead",
    ),
    Rule(
        "RPR002",
        "no raw artifact writes outside core/ioutil.py",
        "raw open(..., 'w')/write_text can leave truncated artifacts and "
        "silently clobber prior runs; use atomic_write_bytes/atomic_write_text",
    ),
    Rule(
        "RPR003",
        "canonical-key dataclasses must be frozen with immutable defaults",
        "configs hashed into SimulationContext/ArtifactStore keys must not "
        "mutate after keying, or memo/store lookups silently diverge",
    ),
    Rule(
        "RPR004",
        "no wall clock in artifact-producing modules",
        "wall-clock reads make artifacts differ between identical runs; "
        "perf_counter is allowed only in the allowlisted timing modules",
    ),
    Rule(
        "RPR005",
        "no iteration over unordered sets",
        "set iteration order is salted per process and can leak into hashes, "
        "JSON artifacts and stream ordering; wrap the set in sorted(...)",
    ),
    Rule(
        "RPR006",
        "registered experiments must reuse context-memoized artifacts",
        "recomputing traces/streams/datasets inline defeats the shared "
        "SimulationContext and risks drifting from the memoized oracle copy",
    ),
    Rule(
        "RPR007",
        "backend-portable kernels route arrays through repro.core.xp",
        "a direct numpy call in a ported hot kernel silently pins it to the "
        "host backend and diverges from cupy/torch runs; only the pure-numpy "
        "*_reference oracles may bypass the shim",
    ),
    Rule(
        "RPR008",
        "span/metric emission goes through repro.obs",
        "ad-hoc print/logging inside the simulation stack bypasses the "
        "observability layer (and can interleave nondeterministically under "
        "the sweep executors); emit through repro.obs spans/metrics/console, "
        "or from the allowlisted CLI front-ends",
    ),
    Rule(
        "RPR009",
        "no inline raw address arrays at the memory-system boundary",
        "an address ndarray built at a filter_stream/service_batch call site "
        "bypasses the typed request-stream IR (and its provenance, dtype and "
        "grouping); construct a RequestStream in a repro.streams front-end "
        "and pass that instead",
    ),
)

#: The only module allowed to perform raw writes (it implements the primitive).
IOUTIL_MODULE = "src/repro/core/ioutil.py"

#: The one module allowed to call monotonic timers: the sanctioned accessor
#: everything else (CLI timing lines, trainer iteration timing, the tracer's
#: wall timeline) imports ``wall_time`` from.
TIMING_ALLOWLIST = ("src/repro/obs/clock.py",)
TIMING_ALLOWLIST_DIRS = ("benchmarks/",)

#: CLI front-ends allowed to ``print`` directly (human-facing tables/status);
#: everything else in ``src/repro`` emits through ``repro.obs``.
OBS_EMISSION_ALLOWLIST = (
    "src/repro/pipeline/cli.py",
    "src/repro/pipeline/bench.py",
    "src/repro/analysis/cli.py",
)
OBS_EMISSION_ALLOWLIST_DIRS = ("src/repro/obs/",)

#: numpy.random attributes that are deterministic constructors, not draws.
_NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "RandomState",  # explicit legacy stream object, still seedable
    }
)

#: stdlib ``random`` module functions that draw from / mutate the global RNG.
_STDLIB_RANDOM_DRAWS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_TIMERS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.thread_time",
        "time.thread_time_ns",
    }
)

#: ``time`` functions that read the wall clock when called with no argument.
_IMPLICIT_NOW = frozenset({"time.localtime", "time.gmtime", "time.ctime"})

#: Inline artifact producers with a memoized ``SimulationContext`` equivalent.
_CONTEXT_EQUIVALENTS: dict[str, str] = {
    "generate_batch_points": "context.batch_points(trace)",
    "generate_scene_batch_points": "context.batch_points(trace)",
    "point_order": "context.stream_order(trace, order)",
    "level_lookup_indices": "context.level_indices(grid, trace, hash_fn, level)",
    "lookup_addresses": "context.level_addresses(grid, trace, hash_fn, level)",
    "memory_requests_for_stream": "context.row_requests(...)",
    "row_requests_from_corner_indices": "context.row_requests(...)",
    "points_sharing_same_cube": "context.cube_sharing(trace, resolution, order)",
    "register_hit_rate": "context.register_hits(trace, resolution, order)",
    "build_scene": "context.scene(name)",
    "SyntheticNeRFDataset": "context.dataset(scene_name, config)",
    "occupancy_grid_for_trace": "context.occupancy_grid(trace)",
    "occupancy_point_mask": "context.occupancy_mask(trace)",
}

#: The IR package and the memory-system backends it feeds are the only
#: layers allowed to handle raw address ndarrays at the stream boundary;
#: every other caller crosses it with a typed ``RequestStream``.
STREAM_BOUNDARY_EXEMPT_DIRS = (
    "src/repro/streams/",
    "src/repro/mem/",
    "src/repro/dram/",
)

#: Memory-system entry points that accept request streams (the deprecated
#: ndarray signatures still work, but only for values produced elsewhere —
#: never for arrays assembled at the call site).
_STREAM_CONSUMERS = frozenset(
    {"filter_stream", "filter_stream_reference", "service_batch", "service_addresses"}
)

#: Legacy address-trace producers: feeding their output straight into a
#: stream consumer sidesteps the IR even though no array literal is visible.
_RAW_ADDRESS_PRODUCERS = frozenset({"lookup_addresses", "addresses_for_level", "full_trace"})

#: Modules ported to the ``repro.core.xp`` array-backend shim: their batch
#: compute must stay backend-portable (the ``*_reference`` oracles inside
#: them are deliberately pure numpy and are exempt).
XP_PORTABLE_MODULES = (
    "src/repro/core/hashing.py",
    "src/repro/nerf/adam.py",
    "src/repro/nerf/encoding.py",
    "src/repro/nerf/field.py",
    "src/repro/nerf/mlp.py",
    "src/repro/nerf/volume_rendering.py",
)

#: numpy calls that are backend-neutral metadata/scalar constructors — they
#: build dtypes or host scalars, never device arrays, so portable kernels may
#: call them directly.
_XP_NEUTRAL_CALLS = frozenset(
    {
        "bool_",
        "can_cast",
        "dtype",
        "finfo",
        "float16",
        "float32",
        "float64",
        "iinfo",
        "int8",
        "int16",
        "int32",
        "int64",
        "isscalar",
        "issubdtype",
        "promote_types",
        "result_type",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
    }
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


# --------------------------------------------------------------------------
# project index (dataclasses, key roots, registered-experiment modules)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field, as far as the AST can see it."""

    name: str
    line: int
    annotation_names: tuple[str, ...]
    mutable_default: bool


@dataclass(frozen=True)
class DataclassInfo:
    """One ``@dataclass`` definition found anywhere in the linted tree."""

    name: str
    path: str
    line: int
    col: int
    frozen: bool
    fields: tuple[FieldInfo, ...]


@dataclass
class ProjectIndex:
    """Cross-file facts the project-wide rules need."""

    dataclasses: dict[str, DataclassInfo] = field(default_factory=dict)
    #: Dataclass names annotated on parameters of functions calling config_key.
    key_roots: set[str] = field(default_factory=set)
    #: root-relative paths of modules that register experiments.
    experiment_modules: set[str] = field(default_factory=set)

    @classmethod
    def build(cls, files: list[FileSource]) -> "ProjectIndex":
        index = cls()
        for file in files:
            resolver = NameResolver(file.tree)
            index._index_dataclasses(file, resolver)
            index._index_key_roots(file)
            if _references(file.tree, "register_experiment"):
                index.experiment_modules.add(file.rel)
        return index

    # ---------------------------------------------------------- dataclasses
    def _index_dataclasses(self, file: FileSource, resolver: NameResolver) -> None:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            frozen = None
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                dotted = resolver.resolve(target)
                if dotted in ("dataclass", "dataclasses.dataclass"):
                    frozen = False
                    if isinstance(deco, ast.Call):
                        for kw in deco.keywords:
                            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                                frozen = bool(kw.value.value)
            if frozen is None:
                continue
            fields = tuple(
                _field_info(stmt, resolver)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            )
            self.dataclasses[node.name] = DataclassInfo(
                name=node.name,
                path=file.rel,
                line=node.lineno,
                col=node.col_offset,
                frozen=frozen,
                fields=fields,
            )

    # ------------------------------------------------------------ key roots
    def _index_key_roots(self, file: FileSource) -> None:
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _calls_config_key(node):
                continue
            args = node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None:
                    self.key_roots.update(_annotation_names(arg.annotation))

    def key_reachable(self) -> dict[str, str]:
        """Dataclass name -> root it is reachable from (closure over fields)."""
        reachable: dict[str, str] = {}
        frontier = [(name, name) for name in sorted(self.key_roots) if name in self.dataclasses]
        while frontier:
            name, root = frontier.pop()
            if name in reachable:
                continue
            reachable[name] = root
            for fld in self.dataclasses[name].fields:
                for ref in fld.annotation_names:
                    if ref in self.dataclasses and ref not in reachable:
                        frontier.append((ref, root))
        return reachable


def _field_info(stmt: ast.AnnAssign, resolver: NameResolver) -> FieldInfo:
    assert isinstance(stmt.target, ast.Name)
    mutable = isinstance(stmt.value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp))
    if isinstance(stmt.value, ast.Call):
        dotted = resolver.resolve(stmt.value.func)
        if dotted in ("field", "dataclasses.field"):
            for kw in stmt.value.keywords:
                if kw.arg == "default_factory":
                    factory = resolver.resolve(kw.value)
                    if factory in ("list", "dict", "set", "bytearray"):
                        mutable = True
    return FieldInfo(
        name=stmt.target.id,
        line=stmt.lineno,
        annotation_names=tuple(sorted(_annotation_names(stmt.annotation))),
        mutable_default=mutable,
    )


def _annotation_names(annotation: ast.expr) -> set[str]:
    """Every plain identifier mentioned in an annotation (incl. quoted ones).

    ``Callable[...]`` signatures are skipped: a callable-typed field is never
    hashed by value into a canonical key, so its parameter/return types do
    not make a dataclass key-reachable.
    """
    names: set[str] = set()
    stack: list[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Subscript):
            base = node.value
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if base_name == "Callable":
                continue
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.update(_IDENTIFIER_RE.findall(node.value))
        stack.extend(ast.iter_child_nodes(node))
    return names


def _calls_config_key(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Name) and target.id == "config_key":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "config_key":
                return True
    return False


def _references(tree: ast.Module, name: str) -> bool:
    return any(isinstance(node, ast.Name) and node.id == name for node in ast.walk(tree))


# --------------------------------------------------------------------------
# per-file rules
# --------------------------------------------------------------------------


def run_file_rules(file: FileSource, index: ProjectIndex) -> Iterator[Finding]:
    """Run every per-file rule over one parsed source file."""
    resolver = NameResolver(file.tree)
    yield from _rule_rpr001(file, resolver)
    yield from _rule_rpr002(file, resolver)
    yield from _rule_rpr004(file, resolver)
    yield from _rule_rpr005(file, resolver)
    yield from _rule_rpr006(file, resolver, index)
    yield from _rule_rpr007(file, resolver)
    yield from _rule_rpr008(file, resolver)
    yield from _rule_rpr009(file, resolver)


def _rule_rpr001(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """No global-RNG mutation or draws."""
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_SAFE and alias.name != "*":
                        yield _finding(
                            file,
                            node,
                            "RPR001",
                            f"`from numpy.random import {alias.name}` pulls in the "
                            "global RNG; use np.random.default_rng(seed)",
                        )
            if node.module == "random":
                for alias in node.names:
                    if alias.name in _STDLIB_RANDOM_DRAWS:
                        yield _finding(
                            file,
                            node,
                            "RPR001",
                            f"`from random import {alias.name}` draws from the global "
                            "stdlib RNG; use np.random.default_rng(seed)",
                        )
        if not isinstance(node, ast.Call):
            continue
        dotted = resolver.resolve(node.func)
        if dotted is None:
            continue
        match = re.fullmatch(r"numpy\.random\.(\w+)", dotted)
        if match and match.group(1) not in _NP_RANDOM_SAFE:
            yield _finding(
                file,
                node,
                "RPR001",
                f"global-RNG call np.random.{match.group(1)}() is nondeterministic "
                "across runs/executors; draw from np.random.default_rng(seed)",
            )
        match = re.fullmatch(r"random\.(\w+)", dotted)
        if match and match.group(1) in _STDLIB_RANDOM_DRAWS:
            yield _finding(
                file,
                node,
                "RPR001",
                f"global stdlib-RNG call random.{match.group(1)}(); "
                "draw from np.random.default_rng(seed)",
            )


def _write_mode(node: ast.Call, mode_pos: int) -> str | None:
    """The file-mode string literal of an ``open``-style call, if present."""
    mode: ast.expr | None = None
    if len(node.args) > mode_pos:
        mode = node.args[mode_pos]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _rule_rpr002(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """No raw artifact writes outside the atomic-write primitive's module."""
    if file.rel == IOUTIL_MODULE:
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        dotted = resolver.resolve(func)
        if dotted == "open" or dotted == "io.open" or dotted == "os.fdopen":
            mode = _write_mode(node, 1)
            if mode is not None and any(c in mode for c in "wax"):
                yield _finding(
                    file,
                    node,
                    "RPR002",
                    f"raw open(..., {mode!r}) can leave truncated/clobbered artifacts; "
                    "write through core.ioutil.atomic_write_bytes or "
                    "experiments.runner.atomic_write_text",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr in ("write_text", "write_bytes"):
                yield _finding(
                    file,
                    node,
                    "RPR002",
                    f"Path.{func.attr}() is a non-atomic write; use "
                    "core.ioutil.atomic_write_bytes or "
                    "experiments.runner.atomic_write_text",
                )
            elif func.attr == "open":
                mode = _write_mode(node, 0)
                if mode is not None and any(c in mode for c in "wax"):
                    yield _finding(
                        file,
                        node,
                        "RPR002",
                        f".open({mode!r}) is a non-atomic write; use the "
                        "atomic writers in core.ioutil",
                    )


def _rule_rpr004(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """No wall clock in artifact-producing modules; timers are allowlisted."""
    if file.rel in TIMING_ALLOWLIST:
        return
    if any(file.rel.startswith(prefix) for prefix in TIMING_ALLOWLIST_DIRS):
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolver.resolve(node.func)
        if dotted is None:
            continue
        if dotted in _WALL_CLOCK:
            yield _finding(
                file,
                node,
                "RPR004",
                f"wall-clock read {dotted}() makes artifacts differ between "
                "identical runs; derive timestamps from inputs or drop them",
            )
        elif dotted in _TIMERS:
            yield _finding(
                file,
                node,
                "RPR004",
                f"{dotted}() outside the timing allowlist "
                f"({', '.join(TIMING_ALLOWLIST)}, benchmarks/); timing belongs "
                "to the harness, not artifact producers",
            )
        elif dotted in _IMPLICIT_NOW and not node.args and not node.keywords:
            yield _finding(
                file,
                node,
                "RPR004",
                f"{dotted}() with no argument reads the wall clock; pass an "
                "explicit timestamp derived from inputs",
            )


def _is_set_expr(node: ast.expr, resolver: NameResolver) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = resolver.resolve(node.func)
        return dotted in ("set", "frozenset")
    return False


def _rule_rpr005(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """No iteration over unordered set expressions; require ``sorted(...)``."""
    sanctioned: set[int] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            dotted = resolver.resolve(node.func)
            if dotted in ("sorted", "min", "max", "sum", "len", "any", "all"):
                # Order-insensitive consumers: sorted() restores determinism,
                # the reductions never observe iteration order.
                for arg in node.args:
                    sanctioned.add(id(arg))

    def check(iterable: ast.expr) -> Iterator[Finding]:
        if id(iterable) not in sanctioned and _is_set_expr(iterable, resolver):
            yield _finding(
                file,
                iterable,
                "RPR005",
                "iterating an unordered set leaks salted ordering into "
                "downstream artifacts/streams; wrap it in sorted(...)",
            )

    for node in ast.walk(file.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from check(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield from check(gen.iter)
        elif isinstance(node, ast.Call):
            dotted = resolver.resolve(node.func)
            consumes_order = dotted in ("list", "tuple", "enumerate", "iter") or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "join"
            )
            if consumes_order and node.args:
                yield from check(node.args[0])


def _rule_rpr006(
    file: FileSource, resolver: NameResolver, index: ProjectIndex
) -> Iterator[Finding]:
    """Registered experiments must go through context-memoized accessors."""
    if file.rel not in index.experiment_modules:
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            # `context.batch_points(...)` style accessors never collide with
            # the producer names; a dotted producer call (module.func) does.
            name = target.attr
        if name in _CONTEXT_EQUIVALENTS:
            yield _finding(
                file,
                node,
                "RPR006",
                f"registered experiment recomputes {name}() inline; reuse the "
                f"memoized artifact via {_CONTEXT_EQUIVALENTS[name]}",
            )


def _rule_rpr007(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """Backend-portable kernels route array compute through ``repro.core.xp``."""
    if file.rel not in XP_PORTABLE_MODULES:
        return
    exempt: set[int] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_reference"):
                exempt.update(id(sub) for sub in ast.walk(node))
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call) or id(node) in exempt:
            continue
        dotted = resolver.resolve(node.func)
        if dotted is None or not dotted.startswith("numpy."):
            continue
        tail = dotted.removeprefix("numpy.")
        if tail.startswith("random.") or tail in _XP_NEUTRAL_CALLS:
            # RNG seeding stays on the host by design (backends consume the
            # drawn arrays), and dtype/scalar constructors carry no arrays.
            continue
        yield _finding(
            file,
            node,
            "RPR007",
            f"direct numpy call {dotted}() in a backend-portable kernel pins "
            "it to the host; route it through repro.core.xp (pure-numpy "
            "*_reference oracles are exempt)",
        )


def _rule_rpr008(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """Span/metric emission goes through ``repro.obs``, not print/logging."""
    if not file.rel.startswith("src/repro/"):
        return
    if file.rel in OBS_EMISSION_ALLOWLIST:
        return
    if any(file.rel.startswith(prefix) for prefix in OBS_EMISSION_ALLOWLIST_DIRS):
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolver.resolve(node.func)
        if dotted is None:
            continue
        if dotted in ("print", "builtins.print"):
            yield _finding(
                file,
                node,
                "RPR008",
                "ad-hoc print() inside the simulation stack; report progress "
                "through repro.obs.console() and record measurements as "
                "repro.obs spans/metrics",
            )
        elif dotted.startswith("logging."):
            yield _finding(
                file,
                node,
                "RPR008",
                f"ad-hoc {dotted}() inside the simulation stack; record "
                "measurements through repro.obs spans/metrics instead of a "
                "logging side channel",
            )


def _raw_address_expr(node: ast.expr, resolver: NameResolver) -> str | None:
    """Why ``node`` is a raw address array assembled at the call site, if it is.

    Names, attribute reads and method calls on existing objects pass — the
    rule polices *construction* at the boundary, not plumbing of values
    produced by the IR or the front-ends.
    """
    if isinstance(node, ast.BinOp):
        return "an arithmetic address expression"
    if isinstance(node, (ast.List, ast.Tuple)):
        return "an inline array literal"
    if isinstance(node, ast.Call):
        dotted = resolver.resolve(node.func)
        if dotted is not None and dotted.startswith("numpy."):
            return f"a {dotted}() array constructed inline"
        name = node.func.attr if isinstance(node.func, ast.Attribute) else dotted
        if name in _RAW_ADDRESS_PRODUCERS:
            return f"the raw address trace of {name}()"
    return None


def _rule_rpr009(file: FileSource, resolver: NameResolver) -> Iterator[Finding]:
    """Stream consumers take ``RequestStream``s, not call-site address arrays."""
    if any(file.rel.startswith(prefix) for prefix in STREAM_BOUNDARY_EXEMPT_DIRS):
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in _STREAM_CONSUMERS:
            continue
        first: ast.expr | None = node.args[0] if node.args else None
        if first is None:
            for kw in node.keywords:
                if kw.arg == "stream":
                    first = kw.value
        if first is None:
            continue
        reason = _raw_address_expr(first, resolver)
        if reason is not None:
            yield _finding(
                file,
                node,
                "RPR009",
                f"{reason} passed straight to {node.func.attr}() bypasses the "
                "typed request-stream IR; build a repro.streams.RequestStream "
                "(front-end or FilteredStream producer) and pass that",
            )


def _finding(file: FileSource, node: ast.AST, rule: str, message: str) -> Finding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(file.rel, line, col, rule, message)


# --------------------------------------------------------------------------
# project-wide rules
# --------------------------------------------------------------------------


def project_findings(index: ProjectIndex) -> Iterator[Finding]:
    """RPR003: key-reachable dataclasses frozen, with immutable defaults."""
    reachable = index.key_reachable()
    for name in sorted(reachable):
        info = index.dataclasses[name]
        root = reachable[name]
        via = "" if root == name else f" (reachable from canonical-key root {root})"
        if not info.frozen:
            yield Finding(
                info.path,
                info.line,
                info.col,
                "RPR003",
                f"dataclass {name} is hashed into context/store canonical "
                f"keys{via} but is not frozen=True; a post-keying mutation "
                "would silently desynchronize memo and store lookups",
            )
        for fld in info.fields:
            if fld.mutable_default:
                yield Finding(
                    info.path,
                    fld.line,
                    0,
                    "RPR003",
                    f"field {name}.{fld.name} defaults to a mutable container; "
                    "canonical-key dataclasses need immutable defaults "
                    "(tuple / frozen dataclass / None)",
                )
