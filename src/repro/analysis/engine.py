"""The ``repro-lint`` engine: file walking, waivers and rule dispatch.

The engine parses every Python file under the linted roots once, builds a
project-wide index (dataclass definitions, canonical-key root types,
registered-experiment modules), runs the per-file rule visitors from
:mod:`repro.analysis.rules`, and filters the raw findings through inline
waivers.

Waiver syntax
-------------
A finding is waived with a comment on the offending line (or a standalone
comment on the line directly above it)::

    t0 = time.perf_counter()  # repro: allow[RPR004] -- benchmark harness timing

The reason after ``--`` is **required**: a waiver without one does not
suppress anything and is itself reported as ``RPR000``.  Several rule ids
may be waived at once: ``# repro: allow[RPR001,RPR004] -- <reason>``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "Finding",
    "FileSource",
    "LintResult",
    "NameResolver",
    "collect_waivers",
    "lint_paths",
    "lint_sources",
]

#: Matches waiver comments of the shape ``repro: allow[RPRxxx] -- reason``
#: (rule ids are uppercase; the reason after the double dash is mandatory).
WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9,\s]+)\]" r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Reported for syntactically broken waivers (missing reason); never waivable.
WAIVER_RULE_ID = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  #: root-relative POSIX path
    line: int
    col: int
    rule: str  #: rule id, e.g. ``"RPR001"``
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def format_github(self) -> str:
        """GitHub Actions workflow-command annotation."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: Comment-only line: the waiver also covers the next code line.
    standalone: bool


@dataclass
class FileSource:
    """A parsed source file plus the per-file waiver table."""

    rel: str  #: root-relative POSIX path
    source: str
    tree: ast.Module
    waivers: list[Waiver] = field(default_factory=list)
    #: ``(line, col)`` of waivers missing their required reason.
    broken_waivers: list[tuple[int, int]] = field(default_factory=list)
    #: line -> rule ids waived on that line (reason-bearing waivers only).
    waived_lines: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_waived(self, line: int, rule: str) -> bool:
        return rule in self.waived_lines.get(line, frozenset())


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings


class NameResolver(ast.NodeVisitor):
    """Best-effort canonical dotted names through import aliases.

    ``import numpy as np`` makes ``np.random.rand`` resolve to
    ``numpy.random.rand``; ``from time import perf_counter as pc`` makes a
    bare ``pc(...)`` call resolve to ``time.perf_counter``.  Unresolvable
    expressions (calls, subscripts, locals shadowing imports) return ``None``
    or the literal dotted text, which the rules treat conservatively.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.import_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        self.from_imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of an attribute chain / name, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.from_imports:
            resolved = self.from_imports[root]
        elif root in self.import_aliases:
            resolved = self.import_aliases[root]
        else:
            resolved = root
        parts.append(resolved)
        return ".".join(reversed(parts))


def collect_waivers(
    source: str,
) -> tuple[list[Waiver], list[tuple[int, int]], dict[int, frozenset[str]]]:
    """Parse waiver comments out of ``source``.

    Returns ``(waivers, broken, waived_lines)``: the parsed reason-bearing
    waivers, the ``(line, col)`` sites of waivers missing the required
    reason, and the line -> waived-rule-ids lookup (standalone comment-only
    waivers also cover the next code line, so decorated defs and wrapped
    statements can carry a waiver above them).
    """
    waivers: list[Waiver] = []
    broken: list[tuple[int, int]] = []
    code_lines: set[int] = set()
    comment_tokens: list[tokenize.TokenInfo] = []
    skip = (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comment_tokens.append(tok)
            elif tok.type not in skip:
                code_lines.add(tok.start[0])
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - parse guard
        return waivers, broken, {}
    for tok in comment_tokens:
        match = WAIVER_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            broken.append((line, col))
            continue
        waivers.append(Waiver(line, rules, reason, standalone=line not in code_lines))
    table: dict[int, set[str]] = {}
    for waiver in waivers:
        covered = {waiver.line}
        if waiver.standalone:
            following = [ln for ln in code_lines if ln > waiver.line]
            if following:
                covered.add(min(following))
        for ln in covered:
            table.setdefault(ln, set()).update(waiver.rules)
    return waivers, broken, {ln: frozenset(ids) for ln, ids in table.items()}


def parse_file(path: Path, rel: str) -> FileSource | None:
    """Parse one file into a :class:`FileSource` (``None`` on syntax error)."""
    source = path.read_text(encoding="utf-8")
    return parse_source(source, rel)


def parse_source(source: str, rel: str) -> FileSource | None:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    waivers, broken, waived_lines = collect_waivers(source)
    return FileSource(
        rel=rel,
        source=source,
        tree=tree,
        waivers=waivers,
        broken_waivers=broken,
        waived_lines=waived_lines,
    )


def iter_python_files(paths: Iterable[Path], root: Path) -> list[tuple[Path, str]]:
    """``(absolute, root-relative)`` pairs of every ``.py`` file, sorted."""
    seen: dict[str, Path] = {}
    for entry in paths:
        entry = entry if entry.is_absolute() else root / entry
        candidates = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for candidate in candidates:
            try:
                rel = candidate.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            seen.setdefault(rel, candidate)
    return [(seen[rel], rel) for rel in sorted(seen)]


def lint_sources(files: list[FileSource], rule_ids: frozenset[str] | None = None) -> LintResult:
    """Run every (selected) rule over already-parsed sources."""
    from .rules import ProjectIndex, project_findings, run_file_rules

    index = ProjectIndex.build(files)
    raw: list[Finding] = []
    for file in files:
        for line, col in file.broken_waivers:
            raw.append(
                Finding(
                    file.rel,
                    line,
                    col,
                    WAIVER_RULE_ID,
                    "waiver is missing its required reason: "
                    "`# repro: allow[RPRxxx] -- <why this is safe>`",
                )
            )
        raw.extend(run_file_rules(file, index))
    raw.extend(project_findings(index))
    by_rel = {file.rel: file for file in files}
    findings = []
    for finding in raw:
        if rule_ids is not None and finding.rule not in rule_ids | {WAIVER_RULE_ID}:
            continue
        file = by_rel.get(finding.path)
        if (
            finding.rule != WAIVER_RULE_ID
            and file is not None
            and file.is_waived(finding.line, finding.rule)
        ):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(findings=tuple(findings), files_checked=len(files))


def lint_paths(
    paths: Iterable[Path | str],
    root: Path | str = ".",
    rule_ids: frozenset[str] | None = None,
) -> LintResult:
    """Lint every Python file reachable from ``paths`` (dirs recurse)."""
    root = Path(root)
    files: list[FileSource] = []
    for path, rel in iter_python_files([Path(p) for p in paths], root):
        parsed = parse_file(path, rel)
        if parsed is not None:
            files.append(parsed)
    return lint_sources(files, rule_ids)
