"""Command-line front end of ``repro-lint`` (``python -m repro lint``).

Exit codes: 0 clean, 1 unwaived findings, 2 usage error.  ``--format
github`` emits GitHub Actions ``::error`` annotations so CI findings land
inline on the PR diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import LintResult, lint_paths
from .rules import RULES

__all__ = ["add_lint_arguments", "run_lint", "main"]

#: Default lint roots: the simulation stack plus the benchmark suites.
DEFAULT_PATHS = ("src", "benchmarks")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``lint`` flags on ``parser`` (shared with `repro lint`)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "github"),
        default="text",
        help="finding format: text (file:line:col) or github (::error annotations)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RPR001,RPR004,...",
        help="comma list of rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, summary, rationale) and exit",
    )


def _print_rules() -> None:
    width = max(len(rule.summary) for rule in RULES)
    for rule in RULES:
        print(f"{rule.id}  {rule.summary.ljust(width)}  {rule.rationale}")


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command from parsed arguments."""
    if args.list_rules:
        _print_rules()
        return 0
    rule_ids: frozenset[str] | None = None
    if args.rules:
        rule_ids = frozenset(r.strip().upper() for r in args.rules.split(",") if r.strip())
        known = {rule.id for rule in RULES}
        unknown = sorted(rule_ids - known)
        if unknown:
            print(
                f"error: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
    root = Path(args.root)
    missing = [p for p in args.paths if not (root / p).exists() and not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    result: LintResult = lint_paths(args.paths, root=root, rule_ids=rule_ids)
    for finding in result.findings:
        if args.lint_format == "github":
            print(finding.format_github())
        else:
            print(finding.format_text())
    status = f"{len(result.findings)} finding(s)" if result.findings else "clean"
    print(
        f"[repro-lint: {result.files_checked} file(s), {status}]",
        file=sys.stderr,
    )
    return 1 if result.findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism-invariant static analysis for the repro codebase.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
