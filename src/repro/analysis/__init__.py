"""``repro.analysis`` — determinism-invariant static analysis for the repo.

The package implements ``repro-lint`` (``python -m repro lint``): an
AST-based linter whose rules machine-check the reproducibility invariants
the test suite can only spot-check — no global RNG, no raw artifact writes,
frozen config dataclasses on the canonical-key surface, no wall clock in
artifact-producing modules, no unordered set iteration feeding artifacts,
and no inline recomputation of context-memoized artifacts inside registered
experiments.  See :mod:`repro.analysis.rules` for the rule table and
:mod:`repro.analysis.engine` for the waiver syntax.
"""

from .engine import Finding, LintResult, lint_paths
from .rules import RULES, Rule

__all__ = ["Finding", "LintResult", "Rule", "RULES", "lint_paths"]
