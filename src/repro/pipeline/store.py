"""Content-addressed on-disk artifact store for the simulation pipeline.

:class:`~repro.pipeline.context.SimulationContext` memoizes expensive
artifacts in memory, which dies with the process: every CI run, CLI
invocation and sweep re-simulates the world from scratch.  The
:class:`ArtifactStore` persists those artifacts on disk, keyed by a SHA-256
digest of the same canonical config key the in-memory cache uses, so a
context constructed with ``store=`` reads through the store before
computing and any process — a later CLI call, a sweep worker, a resumed
run — reuses what an earlier one simulated.

Design points
-------------
* **Content addressing.**  The key of an artifact is the canonical config
  tuple built by :func:`~repro.pipeline.context.config_key`; its digest
  names the payload file.  Any configuration change changes the key, so
  stale payloads are never returned — they are simply never addressed.
* **Typed payloads.**  Numpy arrays are stored as ``.npz`` (loaded with
  ``allow_pickle=False``); JSON-representable values,
  :class:`~repro.experiments.runner.ExperimentResult` and a small registry
  of storable dataclasses (e.g. ``LocalityReport``) as ``.json``
  documents.  Values outside these types are silently kept memory-only
  (``put`` returns ``False``) — pickle is never used.
* **Atomic writes.**  Payloads are written to a temporary file in the
  destination directory and ``os.replace``-d into place, so a killed run
  never leaves a truncated artifact and concurrent writers (sweep workers)
  race benignly: both write identical bytes.
* **Versioned schema.**  Payloads live under ``root/v<N>/``; bumping
  :data:`STORE_SCHEMA_VERSION` (on any change to the payload encoding or
  to what an artifact kind means) invalidates every existing store without
  deleting it.  Each JSON document also records the schema it was written
  with and is treated as a miss on mismatch.

Layout::

    <root>/v1/<digest[:2]>/<digest>.json   # JSON-typed payloads
    <root>/v1/<digest[:2]>/<digest>.npz    # ndarray payloads
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.ioutil import atomic_write_bytes
from ..core.streaming import LocalityReport
from ..obs import get_metrics, get_tracer
from ..streams.ir import RequestStream, StreamKind

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "STORE_MISS",
    "STORE_SCHEMA_VERSION",
    "key_digest",
]

#: Bump on any change to the payload encoding or artifact semantics; old
#: store directories (``v<old>/``) are then ignored wholesale.
STORE_SCHEMA_VERSION = 1

#: Sentinel returned by :meth:`ArtifactStore.get` on a miss (``None`` is a
#: legitimate artifact value).
STORE_MISS = object()

#: Dataclasses the store may persist as plain field dictionaries.  Only
#: types whose fields are JSON primitives belong here.
_STORABLE_DATACLASSES: dict[str, type[Any]] = {
    "LocalityReport": LocalityReport,
}


def _canonical(obj: Any) -> Any:
    """JSON-representable form of a cache key (tuples become lists)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return repr(obj)


def key_digest(key: Any) -> str:
    """Stable SHA-256 hex digest of a canonical cache key."""
    payload = json.dumps(_canonical(key), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


#: Marker key of a request-stream ``.npz`` payload; holds the typed JSON
#: metadata document while ``indices``/``group_ids`` ride as plain arrays.
_STREAM_SENTINEL = "__request_stream__"


def _encode_request_stream(stream: RequestStream) -> dict[str, Any]:
    """``np.savez`` keyword arrays for one :class:`RequestStream` payload."""
    meta = json.dumps(
        {
            "entry_bytes": stream.entry_bytes,
            "table_entries": stream.table_entries,
            "base_address": stream.base_address,
            "kind": stream.kind.value,
            "dtype": stream.dtype,
            "source": stream.source,
            "label": stream.label,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    arrays: dict[str, Any] = {
        _STREAM_SENTINEL: np.array(meta),
        "indices": np.ascontiguousarray(stream.indices),
    }
    if stream.group_ids is not None:
        arrays["group_ids"] = np.ascontiguousarray(stream.group_ids)
    return arrays


def _decode_request_stream(archive: Any) -> RequestStream:
    """Rebuild a :class:`RequestStream` from its ``.npz`` payload."""
    meta = json.loads(str(archive[_STREAM_SENTINEL]))
    return RequestStream(
        indices=archive["indices"],
        entry_bytes=int(meta["entry_bytes"]),
        table_entries=int(meta["table_entries"]),
        base_address=int(meta["base_address"]),
        kind=StreamKind(meta["kind"]),
        dtype=str(meta["dtype"]),
        group_ids=archive["group_ids"] if "group_ids" in archive.files else None,
        source=str(meta["source"]),
        label=str(meta["label"]),
    )


def _json_default(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON-storable: {type(value).__name__}")


def _is_jsonable(value: Any) -> bool:
    if value is None or isinstance(value, (bool, str)):
        return True
    if isinstance(value, (int, float, np.generic)):
        return not isinstance(value, np.complexfloating)
    if isinstance(value, list):
        return all(_is_jsonable(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_jsonable(v) for k, v in value.items())
    return False


@dataclass
class StoreStats:
    """Counters for one :class:`ArtifactStore` handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    skipped: int = 0  # values with no storable encoding (memory-only)
    errors: int = 0  # unreadable/corrupt payloads (treated as misses)
    hit_kinds: list[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactStore:
    """Persistent, content-addressed artifact store (see module docstring)."""

    def __init__(self, root: str | Path, schema_version: int = STORE_SCHEMA_VERSION):
        self.root = Path(root)
        self.schema_version = int(schema_version)
        self.path = self.root / f"v{self.schema_version}"
        self.stats = StoreStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r}, schema_version={self.schema_version})"

    # ------------------------------------------------------------- addressing
    def _payload_path(self, digest: str, suffix: str) -> Path:
        return self.path / digest[:2] / f"{digest}.{suffix}"

    def __len__(self) -> int:
        """Number of persisted payloads (both JSON and npz)."""
        if not self.path.exists():
            return 0
        return sum(1 for p in self.path.glob("*/*") if p.suffix in (".json", ".npz"))

    # ----------------------------------------------------------------- encode
    def _encode(self, value: Any) -> tuple[str, Any] | None:
        """``(kind, payload)`` for a storable value, else ``None``."""
        from ..experiments.runner import ExperimentResult  # lazy: avoids an import cycle

        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, np.ndarray):
            if value.dtype == object:
                return None
            return ("ndarray", value)
        if isinstance(value, RequestStream):
            return ("request_stream", value)
        if isinstance(value, ExperimentResult):
            return ("experiment_result", value.to_dict())
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            name = type(value).__name__
            if name in _STORABLE_DATACLASSES:
                return ("dataclass", {"class": name, "fields": dataclasses.asdict(value)})
            return None
        if (
            isinstance(value, list)
            and value
            and all(type(v).__name__ in _STORABLE_DATACLASSES for v in value)
            and len({type(v) for v in value}) == 1
        ):
            return (
                "dataclass_list",
                {
                    "class": type(value[0]).__name__,
                    "items": [dataclasses.asdict(v) for v in value],
                },
            )
        if _is_jsonable(value):
            return ("json", value)
        return None

    def _decode(self, document: dict[str, Any]) -> Any:
        from ..experiments.runner import ExperimentResult  # lazy: avoids an import cycle

        kind, payload = document["type"], document["value"]
        if kind == "json":
            return payload
        if kind == "experiment_result":
            return ExperimentResult.from_dict(payload)
        if kind == "dataclass":
            cls = _STORABLE_DATACLASSES[payload["class"]]
            return cls(**payload["fields"])
        if kind == "dataclass_list":
            cls = _STORABLE_DATACLASSES[payload["class"]]
            return [cls(**item) for item in payload["items"]]
        raise ValueError(f"unknown payload type {kind!r}")

    # --------------------------------------------------------------------- io
    def put(self, key: Any, value: Any) -> bool:
        """Persist ``value`` under ``key``; ``False`` if it was not stored.

        Content-addressed and deterministic: an existing payload for the
        same key is left untouched (it holds identical bytes by
        construction).  Best-effort: the store is an optimization layer, so
        an I/O failure (full or read-only volume) is counted in
        ``stats.errors`` instead of failing the computation that produced
        the value.
        """
        tracer = get_tracer()
        encoded = self._encode(value)
        if encoded is None:
            self.stats.skipped += 1
            if tracer.enabled:
                get_metrics().counter("store.skipped").inc()
            return False
        kind, payload = encoded
        digest = key_digest(key)
        with tracer.span("store.put", "pipeline") as span:
            try:
                if kind == "ndarray":
                    target = self._payload_path(digest, "npz")
                    if target.exists():
                        return True
                    buffer = io.BytesIO()
                    np.savez(buffer, value=np.ascontiguousarray(payload))
                    atomic_write_bytes(target, buffer.getvalue())
                elif kind == "request_stream":
                    target = self._payload_path(digest, "npz")
                    if target.exists():
                        return True
                    buffer = io.BytesIO()
                    np.savez(buffer, **_encode_request_stream(payload))
                    atomic_write_bytes(target, buffer.getvalue())
                else:
                    target = self._payload_path(digest, "json")
                    if target.exists():
                        return True
                    document = {
                        "schema": self.schema_version,
                        "key": _canonical(key),
                        "type": kind,
                        "value": payload,
                    }
                    try:
                        text = json.dumps(document, separators=(",", ":"), default=_json_default)
                    except (TypeError, ValueError):
                        self.stats.skipped += 1
                        return False
                    atomic_write_bytes(target, text.encode())
            except OSError:
                self.stats.errors += 1
                return False
            if span.enabled:
                span.add_args(kind=kind, digest=digest[:12])
                get_metrics().counter("store.writes").inc()
        self.stats.writes += 1
        return True

    def get(self, key: Any) -> Any:
        """The stored value for ``key``, or :data:`STORE_MISS`.

        Corrupt payloads count as misses (and bump ``stats.errors``) and are
        deleted, so the caller's recompute writes a fresh payload instead of
        leaving the key permanently broken.
        """
        tracer = get_tracer()
        digest = key_digest(key)
        json_path = self._payload_path(digest, "json")
        npz_path = self._payload_path(digest, "npz")
        kind = key[0] if isinstance(key, tuple) and key and isinstance(key[0], str) else None
        with tracer.span("store.get", "pipeline") as span:
            if span.enabled and kind is not None:
                span.add_args(kind=kind)
            try:
                if json_path.exists():
                    document = json.loads(json_path.read_text())
                    if document.get("schema") != self.schema_version:
                        self.stats.misses += 1
                        return STORE_MISS
                    value = self._decode(document)
                elif npz_path.exists():
                    with np.load(npz_path, allow_pickle=False) as archive:
                        if _STREAM_SENTINEL in archive.files:
                            value = _decode_request_stream(archive)
                        else:
                            value = archive["value"]
                            value.flags.writeable = False
                else:
                    self.stats.misses += 1
                    if tracer.enabled:
                        get_metrics().counter("store.misses").inc()
                    return STORE_MISS
            except Exception:
                self.stats.errors += 1
                self.stats.misses += 1
                if tracer.enabled:
                    get_metrics().counter("store.quarantined").inc()
                    tracer.instant("store.quarantine", "pipeline", digest=digest[:12])
                for path in (json_path, npz_path):  # quarantine: recompute rewrites it
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass
                return STORE_MISS
        self.stats.hits += 1
        if tracer.enabled:
            get_metrics().counter("store.hits").inc()
        if kind is not None:
            self.stats.hit_kinds.append(kind)
        return value
