"""Typed experiment registry with declarative parameter spaces.

Each paper table/figure is a registered :class:`ExperimentSpec`: a runner
callable plus the declarative description of its parameter space (scene,
hash function, DRAM spec, trace shape, ...).  Experiment modules register
themselves with the :func:`register_experiment` decorator; the CLI, the
sweep engine and the suite runner all resolve experiments through this
registry instead of hard-wiring ``run_*`` imports.

Parameter values are JSON-serializable primitives (strings/ints/floats/
bools); runners convert them to the domain objects (``HashGridConfig``,
``TraceConfig``, hash-function instances, DRAM specs).  That keeps every
cell of a sweep, and every artifact on disk, fully described by plain data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from .context import SimulationContext

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..experiments.runner import ExperimentResult

__all__ = [
    "ParamSpec",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
    "run_experiment",
    "run_suite",
]


@dataclass(frozen=True)
class ParamSpec:
    """One declarative parameter of an experiment."""

    name: str
    kind: type[Any]
    default: Any
    choices: tuple[Any, ...] | None = None
    help: str = ""

    def parse(self, raw: Any) -> Any:
        """Coerce a raw (possibly string) value to the parameter type."""
        if raw is None:
            return self.default
        if self.kind is bool and isinstance(raw, str):
            lowered = raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                value: Any = True
            elif lowered in ("0", "false", "no", "off"):
                value = False
            else:
                raise ValueError(f"parameter {self.name!r}: cannot parse boolean from {raw!r}")
        else:
            try:
                value = self.kind(raw)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"parameter {self.name!r}: expected {self.kind.__name__}, got {raw!r}"
                ) from exc
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} is not one of "
                f"{', '.join(map(str, self.choices))}"
            )
        return value


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: runner + parameter space + metadata."""

    name: str
    paper_ref: str
    title: str
    runner: Callable[..., ExperimentResult]
    params: tuple[ParamSpec, ...] = ()
    tags: tuple[str, ...] = ()
    #: Artifact kinds this spec computes / can reuse from the shared context.
    #: The suite runner schedules producers of an artifact before consumers.
    provides: tuple[str, ...] = ()
    consumes: tuple[str, ...] = ()

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        known = ", ".join(p.name for p in self.params) or "(none)"
        raise KeyError(f"experiment {self.name!r} has no parameter {name!r}; available: {known}")

    def defaults(self) -> dict[str, Any]:
        return {p.name: p.default for p in self.params}

    def bind(self, overrides: dict[str, Any] | None = None) -> dict[str, Any]:
        """Validated full parameter assignment (defaults + overrides)."""
        bound = self.defaults()
        for name, raw in (overrides or {}).items():
            bound[name] = self.param(name).parse(raw)
        return bound

    def run(self, context: SimulationContext | None = None, **overrides: Any) -> ExperimentResult:
        """Run with validated parameters against a (possibly fresh) context."""
        ctx = context if context is not None else SimulationContext()
        return self.runner(ctx, **self.bind(overrides))


_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(
    name: str,
    *,
    paper_ref: str,
    title: str,
    params: tuple[ParamSpec, ...] = (),
    tags: tuple[str, ...] = (),
    provides: tuple[str, ...] = (),
    consumes: tuple[str, ...] = (),
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Register the decorated runner as the experiment ``name``.

    The runner signature is ``runner(ctx, **params) -> ExperimentResult``
    with every declared parameter accepted as a keyword argument.
    """

    def decorator(runner: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            paper_ref=paper_ref,
            title=title,
            runner=runner,
            params=tuple(params),
            tags=tuple(tags),
            provides=tuple(provides),
            consumes=tuple(consumes),
        )
        return runner

    return decorator


def _ensure_registered() -> None:
    # Importing the experiments package executes every module's
    # @register_experiment decorator exactly once.
    from .. import experiments  # noqa: F401


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; available: {known}") from None


def all_experiments() -> list[ExperimentSpec]:
    """Registered experiments in registration (paper) order."""
    _ensure_registered()
    return list(_REGISTRY.values())


def experiment_names() -> list[str]:
    _ensure_registered()
    return list(_REGISTRY)


def run_experiment(
    name: str, context: SimulationContext | None = None, **overrides: Any
) -> ExperimentResult:
    """Run one registered experiment by name."""
    return get_experiment(name).run(context, **overrides)


def _schedule(specs: list[ExperimentSpec]) -> list[ExperimentSpec]:
    """Stable order with artifact producers ahead of their consumers.

    A spec that consumes an artifact kind another spec provides (e.g. the
    Fig. 7 bandwidth model consuming the corner-index streams the Fig. 9
    conflict analysis builds) is moved after the producer; ties keep
    registration order.  Cycles fall back to registration order.
    """
    ordered: list[ExperimentSpec] = []
    remaining = list(specs)
    provided: set[str] = set()
    while remaining:
        progressed = False
        for spec in list(remaining):
            pending = {
                kind
                for kind in spec.consumes
                if kind not in provided
                and any(kind in other.provides for other in remaining if other is not spec)
            }
            if not pending:
                ordered.append(spec)
                provided.update(spec.provides)
                remaining.remove(spec)
                progressed = True
        if not progressed:  # dependency cycle: keep declaration order
            ordered.extend(remaining)
            break
    return ordered


def run_suite(
    names: list[str] | None = None,
    context: SimulationContext | None = None,
    overrides: dict[str, dict[str, Any]] | None = None,
) -> dict[str, ExperimentResult]:
    """Run a set of experiments against one shared context.

    ``overrides`` maps experiment name to parameter overrides.  Specs are
    scheduled so artifact producers run before consumers, letting the shared
    :class:`SimulationContext` reuse streams instead of recomputing them.
    Results are keyed by experiment name.
    """
    specs = [get_experiment(n) for n in names] if names is not None else all_experiments()
    ctx = context if context is not None else SimulationContext()
    results: dict[str, ExperimentResult] = {}
    for spec in _schedule(specs):
        results[spec.name] = spec.run(ctx, **(overrides or {}).get(spec.name, {}))
    return results
