"""Parallel parameter sweeps over registered experiments.

A sweep expands a parameter grid (Cartesian product, declaration order) into
cells and evaluates them through one of three interchangeable executors:

* :class:`SerialSweepExecutor` — cells run inline, in grid order.
* :class:`ThreadSweepExecutor` — a thread pool over one shared
  :class:`~repro.pipeline.context.SimulationContext`, so artifacts common to
  several cells (datasets, traces, index streams, baselines) are computed
  once.  GIL-bound, but threads share memory for free.
* :class:`ProcessSweepExecutor` — a ``ProcessPoolExecutor`` for CPU-bound
  grids.  The first cell is evaluated in the parent to populate the shared
  context, whose large ndarray artifacts (trace points, corner-index
  streams) are then exported through ``multiprocessing.shared_memory`` and
  adopted zero-copy by every worker instead of being re-pickled per cell.

Results are byte-identical across executors and worker counts: every cell is
a deterministic function of its parameters, cells are returned in grid
order regardless of completion order, and runtime provenance (executor,
worker count) is deliberately excluded from the serialized artifact.

Every cell runs with the sweep's ``base_seed`` (unless ``seed`` is swept or
pinned explicitly), so sweeping a non-stochastic axis such as the hash
function compares cells on identical sampled traces; use :func:`cell_seed`
to build a decorrelated ``seed`` axis when independent replicates are wanted.

With ``store=`` (an :class:`~repro.pipeline.store.ArtifactStore` or path)
completed cell results are persisted; ``resume=True`` then loads cells found
in the store instead of recomputing them, so an interrupted sweep continues
where it stopped — ``python -m repro sweep ... --store .repro-cache
--resume``.  A resumed sweep serializes byte-identically to a fresh one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Callable

import numpy as np
from numpy.typing import NDArray

from .. import obs
from ..experiments.runner import ExperimentResult, atomic_write_text
from ..obs import TraceEvent
from ..obs.clock import wall_time
from .context import SimulationContext, config_key
from .registry import ExperimentSpec, get_experiment
from .store import STORE_MISS, ArtifactStore

__all__ = [
    "SweepCell",
    "SweepResult",
    "sweep",
    "expand_grid",
    "cell_seed",
    "cell_store_key",
    "SweepExecutor",
    "SerialSweepExecutor",
    "ThreadSweepExecutor",
    "ProcessSweepExecutor",
    "resolve_executor",
]


def expand_grid(grid: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid, in declaration order."""
    if not grid:
        return [{}]
    names = list(grid)
    cells = []
    for values in itertools.product(*(grid[name] for name in names)):
        cells.append(dict(zip(names, values)))
    return cells


def cell_seed(spec_name: str, params: dict[str, Any], base_seed: int = 0) -> int:
    """Deterministic decorrelated seed derived from a cell's parameters.

    Stable across processes and platforms (SHA-256 of the canonical JSON of
    ``(spec, sorted params, base_seed)``).  :func:`sweep` itself pins every
    cell to ``base_seed`` so that sweeping a non-stochastic axis (hash
    function, scene, DRAM spec) compares cells on identical sampled traces;
    use this helper to build an explicit ``seed`` grid axis when independent
    replicates per cell are wanted instead.
    """
    payload = json.dumps(
        {"spec": spec_name, "params": params, "base_seed": base_seed},
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


def cell_store_key(
    spec: ExperimentSpec | str, params: dict[str, Any], seed: int | None
) -> tuple[Any, ...]:
    """Store key of one completed sweep cell (resume granularity).

    Keyed by the *fully bound* parameter assignment — defaults filled in and
    raw values parsed to their declared types — exactly like the run-level
    key in the CLI.  A later change to a registered default therefore
    changes the key (stale cells are never resumed), and ``--set rays=128``
    hits the same cell whether 128 is passed explicitly or is the default.
    """
    if isinstance(spec, str):
        spec = get_experiment(spec)
    return ("sweep_cell", spec.name, config_key(spec.bind(params)), seed)


def _format_cell_error(exc: BaseException) -> str:
    """Executor-independent traceback of a failed cell.

    Frames inside this module differ between the serial ``evaluate`` closure
    and the process-pool worker shim; dropping them makes a failing sweep
    serialize byte-identically across executors (the first kept frame is
    ``ExperimentSpec.run``).
    """
    tb = exc.__traceback__
    while tb is not None and tb.tb_frame.f_code.co_filename == __file__:
        tb = tb.tb_next
    return "".join(traceback.format_exception(type(exc), exc, tb, limit=8))


def _try_cell_store_key(spec: ExperimentSpec, cell: SweepCell) -> tuple[Any, ...] | None:
    """The cell's store key, or ``None`` when its raw values do not bind.

    An unparseable cell value will fail at evaluation time with a proper
    error recorded on the cell; the store simply stays out of its way.
    """
    try:
        return cell_store_key(spec, cell.params, cell.seed)
    except (KeyError, ValueError):
        return None


@dataclass
class SweepCell:
    """One evaluated grid cell.

    ``resumed`` marks cells loaded from the artifact store instead of
    evaluated; it is runtime provenance and deliberately excluded from
    :meth:`to_dict`, so a resumed sweep serializes identically to a fresh
    one.
    """

    index: int
    params: dict[str, Any]
    seed: int | None
    result: ExperimentResult | None = None
    error: str | None = None
    resumed: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
        }


@dataclass
class SweepResult:
    """All cells of one sweep plus the configuration that produced them.

    ``workers`` and ``executor`` describe how the sweep *ran*, not what it
    computed, and are excluded from :meth:`to_dict`: the serialized artifact
    is byte-identical across serial, thread and process executors and any
    worker count.
    """

    spec_name: str
    grid: dict[str, list[Any]]
    base_seed: int
    workers: int
    cells: list[SweepCell] = field(default_factory=list)
    executor: str = "serial"

    @property
    def failed(self) -> list[SweepCell]:
        return [cell for cell in self.cells if cell.error is not None]

    @property
    def resumed(self) -> list[SweepCell]:
        return [cell for cell in self.cells if cell.resumed]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "grid": self.grid,
            "base_seed": self.base_seed,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, directory: str | Path, overwrite: bool = False) -> Path:
        """Write ``sweep_<spec>.json`` plus per-cell result JSONs; returns the index path.

        Writes are atomic (tmp file + rename) and parent directories are
        created.  Rewriting identical content is a no-op; a differing
        existing artifact raises unless ``overwrite=True``.
        """
        directory = Path(directory)
        index_path = directory / f"sweep_{self.spec_name}.json"
        atomic_write_text(index_path, self.to_json() + "\n", overwrite=overwrite)
        for cell in self.cells:
            if cell.result is None:
                continue
            slug = "_".join(f"{k}-{v}" for k, v in cell.params.items()) or "default"
            slug = "".join(c if c.isalnum() or c in "-_." else "-" for c in slug)
            atomic_write_text(
                directory / f"{self.spec_name}_cell{cell.index:03d}_{slug}.json",
                cell.result.to_json() + "\n",
                overwrite=overwrite,
            )
        return index_path


# --------------------------------------------------------------- executors
class SweepExecutor:
    """Strategy for evaluating pending sweep cells.

    ``run`` fills ``cell.result`` / ``cell.error`` in place; ``evaluate`` is
    the sweep's per-cell closure (spec bound to the shared context) for
    in-process executors.
    """

    name = "serial"

    def run(
        self,
        spec: ExperimentSpec,
        cells: list[SweepCell],
        context: SimulationContext,
        evaluate: Callable[[SweepCell], None],
        store: ArtifactStore | None = None,
    ) -> None:
        raise NotImplementedError


class SerialSweepExecutor(SweepExecutor):
    """Cells run inline, in grid order."""

    name = "serial"

    def run(
        self,
        spec: ExperimentSpec,
        cells: list[SweepCell],
        context: SimulationContext,
        evaluate: Callable[[SweepCell], None],
        store: ArtifactStore | None = None,
    ) -> None:
        for cell in cells:
            evaluate(cell)


class ThreadSweepExecutor(SweepExecutor):
    """Thread pool over one shared context (artifacts computed once)."""

    name = "thread"

    def __init__(self, workers: int = 4):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers

    def run(
        self,
        spec: ExperimentSpec,
        cells: list[SweepCell],
        context: SimulationContext,
        evaluate: Callable[[SweepCell], None],
        store: ArtifactStore | None = None,
    ) -> None:
        if len(cells) <= 1 or self.workers == 1:
            for cell in cells:
                evaluate(cell)
            return
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            list(pool.map(evaluate, cells))


# Worker-side state of the process executor, installed by the initializer.
_WORKER_STATE: dict[str, Any] = {}


def _attach_shared_array(entry: dict[str, Any]) -> tuple[shared_memory.SharedMemory, NDArray[Any]]:
    """Map one exported segment as a read-only ndarray (no tracker churn).

    The parent owns the segment's lifetime (it unlinks after the pool
    drains), so worker-side attachment must not register with the resource
    tracker — a worker's registration would fight the parent's over the
    shared tracker process.  Python 3.13 has ``track=False`` for exactly
    this; earlier versions get the registration suppressed during attach.
    """
    try:
        shm = shared_memory.SharedMemory(name=entry["name"], track=False)
    except TypeError:  # Python < 3.13: no track=; suppress the registration
        from multiprocessing import resource_tracker
        from unittest import mock

        with mock.patch.object(resource_tracker, "register", lambda *a, **k: None):
            shm = shared_memory.SharedMemory(name=entry["name"])
    array = np.ndarray(tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]), buffer=shm.buf)
    array.flags.writeable = False
    return shm, array


def _process_worker_init(
    spec_name: str,
    store_root: str | None,
    manifest: list[dict[str, Any]],
    obs_enabled: bool = False,
    obs_wall: bool = False,
) -> None:
    """Initializer run once per worker process.

    Builds the worker's :class:`SimulationContext` (store-backed when the
    sweep has one) and seeds it with the parent's shared-memory arrays, so
    large artifacts cross the process boundary exactly once, zero-copy.
    When the parent has observability enabled the worker mirrors it locally;
    recorded events/metrics travel back over the existing result channel.
    """
    if obs_enabled:
        obs.enable(wall_clock=obs_wall)
    store = ArtifactStore(store_root) if store_root else None
    context = SimulationContext(store=store)
    segments = []
    for entry in manifest:
        shm, array = _attach_shared_array(entry)
        segments.append(shm)  # keep alive for the worker's lifetime
        context.seed_cache(entry["key"], array)
    _WORKER_STATE["context"] = context
    _WORKER_STATE["spec"] = get_experiment(spec_name)
    _WORKER_STATE["segments"] = segments


#: Observability payload shipped from a worker: (trace events, metrics snapshot).
_ObsPayload = tuple[list[TraceEvent], dict[str, dict[str, object]]]


def _process_worker_run(
    payload: tuple[int, dict[str, Any]],
) -> tuple[int, dict[str, Any] | None, str | None, _ObsPayload | None]:
    """Evaluate one cell in a worker; results travel back as plain dicts."""
    index, params = payload
    tracer = obs.get_tracer()
    try:
        with tracer.span("sweep.cell", "pipeline") as span:
            if span.enabled:
                span.add_args(index=index)
            result = _WORKER_STATE["spec"].run(_WORKER_STATE["context"], **params)
        return index, result.to_dict(), None, _drain_worker_obs()
    except Exception as exc:
        return index, None, _format_cell_error(exc), _drain_worker_obs()


def _drain_worker_obs() -> _ObsPayload | None:
    tracer = obs.get_tracer()
    if not tracer.enabled:
        return None
    return tracer.drain(), obs.drain_metrics()


def _export_shared_arrays(
    context: SimulationContext, min_bytes: int, max_total_bytes: int
) -> tuple[list[shared_memory.SharedMemory], list[dict[str, Any]]]:
    """Copy the context's large arrays into shared-memory segments."""
    segments: list[shared_memory.SharedMemory] = []
    manifest: list[dict[str, Any]] = []
    total = 0
    for key, array in context.array_artifacts(min_bytes):
        if total + array.nbytes > max_total_bytes:
            continue
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        segments.append(shm)
        manifest.append(
            {
                "name": shm.name,
                "dtype": array.dtype.str,
                "shape": tuple(array.shape),
                "key": key,
            }
        )
        total += array.nbytes
    return segments, manifest


class ProcessSweepExecutor(SweepExecutor):
    """Process pool with shared-memory artifact export (GIL-free sweeps).

    The first pending cell is evaluated in the parent (``warmup``) so the
    shared context holds the trace/index-stream arrays the grid needs; those
    are exported through ``multiprocessing.shared_memory`` and every worker
    adopts them read-only instead of recomputing or unpickling per cell.
    Requires a *registered* spec (workers resolve it by name).

    ``start_method=None`` picks ``fork`` where available (cheap workers) and
    falls back to ``spawn``; both produce byte-identical results.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 4,
        min_shared_bytes: int = 1 << 16,
        max_shared_bytes: int = 1 << 31,
        warmup: bool = True,
        start_method: str | None = None,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.min_shared_bytes = min_shared_bytes
        self.max_shared_bytes = max_shared_bytes
        self.warmup = warmup
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method

    def run(
        self,
        spec: ExperimentSpec,
        cells: list[SweepCell],
        context: SimulationContext,
        evaluate: Callable[[SweepCell], None],
        store: ArtifactStore | None = None,
    ) -> None:
        pending = list(cells)
        if not pending:
            return
        if self.warmup:
            evaluate(pending[0])
            pending = pending[1:]
            if not pending:
                return
        segments, manifest = _export_shared_arrays(
            context, self.min_shared_bytes, self.max_shared_bytes
        )
        store_root = str(store.root) if store is not None else None
        mp_context = multiprocessing.get_context(self.start_method)
        tracer = obs.get_tracer()
        num_workers = min(self.workers, len(pending))
        pool_started = wall_time() if tracer.enabled else 0.0
        try:
            with ProcessPoolExecutor(
                max_workers=num_workers,
                mp_context=mp_context,
                initializer=_process_worker_init,
                initargs=(spec.name, store_root, manifest, tracer.enabled, tracer.wall_clock),
            ) as pool:
                outcomes = list(
                    pool.map(_process_worker_run, [(c.index, c.params) for c in pending])
                )
        finally:
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        by_index = {cell.index: cell for cell in pending}
        worker_events: list[TraceEvent] = []
        for index, payload, error, obs_payload in outcomes:
            cell = by_index[index]
            if error is not None:
                cell.error = error
            else:
                cell.result = ExperimentResult.from_dict(payload)
            if obs_payload is not None:
                events, metrics_snapshot = obs_payload
                worker_events.extend(events)
                obs.get_metrics().merge(metrics_snapshot)
        if tracer.enabled:
            tracer.ingest(worker_events)
            pool_elapsed = wall_time() - pool_started
            busy_us = sum(
                event.wall_dur_us or 0.0
                for event in worker_events
                if event.name == "sweep.cell"
            )
            if pool_elapsed > 0 and num_workers:
                obs.get_metrics().gauge("sweep.worker_utilization").set(
                    busy_us / (pool_elapsed * 1e6 * num_workers)
                )


def resolve_executor(executor: SweepExecutor | str | None, workers: int) -> SweepExecutor:
    """Resolve an executor name (``auto``/``serial``/``thread``/``process``)."""
    if isinstance(executor, SweepExecutor):
        return executor
    if executor is None or executor == "auto":
        return SerialSweepExecutor() if workers <= 1 else ThreadSweepExecutor(workers)
    if executor == "serial":
        return SerialSweepExecutor()
    if executor == "thread":
        return ThreadSweepExecutor(workers)
    if executor == "process":
        return ProcessSweepExecutor(workers)
    raise ValueError(
        f"unknown executor {executor!r}; expected auto, serial, thread or process"
    )


def sweep(
    spec: ExperimentSpec | str,
    grid: dict[str, list[Any]],
    workers: int = 1,
    base_seed: int = 0,
    context: SimulationContext | None = None,
    extra_params: dict[str, Any] | None = None,
    executor: SweepExecutor | str | None = "auto",
    store: ArtifactStore | str | Path | None = None,
    resume: bool = False,
) -> SweepResult:
    """Evaluate a registered experiment over a parameter grid.

    Parameters
    ----------
    spec:
        Registered experiment (or its name).
    grid:
        Mapping of parameter name to the list of values to sweep.
    workers:
        Pool width for the thread/process executors; cells of the in-process
        executors share one :class:`SimulationContext`, so common artifacts
        are computed once regardless of the worker count.
    base_seed:
        The seed every cell runs with (unless ``seed`` is itself swept or
        pinned); change it to draw an independent replicate of the whole
        sweep.  Keeping one seed across cells makes sweeps over
        non-stochastic axes (hash, scene, dram) controlled comparisons on
        identical sampled traces — and lets the shared context reuse them.
    context:
        Shared context to run against; a fresh one (store-backed when
        ``store`` is given) is created otherwise.
    extra_params:
        Fixed overrides applied to every cell (validated like CLI flags).
    executor:
        ``auto`` (serial for one worker, threads otherwise), ``serial``,
        ``thread``, ``process``, or a :class:`SweepExecutor` instance.
        Results are byte-identical across executors.
    store:
        Persistent :class:`~repro.pipeline.store.ArtifactStore` (or its
        directory).  Completed cell results and storable simulation
        artifacts are written through to it.
    resume:
        Load cells already present in ``store`` instead of recomputing them
        (requires ``store``); an interrupted sweep then continues where it
        stopped and serializes byte-identically to a fresh full run.
    """
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if workers <= 0:
        raise ValueError("workers must be positive")
    if resume and store is None:
        raise ValueError("resume=True requires a store")
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    for name in list(grid) + list(extra_params or {}):
        spec.param(name)  # raises with the available names on a typo
    executor_impl = resolve_executor(executor, workers)
    ctx = context if context is not None else SimulationContext(store=store)
    has_seed_param = any(p.name == "seed" for p in spec.params)

    cells: list[SweepCell] = []
    for index, cell_params in enumerate(expand_grid(grid)):
        params = dict(extra_params or {})
        params.update(cell_params)
        seed = None
        if has_seed_param and "seed" not in params:
            seed = int(base_seed)
            params["seed"] = seed
        elif has_seed_param:
            seed = int(params["seed"])
        cells.append(SweepCell(index=index, params=params, seed=seed))

    if resume and store is not None:
        for cell in cells:
            key = _try_cell_store_key(spec, cell)
            if key is None:
                continue
            hit = store.get(key)
            if hit is not STORE_MISS and isinstance(hit, ExperimentResult):
                cell.result = hit
                cell.resumed = True

    def evaluate(cell: SweepCell) -> None:
        with obs.get_tracer().span("sweep.cell", "pipeline") as span:
            if span.enabled:
                span.add_args(index=cell.index)
            try:
                cell.result = spec.run(ctx, **cell.params)
            except Exception as exc:
                cell.error = _format_cell_error(exc)
                if span.enabled:
                    span.add_args(failed=True)

    pending = [cell for cell in cells if cell.result is None and cell.error is None]
    if obs.get_tracer().enabled:
        metrics = obs.get_metrics()
        metrics.gauge("sweep.queue_depth").set(len(pending))
        metrics.gauge("sweep.workers").set(workers)
        metrics.counter("sweep.cells_resumed").inc(sum(1 for c in cells if c.resumed))
    executor_impl.run(spec, pending, ctx, evaluate, store=store)
    if obs.get_tracer().enabled:
        metrics = obs.get_metrics()
        metrics.counter("sweep.cells_evaluated").inc(len(pending))
        metrics.counter("sweep.cells_failed").inc(
            sum(1 for c in pending if c.error is not None)
        )

    if store is not None:
        for cell in cells:
            if cell.result is not None and not cell.resumed:
                key = _try_cell_store_key(spec, cell)
                if key is not None:
                    store.put(key, cell.result)

    return SweepResult(
        spec_name=spec.name,
        grid={k: list(v) for k, v in grid.items()},
        base_seed=base_seed,
        workers=workers,
        cells=cells,
        executor=executor_impl.name,
    )
