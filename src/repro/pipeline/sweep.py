"""Parallel parameter sweeps over registered experiments.

A sweep expands a parameter grid (Cartesian product, declaration order) into
cells and runs them on a thread pool against one shared
:class:`~repro.pipeline.context.SimulationContext` — so artifacts common to
several cells (datasets, traces, index streams, baselines) are computed once.
Every cell runs with the sweep's ``base_seed`` (unless ``seed`` is swept or
pinned explicitly), so sweeping a non-stochastic axis such as the hash
function compares cells on identical sampled traces; use :func:`cell_seed`
to build a decorrelated ``seed`` axis when independent replicates are wanted.
Cell results are returned in grid order regardless of completion order, and
serializing the same sweep twice produces byte-identical JSON artifacts.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..experiments.runner import ExperimentResult
from .context import SimulationContext
from .registry import ExperimentSpec, get_experiment

__all__ = ["SweepCell", "SweepResult", "sweep", "expand_grid", "cell_seed"]


def expand_grid(grid: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid, in declaration order."""
    if not grid:
        return [{}]
    names = list(grid)
    cells = []
    for values in itertools.product(*(grid[name] for name in names)):
        cells.append(dict(zip(names, values)))
    return cells


def cell_seed(spec_name: str, params: dict[str, Any], base_seed: int = 0) -> int:
    """Deterministic decorrelated seed derived from a cell's parameters.

    Stable across processes and platforms (SHA-256 of the canonical JSON of
    ``(spec, sorted params, base_seed)``).  :func:`sweep` itself pins every
    cell to ``base_seed`` so that sweeping a non-stochastic axis (hash
    function, scene, DRAM spec) compares cells on identical sampled traces;
    use this helper to build an explicit ``seed`` grid axis when independent
    replicates per cell are wanted instead.
    """
    payload = json.dumps(
        {"spec": spec_name, "params": params, "base_seed": base_seed},
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


@dataclass
class SweepCell:
    """One evaluated grid cell."""

    index: int
    params: dict[str, Any]
    seed: int | None
    result: ExperimentResult | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
        }


@dataclass
class SweepResult:
    """All cells of one sweep plus the configuration that produced them."""

    spec_name: str
    grid: dict[str, list[Any]]
    base_seed: int
    workers: int
    cells: list[SweepCell] = field(default_factory=list)

    @property
    def failed(self) -> list[SweepCell]:
        return [cell for cell in self.cells if cell.error is not None]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "grid": self.grid,
            "base_seed": self.base_seed,
            "workers": self.workers,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, directory: str | Path) -> Path:
        """Write ``sweep_<spec>.json`` plus per-cell result JSONs; returns the index path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        index_path = directory / f"sweep_{self.spec_name}.json"
        index_path.write_text(self.to_json() + "\n")
        for cell in self.cells:
            if cell.result is None:
                continue
            slug = "_".join(f"{k}-{v}" for k, v in cell.params.items()) or "default"
            slug = "".join(c if c.isalnum() or c in "-_." else "-" for c in slug)
            (directory / f"{self.spec_name}_cell{cell.index:03d}_{slug}.json").write_text(
                cell.result.to_json() + "\n"
            )
        return index_path


def sweep(
    spec: ExperimentSpec | str,
    grid: dict[str, list[Any]],
    workers: int = 1,
    base_seed: int = 0,
    context: SimulationContext | None = None,
    extra_params: dict[str, Any] | None = None,
) -> SweepResult:
    """Evaluate a registered experiment over a parameter grid.

    Parameters
    ----------
    spec:
        Registered experiment (or its name).
    grid:
        Mapping of parameter name to the list of values to sweep.
    workers:
        Thread-pool width; cells share one :class:`SimulationContext`, so
        common artifacts are computed once regardless of the worker count.
    base_seed:
        The seed every cell runs with (unless ``seed`` is itself swept or
        pinned); change it to draw an independent replicate of the whole
        sweep.  Keeping one seed across cells makes sweeps over
        non-stochastic axes (hash, scene, dram) controlled comparisons on
        identical sampled traces — and lets the shared context reuse them.
    extra_params:
        Fixed overrides applied to every cell (validated like CLI flags).
    """
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if workers <= 0:
        raise ValueError("workers must be positive")
    for name in list(grid) + list(extra_params or {}):
        spec.param(name)  # raises with the available names on a typo
    ctx = context if context is not None else SimulationContext()
    has_seed_param = any(p.name == "seed" for p in spec.params)

    cells: list[SweepCell] = []
    for index, cell_params in enumerate(expand_grid(grid)):
        params = dict(extra_params or {})
        params.update(cell_params)
        seed = None
        if has_seed_param and "seed" not in params:
            seed = int(base_seed)
            params["seed"] = seed
        elif has_seed_param:
            seed = int(params["seed"])
        cells.append(SweepCell(index=index, params=params, seed=seed))

    def evaluate(cell: SweepCell) -> None:
        try:
            cell.result = spec.run(ctx, **cell.params)
        except Exception:
            cell.error = traceback.format_exc(limit=8)

    if workers == 1 or len(cells) <= 1:
        for cell in cells:
            evaluate(cell)
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(evaluate, cells))

    return SweepResult(
        spec_name=spec.name,
        grid={k: list(v) for k, v in grid.items()},
        base_seed=base_seed,
        workers=workers,
        cells=cells,
    )
