"""Shared simulation context: config-hashed memoization of expensive artifacts.

Every experiment in the registry runs against a :class:`SimulationContext`.
The context memoizes the artifacts that are expensive to build and shared
between experiments and sweep cells — generated point/lookup traces, per-level
corner-index streams, locality statistics, cache-filtered request streams,
rendered datasets, trained fields, GPU profiles and serviced DRAM batches —
keyed by a canonical hash of the configuration objects that produced them.
Running the full experiment suite
(or a parameter sweep) through one context therefore computes each artifact
once, where the legacy ``run_*`` entry points rebuild them from scratch on
every call.

The cache is thread-safe (sweeps run cells on a thread pool): the first
caller of a key installs a :class:`concurrent.futures.Future` and computes;
concurrent callers of the same key block on that future instead of
recomputing.  All artifact producers are deterministic functions of their
configuration, so memoization never changes results — only wall time.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, TypeVar, cast

import numpy as np
from numpy.typing import NDArray

from ..core.hashing import HashFunction, average_row_requests_per_cube
from ..core.streaming import (
    StreamingOrder,
    LocalityReport,
    cube_ids,
    memory_requests_for_stream,
    point_order,
    points_sharing_same_cube,
    register_hit_rate,
    row_requests_for_stream,
)
from ..streams.ir import RequestStream, table_base_address
from ..dram.spec import DRAMSpec, get_dram_spec
from ..obs import get_metrics, get_tracer
from ..gpu.profiler import GPUProfiler
from ..gpu.specs import ALL_GPUS, GPUSpec
from ..nerf.encoding import HashGridConfig
from ..scenes.dataset import DatasetConfig, SyntheticNeRFDataset
from ..scenes.library import build_scene
from ..nerf.occupancy import OccupancyGrid
from ..workloads.steps import StepName
from ..workloads.traces import (
    TraceConfig,
    generate_batch_points,
    level_lookup_indices,
    lookup_addresses,
    occupancy_grid_for_trace,
    occupancy_point_mask,
)
from .store import STORE_MISS, ArtifactStore

if TYPE_CHECKING:
    from ..core.codesign import AlgorithmConfig, InstantNeRFSystem
    from ..experiments.tab04_psnr import QualityRunConfig
    from ..experiments.tab05_psnr_precision import PrecisionRunConfig
    from ..gpu.profiler import KernelProfile, SceneProfile
    from ..mem.hierarchy import CacheHierarchy, FilteredStream
    from ..scenes.primitives import SDFScene
    from ..serve.cost import ServiceCostConfig, ServiceCostModel
    from ..serve.scheduler import SchedulerConfig
    from ..serve.workload import ServeWorkloadConfig
    from ..workloads.embedding import EmbeddingStreamSource, EmbeddingTraceConfig

T = TypeVar("T")

__all__ = ["SimulationContext", "ContextStats", "config_key"]


def config_key(obj: Any) -> Any:
    """Canonical, hashable form of a configuration value.

    Dataclasses become ``(type, (field, key(value)), ...)`` tuples, enums
    their value, hash functions their registered name, numpy arrays a content
    digest; containers recurse.  Two configurations with equal parameters map
    to the same key regardless of object identity.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return (type(obj).__name__, obj.value)
    if isinstance(obj, HashFunction):
        return ("hash_fn", obj.name)
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return ("ndarray", obj.dtype.str, obj.shape, digest)
    if isinstance(obj, np.generic):
        return obj.item()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, config_key(getattr(obj, f.name))) for f in dataclasses.fields(obj)
        )
        return (type(obj).__name__, fields)
    if isinstance(obj, GPUSpec):
        return ("gpu", obj.name)
    if isinstance(obj, (list, tuple)):
        return tuple(config_key(v) for v in obj)
    if isinstance(obj, dict):
        return tuple(sorted((str(k), config_key(v)) for k, v in obj.items()))
    raise TypeError(f"cannot build a config key for {type(obj).__name__}: {obj!r}")


def _batch_summary(result: Any) -> dict[str, float]:
    """Storable summary dict of one serviced DRAM batch (TraceResult)."""
    return {
        "total_requests": int(result.total_requests),
        "total_cycles": int(result.total_cycles),
        "row_hits": int(result.row_hits),
        "row_misses": int(result.row_misses),
        "bank_conflicts": int(result.bank_conflicts),
        "row_hit_rate": float(result.row_hit_rate),
        "achieved_bandwidth_gbps": float(result.achieved_bandwidth_gbps),
    }


@dataclass
class ContextStats:
    """Cache statistics (useful to assert sharing actually happened)."""

    hits: int = 0
    misses: int = 0
    #: Misses answered by the on-disk store instead of a computation.
    store_hits: int = 0
    #: Artifacts actually computed in this process (miss minus store hit).
    computes: int = 0
    hit_keys: list[Any] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def hits_by_kind(self) -> dict[str, int]:
        """Reuse counts per artifact kind (the first element of each key)."""
        counts: dict[str, int] = {}
        for kind in self.hit_keys:
            counts[kind] = counts.get(kind, 0) + 1
        return counts


class SimulationContext:
    """Memoizing store for shared simulation artifacts, keyed by config hash.

    With ``store=`` (an :class:`~repro.pipeline.store.ArtifactStore` or a
    directory path) the context reads through the persistent on-disk store
    before computing: an artifact simulated by any earlier process — a
    previous CLI run, another sweep worker, an interrupted sweep — is
    loaded instead of recomputed, and newly computed storable artifacts are
    written back.
    """

    def __init__(self, store: ArtifactStore | str | None = None):
        self._lock = threading.Lock()
        self._cache: dict[Any, Future[Any]] = {}
        self.stats = ContextStats()
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store

    # ----------------------------------------------------------- machinery
    def memoize(self, key: Any, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it at most once.

        Thread-safe: concurrent callers of the same key block on the first
        caller's future.  A failed computation is evicted so it can be
        retried (and the error propagates to every waiter).  When a store
        is attached, a memory miss first consults the store; only a store
        miss actually runs ``compute`` (counted in ``stats.computes``), and
        the computed value is written back when it has a storable encoding.
        """
        tracer = get_tracer()
        with self._lock:
            fut = self._cache.get(key)
            if fut is not None:
                owner = False
                self.stats.hits += 1
                self.stats.hit_keys.append(key[0] if isinstance(key, tuple) else key)
            else:
                owner = True
                fut = Future()
                self._cache[key] = fut
                self.stats.misses += 1
        if not owner:
            if tracer.enabled:
                get_metrics().counter("context.memo_hits").inc()
            return cast(T, fut.result())
        if tracer.enabled:
            get_metrics().counter("context.memo_misses").inc()
        try:
            stored = self.store.get(key) if self.store is not None else STORE_MISS
            if stored is not STORE_MISS:
                value = cast(T, stored)
                with self._lock:
                    self.stats.store_hits += 1
                if tracer.enabled:
                    get_metrics().counter("context.store_hits").inc()
            else:
                with tracer.span("context.compute", "pipeline") as span:
                    if span.enabled and isinstance(key, tuple) and key:
                        span.add_args(kind=str(key[0]))
                    value = compute()
                with self._lock:
                    self.stats.computes += 1
                if tracer.enabled:
                    get_metrics().counter("context.computes").inc()
                if isinstance(value, np.ndarray):
                    # Memoized arrays are shared across callers (and match the
                    # read-only arrays the store / shared memory hand out):
                    # any in-place mutation must fail loudly on every run.
                    value.flags.writeable = False
        except BaseException as exc:
            with self._lock:
                self._cache.pop(key, None)
            fut.set_exception(exc)
            raise
        fut.set_result(value)
        if self.store is not None and stored is STORE_MISS:
            self.store.put(key, value)
        return value

    def seed_cache(self, key: Any, value: Any) -> bool:
        """Install an already-computed artifact (e.g. a shared-memory array).

        Returns ``False`` (leaving the cache untouched) when the key is
        already present.  Used by process-pool sweep workers to adopt the
        parent's large read-only arrays without recomputing or copying.
        """
        fut: Future[Any] = Future()
        fut.set_result(value)
        with self._lock:
            if key in self._cache:
                return False
            self._cache[key] = fut
        return True

    def array_artifacts(self, min_bytes: int = 0) -> list[tuple[Any, NDArray[Any]]]:
        """Completed ndarray-valued cache entries of at least ``min_bytes``.

        Snapshot in insertion order; the process sweep executor exports
        these through ``multiprocessing.shared_memory`` so workers share
        them zero-copy instead of rebuilding them per cell.
        """
        with self._lock:
            items = list(self._cache.items())
        arrays = []
        for key, fut in items:
            if fut.done() and fut.exception() is None:
                value = fut.result()
                if isinstance(value, np.ndarray) and value.nbytes >= min_bytes:
                    arrays.append((key, value))
        return arrays

    def peek(self, key: Any) -> Any:
        """The cached value for ``key`` if already computed, else ``None``.

        A successful peek counts as a cache hit: it means a derived artifact
        is being reused (e.g. row requests recovered from an index stream).
        """
        with self._lock:
            fut = self._cache.get(key)
        if fut is not None and fut.done() and fut.exception() is None:
            with self._lock:
                self.stats.hits += 1
                self.stats.hit_keys.append(key[0] if isinstance(key, tuple) else key)
            return fut.result()
        return None

    def cached_artifacts(self) -> int:
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------- scenes
    def scene(self, name: str) -> SDFScene:
        """The named procedural :class:`~repro.scenes.primitives.SDFScene`."""
        return self.memoize(("scene", name.lower()), lambda: build_scene(name))

    def dataset(self, scene_name: str, config: DatasetConfig | None = None) -> SyntheticNeRFDataset:
        """Rendered posed-image dataset for a scene (GT rendering is costly)."""
        cfg = config or DatasetConfig()
        key = ("dataset", scene_name.lower(), config_key(cfg))
        return self.memoize(key, lambda: SyntheticNeRFDataset(self.scene(scene_name), cfg))

    # ------------------------------------------------------------- traces
    def batch_points(self, trace: TraceConfig) -> NDArray[Any]:
        """The sampled training-batch points for a trace configuration.

        Points are always dense (occupancy prunes at stream emission), so
        every occupancy variant of a trace shares one dense-keyed artifact.
        """
        trace = trace.dense()
        return self.memoize(
            ("batch_points", config_key(trace)), lambda: generate_batch_points(trace)
        )

    def stream_order(self, trace: TraceConfig, order: StreamingOrder) -> NDArray[Any]:
        """Point permutation for a streaming order (random order is seeded)."""
        trace = trace.dense()
        key = ("stream_order", config_key(trace), order.value)
        return self.memoize(
            key,
            lambda: point_order(
                trace.num_rays,
                trace.points_per_ray,
                order,
                rng=np.random.default_rng(trace.seed),
            ),
        )

    # ---------------------------------------------------------- occupancy
    def occupancy_densities(self, trace: TraceConfig) -> NDArray[Any]:
        """Scene density estimate over the occupancy grid's cells (storable)."""
        if trace.scene is None:
            raise ValueError("occupancy artifacts require TraceConfig.scene to be set")
        key = (
            "occupancy_densities",
            trace.scene.lower(),
            trace.occupancy_resolution,
            trace.scene_bound,
        )
        return self.memoize(
            key, lambda: occupancy_grid_for_trace(trace).densities
        )

    def occupancy_grid(self, trace: TraceConfig) -> OccupancyGrid:
        """The occupancy grid pruning this trace, rebuilt from stored densities."""
        key = (
            "occupancy_grid",
            trace.scene.lower() if trace.scene else None,
            trace.occupancy_resolution,
            trace.occupancy_levels,
            trace.occupancy_threshold,
            trace.scene_bound,
        )
        return self.memoize(
            key, lambda: occupancy_grid_for_trace(trace, densities=self.occupancy_densities(trace))
        )

    def occupancy_mask(self, trace: TraceConfig) -> NDArray[Any]:
        """Flat keep mask of the trace's samples under occupancy pruning."""
        if not trace.occupancy:
            raise ValueError("occupancy_mask requires TraceConfig.occupancy=True")
        key = ("occupancy_mask", config_key(trace))
        return self.memoize(
            key,
            lambda: occupancy_point_mask(
                trace, points=self.batch_points(trace), grid=self.occupancy_grid(trace)
            ),
        )

    def level_indices(
        self, grid: HashGridConfig, trace: TraceConfig, hash_fn: HashFunction, level: int
    ) -> NDArray[Any]:
        """Corner table indices of the trace at one level (ray-major).

        Dense traces return the full ``(N, 8)`` stream; occupancy traces
        return the pruned ``(K, 8)`` subset, derived from (and sharing) the
        dense artifact.
        """
        if trace.occupancy:
            key = ("pruned_level_indices", config_key(grid), config_key(trace), hash_fn.name, level)
            return self.memoize(
                key,
                lambda: self.level_indices(grid, trace.dense(), hash_fn, level)[
                    self.occupancy_mask(trace)
                ],
            )
        key = self._indices_key(grid, trace, hash_fn, level)
        return self.memoize(
            key,
            lambda: level_lookup_indices(
                self.batch_points(trace).reshape(-1, 3), level, grid, hash_fn
            ),
        )

    def _indices_key(
        self, grid: HashGridConfig, trace: TraceConfig, hash_fn: HashFunction, level: int
    ) -> tuple[Any, ...]:
        return ("level_indices", config_key(grid), config_key(trace.dense()), hash_fn.name, level)

    def level_addresses(
        self,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        level: int,
        base_address: int = 0,
    ) -> NDArray[Any]:
        """Flattened byte-address trace of one level's lookups."""
        key = (
            "level_addresses",
            config_key(grid),
            config_key(trace),
            hash_fn.name,
            level,
            base_address,
        )
        return self.memoize(
            key,
            lambda: lookup_addresses(
                self.level_indices(grid, trace, hash_fn, level),
                level,
                grid,
                trace.entry_bytes,
                base_address,
            ),
        )

    # ------------------------------------------------------- request streams
    def _nerf_stream(
        self,
        grid: HashGridConfig,
        trace: TraceConfig,
        level: int,
        indices: NDArray[Any],
        points: NDArray[Any],
    ) -> RequestStream:
        """Wrap one level's corner indices + points into the typed IR."""
        return RequestStream(
            indices=indices,
            entry_bytes=trace.entry_bytes,
            table_entries=grid.level_table_entries(level),
            base_address=table_base_address(grid, level, trace.entry_bytes),
            dtype=trace.dtype,
            group_ids=cube_ids(points, grid.resolutions[level]),
            source="pipeline.context",
            label=f"level={level}",
        )

    def request_stream(
        self,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        order: StreamingOrder,
        level: int,
    ) -> RequestStream:
        """One level's lookups as a typed :class:`repro.streams.RequestStream`.

        The memoized front-end/memory-system boundary artifact: corner
        indices in stream order, grouped by cube id, with the table layout
        facts (entry width, level base address) attached.  Derived from (and
        sharing) the cached corner-index streams; occupancy traces are exact
        IR subsets of their dense twin.  Every downstream consumer —
        row-request accounting, the cache hierarchy, the DRAM timing model —
        takes this object instead of a bare ndarray.
        """
        key = (
            "request_stream",
            config_key(grid),
            config_key(trace),
            hash_fn.name,
            order.value,
            level,
        )

        def compute() -> RequestStream:
            indices = self.level_indices(grid, trace.dense(), hash_fn, level)
            perm = self.stream_order(trace, order)
            points = self.batch_points(trace).reshape(-1, 3)[perm]
            stream = self._nerf_stream(grid, trace, level, indices[perm], points)
            if trace.occupancy:
                stream = stream.subset(self.occupancy_mask(trace)[perm])
            return stream

        return self.memoize(key, compute)

    def stream_row_requests(self, stream: RequestStream, row_bytes: int = 1024) -> int:
        """Memoized :func:`repro.core.streaming.row_requests_for_stream`."""
        key = ("stream_row_requests", config_key(stream), row_bytes)
        return self.memoize(key, lambda: row_requests_for_stream(stream, row_bytes))

    def stream_filtered(self, hierarchy: CacheHierarchy, stream: RequestStream) -> FilteredStream:
        """Any request stream pushed through an on-chip hierarchy (memoized)."""
        key = (
            "stream_filtered",
            config_key(hierarchy.cache),
            config_key(hierarchy.prefetcher),
            config_key(hierarchy.scratchpad),
            config_key(stream),
        )
        return self.memoize(key, lambda: hierarchy.filter_stream(stream))

    def stream_serviced(
        self, dram: str, stream: RequestStream, size_bytes: int | None = None
    ) -> dict[str, float]:
        """Any request stream serviced by a named DRAM spec (memoized summary)."""
        key = ("stream_serviced", dram, config_key(stream), size_bytes)

        def compute() -> dict[str, float]:
            from ..dram.system import DRAMSystem

            system = DRAMSystem(self.dram_spec(dram))
            return _batch_summary(system.service_batch(stream, size_bytes=size_bytes))

        return self.memoize(key, compute)

    # ---------------------------------------------------------- embeddings
    def embedding_source(self, config: EmbeddingTraceConfig) -> EmbeddingStreamSource:
        """The embedding-table front-end for a trace configuration (memoized)."""
        from ..workloads.embedding import EmbeddingStreamSource

        key = ("embedding_source", config_key(config))
        return self.memoize(key, lambda: EmbeddingStreamSource(config))

    def embedding_stream(
        self, config: EmbeddingTraceConfig, table: int, order: str = "arrival"
    ) -> RequestStream:
        """One embedding table's lookup stream as a typed request stream."""
        key = ("embedding_stream", config_key(config), table, order)
        return self.memoize(
            key, lambda: self.embedding_source(config).stream(table, order=order)
        )

    # ------------------------------------------------------------- serving
    def serving_cost_model(self, cost: "ServiceCostConfig") -> "ServiceCostModel":
        """The (stateless) batch cost model for a serving configuration.

        Memory-only: the model embeds live hierarchy/DRAM engines, so it is
        shared within a process but never persisted.
        """
        from ..serve.cost import ServiceCostModel

        key = ("serving_cost_model", config_key(cost))
        return self.memoize(key, lambda: ServiceCostModel(cost))

    def serving_summary(
        self,
        workload: "ServeWorkloadConfig",
        scheduler: "SchedulerConfig",
        cost: "ServiceCostConfig",
    ) -> dict[str, float]:
        """Aggregate metrics of one simulated serving run (memoized, storable).

        The artifact of the ``fig14_serving_latency`` experiment: a plain
        float dict (p50/p99 latency, goodput, shed rate, queue depth, ...),
        keyed by the full workload + scheduler + cost configuration so sweep
        cells and resumed runs replay byte-identically.
        """
        from ..serve.simulator import simulate_serving

        key = (
            "serving_summary",
            config_key(workload),
            config_key(scheduler),
            config_key(cost),
        )
        return self.memoize(
            key,
            lambda: simulate_serving(
                workload, scheduler, model=self.serving_cost_model(cost)
            ).summary(),
        )

    # ----------------------------------------------------------- locality
    def cube_sharing(self, trace: TraceConfig, resolution: int, order: StreamingOrder) -> float:
        """Average same-cube run length of the trace at one resolution."""
        key = ("cube_sharing", config_key(trace), resolution, order.value)
        return self.memoize(
            key,
            lambda: points_sharing_same_cube(
                self.batch_points(trace).reshape(-1, 3),
                resolution,
                self.stream_order(trace, order),
            ),
        )

    def register_hits(self, trace: TraceConfig, resolution: int, order: StreamingOrder) -> float:
        """Register hit rate of the trace at one resolution."""
        key = ("register_hits", config_key(trace), resolution, order.value)
        return self.memoize(
            key,
            lambda: register_hit_rate(
                self.batch_points(trace).reshape(-1, 3),
                resolution,
                self.stream_order(trace, order),
            ),
        )

    def row_requests(
        self,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        order: StreamingOrder,
        level: int,
        row_bytes: int = 1024,
    ) -> int:
        """DRAM row requests to stream one level's lookups.

        Reuses the corner-index stream cached by :meth:`level_indices` when a
        previous experiment (e.g. the bank-conflict analysis) already built
        it; otherwise falls back to the direct run-length accounting.  Both
        paths return identical counts.
        """
        key = (
            "row_requests",
            config_key(grid),
            config_key(trace),
            hash_fn.name,
            order.value,
            level,
            row_bytes,
        )

        def compute() -> int:
            points = self.batch_points(trace)
            perm = self.stream_order(trace, order)
            if trace.occupancy:
                # The pruned stream in stream order: permute, then drop the
                # samples the occupancy grid skips.  As in the dense path, a
                # cached dense corner-index stream spares the re-hashing.
                keep = self.occupancy_mask(trace)[perm]
                pruned = points.reshape(-1, 3)[perm][keep]
                cached = self.peek(self._indices_key(grid, trace, hash_fn, level))
                if cached is not None:
                    stream = self._nerf_stream(grid, trace, level, cached[perm][keep], pruned)
                    return row_requests_for_stream(stream, row_bytes)
                return memory_requests_for_stream(
                    pruned, level, grid, hash_fn, None, row_bytes, trace.entry_bytes
                )
            cached = self.peek(self._indices_key(grid, trace, hash_fn, level))
            if cached is not None:
                ordered = points.reshape(-1, 3)[perm]
                stream = self._nerf_stream(grid, trace, level, cached[perm], ordered)
                return row_requests_for_stream(stream, row_bytes)
            return memory_requests_for_stream(
                points, level, grid, hash_fn, perm, row_bytes, trace.entry_bytes
            )

        return self.memoize(key, compute)

    def locality_reports(
        self,
        grid: HashGridConfig,
        trace: TraceConfig,
        baseline_hash: HashFunction,
        optimized_hash: HashFunction,
        row_bytes: int = 1024,
    ) -> list[LocalityReport]:
        """Fig. 7 per-level locality comparison, assembled from cached parts."""
        key = (
            "locality_reports",
            config_key(grid),
            config_key(trace),
            baseline_hash.name,
            optimized_hash.name,
            row_bytes,
        )

        def compute() -> list[LocalityReport]:
            reports = []
            for level in range(grid.num_levels):
                res = grid.resolutions[level]
                reports.append(
                    LocalityReport(
                        level=level,
                        baseline_requests=self.row_requests(
                            grid, trace, baseline_hash, StreamingOrder.RANDOM, level, row_bytes
                        ),
                        optimized_requests=self.row_requests(
                            grid, trace, optimized_hash, StreamingOrder.RAY_FIRST, level, row_bytes
                        ),
                        sharing_run_length=self.cube_sharing(trace, res, StreamingOrder.RAY_FIRST),
                        register_hit_rate=self.register_hits(trace, res, StreamingOrder.RAY_FIRST),
                    )
                )
            return reports

        return self.memoize(key, compute)

    def requests_per_cube(
        self, grid: HashGridConfig, trace: TraceConfig, hash_fn: HashFunction, level: int
    ) -> float:
        """Average DRAM row requests per cube at one (usually finest) level."""
        key = ("requests_per_cube", config_key(grid), config_key(trace), hash_fn.name, level)

        def compute() -> float:
            flat = self.batch_points(trace).reshape(-1, 3)
            resolution = grid.resolutions[level]
            base = np.clip((flat * resolution).astype(np.int64), 0, resolution - 1)
            return float(
                average_row_requests_per_cube(
                    hash_fn,
                    base,
                    grid.level_table_entries(level),
                    entry_bytes=trace.entry_bytes,
                )
            )

        return self.memoize(key, compute)

    # ------------------------------------------------------------ codesign
    def system(
        self,
        algorithm: AlgorithmConfig | None = None,
        grid: HashGridConfig | None = None,
        trace: TraceConfig | None = None,
    ) -> InstantNeRFSystem:
        """A co-designed :class:`~repro.core.codesign.InstantNeRFSystem`.

        The system measures its algorithm locality through this context, so
        traces and per-level sharing statistics are shared with the locality
        experiments instead of being rebuilt.
        """
        from ..core.codesign import AlgorithmConfig, InstantNeRFSystem

        algorithm = algorithm or AlgorithmConfig.instant_nerf()
        key = (
            "system",
            algorithm.name,
            config_key(algorithm.hash_fn),
            algorithm.streaming_order.value,
            config_key(grid),
            config_key(trace),
        )
        return self.memoize(
            key,
            lambda: InstantNeRFSystem(algorithm, grid, trace_config=trace, context=self),
        )

    # ------------------------------------------------------------ training
    def trained_psnr(self, method: str, scene_name: str, quality_config: QualityRunConfig) -> float:
        """Held-out test PSNR of one (method, scene) training cell.

        Keyed by the dataset and trainer configurations — not by the cell
        list of the calling experiment — so sweep cells and suite runs share
        trained fields whenever their per-cell configuration matches.
        """
        from ..experiments.tab04_psnr import train_method_on_scene

        key = (
            "trained_psnr",
            method,
            scene_name.lower(),
            config_key(quality_config.dataset_config()),
            config_key(quality_config.trainer_config()),
        )
        return self.memoize(
            key, lambda: train_method_on_scene(method, scene_name, quality_config, context=self)
        )

    def precision_psnr(
        self, scene_name: str, dtype: str, run_config: "PrecisionRunConfig"
    ) -> float:
        """Held-out test PSNR of one (scene, precision) training cell.

        ``fp64``/``fp32``/``fp16`` train the field end to end at that table
        precision; ``int8`` trains at fp32 and post-training-quantizes the
        hash tables before evaluation (int8 tables are inference-only).
        Keyed by the derived dataset/trainer configs plus the precision, so
        sweep cells at different dtypes never share a payload.
        """
        from ..experiments.tab05_psnr_precision import train_precision_on_scene

        key = (
            "precision_psnr",
            scene_name.lower(),
            dtype,
            config_key(run_config.dataset_config()),
            config_key(run_config.trainer_config(dtype)),
            config_key(run_config.grid_config(dtype)),
        )
        return self.memoize(
            key, lambda: train_precision_on_scene(scene_name, dtype, run_config, context=self)
        )

    # ----------------------------------------------------------- profiling
    def gpu(self, name: str) -> GPUSpec:
        """Resolve a GPU by name (e.g. ``XNX``, ``TX2``, ``2080Ti``)."""
        try:
            return ALL_GPUS[name]
        except KeyError:
            known = ", ".join(ALL_GPUS)
            raise KeyError(f"unknown GPU {name!r}; available: {known}") from None

    def scene_profile(self, gpu: GPUSpec) -> SceneProfile:
        """Modelled per-scene training profile of iNGP on one GPU."""
        return self.memoize(
            ("scene_profile", gpu.name), lambda: GPUProfiler.for_gpu(gpu).profile_scene()
        )

    def step_profile(self, gpu: GPUSpec, step: StepName) -> KernelProfile:
        """Modelled kernel profile of one training step on one GPU.

        Pulls the kernel out of an already-cached scene profile when one
        exists (the scene profile embeds every step's profile).
        """

        def compute() -> KernelProfile:
            scene = self.peek(("scene_profile", gpu.name))
            if scene is not None:
                return scene.kernels[step.value]
            return GPUProfiler.for_gpu(gpu).profile_step(step)

        return self.memoize(("step_profile", gpu.name, step.value), compute)

    # ------------------------------------------------------- memory hierarchy
    def filtered_stream(
        self,
        hierarchy: CacheHierarchy,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        order: StreamingOrder,
        level: int,
    ) -> FilteredStream:
        """One level's lookup stream pushed through an on-chip hierarchy.

        ``hierarchy`` is a :class:`repro.mem.hierarchy.CacheHierarchy`; the
        result is the :class:`repro.mem.hierarchy.FilteredStream` whose
        ``dram_stream()`` is what the DRAM system still has to service.
        Memoized by the full hierarchy + stream configuration, and derived
        from the typed request stream other experiments already cached.
        """
        key = (
            "filtered_stream",
            config_key(hierarchy.cache),
            config_key(hierarchy.prefetcher),
            config_key(hierarchy.scratchpad),
            config_key(grid),
            config_key(trace),
            hash_fn.name,
            order.value,
            level,
        )

        def compute() -> FilteredStream:
            return hierarchy.filter_stream(self.request_stream(grid, trace, hash_fn, order, level))

        return self.memoize(key, compute)

    def hierarchy_serviced_batch(
        self,
        dram: str,
        hierarchy: CacheHierarchy,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        order: StreamingOrder,
        level: int,
        stage: str = "misses",
    ) -> dict[str, float]:
        """DRAM timing of one level's stream after the on-chip hierarchy.

        ``stage="misses"`` services only the lines the hierarchy could not
        filter (demand misses + prefetch fills); ``stage="demand"`` services
        the L0-surviving line requests — the uncached baseline the cache's
        DRAM-traffic reduction is reported against.  The demand stage is
        keyed by the L0/line geometry only, so every cache size of a sweep
        shares one baseline simulation.
        """
        if stage not in ("misses", "demand"):
            raise ValueError(f"stage must be 'misses' or 'demand', got {stage!r}")
        stream_key = (config_key(grid), config_key(trace), hash_fn.name, order.value, level)
        if stage == "demand":
            key = (
                "hierarchy_serviced_batch",
                dram,
                "demand",
                config_key(hierarchy.scratchpad),
                hierarchy.cache.line_bytes,
            ) + stream_key
        else:
            key = (
                "hierarchy_serviced_batch",
                dram,
                "misses",
                config_key(hierarchy.cache),
                config_key(hierarchy.prefetcher),
                config_key(hierarchy.scratchpad),
            ) + stream_key

        def compute() -> dict[str, float]:
            from ..dram.system import DRAMSystem

            filtered = self.filtered_stream(hierarchy, grid, trace, hash_fn, order, level)
            lines = filtered.dram_stream() if stage == "misses" else filtered.demand_stream()
            system = DRAMSystem(self.dram_spec(dram))
            return _batch_summary(
                system.service_batch(lines, size_bytes=hierarchy.cache.line_bytes)
            )

        return self.memoize(key, compute)

    # ---------------------------------------------------------------- DRAM
    def dram_spec(self, name: str) -> DRAMSpec:
        """Resolve a named DRAM specification (aliases accepted)."""
        return get_dram_spec(name)

    def serviced_batch(
        self,
        dram: str,
        grid: HashGridConfig,
        trace: TraceConfig,
        hash_fn: HashFunction,
        level: int,
    ) -> dict[str, float]:
        """Service one level's address trace through the DRAM timing model.

        Returns a summary of the serviced batch (cycles, row hit/miss/conflict
        counts) keyed by the full configuration, so repeated evaluations of
        the same stream — across report runs or sweep cells — replay the
        cached result instead of re-simulating.
        """
        key = ("serviced_batch", dram, config_key(grid), config_key(trace), hash_fn.name, level)

        def compute() -> dict[str, float]:
            from ..dram.system import DRAMSystem

            system = DRAMSystem(self.dram_spec(dram))
            stream = self.request_stream(grid, trace, hash_fn, StreamingOrder.RAY_FIRST, level)
            # Historic burst size of the address-trace path, not entry_bytes.
            return _batch_summary(system.service_batch(stream, size_bytes=32))

        return self.memoize(key, compute)
