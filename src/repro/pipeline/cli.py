"""``python -m repro`` — the command-line front end of the experiment pipeline.

Subcommands
-----------
``list``
    Show every registered experiment with its paper reference and parameters.
``run``
    Run one experiment, e.g. ``python -m repro run fig07 --scene lego --dram
    ddr4``; prints the reproduced table and optionally writes JSON/CSV
    artifacts.
``sweep``
    Evaluate a parameter grid in parallel, e.g. ``python -m repro sweep fig07
    --grid scene=lego,chair --grid hash=morton,original --workers 4``.
``report``
    Run the full suite against one shared :class:`SimulationContext` and
    write all artifacts plus a summary index.
``bench``
    Benchmark-suite orchestration: ``bench run`` (``--smoke`` maps to
    ``PERF_SMOKE=1``), ``bench compare`` (the CI regression gate) and
    ``bench list`` — see :mod:`repro.pipeline.bench`.
``lint``
    Determinism-invariant static analysis (``repro-lint``): the RPR rule
    suite over ``src/`` + ``benchmarks/`` — see :mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from .. import obs
from ..analysis.cli import add_lint_arguments, run_lint
from ..obs.clock import wall_time
from ..experiments.runner import (
    ExperimentResult,
    atomic_write_text,
    write_csv_artifact,
    write_json_artifact,
)
from .bench import BASELINE_DIR, SUITES, compare_suites, run_suites
from .context import SimulationContext, config_key
from .registry import all_experiments, get_experiment, run_suite
from .store import STORE_MISS, ArtifactStore
from .sweep import sweep

__all__ = ["main", "build_parser"]


def _add_param_flags(parser: argparse.ArgumentParser, spec_name: str | None) -> None:
    """Dynamic per-experiment flags (``--scene``, ``--dram``, ...)."""
    if spec_name is None:
        return
    try:
        spec = get_experiment(spec_name)
    except KeyError:
        return  # the command handler reports the unknown name properly

    for param in spec.params:
        flag = "--" + param.name.replace("_", "-")
        help_text = param.help or f"{param.kind.__name__} (default: {param.default!r})"
        if param.choices is not None:
            help_text += f" [choices: {', '.join(map(str, param.choices))}]"
        parser.add_argument(flag, dest=f"param_{param.name}", default=None, help=help_text)


def _parse_assignments(raw_entries: list[str] | None) -> dict[str, str]:
    """Parse repeated ``--set KEY=VALUE`` flags."""
    assignments: dict[str, str] = {}
    for entry in raw_entries or []:
        if "=" not in entry:
            raise SystemExit(f"--set expects key=value, got {entry!r}")
        key, value = entry.split("=", 1)
        assignments[key.strip()] = value
    return assignments


def _collect_params(spec_name: str, namespace: argparse.Namespace) -> dict[str, Any]:
    spec = get_experiment(spec_name)
    overrides: dict[str, Any] = {}
    for param in spec.params:
        raw = getattr(namespace, f"param_{param.name}", None)
        if raw is not None:
            overrides[param.name] = raw
    overrides.update(_parse_assignments(getattr(namespace, "set", None)))
    return overrides


def _write_artifacts(
    result: ExperimentResult,
    name: str,
    out: str | None,
    formats: list[str],
    overwrite: bool = False,
) -> list[Path]:
    if out is None:
        return []
    out_dir = Path(out)
    written = []
    if "json" in formats:
        written.append(write_json_artifact(result, out_dir / f"{name}.json", overwrite=overwrite))
    if "csv" in formats:
        written.append(write_csv_artifact(result, out_dir / f"{name}.csv", overwrite=overwrite))
    if "text" in formats:
        written.append(
            atomic_write_text(out_dir / f"{name}.txt", result.to_text() + "\n", overwrite=overwrite)
        )
    return written


def _add_store_flags(parser: argparse.ArgumentParser, with_resume: bool = True) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent artifact-store directory (simulation artifacts and "
        "results are read through it and written back)",
    )
    if with_resume:
        parser.add_argument(
            "--resume",
            action="store_true",
            help="reuse results already present in --store instead of recomputing",
        )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite differing existing artifacts in --out",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a dual-clock trace and write Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing); artifacts stay byte-identical",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="record pipeline metrics and print a summary table at the end",
    )


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable tracing/metrics when the command asked for them."""
    if getattr(args, "trace", None) is None and not getattr(args, "metrics", False):
        return False
    obs.enable()
    return True


def _obs_end(args: argparse.Namespace, quiet: bool = False) -> None:
    """Export the trace / print the metrics table, then reset obs state."""
    if not obs.is_enabled():
        return
    trace = getattr(args, "trace", None)
    if trace is not None:
        path = obs.export_chrome_trace(trace)
        if not quiet:
            print(f"wrote trace {path}")
    if getattr(args, "metrics", False) and not quiet:
        print(obs.get_metrics().render_table())
    obs.disable()


def build_parser(run_spec: str | None = None) -> argparse.ArgumentParser:
    """The argument parser.

    ``run_spec`` names the experiment whose typed flags the ``run``
    subcommand should expose; :func:`main` discovers it with a first
    tolerant parsing pass, then re-parses strictly against the full parser,
    so flag order relative to the experiment name does not matter.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Config-driven reproduction pipeline for the Instant-NeRF NMP paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.add_argument("--json", action="store_true", help="machine-readable listing")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="registered experiment name (see `repro list`)")
    p_run.add_argument("--out", default=None, help="artifact output directory")
    p_run.add_argument(
        "--formats", default="json,csv", help="comma list of artifact formats (json,csv,text)"
    )
    p_run.add_argument(
        "--format",
        dest="formats",
        choices=("json", "csv", "text"),
        default=argparse.SUPPRESS,
        help="write a single artifact format (alias of --formats)",
    )
    p_run.add_argument("--quiet", action="store_true", help="suppress the table printout")
    p_run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override any experiment parameter (repeatable)",
    )
    _add_store_flags(p_run)
    _add_obs_flags(p_run)
    _add_param_flags(p_run, run_spec)

    p_sweep = sub.add_parser("sweep", help="sweep an experiment over a parameter grid")
    p_sweep.add_argument("experiment", help="registered experiment name")
    p_sweep.add_argument(
        "--grid",
        action="append",
        required=True,
        metavar="KEY=V1,V2,...",
        help="one swept parameter with its values (repeatable)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="pool width for thread/process executors"
    )
    p_sweep.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="cell executor: auto (serial for 1 worker, threads otherwise), "
        "serial, thread, or process (GIL-free, shared-memory artifact export)",
    )
    p_sweep.add_argument("--base-seed", type=int, default=0, help="seed folded into every cell")
    p_sweep.add_argument("--out", default=None, help="artifact output directory")
    p_sweep.add_argument("--quiet", action="store_true", help="suppress per-cell printouts")
    p_sweep.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="fixed override applied to every cell (repeatable)",
    )
    _add_store_flags(p_sweep)
    _add_obs_flags(p_sweep)

    p_report = sub.add_parser("report", help="run the full suite with a shared context")
    p_report.add_argument(
        "--experiments",
        default=None,
        help="comma list of experiment names (default: all registered)",
    )
    p_report.add_argument("--out", default=None, help="artifact output directory")
    p_report.add_argument(
        "--formats", default="json,csv", help="comma list of artifact formats (json,csv,text)"
    )
    p_report.add_argument(
        "--format",
        dest="formats",
        choices=("json", "csv", "text"),
        default=argparse.SUPPRESS,
        help="write a single artifact format (alias of --formats)",
    )
    p_report.add_argument("--quiet", action="store_true", help="suppress the table printouts")
    p_report.add_argument(
        "--fast",
        action="store_true",
        help="shrink the training-based experiments to smoke scale",
    )
    _add_store_flags(p_report, with_resume=False)
    _add_obs_flags(p_report)

    p_bench = sub.add_parser("bench", help="run or gate the benchmark suites")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    suite_names = ", ".join(s.name for s in SUITES)

    b_run = bench_sub.add_parser("run", help="run benchmark suites (pytest)")
    b_run.add_argument("suites", nargs="*", help=f"suites to run (default: all of {suite_names})")
    b_run.add_argument(
        "--smoke",
        action="store_true",
        help="set PERF_SMOKE=1: shrink inputs and relax wall-clock floors",
    )
    b_run.add_argument("--root", default=".", help="repository root (default: cwd)")
    _add_obs_flags(b_run)

    b_cmp = bench_sub.add_parser("compare", help="gate fresh BENCH_*.json against baselines")
    b_cmp.add_argument("suites", nargs="*", help=f"suites to gate (default: all of {suite_names})")
    b_cmp.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional drop of any gated metric (default: 0.25)",
    )
    b_cmp.add_argument(
        "--cap",
        type=float,
        default=50.0,
        help="clamp metrics to this value before comparing (default: 50)",
    )
    b_cmp.add_argument(
        "--baseline-dir",
        default=None,
        help=f"baseline directory (default: {BASELINE_DIR}/, stashed by `bench run`)",
    )
    b_cmp.add_argument("--root", default=".", help="repository root (default: cwd)")
    b_cmp.add_argument("--json", action="store_true", help="machine-readable report")

    b_list = bench_sub.add_parser("list", help="list benchmark suites")
    b_list.add_argument("--root", default=".", help="repository root (default: cwd)")

    p_lint = sub.add_parser("lint", help="determinism-invariant static analysis")
    add_lint_arguments(p_lint)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    # Sorted registry order (not insertion order): the listing is diffed by
    # the CI smoke job, so it must be stable across refactors that merely
    # reorder experiment-module imports.
    specs = sorted(all_experiments(), key=lambda spec: spec.name)
    if args.json:
        payload = [
            {
                "name": spec.name,
                "paper_ref": spec.paper_ref,
                "title": spec.title,
                "params": {p.name: p.default for p in spec.params},
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(spec.name) for spec in specs)
    ref_width = max(len(spec.paper_ref) for spec in specs)
    for spec in specs:
        print(f"{spec.name.ljust(width)}  {spec.paper_ref.ljust(ref_width)}  {spec.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    overrides = _collect_params(spec.name, args)
    if args.resume and args.store is None:
        raise SystemExit("--resume requires --store")
    store = ArtifactStore(args.store) if args.store else None
    context = SimulationContext(store=store)
    # The run-level store key is the fully bound parameter assignment, so a
    # resumed `run` only matches the identical effective configuration.
    run_key = ("run_result", spec.name, config_key(spec.bind(overrides)))
    _obs_begin(args)
    started = wall_time()
    result = None
    resumed = False
    if store is not None and args.resume:
        hit = store.get(run_key)
        if isinstance(hit, ExperimentResult):
            result, resumed = hit, True
    if result is None:
        result = spec.run(context, **overrides)
        if store is not None:
            store.put(run_key, result)
    elapsed = wall_time() - started
    if not args.quiet:
        print(result.to_text())
        source = "loaded from store" if resumed else "finished"
        print(f"[{spec.name} {source} in {elapsed:.2f} s]")
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    for path in _write_artifacts(result, spec.name, args.out, formats, overwrite=args.force):
        if not args.quiet:
            print(f"wrote {path}")
    _obs_end(args, args.quiet)
    return 0


def _parse_grid(raw_entries: list[str]) -> dict[str, list[str]]:
    grid: dict[str, list[str]] = {}
    for entry in raw_entries:
        if "=" not in entry:
            raise SystemExit(f"--grid expects key=v1,v2,..., got {entry!r}")
        key, values = entry.split("=", 1)
        grid[key.strip()] = [v.strip() for v in values.split(",") if v.strip()]
        if not grid[key.strip()]:
            raise SystemExit(f"--grid {entry!r} lists no values")
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    grid = _parse_grid(args.grid)
    extra = _parse_assignments(args.set)
    if args.resume and args.store is None:
        raise SystemExit("--resume requires --store")
    store = ArtifactStore(args.store) if args.store else None
    _obs_begin(args)
    started = wall_time()
    result = sweep(
        spec,
        grid,
        workers=args.workers,
        base_seed=args.base_seed,
        extra_params=extra or None,
        executor=args.executor,
        store=store,
        resume=args.resume,
    )
    elapsed = wall_time() - started
    if not args.quiet:
        for cell in result.cells:
            label = ", ".join(f"{k}={v}" for k, v in cell.params.items())
            if cell.error is not None:
                print(f"cell {cell.index} [{label}] FAILED:\n{cell.error}")
            else:
                print(f"-- cell {cell.index} [{label}] --")
                print(cell.result.to_text())
        print(
            f"[{spec.name} sweep: {len(result.cells)} cells, {len(result.failed)} failed, "
            f"{len(result.resumed)} resumed, {result.executor} executor, "
            f"{args.workers} workers, {elapsed:.2f} s]"
        )
    if args.out is not None:
        index_path = result.write(args.out, overwrite=args.force)
        if not args.quiet:
            print(f"wrote {index_path}")
    _obs_end(args, args.quiet)
    return 1 if result.failed else 0


#: Smoke-scale overrides used by ``report --fast`` (and CI) for the one
#: experiment that runs real training.
FAST_OVERRIDES: dict[str, dict[str, Any]] = {
    "tab04": {
        "scenes": "lego",
        "methods": "ingp,instant-nerf",
        "image_size": 24,
        "num_train_views": 4,
        "iterations": 40,
        "rays_per_batch": 96,
        "samples_per_ray": 24,
    },
}


def _cmd_report(args: argparse.Namespace) -> int:
    names = (
        [n.strip() for n in args.experiments.split(",") if n.strip()]
        if args.experiments
        else None
    )
    overrides = FAST_OVERRIDES if args.fast else {}
    store = ArtifactStore(args.store) if args.store else None
    context = SimulationContext(store=store)
    _obs_begin(args)
    started = wall_time()
    results = run_suite(names, context=context, overrides=overrides)
    elapsed = wall_time() - started
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    for name, result in results.items():
        if not args.quiet:
            print(result.to_text())
            print()
        _write_artifacts(result, name, args.out, formats, overwrite=args.force)
    summary = {
        "experiments": list(results),
        "elapsed_seconds": elapsed,
        "context": {
            "cached_artifacts": context.cached_artifacts(),
            "cache_hits": context.stats.hits,
            "cache_misses": context.stats.misses,
            "store_hits": context.stats.store_hits,
        },
    }
    if args.out is not None:
        # The summary embeds wall time, so it legitimately differs between
        # otherwise identical runs — always replaced, still atomically.
        atomic_write_text(
            Path(args.out) / "summary.json", json.dumps(summary, indent=2) + "\n", overwrite=True
        )
    if not args.quiet:
        print(
            f"[suite: {len(results)} experiments in {elapsed:.2f} s; "
            f"context reused {context.stats.hits} of {context.stats.total} artifact requests]"
        )
    _obs_end(args, args.quiet)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve()
    if args.bench_command == "list":
        for suite in SUITES:
            bench_path = root / suite.bench_file
            entries = "-"
            if bench_path.exists():
                try:
                    payload = json.loads(bench_path.read_text())
                except ValueError:
                    entries = "corrupt"
                else:
                    entries = str(len(payload)) if isinstance(payload, list) else "snapshot"
            print(
                f"{suite.name:10s}  {suite.test_file:40s}  {suite.bench_file} ({entries} entries)"
            )
        return 0
    if args.bench_command == "run":
        _obs_begin(args)
        exit_code = run_suites(root, args.suites or None, smoke=args.smoke)
        _obs_end(args)
        return exit_code
    if args.bench_command == "compare":
        reports, exit_code = compare_suites(
            root,
            args.suites or None,
            baseline_dir=args.baseline_dir,
            max_regression=args.max_regression,
            cap=args.cap,
        )
        if args.json:
            payload = [
                {
                    "suite": r.suite,
                    "notes": r.notes,
                    "metrics": [
                        {
                            "section": m.section,
                            "metric": m.metric,
                            "baseline": m.baseline,
                            "current": m.current,
                            "regressed": m.regressed,
                        }
                        for m in r.metrics
                    ],
                }
                for r in reports
            ]
            print(json.dumps(payload, indent=2))
        else:
            from .bench import _mtime_stamp

            stash = root / (args.baseline_dir or BASELINE_DIR)
            if stash.exists():
                print(f"baselines: {stash} (stashed {_mtime_stamp(stash)})")
            else:
                print("baselines: no stash; trajectory history / committed entries")
            for report in reports:
                regressions = report.regressions
                status = f"{len(regressions)} regression(s)" if regressions else "ok"
                print(f"== {report.suite}: {len(report.metrics)} gated metric(s), {status} ==")
                for note in report.notes:
                    print(f"  note: {note}")
                for m in report.metrics:
                    marker = "REGRESSED" if m.regressed else "ok"
                    print(
                        f"  {m.section}.{m.metric}: baseline {m.baseline:.3f} -> "
                        f"current {m.current:.3f} ({m.ratio:.2f}x) {marker}"
                    )
            verdict = "FAILED" if exit_code else "passed"
            print(f"[bench compare {verdict}: max regression {args.max_regression:.0%}]")
        return exit_code
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # First pass tolerates the (not yet registered) per-experiment flags and
    # just discovers the subcommand + experiment name; the strict second
    # pass then knows which typed flags to accept, wherever they appear.
    args, unknown = build_parser().parse_known_args(argv)
    run_spec = args.experiment if args.command == "run" else None
    if run_spec is not None or unknown:
        parser = build_parser(run_spec)
        args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "lint":
            return run_lint(args)
    except (KeyError, ValueError, FileExistsError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
