"""Benchmark-suite orchestration and regression gating.

``python -m repro bench`` is the single entry point CI and local users share
for the repository's performance/determinism benchmark suites:

``bench list``
    Show every suite with its pytest file, trajectory JSON and entry count.
``bench run``
    Run one or more suites (``--smoke`` maps to ``PERF_SMOKE=1``); before
    the first run the committed ``BENCH_*.json`` files are stashed into
    ``.bench-baseline/`` so a later ``compare`` still sees the pre-run state
    even for suites that overwrite their JSON.
``bench compare``
    Compare the fresh benchmark JSON against the stashed (or committed)
    baselines and fail on regressions beyond ``--max-regression``.

Two trajectory formats exist in the repo and both are understood: the
*trajectory* format (a JSON list of ``{timestamp, smoke, results: {name:
{metric: value}}}`` entries, appended per run) and the *snapshot* format (a
JSON object of ``{section: {metric: value, smoke: bool}}``, overwritten per
run).  Only higher-is-better metrics are gated — ``speedup``/``*_speedup``,
``*_reduction`` and ``store_hit_rate`` — and values are clamped to ``--cap``
before comparison so a 1485x warm-store rerun dropping to a (still absurdly
fast) 300x does not fail the build.  Baselines are matched on the
``smoke`` flag — smoke runs only gate against smoke baselines, full-scale
runs against full-scale baselines — and, for trajectory files, each metric's
baseline is the minimum over the last few matching entries (a noise floor;
see :func:`_baseline_sections`).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import get_tracer

__all__ = [
    "BenchSuite",
    "SUITES",
    "get_suites",
    "stash_baselines",
    "run_suites",
    "MetricComparison",
    "SuiteComparison",
    "compare_file",
    "compare_suites",
    "BASELINE_DIR",
]

#: Directory (relative to the repo root) holding pre-run baseline copies.
BASELINE_DIR = ".bench-baseline"


@dataclass(frozen=True)
class BenchSuite:
    """One benchmark suite: a pytest file and the JSON it records into."""

    name: str
    test_file: str
    bench_file: str


SUITES: tuple[BenchSuite, ...] = (
    BenchSuite("hotpaths", "benchmarks/test_perf_hotpaths.py", "BENCH_hotpaths.json"),
    BenchSuite("mem", "benchmarks/test_perf_mem.py", "BENCH_mem.json"),
    BenchSuite("pipeline", "benchmarks/test_pipeline_suite.py", "BENCH_pipeline.json"),
    BenchSuite("occupancy", "benchmarks/test_perf_occupancy.py", "BENCH_occupancy.json"),
    BenchSuite("precision", "benchmarks/test_perf_precision.py", "BENCH_precision.json"),
    BenchSuite("obs", "benchmarks/test_perf_obs.py", "BENCH_obs.json"),
    BenchSuite("serve", "benchmarks/test_perf_serve.py", "BENCH_serve.json"),
)


def get_suites(names: list[str] | None = None) -> list[BenchSuite]:
    """Resolve suite names (default: all), rejecting unknown ones."""
    if not names:
        return list(SUITES)
    by_name = {suite.name: suite for suite in SUITES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        known = ", ".join(by_name)
        raise KeyError(f"unknown benchmark suite(s) {', '.join(unknown)}; available: {known}")
    return [by_name[n] for n in names]


def _mtime_stamp(path: Path) -> str:
    """Human-readable modification time of a stash directory."""
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(path.stat().st_mtime))
    except OSError:
        return "unknown time"


def stash_baselines(root: Path, baseline_dir: str = BASELINE_DIR) -> Path | None:
    """Copy the committed BENCH files aside before a run overwrites them.

    No-op (returning ``None``) when the stash directory already exists, so
    repeated ``bench run`` invocations keep the original pre-run state.
    """
    target = root / baseline_dir
    if target.exists():
        return None
    target.mkdir(parents=True)
    for suite in SUITES:
        source = root / suite.bench_file
        if source.exists():
            shutil.copy2(source, target / suite.bench_file)
    return target


def run_suites(
    root: Path,
    names: list[str] | None = None,
    smoke: bool = False,
    pytest_args: tuple[str, ...] = (),
) -> int:
    """Run each suite's pytest file; returns the first non-zero exit code."""
    suites = get_suites(names)
    stashed = stash_baselines(root)
    if stashed is not None:
        print(f"stashed committed baselines into {stashed}")
    else:
        existing = root / BASELINE_DIR
        print(
            f"reusing existing baseline stash {existing} "
            f"(from {_mtime_stamp(existing)}; delete the directory to re-stash)"
        )
    env = dict(os.environ)
    if smoke:
        env["PERF_SMOKE"] = "1"
    else:
        env.pop("PERF_SMOKE", None)
    src = root / "src"
    if src.is_dir():
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
    exit_code = 0
    tracer = get_tracer()
    for suite in suites:
        test_path = root / suite.test_file
        print(f"== bench run {suite.name} ({test_path}){' [smoke]' if smoke else ''} ==")
        with tracer.span("bench.suite", "pipeline") as span:
            result = subprocess.run(
                [sys.executable, "-m", "pytest", "-q", str(test_path), *pytest_args],
                cwd=root,
                env=env,
            )
            if span.enabled:
                span.add_args(suite=suite.name, exit_code=result.returncode)
        if result.returncode and not exit_code:
            exit_code = result.returncode
    return exit_code


# ---------------------------------------------------------------- comparison
def _is_metric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _higher_is_better(metric: str) -> bool:
    return (
        metric == "speedup"
        or metric.endswith("_speedup")
        or metric.endswith("_reduction")
        or metric == "store_hit_rate"
    )


def _sections(payload: object) -> list[tuple[str, bool | None, dict[str, float]]]:
    """Normalise either trajectory format into ``(section, smoke, metrics)``.

    Trajectory lists yield one section per benchmark of the *last* entry
    (earlier entries are baseline history); snapshot objects yield one
    section per top-level key.
    """
    if isinstance(payload, list):
        if not payload:
            return []
        entry = payload[-1]
        smoke = entry.get("smoke")
        return [
            (name, smoke, {k: v for k, v in metrics.items() if _is_metric(v)})
            for name, metrics in entry.get("results", {}).items()
        ]
    if isinstance(payload, dict):
        out = []
        for name, metrics in payload.items():
            if not isinstance(metrics, dict):
                continue
            smoke = metrics.get("smoke")
            out.append(
                (
                    name,
                    smoke if isinstance(smoke, bool) else None,
                    {k: v for k, v in metrics.items() if k != "smoke" and _is_metric(v)},
                )
            )
        return out
    return []


#: Matching-smoke trajectory entries folded into the per-metric baseline.
BASELINE_HISTORY = 5


def _baseline_sections(payload: object, smoke: bool | None) -> dict[str, dict[str, float]]:
    """Smoke-matched baseline metrics per section.

    For trajectory lists the per-metric baseline is the *minimum* over the
    last :data:`BASELINE_HISTORY` entries whose smoke flag matches the
    current run — a noise floor, so one unusually fast historical run (timed
    speedups at smoke scale jitter by tens of percent) cannot fail a build
    that still clears every recent baseline.  Snapshot sections match on
    their embedded flag.
    """
    if isinstance(payload, list):
        matching = [e for e in reversed(payload) if e.get("smoke") == smoke]
        floor: dict[str, dict[str, float]] = {}
        for entry in matching[:BASELINE_HISTORY]:
            for name, metrics in entry.get("results", {}).items():
                section = floor.setdefault(name, {})
                for key, value in metrics.items():
                    if _is_metric(value):
                        section[key] = min(section[key], value) if key in section else value
        return floor
    return {name: metrics for name, sec_smoke, metrics in _sections(payload) if sec_smoke == smoke}


@dataclass(frozen=True)
class MetricComparison:
    """One gated metric of one benchmark section.

    ``baseline``/``current`` hold the cap-clamped values the verdict was
    computed from, so a reported ratio always matches ``regressed``.
    """

    section: str
    metric: str
    baseline: float
    current: float
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")


@dataclass
class SuiteComparison:
    """Comparison outcome of one suite."""

    suite: str
    metrics: list[MetricComparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricComparison]:
        return [m for m in self.metrics if m.regressed]


def compare_file(
    suite: BenchSuite,
    current_path: Path,
    baseline_path: Path | None,
    max_regression: float,
    cap: float,
) -> SuiteComparison:
    """Gate one suite's fresh JSON against its baseline JSON."""
    report = SuiteComparison(suite=suite.name)
    if not current_path.exists():
        report.notes.append(f"no current benchmark file {current_path.name}; run `bench run` first")
        return report
    try:
        current_payload = json.loads(current_path.read_text())
    except ValueError as exc:
        report.notes.append(f"current benchmark file {current_path.name} is corrupt: {exc}")
        return report
    current = _sections(current_payload)
    if not current:
        report.notes.append("current benchmark file records no sections")
        return report
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline_payload = json.loads(baseline_path.read_text())
        except ValueError as exc:
            report.notes.append(f"baseline file {baseline_path} is corrupt: {exc}")
            return report
    elif isinstance(current_payload, list) and len(current_payload) > 1:
        # No stash: fall back to the trajectory's own history.
        baseline_payload = current_payload[:-1]
        report.notes.append("no baseline stash; comparing against the trajectory's previous entry")
    else:
        report.notes.append("no baseline available; nothing to gate against")
        return report
    smoke = current[0][1]
    baseline = _baseline_sections(baseline_payload, smoke)
    if not baseline:
        report.notes.append(
            f"baseline has no {'smoke' if smoke else 'full-scale'} entry; nothing to gate against"
        )
        return report
    for section, _, metrics in current:
        base_metrics = baseline.get(section)
        if base_metrics is None:
            report.notes.append(f"section {section!r} is new (no baseline)")
            continue
        for metric, value in metrics.items():
            if not _higher_is_better(metric) or metric not in base_metrics:
                continue
            base = min(float(base_metrics[metric]), cap)
            cur = min(float(value), cap)
            report.metrics.append(
                MetricComparison(
                    section=section,
                    metric=metric,
                    baseline=base,
                    current=cur,
                    regressed=cur < base * (1.0 - max_regression),
                )
            )
    return report


def compare_suites(
    root: Path,
    names: list[str] | None = None,
    baseline_dir: str | None = None,
    max_regression: float = 0.25,
    cap: float = 50.0,
) -> tuple[list[SuiteComparison], int]:
    """Gate every requested suite; returns the reports and the exit code."""
    if not 0.0 <= max_regression < 1.0:
        raise ValueError(f"max_regression must be in [0, 1), got {max_regression}")
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    stash = root / (baseline_dir or BASELINE_DIR)
    reports = []
    for suite in get_suites(names):
        baseline_path = stash / suite.bench_file
        reports.append(
            compare_file(
                suite,
                root / suite.bench_file,
                baseline_path if baseline_path.exists() else None,
                max_regression,
                cap,
            )
        )
    exit_code = 1 if any(r.regressions for r in reports) else 0
    return reports, exit_code
