"""Config-driven experiment pipeline.

The pipeline layer turns the per-figure ``run_*`` harnesses into declarative,
registry-addressable experiments that share expensive simulation artifacts:

* :mod:`repro.pipeline.registry` — typed :class:`ExperimentSpec` registry
  with declarative parameter spaces and the ``@register_experiment``
  decorator.
* :mod:`repro.pipeline.context` — :class:`SimulationContext`, a config-hash
  keyed memo of generated traces, index streams, locality statistics,
  datasets, trained fields, GPU profiles and serviced DRAM batches.
* :mod:`repro.pipeline.store` — :class:`ArtifactStore`, the persistent
  content-addressed on-disk artifact store contexts read through (and
  resumable sweeps skip completed cells from).
* :mod:`repro.pipeline.sweep` — parallel parameter sweeps with deterministic
  per-cell seeding, behind interchangeable serial/thread/process executors
  (the process executor shares large arrays via
  ``multiprocessing.shared_memory``).
* :mod:`repro.pipeline.cli` — the ``python -m repro`` command line
  (``list`` / ``run`` / ``sweep`` / ``report``).
"""

from .context import ContextStats, SimulationContext, config_key
from .store import STORE_MISS, STORE_SCHEMA_VERSION, ArtifactStore, StoreStats, key_digest
from .registry import (
    ExperimentSpec,
    ParamSpec,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
    run_suite,
)
from .sweep import (
    ProcessSweepExecutor,
    SerialSweepExecutor,
    SweepCell,
    SweepExecutor,
    SweepResult,
    ThreadSweepExecutor,
    cell_seed,
    cell_store_key,
    expand_grid,
    resolve_executor,
    sweep,
)

__all__ = [
    "SimulationContext",
    "ContextStats",
    "config_key",
    "ArtifactStore",
    "StoreStats",
    "STORE_MISS",
    "STORE_SCHEMA_VERSION",
    "key_digest",
    "ExperimentSpec",
    "ParamSpec",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
    "run_experiment",
    "run_suite",
    "sweep",
    "SweepCell",
    "SweepResult",
    "SweepExecutor",
    "SerialSweepExecutor",
    "ThreadSweepExecutor",
    "ProcessSweepExecutor",
    "resolve_executor",
    "expand_grid",
    "cell_seed",
    "cell_store_key",
]
