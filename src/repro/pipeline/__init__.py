"""Config-driven experiment pipeline.

The pipeline layer turns the per-figure ``run_*`` harnesses into declarative,
registry-addressable experiments that share expensive simulation artifacts:

* :mod:`repro.pipeline.registry` — typed :class:`ExperimentSpec` registry
  with declarative parameter spaces and the ``@register_experiment``
  decorator.
* :mod:`repro.pipeline.context` — :class:`SimulationContext`, a config-hash
  keyed memo of generated traces, index streams, locality statistics,
  datasets, trained fields, GPU profiles and serviced DRAM batches.
* :mod:`repro.pipeline.sweep` — parallel parameter sweeps with deterministic
  per-cell seeding.
* :mod:`repro.pipeline.cli` — the ``python -m repro`` command line
  (``list`` / ``run`` / ``sweep`` / ``report``).
"""

from .context import ContextStats, SimulationContext, config_key
from .registry import (
    ExperimentSpec,
    ParamSpec,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
    run_suite,
)
from .sweep import SweepCell, SweepResult, cell_seed, expand_grid, sweep

__all__ = [
    "SimulationContext",
    "ContextStats",
    "config_key",
    "ExperimentSpec",
    "ParamSpec",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
    "run_experiment",
    "run_suite",
    "sweep",
    "SweepCell",
    "SweepResult",
    "expand_grid",
    "cell_seed",
]
