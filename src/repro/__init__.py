"""Instant-NeRF (DAC 2023) reproduction.

An algorithm-accelerator co-design for instant on-device NeRF training via
near-memory processing, reproduced as a pure-Python library:

* :mod:`repro.core`      — Morton locality hashing, ray-first streaming,
                           hash-table mapping, inter-bank parallelism, and
                           the co-designed system model.
* :mod:`repro.nerf`      — NumPy iNGP / NeRF training stack.
* :mod:`repro.scenes`    — procedural stand-ins for the Synthetic-NeRF scenes.
* :mod:`repro.dram`      — LPDDR4 bank/subarray DRAM timing & energy model.
* :mod:`repro.mem`       — on-chip memory hierarchy (scratchpad window,
                           set-associative SRAM cache, stream prefetcher)
                           filtering lookup streams before they reach DRAM.
* :mod:`repro.accel`     — near-bank NMP accelerator model.
* :mod:`repro.gpu`       — edge/cloud GPU roofline baselines and profiler.
* :mod:`repro.workloads` — iNGP training-step workload characterisation.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
