"""Batching queue, admission control and shedding for the serving simulator.

The scheduler is deliberately split from the clock: :class:`BatchQueue` is a
pure state machine (offer / shed / form-batch) the discrete-event loop in
:mod:`repro.serve.simulator` drives with explicit virtual timestamps, which
is what makes every decision replayable and property-testable.

Admission control happens at arrival: a request is rejected when the queue
already holds ``max_queue_depth`` requests, or when its tenant's token
bucket (capacity ``bucket_capacity``, refill ``tokens_per_us``) is empty.
Admitted requests can still be *shed* later if they wait longer than the
scheduler's ``timeout_us`` before their batch starts service.

Batches are formed work-conservingly: whenever the server is idle and the
queue non-empty, the dispatcher coalesces queued requests — across tenants,
in FIFO or shortest-job-first order — up to ``max_batch_points`` sample
points.  ``batch_window_us`` optionally delays the first dispatch of an
idle period to let a batch fill.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .workload import RenderRequest

__all__ = [
    "AdmissionConfig",
    "BatchPolicy",
    "BatchQueue",
    "QueueEntry",
    "SchedulerConfig",
    "TokenBucket",
]


class BatchPolicy(enum.Enum):
    """Order in which queued requests are coalesced into a batch."""

    FIFO = "fifo"
    #: Shortest job first: fewest sample points first (admit order on ties).
    SJF = "sjf"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control policy applied when a request arrives.

    ``max_queue_depth == 0`` disables the depth cap; ``tokens_per_us == 0``
    disables the per-tenant token bucket.  The defaults admit everything —
    the open-loop baseline.
    """

    max_queue_depth: int = 0
    tokens_per_us: float = 0.0
    bucket_capacity: float = 8.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {self.max_queue_depth}")
        if self.tokens_per_us < 0.0:
            raise ValueError(f"tokens_per_us must be >= 0, got {self.tokens_per_us}")
        if self.bucket_capacity <= 0.0:
            raise ValueError(f"bucket_capacity must be positive, got {self.bucket_capacity}")


@dataclass(frozen=True)
class SchedulerConfig:
    """Batching + admission policy of the serving scheduler."""

    policy: BatchPolicy = BatchPolicy.FIFO
    #: Sample-point budget of one coalesced batch (the accelerator's batch
    #: geometry); a single oversized request still dispatches alone.
    max_batch_points: int = 4096
    #: Extra wait after the first admit of an idle period before dispatch.
    batch_window_us: float = 0.0
    #: Shed admitted requests whose batch has not *started* within this wait
    #: (0 disables shedding).
    timeout_us: float = 0.0
    admission: AdmissionConfig = AdmissionConfig()

    def __post_init__(self) -> None:
        if self.max_batch_points <= 0:
            raise ValueError(f"max_batch_points must be positive, got {self.max_batch_points}")
        if self.batch_window_us < 0.0:
            raise ValueError(f"batch_window_us must be >= 0, got {self.batch_window_us}")
        if self.timeout_us < 0.0:
            raise ValueError(f"timeout_us must be >= 0, got {self.timeout_us}")


@dataclass
class TokenBucket:
    """Continuous-refill token bucket (one per tenant)."""

    rate_per_us: float
    capacity: float
    tokens: float = field(init=False)
    last_us: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.tokens = self.capacity

    def try_take(self, now_us: float) -> bool:
        """Refill to ``now_us`` and consume one token if available."""
        elapsed = max(0.0, now_us - self.last_us)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate_per_us)
        self.last_us = now_us
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class QueueEntry:
    """One admitted request waiting for a batch."""

    request: RenderRequest
    admit_us: float
    #: Monotone admission sequence number — the deterministic tie-breaker of
    #: every batch-forming sort.
    admit_seq: int


class BatchQueue:
    """The scheduler's queue: admission at arrival, batch forming on demand."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        self._entries: list[QueueEntry] = []
        self._buckets: dict[int, TokenBucket] = {}
        self._admit_seq = 0

    # ------------------------------------------------------------- inspection
    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return len(self._entries)

    @property
    def earliest_admit_us(self) -> float:
        """Admission time of the longest-waiting queued request."""
        if not self._entries:
            raise ValueError("queue is empty")
        return min(entry.admit_us for entry in self._entries)

    # -------------------------------------------------------------- admission
    def offer(self, request: RenderRequest, now_us: float) -> bool:
        """Admit or reject an arriving request; returns ``True`` on admit."""
        admission = self.config.admission
        if admission.max_queue_depth and len(self._entries) >= admission.max_queue_depth:
            return False
        if admission.tokens_per_us > 0.0:
            bucket = self._buckets.get(request.tenant)
            if bucket is None:
                bucket = TokenBucket(
                    rate_per_us=admission.tokens_per_us,
                    capacity=admission.bucket_capacity,
                )
                self._buckets[request.tenant] = bucket
            if not bucket.try_take(now_us):
                return False
        self._entries.append(QueueEntry(request, now_us, self._admit_seq))
        self._admit_seq += 1
        return True

    # --------------------------------------------------------------- shedding
    def shed_expired(self, now_us: float) -> list[QueueEntry]:
        """Remove and return entries that waited past ``timeout_us``."""
        timeout = self.config.timeout_us
        if not timeout:
            return []
        expired = [e for e in self._entries if now_us - e.admit_us > timeout]
        if expired:
            self._entries = [e for e in self._entries if now_us - e.admit_us <= timeout]
        return expired

    # ----------------------------------------------------------- batch forming
    def next_batch(self) -> list[QueueEntry]:
        """Pop the next coalesced batch (policy order, point-budget bounded).

        At least one request is always dispatched, so an oversized request
        cannot wedge the queue; beyond the first, requests join while the
        cumulative point count stays within ``max_batch_points``.
        """
        if not self._entries:
            raise ValueError("cannot form a batch from an empty queue")
        if self.config.policy is BatchPolicy.SJF:
            ordered = sorted(
                self._entries, key=lambda e: (e.request.num_points, e.admit_seq)
            )
        else:
            ordered = sorted(self._entries, key=lambda e: e.admit_seq)
        batch = [ordered[0]]
        points = ordered[0].request.num_points
        for entry in ordered[1:]:
            if points + entry.request.num_points > self.config.max_batch_points:
                # Strict-order coalescing: FIFO never lets a later request
                # jump an earlier one, and under SJF everything after the
                # first overflow is at least as large.
                break
            batch.append(entry)
            points += entry.request.num_points
        taken = {entry.admit_seq for entry in batch}
        self._entries = [e for e in self._entries if e.admit_seq not in taken]
        return batch
