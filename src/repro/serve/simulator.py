"""Discrete-event serving simulator: virtual clock, latency records, summary.

The event loop advances a virtual microsecond clock over the merged arrival
sequence, drives the :class:`repro.serve.scheduler.BatchQueue` (admission at
arrival, timeout shedding and batch forming at dispatch) and prices every
coalesced batch through the :class:`repro.serve.cost.ServiceCostModel`.
Dispatch is work-conserving: whenever the server is idle and the queue
non-empty, the next batch starts at
``max(server_free, earliest_admit + batch_window)`` — the queue only ever
waits for the configured coalescing window, never idly.

Everything is deterministic: arrivals are seeded, service times are modeled
cycles, and the clock is purely virtual (no wall-clock reads), so the same
configuration always produces byte-identical records.  Per-request latency
breakdowns (queue wait vs batch service) and per-batch accounting are
recorded as typed rows and — when tracing is enabled — emitted as
``repro.obs`` spans (deterministic virtual-time durations) and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_metrics, get_tracer
from .cost import ServiceCostConfig, ServiceCostModel
from .scheduler import BatchQueue, QueueEntry, SchedulerConfig
from .workload import RenderRequest, ServeWorkloadConfig, generate_requests

__all__ = [
    "BatchRecord",
    "RequestRecord",
    "ServingResult",
    "simulate_serving",
    "simulate_serving_reference",
]

#: Terminal states of a request.
REQUEST_STATUSES = ("served", "shed", "rejected")


@dataclass(frozen=True)
class RequestRecord:
    """Outcome + latency breakdown of one request.

    ``queue_us`` is admission-to-batch-start wait, ``service_us`` the batch
    service latency the request shared, and ``latency_us`` the end-to-end
    arrival-to-completion time.  Rejected requests (admission control) never
    enter the queue; shed requests (timeout) leave it unserved.
    """

    request_id: int
    tenant: int
    arrival_us: float
    num_points: int
    status: str
    start_us: float
    finish_us: float
    queue_us: float
    service_us: float
    latency_us: float
    batch_id: int

    def __post_init__(self) -> None:
        if self.status not in REQUEST_STATUSES:
            raise ValueError(f"status must be one of {REQUEST_STATUSES}, got {self.status!r}")


@dataclass(frozen=True)
class BatchRecord:
    """Accounting of one dispatched batch (enough to replay the dispatch rule)."""

    batch_id: int
    start_us: float
    #: When the server went idle before this batch (work-conservation check).
    free_before_us: float
    #: Queue-wide earliest admission time at dispatch (window check).
    earliest_admit_us: float
    num_requests: int
    num_points: int
    service_us: float
    dram_us: float
    compute_us: float
    queue_depth_before: int


@dataclass(frozen=True)
class ServingResult:
    """All records of one simulated serving run, plus the aggregate summary."""

    records: tuple[RequestRecord, ...]
    batches: tuple[BatchRecord, ...]
    queue_depth_samples: tuple[int, ...]
    makespan_us: float

    def served_latencies_us(self) -> np.ndarray:
        return np.asarray(
            [r.latency_us for r in self.records if r.status == "served"], dtype=np.float64
        )

    def summary(self) -> dict[str, float]:
        """Aggregate serving metrics as a plain (storable) float dict."""
        served = [r for r in self.records if r.status == "served"]
        shed = sum(1 for r in self.records if r.status == "shed")
        rejected = sum(1 for r in self.records if r.status == "rejected")
        total = len(self.records)
        latencies = self.served_latencies_us()
        queue_waits = np.asarray([r.queue_us for r in served], dtype=np.float64)
        depths = np.asarray(self.queue_depth_samples, dtype=np.float64)
        busy_us = sum(b.service_us for b in self.batches)
        makespan_s = self.makespan_us / 1e6 if self.makespan_us > 0 else 0.0

        def percentile(q: float) -> float:
            return float(np.percentile(latencies, q)) if latencies.size else 0.0

        return {
            "num_requests": float(total),
            "served": float(len(served)),
            "shed": float(shed),
            "rejected": float(rejected),
            "shed_rate": float((shed + rejected) / total) if total else 0.0,
            "goodput_rps": float(len(served) / makespan_s) if makespan_s else 0.0,
            "p50_latency_us": percentile(50.0),
            "p95_latency_us": percentile(95.0),
            "p99_latency_us": percentile(99.0),
            "mean_latency_us": float(latencies.mean()) if latencies.size else 0.0,
            "max_latency_us": float(latencies.max()) if latencies.size else 0.0,
            "mean_queue_us": float(queue_waits.mean()) if queue_waits.size else 0.0,
            "mean_queue_depth": float(depths.mean()) if depths.size else 0.0,
            "max_queue_depth": float(depths.max()) if depths.size else 0.0,
            "num_batches": float(len(self.batches)),
            "mean_batch_requests": (
                float(np.mean([b.num_requests for b in self.batches])) if self.batches else 0.0
            ),
            "mean_batch_points": (
                float(np.mean([b.num_points for b in self.batches])) if self.batches else 0.0
            ),
            "utilization": float(busy_us / self.makespan_us) if self.makespan_us else 0.0,
            "makespan_us": float(self.makespan_us),
        }


def _rejected_record(request: RenderRequest) -> RequestRecord:
    return RequestRecord(
        request_id=request.request_id,
        tenant=request.tenant,
        arrival_us=request.arrival_us,
        num_points=request.num_points,
        status="rejected",
        start_us=request.arrival_us,
        finish_us=request.arrival_us,
        queue_us=0.0,
        service_us=0.0,
        latency_us=0.0,
        batch_id=-1,
    )


def _shed_record(entry: QueueEntry, shed_us: float) -> RequestRecord:
    request = entry.request
    return RequestRecord(
        request_id=request.request_id,
        tenant=request.tenant,
        arrival_us=request.arrival_us,
        num_points=request.num_points,
        status="shed",
        start_us=shed_us,
        finish_us=shed_us,
        queue_us=shed_us - entry.admit_us,
        service_us=0.0,
        latency_us=shed_us - request.arrival_us,
        batch_id=-1,
    )


def simulate_serving(
    workload: ServeWorkloadConfig,
    scheduler: SchedulerConfig,
    cost: ServiceCostConfig | None = None,
    model: ServiceCostModel | None = None,
) -> ServingResult:
    """Run one open-loop serving simulation end to end.

    ``model`` may be passed to reuse one :class:`ServiceCostModel` (and its
    accelerator-derived constants) across runs; it must have been built from
    ``cost`` (or the default config) — reuse never changes results because
    the model is stateless across batches.
    """
    cost_model = model if model is not None else ServiceCostModel(cost)
    tracer = get_tracer()
    with tracer.span("serve.simulate", "serve") as run_span:
        requests = generate_requests(workload)
        queue = BatchQueue(scheduler)
        records: list[RequestRecord] = []
        batches: list[BatchRecord] = []
        depth_samples: list[int] = []
        free_at = 0.0
        next_arrival = 0

        def admit_next() -> None:
            nonlocal next_arrival
            request = requests[next_arrival]
            next_arrival += 1
            if queue.offer(request, request.arrival_us):
                depth_samples.append(queue.depth)
            else:
                records.append(_rejected_record(request))
                if tracer.enabled:
                    get_metrics().counter("serve.rejected").inc()

        while next_arrival < len(requests) or queue.depth:
            if queue.depth == 0:
                admit_next()
                continue
            dispatch_at = max(free_at, queue.earliest_admit_us + scheduler.batch_window_us)
            if next_arrival < len(requests) and (
                requests[next_arrival].arrival_us <= dispatch_at
            ):
                admit_next()
                continue
            expired = queue.shed_expired(dispatch_at)
            for entry in expired:
                records.append(_shed_record(entry, dispatch_at))
                if tracer.enabled:
                    get_metrics().counter("serve.shed").inc()
            if queue.depth == 0:
                continue
            earliest = queue.earliest_admit_us
            if max(free_at, earliest + scheduler.batch_window_us) > dispatch_at:
                # Shedding removed the oldest entries; re-evaluate the
                # dispatch time (new arrivals may intervene first).
                continue
            depth_before = queue.depth
            entries = queue.next_batch()
            batch = [entry.request for entry in entries]
            with tracer.span("serve.batch", "serve") as span:
                batch_cost = cost_model.cost(batch)
                if span.enabled:
                    span.set_cycles(int(batch_cost.total_us * 1e3))
                    span.add_args(
                        requests=batch_cost.num_requests,
                        points=batch_cost.num_points,
                        dram_us=batch_cost.dram_us,
                        compute_us=batch_cost.compute_us,
                    )
            start = dispatch_at
            finish = start + batch_cost.total_us
            free_before = free_at
            free_at = finish
            batch_id = len(batches)
            batches.append(
                BatchRecord(
                    batch_id=batch_id,
                    start_us=start,
                    free_before_us=free_before,
                    earliest_admit_us=earliest,
                    num_requests=batch_cost.num_requests,
                    num_points=batch_cost.num_points,
                    service_us=batch_cost.total_us,
                    dram_us=batch_cost.dram_us,
                    compute_us=batch_cost.compute_us,
                    queue_depth_before=depth_before,
                )
            )
            for entry in entries:
                request = entry.request
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        tenant=request.tenant,
                        arrival_us=request.arrival_us,
                        num_points=request.num_points,
                        status="served",
                        start_us=start,
                        finish_us=finish,
                        queue_us=start - entry.admit_us,
                        service_us=batch_cost.total_us,
                        latency_us=finish - request.arrival_us,
                        batch_id=batch_id,
                    )
                )
                if tracer.enabled:
                    get_metrics().counter("serve.served").inc()
                    get_metrics().histogram("serve.latency_us").observe(
                        finish - request.arrival_us
                    )

        records.sort(key=lambda r: r.request_id)
        makespan = max(
            (r.finish_us for r in records), default=0.0
        )
        result = ServingResult(
            records=tuple(records),
            batches=tuple(batches),
            queue_depth_samples=tuple(depth_samples),
            makespan_us=float(makespan),
        )
        if run_span.enabled:
            summary = result.summary()
            run_span.set_cycles(int(makespan * 1e3))
            run_span.add_args(
                requests=len(records),
                served=int(summary["served"]),
                shed=int(summary["shed"]),
                rejected=int(summary["rejected"]),
                p99_latency_us=summary["p99_latency_us"],
            )
            get_metrics().gauge("serve.p99_latency_us").set(summary["p99_latency_us"])
        return result


def simulate_serving_reference(
    workload: ServeWorkloadConfig,
    cost: ServiceCostConfig | None = None,
    model: ServiceCostModel | None = None,
) -> ServingResult:
    """Per-request FIFO oracle: no coalescing, no admission, no shedding.

    Every request is serviced alone in arrival order — the classic G/G/1
    recursion ``finish_i = max(arrival_i, finish_{i-1}) + service_i``.  This
    is both the baseline the batcher's throughput win is measured against
    and an exact oracle: with ``max_batch_points`` of one request and no
    admission control, :func:`simulate_serving` must reproduce it.
    """
    cost_model = model if model is not None else ServiceCostModel(cost)
    requests = generate_requests(workload)
    records: list[RequestRecord] = []
    batches: list[BatchRecord] = []
    free_at = 0.0
    for request in requests:
        batch_cost = cost_model.cost([request])
        start = max(free_at, request.arrival_us)
        finish = start + batch_cost.total_us
        free_before = free_at
        free_at = finish
        batch_id = len(batches)
        batches.append(
            BatchRecord(
                batch_id=batch_id,
                start_us=start,
                free_before_us=free_before,
                earliest_admit_us=request.arrival_us,
                num_requests=1,
                num_points=request.num_points,
                service_us=batch_cost.total_us,
                dram_us=batch_cost.dram_us,
                compute_us=batch_cost.compute_us,
                queue_depth_before=1,
            )
        )
        records.append(
            RequestRecord(
                request_id=request.request_id,
                tenant=request.tenant,
                arrival_us=request.arrival_us,
                num_points=request.num_points,
                status="served",
                start_us=start,
                finish_us=finish,
                queue_us=start - request.arrival_us,
                service_us=batch_cost.total_us,
                latency_us=finish - request.arrival_us,
                batch_id=batch_id,
            )
        )
    makespan = records[-1].finish_us if records else 0.0
    return ServingResult(
        records=tuple(records),
        batches=tuple(batches),
        queue_depth_samples=(1,) * len(records),
        makespan_us=float(makespan),
    )
