"""Open-loop multi-tenant arrival processes for the serving simulator.

Every tenant draws its own request sequence from a dedicated generator whose
seed is a SHA-256 hash of ``(workload seed, tenant)`` — the same
decorrelation scheme :func:`repro.pipeline.sweep.cell_seed` uses for sweep
cells — so tenants are statistically independent and adding a tenant never
perturbs another tenant's trace.

Offered load is *time compression*: a tenant's arrival times are one fixed
base sequence (drawn at unit load) divided by ``offered_load``.  Sweeping
load therefore never resamples the workload — the same requests arrive in
the same order, only denser in virtual time — which is what makes latency
percentiles well-behaved (and empirically monotone) along a load sweep
instead of jumping between unrelated sample paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "ARRIVAL_PROCESSES",
    "RenderRequest",
    "ServeWorkloadConfig",
    "arrival_times",
    "base_arrival_times",
    "generate_requests",
    "tenant_seed",
]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal")


def tenant_seed(seed: int, tenant: int) -> int:
    """Decorrelated per-tenant RNG seed (SHA-256 of the workload seed + id).

    Mirrors :func:`repro.pipeline.sweep.cell_seed`: neighbouring tenants get
    unrelated generator states instead of nearby integer seeds.
    """
    digest = hashlib.sha256(f"repro.serve:{seed}:{tenant}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class RenderRequest:
    """One tenant's render request: camera pose + resolution + identity.

    ``rays`` x ``points_per_ray`` is the request's sample-point budget;
    ``pose`` is the camera position in the unit scene cube and ``seed``
    drives the request's deterministic sample-point draw
    (:func:`repro.serve.stream.request_points`).  ``arrival_us`` is virtual
    microseconds since the start of the run.
    """

    request_id: int
    tenant: int
    arrival_us: float
    rays: int
    points_per_ray: int
    pose: tuple[float, float, float]
    seed: int

    def __post_init__(self) -> None:
        if self.request_id < 0 or self.tenant < 0:
            raise ValueError("request_id and tenant must be non-negative")
        if self.rays <= 0 or self.points_per_ray <= 0:
            raise ValueError("rays and points_per_ray must be positive")
        if self.arrival_us < 0.0:
            raise ValueError(f"arrival_us must be non-negative, got {self.arrival_us}")

    @property
    def num_points(self) -> int:
        """Sample points this request asks the field to evaluate."""
        return self.rays * self.points_per_ray


@dataclass(frozen=True)
class ServeWorkloadConfig:
    """Parameters of one open-loop serving workload.

    ``mean_interarrival_us`` is the per-tenant mean gap at unit load; the
    aggregate offered rate is ``num_tenants * offered_load /
    mean_interarrival_us`` requests per microsecond.  ``process`` selects
    the base arrival process; ``rays_min``/``rays_max`` bound the per-request
    resolution (rays) draw, giving the shortest-job-first policy real job-size
    variance to exploit.
    """

    num_tenants: int = 4
    requests_per_tenant: int = 64
    #: Calibrated so the default cost model sits near 45% utilization at
    #: unit load — the load sweep then spans light traffic to saturation.
    mean_interarrival_us: float = 20.0
    offered_load: float = 1.0
    process: str = "poisson"
    #: MMPP burst state multiplies the arrival rate by this factor.
    burst_rate_ratio: float = 8.0
    #: Per-request probability that the MMPP state flips (normal <-> burst).
    burst_flip_probability: float = 0.1
    #: Period / relative amplitude of the diurnal rate modulation.
    diurnal_period_us: float = 50_000.0
    diurnal_amplitude: float = 0.8
    rays_min: int = 4
    rays_max: int = 16
    points_per_ray: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tenants <= 0 or self.requests_per_tenant <= 0:
            raise ValueError("num_tenants and requests_per_tenant must be positive")
        if self.mean_interarrival_us <= 0.0:
            raise ValueError(
                f"mean_interarrival_us must be positive, got {self.mean_interarrival_us}"
            )
        if self.offered_load <= 0.0:
            raise ValueError(f"offered_load must be positive, got {self.offered_load}")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"process must be one of {ARRIVAL_PROCESSES}, got {self.process!r}"
            )
        if self.burst_rate_ratio < 1.0:
            raise ValueError(f"burst_rate_ratio must be >= 1, got {self.burst_rate_ratio}")
        if not 0.0 <= self.burst_flip_probability <= 1.0:
            raise ValueError("burst_flip_probability must lie in [0, 1]")
        if self.diurnal_period_us <= 0.0:
            raise ValueError("diurnal_period_us must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must lie in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.rays_min <= 0 or self.rays_max < self.rays_min:
            raise ValueError("rays bounds must satisfy 0 < rays_min <= rays_max")
        if self.points_per_ray <= 0:
            raise ValueError(f"points_per_ray must be positive, got {self.points_per_ray}")

    @property
    def num_requests(self) -> int:
        return self.num_tenants * self.requests_per_tenant

    def at_load(self, offered_load: float) -> "ServeWorkloadConfig":
        """The same workload compressed/stretched to another offered load."""
        return ServeWorkloadConfig(
            num_tenants=self.num_tenants,
            requests_per_tenant=self.requests_per_tenant,
            mean_interarrival_us=self.mean_interarrival_us,
            offered_load=offered_load,
            process=self.process,
            burst_rate_ratio=self.burst_rate_ratio,
            burst_flip_probability=self.burst_flip_probability,
            diurnal_period_us=self.diurnal_period_us,
            diurnal_amplitude=self.diurnal_amplitude,
            rays_min=self.rays_min,
            rays_max=self.rays_max,
            points_per_ray=self.points_per_ray,
            seed=self.seed,
        )


def _base_gaps(config: ServeWorkloadConfig, rng: np.random.Generator) -> NDArray[np.float64]:
    """Per-tenant interarrival gaps (microseconds) at unit offered load."""
    n = config.requests_per_tenant
    exponential = rng.exponential(config.mean_interarrival_us, size=n)
    if config.process == "poisson":
        return np.asarray(exponential, dtype=np.float64)
    if config.process == "mmpp":
        # Two-state Markov-modulated Poisson process: the state chain flips
        # with a fixed per-request probability, and the burst state serves
        # gaps ``burst_rate_ratio`` times shorter.  Gaps are rescaled so the
        # long-run mean stays ``mean_interarrival_us`` — MMPP changes the
        # *shape* (burstiness) of traffic at a load point, not the load.
        flips = rng.random(n) < config.burst_flip_probability
        start = int(rng.integers(0, 2))
        burst = (start + np.cumsum(flips)) % 2 == 1
        scale = np.where(burst, 1.0 / config.burst_rate_ratio, 1.0)
        expected = np.float64(np.mean(scale))
        return np.asarray(exponential * scale / expected, dtype=np.float64)
    # Diurnal: the instantaneous rate is modulated sinusoidally around the
    # mean, so the trace alternates rush-hour and overnight regimes.  Each
    # gap is served at the rate in force when the previous request arrived
    # (a deterministic, causal discretisation of the rate curve).
    gaps = np.empty(n, dtype=np.float64)
    now = 0.0
    omega = 2.0 * np.pi / config.diurnal_period_us
    for i in range(n):
        rate_factor = 1.0 + config.diurnal_amplitude * float(np.sin(omega * now))
        gaps[i] = exponential[i] / rate_factor
        now += gaps[i]
    return gaps


def base_arrival_times(config: ServeWorkloadConfig, tenant: int) -> NDArray[np.float64]:
    """One tenant's arrival times (microseconds) at unit offered load."""
    if tenant < 0 or tenant >= config.num_tenants:
        raise ValueError(f"tenant {tenant} out of range for {config.num_tenants} tenants")
    rng = np.random.default_rng(tenant_seed(config.seed, tenant))
    return np.asarray(np.cumsum(_base_gaps(config, rng)), dtype=np.float64)


def arrival_times(config: ServeWorkloadConfig, tenant: int) -> NDArray[np.float64]:
    """One tenant's arrival times at the configured offered load.

    Pure time compression of :func:`base_arrival_times`: the sequence (and
    the cross-tenant merge order) is invariant under load.
    """
    return np.asarray(
        base_arrival_times(config, tenant) / config.offered_load, dtype=np.float64
    )


def generate_requests(config: ServeWorkloadConfig) -> tuple[RenderRequest, ...]:
    """All tenants' requests merged into one arrival-ordered sequence.

    Request identity (pose, resolution, point seed) is drawn from the
    per-tenant generator independently of ``offered_load``; global ids are
    assigned in merged arrival order, with ties broken by ``(tenant, local
    index)`` so the sequence is deterministic at any load.
    """
    per_tenant_base = [base_arrival_times(config, t) for t in range(config.num_tenants)]
    tenants = np.repeat(np.arange(config.num_tenants), config.requests_per_tenant)
    locals_ = np.tile(np.arange(config.requests_per_tenant), config.num_tenants)
    base_times = np.concatenate(per_tenant_base)
    # Merge on *base* times: scaling by offered_load preserves this order.
    order = np.lexsort((locals_, tenants, base_times))

    identities: list[tuple[int, float, float, float, int]] = []
    for tenant in range(config.num_tenants):
        rng = np.random.default_rng(tenant_seed(config.seed, tenant) ^ 0x5EED)
        rays = rng.integers(config.rays_min, config.rays_max + 1, size=config.requests_per_tenant)
        poses = rng.random((config.requests_per_tenant, 3))
        seeds = rng.integers(0, 2**62, size=config.requests_per_tenant)
        for i in range(config.requests_per_tenant):
            identities.append(
                (
                    int(rays[i]),
                    float(poses[i, 0]),
                    float(poses[i, 1]),
                    float(poses[i, 2]),
                    int(seeds[i]),
                )
            )

    requests = []
    for request_id, flat in enumerate(order):
        tenant = int(tenants[flat])
        local = int(locals_[flat])
        rays_n, px, py, pz, seed = identities[tenant * config.requests_per_tenant + local]
        requests.append(
            RenderRequest(
                request_id=request_id,
                tenant=tenant,
                arrival_us=float(base_times[flat] / config.offered_load),
                rays=rays_n,
                points_per_ray=config.points_per_ray,
                pose=(px, py, pz),
                seed=seed,
            )
        )
    return tuple(requests)
