"""Compile a coalesced serving batch down to the typed request-stream IR.

A batch of render requests becomes exactly what the training front-ends
emit: per-point hash-table corner indices wrapped in one
:class:`repro.streams.RequestStream`, so the unchanged hierarchy → DRAM →
accelerator consumers price serving traffic with zero new memory-system
code.  The only serving-specific twist is the *tenant-tagged* reuse-group
axis: group ids combine the request id with the sample's cube id, so
register-reuse runs never span two requests (conservative — cross-tenant
reuse is a cache property, not a register property) while the request a
point belongs to stays recoverable from the stream itself.  That same
tagging is the hook the sharding follow-on needs for placement decisions.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from ..core.hashing import HashFunction
from ..core.streaming import cube_ids
from ..nerf.encoding import HashGridConfig
from ..streams.ir import RequestStream, table_base_address
from ..workloads.traces import level_lookup_indices
from .workload import RenderRequest

__all__ = ["batch_request_stream", "request_points"]


def request_points(request: RenderRequest) -> NDArray[np.float64]:
    """The deterministic ``(num_points, 3)`` sample points of one request.

    Rays march from the request's camera pose through the unit scene cube:
    per-ray directions are drawn from the request's own generator and the
    ``points_per_ray`` samples advance along each ray (wrapped into the unit
    cube), giving serving traffic the same ray-major spatial locality the
    training traces have.
    """
    rng = np.random.default_rng(request.seed)
    directions = rng.standard_normal((request.rays, 3))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    directions = directions / np.maximum(norms, 1e-12)
    steps = (np.arange(request.points_per_ray, dtype=np.float64) + 0.5) / request.points_per_ray
    origin = np.asarray(request.pose, dtype=np.float64)
    # (rays, points_per_ray, 3): origin + t * direction, wrapped to [0, 1).
    points = origin[None, None, :] + steps[None, :, None] * directions[:, None, :]
    return np.asarray(np.mod(points, 1.0).reshape(-1, 3), dtype=np.float64)


def batch_request_stream(
    requests: tuple[RenderRequest, ...] | list[RenderRequest],
    grid: HashGridConfig,
    hash_fn: HashFunction,
    level: int,
) -> RequestStream:
    """One level's corner lookups of a coalesced batch, tenant-tagged.

    Points are streamed request-major (the batch order the scheduler chose),
    ray-major within a request.  ``group_ids`` are
    ``request_id * cubes_per_level + cube_id``: within a request consecutive
    same-cube samples form register-reuse runs exactly as in training
    traces, and runs can never leak across a request boundary.
    """
    if not requests:
        raise ValueError("cannot build a stream from an empty batch")
    resolution = grid.resolutions[level]
    points_list = [request_points(request) for request in requests]
    points = np.concatenate(points_list, axis=0)
    indices = level_lookup_indices(points, level, grid, hash_fn)
    cubes_per_level = resolution**3
    request_ids = np.repeat(
        np.asarray([request.request_id for request in requests], dtype=np.int64),
        np.asarray([request.num_points for request in requests], dtype=np.int64),
    )
    groups = request_ids * np.int64(cubes_per_level) + cube_ids(points, resolution)
    return RequestStream(
        indices=indices,
        entry_bytes=grid.entry_bytes,
        table_entries=grid.level_table_entries(level),
        base_address=table_base_address(grid, level, grid.entry_bytes),
        dtype=grid.dtype,
        group_ids=groups,
        source="serve.batch",
        label=f"level={level} requests={len(requests)}",
    )
