"""Multi-tenant open-loop serving simulation on top of the memory stack.

``repro.serve`` is the production-scale front of the reproduction: a
deterministic discrete-event simulator that drives the existing trace →
hierarchy → DRAM → NMP cost models with *open-loop* traffic from many
tenants instead of one training job.  The pieces:

* :mod:`repro.serve.workload` — seeded arrival processes (Poisson, bursty
  MMPP, diurnal) of per-tenant render requests (camera pose + resolution),
  with offered load expressed as time compression of one base arrival
  sequence so sweeping load never resamples the workload;
* :mod:`repro.serve.scheduler` — the batching queue (size/window-triggered
  coalescing of rays across tenants, FIFO vs shortest-job-first) plus
  admission control (queue-depth cap, per-tenant token bucket) and the
  timeout/shed path;
* :mod:`repro.serve.stream` — a coalesced batch compiled down to one
  tenant-tagged :class:`repro.streams.RequestStream`, the same typed IR the
  training front-ends emit;
* :mod:`repro.serve.cost` — batch service times from the unchanged
  :meth:`repro.mem.hierarchy.CacheHierarchy.filter_stream` →
  :meth:`repro.dram.system.DRAMSystem.service_batch` →
  :class:`repro.accel.nmp.NMPAccelerator` models;
* :mod:`repro.serve.simulator` — the virtual clock, per-request latency
  breakdowns (queue / batch-wait / service) and the aggregate serving
  summary (p50/p99 latency, goodput, shed rate, queue depth) behind the
  ``fig14_serving_latency`` experiment.
"""

from __future__ import annotations

from .cost import ServiceCost, ServiceCostConfig, ServiceCostModel
from .scheduler import (
    AdmissionConfig,
    BatchPolicy,
    BatchQueue,
    QueueEntry,
    SchedulerConfig,
    TokenBucket,
)
from .simulator import (
    BatchRecord,
    RequestRecord,
    ServingResult,
    simulate_serving,
    simulate_serving_reference,
)
from .stream import batch_request_stream, request_points
from .workload import (
    RenderRequest,
    ServeWorkloadConfig,
    arrival_times,
    base_arrival_times,
    generate_requests,
    tenant_seed,
)

__all__ = [
    "AdmissionConfig",
    "BatchPolicy",
    "BatchQueue",
    "BatchRecord",
    "QueueEntry",
    "RenderRequest",
    "RequestRecord",
    "SchedulerConfig",
    "ServeWorkloadConfig",
    "ServiceCost",
    "ServiceCostConfig",
    "ServiceCostModel",
    "ServingResult",
    "TokenBucket",
    "arrival_times",
    "base_arrival_times",
    "batch_request_stream",
    "generate_requests",
    "request_points",
    "simulate_serving",
    "simulate_serving_reference",
    "tenant_seed",
]
