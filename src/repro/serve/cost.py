"""Batch service times from the existing hierarchy → DRAM → NMP cost models.

One coalesced batch is priced by replaying its tenant-tagged request stream
through the exact models the paper experiments use:

* the on-chip hierarchy (:meth:`repro.mem.hierarchy.CacheHierarchy.filter_stream`)
  filters the finest-level corner lookups down to surviving line fetches;
* the DRAM timing model (:meth:`repro.dram.system.DRAMSystem.service_batch`)
  services those lines cycle-accurately, and the elapsed nanoseconds are
  scaled by the level count (hashed levels are statistically symmetric, so
  the finest level is simulated and stands in for all of them);
* the near-bank accelerator model (:class:`repro.accel.nmp.NMPAccelerator`)
  prices the per-point forward-MLP compute that overlaps the memory traffic.

Memory and compute overlap exactly as in :class:`repro.accel.nmp.StepCost`
(``max(memory, compute)``), plus a fixed per-batch dispatch overhead — which
is what makes batching worth it and what the fig14 throughput comparison
against a per-request oracle measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..accel.nmp import NMPAccelerator
from ..core.hashing import get_hash_function
from ..core.precision import validate_precision
from ..dram.spec import get_dram_spec
from ..dram.system import DRAMSystem
from ..mem import CacheConfig, CacheHierarchy, PrefetcherConfig
from ..nerf.encoding import HashGridConfig
from .stream import batch_request_stream
from .workload import RenderRequest

if TYPE_CHECKING:
    from ..streams.ir import RequestStream

__all__ = ["ServiceCost", "ServiceCostConfig", "ServiceCostModel"]


@dataclass(frozen=True)
class ServiceCostConfig:
    """Memory-system + accelerator configuration pricing one serving batch.

    The hash grid is a serving-scale one (fewer, coarser levels than the
    paper's training grid) so per-batch DRAM simulation stays cheap; all the
    knobs of the underlying models are exposed because they are exactly the
    axes the paper sweeps.
    """

    dram: str = "lpddr4-2400"
    cache_kb: int = 64
    ways: int = 4
    line_bytes: int = 64
    mshr_latency: int = 4
    prefetch: str = "stride"
    prefetch_degree: int = 1
    grid_levels: int = 4
    table_size: int = 2**15
    base_resolution: int = 16
    max_resolution: int = 128
    features_per_entry: int = 2
    dtype: str = "fp16"
    hash_fn: str = "morton"
    #: Fixed dispatch cost charged once per batch (kernel launch, packing).
    batch_overhead_us: float = 2.0

    def __post_init__(self) -> None:
        validate_precision(self.dtype)
        if self.cache_kb <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache_kb, ways and line_bytes must be positive")
        if self.grid_levels <= 0 or self.table_size <= 0:
            raise ValueError("grid_levels and table_size must be positive")
        if self.base_resolution <= 0 or self.max_resolution < self.base_resolution:
            raise ValueError("resolutions must satisfy 0 < base <= max")
        if self.features_per_entry <= 0:
            raise ValueError("features_per_entry must be positive")
        if self.batch_overhead_us < 0.0:
            raise ValueError(f"batch_overhead_us must be >= 0, got {self.batch_overhead_us}")

    def grid(self) -> HashGridConfig:
        """The serving hash grid this cost model evaluates against."""
        return HashGridConfig(
            num_levels=self.grid_levels,
            table_size=self.table_size,
            features_per_entry=self.features_per_entry,
            base_resolution=self.base_resolution,
            max_resolution=self.max_resolution,
            hash_fn=get_hash_function(self.hash_fn),
            dtype=self.dtype,
        )


@dataclass(frozen=True)
class ServiceCost:
    """Latency breakdown of servicing one coalesced batch."""

    num_requests: int
    num_points: int
    dram_us: float
    compute_us: float
    overhead_us: float

    @property
    def total_us(self) -> float:
        """Batch service latency: overlapped memory/compute plus dispatch."""
        return self.overhead_us + max(self.dram_us, self.compute_us)


class ServiceCostModel:
    """Prices coalesced batches through the shared memory/accelerator models.

    Deterministic: the same batch always costs the same microseconds (the
    DRAM model is cycle-accurate and the compute term is a per-point
    constant derived once from the accelerator's forward-MLP step cost).
    """

    def __init__(self, config: ServiceCostConfig | None = None):
        self.config = config or ServiceCostConfig()
        self.grid = self.config.grid()
        self.level = self.config.grid_levels - 1
        self.hierarchy = CacheHierarchy(
            cache=CacheConfig(
                capacity_bytes=self.config.cache_kb * 1024,
                line_bytes=self.config.line_bytes,
                ways=self.config.ways,
                mshr_latency=self.config.mshr_latency,
            ),
            prefetcher=PrefetcherConfig(
                policy=self.config.prefetch, degree=self.config.prefetch_degree
            ),
        )
        self.dram = DRAMSystem(get_dram_spec(self.config.dram))
        accelerator = NMPAccelerator()
        step = accelerator.step_cost("MLP")
        per_iteration_points = float(accelerator.effective_points_per_iteration)
        self.compute_us_per_point = step.compute_seconds * 1e6 / per_iteration_points

    # ------------------------------------------------------------------ API
    def batch_stream(
        self, requests: tuple[RenderRequest, ...] | list[RenderRequest]
    ) -> "RequestStream":
        """The tenant-tagged finest-level stream of one coalesced batch."""
        return batch_request_stream(requests, self.grid, self.grid.hash_fn, self.level)

    def cost(
        self, requests: tuple[RenderRequest, ...] | list[RenderRequest]
    ) -> ServiceCost:
        """Service-latency breakdown of one coalesced batch."""
        stream = self.batch_stream(requests)
        filtered = self.hierarchy.filter_stream(stream)
        lines = filtered.dram_stream()
        serviced = self.dram.service_batch(lines, size_bytes=self.config.line_bytes)
        dram_us = serviced.elapsed_ns * self.config.grid_levels / 1e3
        compute_us = self.compute_us_per_point * stream.num_points
        return ServiceCost(
            num_requests=len(requests),
            num_points=stream.num_points,
            dram_us=float(dram_us),
            compute_us=float(compute_us),
            overhead_us=self.config.batch_overhead_us,
        )
