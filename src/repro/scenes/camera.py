"""Pinhole camera model and pose sampling for the procedural scenes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CameraIntrinsics", "look_at", "poses_on_sphere"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics (square pixels, principal point at image center)."""

    height: int
    width: int
    focal: float

    @property
    def matrix(self) -> np.ndarray:
        return np.array(
            [
                [self.focal, 0.0, self.width / 2.0],
                [0.0, self.focal, self.height / 2.0],
                [0.0, 0.0, 1.0],
            ]
        )

    @classmethod
    def from_fov(cls, height: int, width: int, fov_degrees: float = 50.0) -> "CameraIntrinsics":
        """Build intrinsics from a horizontal field of view."""
        if height <= 0 or width <= 0:
            raise ValueError("height and width must be positive")
        if not 0 < fov_degrees < 180:
            raise ValueError("fov_degrees must be in (0, 180)")
        focal = 0.5 * width / np.tan(0.5 * np.deg2rad(fov_degrees))
        return cls(height=height, width=width, focal=float(focal))


def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray | None = None) -> np.ndarray:
    """Camera-to-world matrix for a camera at ``eye`` looking at ``target``.

    Uses the OpenGL/NeRF convention: camera looks down its ``-z`` axis,
    ``+x`` to the right, ``+y`` up.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up if up is not None else [0.0, 1.0, 0.0], dtype=np.float64)

    forward = eye - target  # camera -z points from eye to target
    forward = forward / np.linalg.norm(forward)
    right = np.cross(up, forward)
    norm = np.linalg.norm(right)
    if norm < 1e-8:
        # Degenerate case: view direction parallel to up; pick another up.
        up = np.array([0.0, 0.0, 1.0])
        right = np.cross(up, forward)
        norm = np.linalg.norm(right)
    right = right / norm
    true_up = np.cross(forward, right)

    pose = np.eye(4)
    pose[:3, 0] = right
    pose[:3, 1] = true_up
    pose[:3, 2] = forward
    pose[:3, 3] = eye
    return pose


def poses_on_sphere(
    num_poses: int,
    radius: float = 2.0,
    elevation_degrees: float = 30.0,
    target: np.ndarray | None = None,
    full_circle: bool = True,
) -> list[np.ndarray]:
    """Camera poses evenly spaced on a circle at fixed elevation.

    This mimics the hemispherical camera placement of the Synthetic-NeRF
    captures: cameras orbit the object, all looking at the origin.
    """
    if num_poses <= 0:
        raise ValueError("num_poses must be positive")
    target = np.zeros(3) if target is None else np.asarray(target, dtype=np.float64)
    elev = np.deg2rad(elevation_degrees)
    span = 2.0 * np.pi if full_circle else np.pi
    poses = []
    for i in range(num_poses):
        azimuth = span * i / num_poses
        eye = target + radius * np.array(
            [np.cos(azimuth) * np.cos(elev), np.sin(elev), np.sin(azimuth) * np.cos(elev)]
        )
        poses.append(look_at(eye, target))
    return poses
