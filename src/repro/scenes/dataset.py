"""Posed-image dataset rendered from procedural scenes.

:class:`SyntheticNeRFDataset` renders ground-truth train/test images from an
:class:`repro.scenes.primitives.SDFScene` with a reference volume renderer
(the same Eq. (1) compositing used by the trainable fields) and exposes the
sampling interface expected by :class:`repro.nerf.trainer.Trainer`:

* ``sample_ray_batch``     — Step (a): random pixels as a batch
* ``rays_for_view``        — all rays of a held-out test view
* ``test_image``           — the ground-truth image for that view
* ``normalize_positions``  — world coordinates -> the unit cube of the grid
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nerf.rays import RayBundle, generate_rays, sample_along_rays, stratified_t_values
from ..nerf.volume_rendering import render_rays
from .camera import CameraIntrinsics, poses_on_sphere
from .library import build_scene
from .primitives import SDFScene

__all__ = ["DatasetConfig", "SyntheticNeRFDataset", "load_synthetic_dataset"]


@dataclass(frozen=True)
class DatasetConfig:
    """Rendering configuration for the procedural dataset."""

    image_size: int = 64
    num_train_views: int = 12
    num_test_views: int = 3
    camera_radius: float = 2.2
    fov_degrees: float = 50.0
    near: float = 0.5
    far: float = 3.5
    gt_samples_per_ray: int = 128
    background: tuple[float, float, float] = (1.0, 1.0, 1.0)
    # Scene bounding box mapped onto the [0,1]^3 hash-grid domain.
    scene_bound: float = 1.2


class SyntheticNeRFDataset:
    """Ground-truth images plus ray sampling for one procedural scene."""

    def __init__(self, scene: SDFScene, config: DatasetConfig | None = None):
        self.scene = scene
        self.config = config or DatasetConfig()
        cfg = self.config
        self.intrinsics = CameraIntrinsics.from_fov(cfg.image_size, cfg.image_size, cfg.fov_degrees)
        self.train_poses = poses_on_sphere(
            cfg.num_train_views, radius=cfg.camera_radius, elevation_degrees=25.0
        )
        # Test poses share the training elevation but sit between the training
        # azimuths (interpolation rather than extrapolation, as in the
        # Synthetic-NeRF splits where test cameras interleave the training orbit).
        test_all = poses_on_sphere(
            cfg.num_test_views * 2, radius=cfg.camera_radius, elevation_degrees=28.0
        )
        self.test_poses = test_all[1 :: 2][: cfg.num_test_views]
        self._train_rays: list[RayBundle] = []
        self._train_images: list[np.ndarray] = []
        self._test_rays: list[RayBundle] = []
        self._test_images: list[np.ndarray] = []
        self._render_ground_truth()
        self._flatten_training_pixels()

    # ------------------------------------------------------------ rendering
    def _render_view(self, pose: np.ndarray) -> tuple[RayBundle, np.ndarray]:
        cfg = self.config
        rays = generate_rays(pose, self.intrinsics.matrix, cfg.image_size, cfg.image_size)
        t_values = stratified_t_values(
            len(rays), cfg.gt_samples_per_ray, cfg.near, cfg.far, jitter=False
        )
        points = sample_along_rays(rays, t_values)
        dirs = np.repeat(rays.directions, cfg.gt_samples_per_ray, axis=0)
        sigma, rgb = self.scene.radiance(points.reshape(-1, 3), dirs)
        sigma = sigma.reshape(len(rays), cfg.gt_samples_per_ray)
        rgb = rgb.reshape(len(rays), cfg.gt_samples_per_ray, 3)
        out = render_rays(sigma, rgb, t_values, background=np.asarray(cfg.background))
        image = np.clip(out.rgb.reshape(cfg.image_size, cfg.image_size, 3), 0.0, 1.0)
        return rays, image

    def _render_ground_truth(self) -> None:
        for pose in self.train_poses:
            rays, image = self._render_view(pose)
            self._train_rays.append(rays)
            self._train_images.append(image)
        for pose in self.test_poses:
            rays, image = self._render_view(pose)
            self._test_rays.append(rays)
            self._test_images.append(image)

    def _flatten_training_pixels(self) -> None:
        origins = np.concatenate([r.origins for r in self._train_rays], axis=0)
        directions = np.concatenate([r.directions for r in self._train_rays], axis=0)
        colors = np.concatenate([img.reshape(-1, 3) for img in self._train_images], axis=0)
        self._all_train_origins = origins
        self._all_train_directions = directions
        self._all_train_colors = colors

    # -------------------------------------------------------------- queries
    @property
    def image_shape(self) -> tuple[int, int]:
        return (self.config.image_size, self.config.image_size)

    @property
    def num_train_views(self) -> int:
        return len(self._train_images)

    @property
    def num_test_views(self) -> int:
        return len(self._test_images)

    @property
    def num_train_pixels(self) -> int:
        return self._all_train_colors.shape[0]

    def train_image(self, view_index: int) -> np.ndarray:
        return self._train_images[view_index]

    def test_image(self, view_index: int) -> np.ndarray:
        return self._test_images[view_index]

    def rays_for_view(self, view_index: int, split: str = "test") -> RayBundle:
        """All rays of one view (defaults to the test split)."""
        bundles = self._test_rays if split == "test" else self._train_rays
        return bundles[view_index]

    def sample_ray_batch(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> tuple[RayBundle, np.ndarray]:
        """Randomly select ``batch_size`` training pixels (Step (a))."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = rng or np.random.default_rng()
        idx = rng.integers(0, self.num_train_pixels, size=batch_size)
        bundle = RayBundle(self._all_train_origins[idx], self._all_train_directions[idx])
        return bundle, self._all_train_colors[idx]

    def normalize_positions(self, points: np.ndarray) -> np.ndarray:
        """Map world coordinates into the unit cube used by the hash grid."""
        bound = self.config.scene_bound
        return np.clip((np.asarray(points, dtype=np.float64) + bound) / (2.0 * bound), 0.0, 1.0)

    def denormalize_positions(self, unit_points: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize_positions`."""
        bound = self.config.scene_bound
        return np.asarray(unit_points, dtype=np.float64) * (2.0 * bound) - bound


def load_synthetic_dataset(
    scene_name: str, config: DatasetConfig | None = None
) -> SyntheticNeRFDataset:
    """Build the procedural stand-in for one Synthetic-NeRF scene by name."""
    return SyntheticNeRFDataset(build_scene(scene_name), config)
