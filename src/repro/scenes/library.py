"""The eight named procedural scenes standing in for Synthetic-NeRF.

Each builder returns an :class:`repro.scenes.primitives.SDFScene` whose
geometry loosely evokes the corresponding Blender asset (a chair has a seat,
a back and four legs; a hotdog is a bun with a sausage; ...).  The exact
shapes are unimportant — what matters is that each scene is a distinct,
reproducible volumetric target that exercises the full training pipeline.
"""

from __future__ import annotations

import numpy as np

from .primitives import ColoredPrimitive, SDFScene, box_sdf, cylinder_sdf, sphere_sdf, torus_sdf

__all__ = ["SCENE_NAMES", "build_scene", "available_scenes"]

SCENE_NAMES = ("chair", "drums", "ficus", "hotdog", "lego", "materials", "mic", "ship")


def _chair() -> SDFScene:
    wood = (0.55, 0.35, 0.2)
    cushion = (0.7, 0.15, 0.15)
    prims = [
        # Seat
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, 0.0, 0.0], [0.45, 0.06, 0.45]), cushion),
        # Back rest
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, 0.45, -0.4], [0.45, 0.45, 0.06]), wood),
        # Four legs
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.35, -0.35, 0.35], 0.06, 0.3), wood),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [-0.35, -0.35, 0.35], 0.06, 0.3), wood),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.35, -0.35, -0.35], 0.06, 0.3), wood),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [-0.35, -0.35, -0.35], 0.06, 0.3), wood),
    ]
    return SDFScene("chair", prims, tint_frequency=1.5)


def _drums() -> SDFScene:
    shell = (0.75, 0.72, 0.2)
    skin = (0.9, 0.9, 0.85)
    cymbal = (0.85, 0.75, 0.3)
    prims = [
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, -0.1, 0.0], 0.4, 0.25), shell),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, 0.17, 0.0], 0.38, 0.02), skin),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [-0.55, -0.2, 0.2], 0.22, 0.18), shell),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.55, -0.2, 0.2], 0.22, 0.18), shell),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.45, 0.45, -0.3], 0.3, 0.015), cymbal),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [-0.45, 0.5, -0.3], 0.25, 0.015), cymbal),
    ]
    return SDFScene("drums", prims, tint_frequency=2.5)


def _ficus() -> SDFScene:
    pot = (0.6, 0.3, 0.2)
    trunk = (0.4, 0.25, 0.12)
    leaves = (0.15, 0.5, 0.2)
    prims = [
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, -0.55, 0.0], 0.3, 0.2), pot),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, -0.1, 0.0], 0.06, 0.35), trunk),
        ColoredPrimitive(lambda p: sphere_sdf(p, [0.0, 0.45, 0.0], 0.38), leaves),
        ColoredPrimitive(lambda p: sphere_sdf(p, [0.3, 0.3, 0.15], 0.22), leaves),
        ColoredPrimitive(lambda p: sphere_sdf(p, [-0.28, 0.35, -0.12], 0.24), leaves),
    ]
    return SDFScene("ficus", prims, tint_frequency=3.0)


def _hotdog() -> SDFScene:
    bun = (0.85, 0.65, 0.35)
    sausage = (0.7, 0.25, 0.15)
    mustard = (0.9, 0.8, 0.1)
    plate = (0.92, 0.92, 0.95)
    prims = [
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, -0.35, 0.0], 0.7, 0.04), plate),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.2, 0.12], [0.55, 0.1, 0.14]), bun),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.2, -0.12], [0.55, 0.1, 0.14]), bun),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.08, 0.0], [0.58, 0.07, 0.07]), sausage),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, 0.01, 0.0], [0.5, 0.015, 0.02]), mustard),
    ]
    return SDFScene("hotdog", prims, tint_frequency=1.0)


def _lego() -> SDFScene:
    yellow = (0.9, 0.75, 0.1)
    grey = (0.5, 0.5, 0.55)
    black = (0.12, 0.12, 0.12)
    prims = [
        # Bulldozer body, cabin, blade and tracks built from boxes.
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.1, 0.0], [0.45, 0.15, 0.3]), yellow),
        ColoredPrimitive(lambda p: box_sdf(p, [-0.1, 0.15, 0.0], [0.2, 0.15, 0.22]), yellow),
        ColoredPrimitive(lambda p: box_sdf(p, [0.55, -0.15, 0.0], [0.05, 0.2, 0.35]), grey),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.3, 0.3], [0.45, 0.08, 0.07]), black),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.3, -0.3], [0.45, 0.08, 0.07]), black),
    ]
    return SDFScene("lego", prims, tint_frequency=2.0)


def _materials() -> SDFScene:
    colors = [
        (0.85, 0.2, 0.2),
        (0.2, 0.7, 0.3),
        (0.2, 0.35, 0.85),
        (0.85, 0.75, 0.2),
        (0.7, 0.3, 0.75),
        (0.25, 0.75, 0.75),
    ]
    prims = []
    for i, color in enumerate(colors):
        angle = 2.0 * np.pi * i / len(colors)
        cx, cz = 0.5 * np.cos(angle), 0.5 * np.sin(angle)
        prims.append(
            ColoredPrimitive(
                lambda p, cx=cx, cz=cz: sphere_sdf(p, [cx, -0.15, cz], 0.18), color
            )
        )
    prims.append(ColoredPrimitive(lambda p: sphere_sdf(p, [0.0, -0.15, 0.0], 0.2), (0.9, 0.9, 0.9)))
    return SDFScene("materials", prims, tint_frequency=0.5)


def _mic() -> SDFScene:
    metal = (0.75, 0.75, 0.8)
    grille = (0.3, 0.3, 0.35)
    cable = (0.15, 0.15, 0.15)
    prims = [
        ColoredPrimitive(lambda p: sphere_sdf(p, [0.0, 0.45, 0.0], 0.25), grille),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, 0.05, 0.0], 0.09, 0.35), metal),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, -0.45, 0.0], 0.28, 0.05), metal),
        ColoredPrimitive(lambda p: torus_sdf(p, [0.3, -0.45, 0.2], 0.15, 0.03), cable),
    ]
    return SDFScene("mic", prims, tint_frequency=1.5)


def _ship() -> SDFScene:
    hull = (0.45, 0.3, 0.2)
    deck = (0.65, 0.5, 0.3)
    sail = (0.92, 0.9, 0.85)
    water = (0.15, 0.3, 0.55)
    prims = [
        ColoredPrimitive(
            lambda p: cylinder_sdf(p, [0.0, -0.5, 0.0], 0.85, 0.06), water, density_scale=25.0
        ),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.3, 0.0], [0.55, 0.12, 0.2]), hull),
        ColoredPrimitive(lambda p: box_sdf(p, [0.0, -0.15, 0.0], [0.6, 0.04, 0.24]), deck),
        ColoredPrimitive(lambda p: cylinder_sdf(p, [0.0, 0.15, 0.0], 0.03, 0.35), hull),
        ColoredPrimitive(lambda p: box_sdf(p, [0.15, 0.2, 0.0], [0.18, 0.25, 0.01]), sail),
    ]
    return SDFScene("ship", prims, tint_frequency=2.0)


_BUILDERS = {
    "chair": _chair,
    "drums": _drums,
    "ficus": _ficus,
    "hotdog": _hotdog,
    "lego": _lego,
    "materials": _materials,
    "mic": _mic,
    "ship": _ship,
}


def available_scenes() -> tuple[str, ...]:
    """Names of the eight procedural scenes."""
    return SCENE_NAMES


def build_scene(name: str) -> SDFScene:
    """Construct one of the eight named procedural scenes."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown scene {name!r}; available: {', '.join(SCENE_NAMES)}")
    return _BUILDERS[key]()
