"""Signed-distance-field primitives and composite objects.

The Synthetic-NeRF dataset (Blender renders of chair, drums, ficus, hotdog,
lego, materials, mic and ship) is not redistributable, so the reproduction
builds *procedural* stand-in scenes from analytic signed distance fields
(SDFs).  A scene is a list of colored primitives; density is derived from
the SDF so the same volume-rendering code path used for training also
produces the ground-truth images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "sphere_sdf",
    "box_sdf",
    "torus_sdf",
    "cylinder_sdf",
    "plane_sdf",
    "smooth_union",
    "ColoredPrimitive",
    "SDFScene",
]


def _norm(v: np.ndarray, axis: int = -1) -> np.ndarray:
    return np.linalg.norm(v, axis=axis)


def sphere_sdf(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Signed distance to a sphere."""
    return _norm(points - np.asarray(center)) - radius


def box_sdf(points: np.ndarray, center: np.ndarray, half_extents: np.ndarray) -> np.ndarray:
    """Signed distance to an axis-aligned box."""
    q = np.abs(points - np.asarray(center)) - np.asarray(half_extents)
    outside = _norm(np.maximum(q, 0.0))
    inside = np.minimum(np.max(q, axis=-1), 0.0)
    return outside + inside


def torus_sdf(
    points: np.ndarray, center: np.ndarray, major_radius: float, minor_radius: float
) -> np.ndarray:
    """Signed distance to a torus lying in the xz-plane."""
    p = points - np.asarray(center)
    q_x = _norm(p[..., [0, 2]]) - major_radius
    q = np.stack([q_x, p[..., 1]], axis=-1)
    return _norm(q) - minor_radius


def cylinder_sdf(
    points: np.ndarray, center: np.ndarray, radius: float, half_height: float
) -> np.ndarray:
    """Signed distance to a vertical (y-axis) capped cylinder."""
    p = points - np.asarray(center)
    d_radial = _norm(p[..., [0, 2]]) - radius
    d_vertical = np.abs(p[..., 1]) - half_height
    d = np.stack([d_radial, d_vertical], axis=-1)
    outside = _norm(np.maximum(d, 0.0))
    inside = np.minimum(np.max(d, axis=-1), 0.0)
    return outside + inside


def plane_sdf(points: np.ndarray, normal: np.ndarray, offset: float) -> np.ndarray:
    """Signed distance to the plane ``normal . x = offset`` (normal must be unit)."""
    normal = np.asarray(normal, dtype=np.float64)
    return points @ normal - offset


def smooth_union(d1: np.ndarray, d2: np.ndarray, k: float = 0.1) -> np.ndarray:
    """Smooth minimum of two SDFs (polynomial smooth union)."""
    h = np.clip(0.5 + 0.5 * (d2 - d1) / max(k, 1e-9), 0.0, 1.0)
    return d2 * (1.0 - h) + d1 * h - k * h * (1.0 - h)


@dataclass
class ColoredPrimitive:
    """An SDF callable paired with a base color and a density scale.

    Attributes
    ----------
    sdf:
        Callable mapping ``(N, 3)`` points to ``(N,)`` signed distances.
    color:
        Base RGB color of the primitive in ``[0, 1]``.
    density_scale:
        Peak volumetric density inside the primitive.
    sharpness:
        Controls how quickly density falls off across the surface; larger
        values give harder surfaces.
    """

    sdf: callable
    color: tuple[float, float, float]
    density_scale: float = 40.0
    sharpness: float = 30.0

    def density(self, points: np.ndarray) -> np.ndarray:
        d = self.sdf(points)
        return self.density_scale / (1.0 + np.exp(np.clip(self.sharpness * d, -60.0, 60.0)))


class SDFScene:
    """A collection of colored SDF primitives forming a procedural scene.

    Density at a point is the sum of the primitive densities; color is the
    density-weighted average of the primitive colors, optionally modulated
    by a smooth position-dependent tint so the field has view-independent
    texture to learn.
    """

    def __init__(self, name: str, primitives: list[ColoredPrimitive], tint_frequency: float = 2.0):
        if not primitives:
            raise ValueError("a scene needs at least one primitive")
        self.name = name
        self.primitives = list(primitives)
        self.tint_frequency = float(tint_frequency)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Total volumetric density, shape ``(N,)``."""
        points = np.asarray(points, dtype=np.float64)
        total = np.zeros(points.shape[:-1], dtype=np.float64)
        for prim in self.primitives:
            total += prim.density(points)
        return total

    def color(self, points: np.ndarray) -> np.ndarray:
        """Albedo color at each point, shape ``(N, 3)``."""
        points = np.asarray(points, dtype=np.float64)
        weights = np.zeros(points.shape[:-1] + (len(self.primitives),), dtype=np.float64)
        colors = np.zeros((len(self.primitives), 3), dtype=np.float64)
        for i, prim in enumerate(self.primitives):
            weights[..., i] = prim.density(points) + 1e-9
            colors[i] = prim.color
        weights = weights / weights.sum(axis=-1, keepdims=True)
        base = weights @ colors
        if self.tint_frequency > 0:
            tint = 0.12 * np.sin(self.tint_frequency * np.pi * points)
            base = np.clip(base + tint, 0.0, 1.0)
        return base

    def radiance(
        self, points: np.ndarray, directions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: ``(density, color)`` with an optional view-dependent sheen."""
        sigma = self.density(points)
        rgb = self.color(points)
        if directions is not None:
            directions = np.asarray(directions, dtype=np.float64)
            # Mild view-dependent brightening so view direction matters.
            sheen = 0.05 * (directions[..., 1:2] + 1.0)
            rgb = np.clip(rgb + sheen, 0.0, 1.0)
        return sigma, rgb
