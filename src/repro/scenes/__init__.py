"""Procedural scene library and posed-image dataset substrate."""

from .camera import CameraIntrinsics, look_at, poses_on_sphere
from .dataset import DatasetConfig, SyntheticNeRFDataset, load_synthetic_dataset
from .library import SCENE_NAMES, available_scenes, build_scene
from .primitives import ColoredPrimitive, SDFScene

__all__ = [
    "CameraIntrinsics",
    "look_at",
    "poses_on_sphere",
    "DatasetConfig",
    "SyntheticNeRFDataset",
    "load_synthetic_dataset",
    "SCENE_NAMES",
    "available_scenes",
    "build_scene",
    "ColoredPrimitive",
    "SDFScene",
]
